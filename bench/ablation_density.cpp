// Coefficient-density ablation. The paper evaluates with fully dense
// matrices and notes "the performance will be even higher with sparser
// matrices" (Sec. 4.3): a zero coefficient is free in a region operation
// and the loop-based multiply's iteration count equals the coefficient's
// bit length. This bench quantifies both effects — measured on the host
// CPU encoder and measured as ALU work in the simulated loop-based GPU
// kernel — together with the price: the extra dependent blocks a decoder
// sees at low density.
#include <cstdio>

#include "bench_common.h"
#include "coding/encoder.h"
#include "coding/progressive_decoder.h"
#include "cpu/cpu_encoder.h"
#include "gpu/gpu_encoder.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace extnc;

double host_encode_rate(double density, ThreadPool& pool) {
  const coding::Params params{.n = 128, .k = 4096};
  Rng rng(1);
  const coding::Segment segment = coding::Segment::random(params, rng);
  const cpu::CpuEncoder encoder(segment, pool);
  coding::CodedBatch batch(params, 48);
  const auto model = coding::CoefficientModel::sparse(density);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    model.draw(rng, batch.coefficients(j));
  }
  encoder.encode_into(batch);  // warm-up
  Timer timer;
  encoder.encode_into(batch);
  return mb_per_second(static_cast<double>(batch.payload_bytes()),
                       timer.elapsed_seconds());
}

double gpu_alu_per_word(double density) {
  const coding::Params params{.n = 64, .k = 512};
  Rng rng(2);
  const coding::Segment segment = coding::Segment::random(params, rng);
  gpu::GpuEncoder encoder(simgpu::gtx280(), segment,
                          gpu::EncodeScheme::kLoopBased);
  coding::CodedBatch batch(params, 16);
  const auto model = coding::CoefficientModel::sparse(density);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    model.draw(rng, batch.coefficients(j));
  }
  encoder.encode_into(batch);
  const double words = 16 * 512 / 4.0;
  return encoder.encode_metrics().alu_ops() / words;
}

double dependent_fraction(double density) {
  const coding::Params params{.n = 64, .k = 16};
  Rng rng(3);
  const coding::Segment segment = coding::Segment::random(params, rng);
  const coding::Encoder encoder(segment,
                                coding::CoefficientModel::sparse(density));
  std::size_t dependent = 0;
  std::size_t sent = 0;
  for (int trial = 0; trial < 20; ++trial) {
    coding::ProgressiveDecoder decoder(params);
    while (!decoder.is_complete()) {
      ++sent;
      if (decoder.add(encoder.encode(rng)) !=
          coding::ProgressiveDecoder::Result::kAccepted) {
        ++dependent;
      }
    }
  }
  return static_cast<double>(dependent) / static_cast<double>(sent);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace extnc::bench;
  const bool csv = has_flag(argc, argv, "--csv");
  ThreadPool pool;

  std::printf("Coefficient density ablation (n=128, k=4 KB encode; n=64 "
              "dependence probe)\n\n");
  TablePrinter table({"density", "host CPU MB/s", "GPU LB alu/word",
                      "dependent blocks"});
  for (double density : {1.0, 0.75, 0.5, 0.25, 0.1, 0.05}) {
    table.add_row({TablePrinter::num(density, 2),
                   TablePrinter::num(host_encode_rate(density, pool)),
                   TablePrinter::num(gpu_alu_per_word(density), 0),
                   TablePrinter::num(100 * dependent_fraction(density), 1) +
                       "%"});
  }
  print_table(table, csv);
  std::printf(
      "\nExpected: throughput rises and GPU ALU work falls roughly linearly "
      "as density drops; linear-dependence overhead stays negligible until "
      "density gets very low.\n");
  return 0;
}
