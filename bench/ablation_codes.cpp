// Code-family comparison (paper Sec. 2): random linear network coding vs
// Reed-Solomon vs LT fountain codes.
//
// "While there is no doubt that more efficient codes exist, they may not
// be suitable for randomized network coding in a practical setting. In
// contrast, random linear codes are simple, effective, and can be recoded
// without affecting the guarantee to decode." This bench puts numbers on
// that sentence: reception overhead over a lossy link, decode throughput
// on the host, and the structural properties (rateless? recodable at
// relays?) that decide which systems each code fits.
#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "codes/lt_code.h"
#include "codes/reed_solomon.h"
#include "coding/encoder.h"
#include "coding/progressive_decoder.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace extnc;

constexpr std::size_t kBlocks = 64;
constexpr std::size_t kBlockBytes = 1024;
constexpr int kTrials = 8;

// Average packets a receiver must accept (after loss) to decode, / k.
double rlnc_overhead(double loss) {
  Rng rng(1);
  double received = 0;
  for (int t = 0; t < kTrials; ++t) {
    const coding::Params params{.n = kBlocks, .k = kBlockBytes};
    const coding::Segment segment = coding::Segment::random(params, rng);
    const coding::Encoder encoder(segment);
    coding::ProgressiveDecoder decoder(params);
    while (!decoder.is_complete()) {
      const auto block = encoder.encode(rng);
      if (rng.next_double() < loss) continue;
      decoder.add(block);
      received += 1;
    }
  }
  return received / (kTrials * static_cast<double>(kBlocks));
}

double lt_overhead(double loss) {
  Rng rng(2);
  double received = 0;
  for (int t = 0; t < kTrials; ++t) {
    const codes::LtParams params{.source_blocks = kBlocks,
                                 .block_bytes = kBlockBytes};
    const codes::LtEncoder encoder = codes::LtEncoder::random(params, rng);
    codes::LtDecoder decoder(params);
    while (!decoder.is_complete()) {
      auto packet = encoder.encode(rng);
      if (rng.next_double() < loss) continue;
      decoder.add(std::move(packet));
      received += 1;
    }
  }
  return received / (kTrials * static_cast<double>(kBlocks));
}

// RS is fixed-rate: with m parity blocks it absorbs AT MOST m losses; the
// overhead is the provisioned redundancy, not a function of what arrived.
double rs_required_redundancy(double loss) {
  // Provision so a whole k+m transmission survives >= k blocks with ~99%
  // probability (binomial tail, solved numerically).
  const double p = 1 - loss;
  for (std::size_t m = 0; m <= 192; ++m) {
    const std::size_t total = kBlocks + m;
    // P(survivors >= k) via complement of binomial CDF.
    double prob = 0;
    double log_choose = 0;  // log C(total, 0)
    for (std::size_t s = 0; s <= total; ++s) {
      if (s >= kBlocks) {
        prob += std::exp(log_choose + s * std::log(p) +
                         (total - s) * std::log1p(-p));
      }
      log_choose += std::log(static_cast<double>(total - s)) -
                    std::log(static_cast<double>(s + 1));
    }
    if (prob >= 0.99) {
      return static_cast<double>(total) / static_cast<double>(kBlocks);
    }
  }
  return 4.0;
}

double rlnc_decode_rate_mb() {
  Rng rng(3);
  const coding::Params params{.n = kBlocks, .k = kBlockBytes};
  const coding::Segment segment = coding::Segment::random(params, rng);
  const coding::Encoder encoder(segment);
  std::vector<coding::CodedBlock> blocks;
  coding::ProgressiveDecoder probe(params);
  while (!probe.is_complete()) {
    auto block = encoder.encode(rng);
    if (probe.add(block) == coding::ProgressiveDecoder::Result::kAccepted) {
      blocks.push_back(std::move(block));
    }
  }
  Timer timer;
  for (int rep = 0; rep < 4; ++rep) {
    coding::ProgressiveDecoder decoder(params);
    for (const auto& block : blocks) decoder.add(block);
  }
  return mb_per_second(4.0 * params.segment_bytes(), timer.elapsed_seconds());
}

double rs_decode_rate_mb() {
  Rng rng(4);
  const codes::RsParams params{.data_blocks = kBlocks, .parity_blocks = 16,
                               .block_bytes = kBlockBytes};
  std::vector<std::uint8_t> data(kBlocks * kBlockBytes);
  for (auto& b : data) b = rng.next_byte();
  const codes::ReedSolomon rs(params);
  const auto parity = rs.encode(data);
  std::vector<std::span<const std::uint8_t>> shards;
  for (std::size_t i = 0; i < kBlocks; ++i) {
    shards.emplace_back(data.data() + i * kBlockBytes, kBlockBytes);
  }
  for (const auto& p : parity) shards.emplace_back(p.span());
  for (std::size_t i = 0; i < 16; ++i) shards[i] = {};  // worst case: 16 losses
  Timer timer;
  for (int rep = 0; rep < 4; ++rep) {
    auto out = rs.decode(shards);
    if (!out.has_value()) return 0;
  }
  return mb_per_second(4.0 * data.size(), timer.elapsed_seconds());
}

double lt_decode_rate_mb() {
  Rng rng(5);
  const codes::LtParams params{.source_blocks = kBlocks,
                               .block_bytes = kBlockBytes};
  const codes::LtEncoder encoder = codes::LtEncoder::random(params, rng);
  // Pre-generate a decodable packet set.
  std::vector<codes::LtPacket> packets;
  {
    codes::LtDecoder probe(params);
    while (!probe.is_complete()) {
      packets.push_back(encoder.encode(rng));
      auto copy = packets.back();
      codes::LtPacket clone;
      clone.sources = copy.sources;
      clone.payload = AlignedBuffer(params.block_bytes);
      std::memcpy(clone.payload.data(), copy.payload.data(),
                  params.block_bytes);
      probe.add(std::move(clone));
    }
  }
  Timer timer;
  for (int rep = 0; rep < 4; ++rep) {
    codes::LtDecoder decoder(params);
    for (const auto& packet : packets) {
      codes::LtPacket clone;
      clone.sources = packet.sources;
      clone.payload = AlignedBuffer(params.block_bytes);
      std::memcpy(clone.payload.data(), packet.payload.data(),
                  params.block_bytes);
      decoder.add(std::move(clone));
    }
    if (!decoder.is_complete()) return 0;
  }
  return mb_per_second(4.0 * kBlocks * kBlockBytes, timer.elapsed_seconds());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace extnc::bench;
  const bool csv = has_flag(argc, argv, "--csv");

  std::printf("Code families at k = %zu blocks x %zu B (paper Sec. 2)\n\n",
              kBlocks, kBlockBytes);
  TablePrinter table({"property", "RLNC (GF 2^8)", "Reed-Solomon",
                      "LT fountain"});
  table.add_row({"rateless (fresh blocks on demand)", "yes", "no (fixed m)",
                 "yes"});
  table.add_row({"recodable at relays w/o decoding", "yes", "no", "no"});
  table.add_row({"packets/k to decode, 20% loss",
                 TablePrinter::num(rlnc_overhead(0.2), 3),
                 TablePrinter::num(rs_required_redundancy(0.2), 3) +
                     " (provisioned)",
                 TablePrinter::num(lt_overhead(0.2), 3)});
  table.add_row({"packets/k to decode, lossless",
                 TablePrinter::num(rlnc_overhead(0.0), 3), "1.000",
                 TablePrinter::num(lt_overhead(0.0), 3)});
  table.add_row({"host decode MB/s",
                 TablePrinter::num(rlnc_decode_rate_mb(), 0),
                 TablePrinter::num(rs_decode_rate_mb(), 0),
                 TablePrinter::num(lt_decode_rate_mb(), 0)});
  table.add_row({"decode cost scaling", "O(n^2 k) GF ops",
                 "O(k m) GF ops + small inverse", "O(k) XOR (peeling)"});
  print_table(table, csv);
  std::printf(
      "\nReading: RS has zero reception overhead but must fix its rate in "
      "advance and cannot recode; LT is rateless and cheap but pays "
      "reception overhead and is not recodable; RLNC pays GF arithmetic — "
      "the cost the paper's GPU pipeline attacks — to get both properties "
      "at ~zero overhead.\n");
  return 0;
}
