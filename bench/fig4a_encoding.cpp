// Fig. 4(a): loop-based GPU encoding bandwidth vs block size, for n = 128,
// 256, 512 blocks, on the GTX 280 and the 8800 GT — plus the Sec. 4.3
// arithmetic (GF-multiplications/s, instruction rate vs peak, memory rate).
#include <cstdio>

#include "bench_common.h"
#include "gpu/gpu_model.h"
#include "simgpu/device_spec.h"

namespace {

using namespace extnc;
using namespace extnc::bench;
using namespace extnc::gpu;

void print_analysis(double mb_per_s, const coding::Params& params) {
  // The paper's Sec. 4.3 sanity arithmetic at (n=128, k=4 KB, 133 MB/s).
  const double bytes_per_s = mb_per_s * 1024 * 1024;
  const double words_per_s = bytes_per_s / 4;
  const double gf_muls_per_s = words_per_s * static_cast<double>(params.n);
  const double instr_per_mul = 7.0 * 10.5;  // avg iterations x instr/iter
  const double gips = gf_muls_per_s * instr_per_mul / 1e9;
  const double peak_gips = simgpu::gtx280().peak_ips() / 1e9;
  // 5n + 4 bytes of traffic per generated word (Sec. 4.3).
  const double gb_per_s =
      words_per_s * (5.0 * static_cast<double>(params.n) + 4.0) / 1e9;
  std::printf("\nSec. 4.3 analysis at (n=%zu, k=%zu), %.1f MB/s:\n", params.n,
              params.k, mb_per_s);
  std::printf("  GF-multiplications/s : %.0f million (paper: 4463 million)\n",
              gf_muls_per_s / 1e6);
  std::printf("  instruction rate     : %.0f GIPS = %.0f%% of %.0f GIPS peak "
              "(paper: ~91%%)\n",
              gips, 100.0 * gips / peak_gips, peak_gips);
  std::printf("  memory traffic       : %.1f GB/s of %.0f GB/s available\n",
              gb_per_s, simgpu::gtx280().mem_bandwidth_bytes_per_s / 1e9);
}

}  // namespace

int main(int argc, char** argv) {
  check_flags(argc, argv, {"--profile-json"}, {"--csv"});
  const bool csv = has_flag(argc, argv, "--csv");
  ProfileSink sink = profile_sink(argc, argv);
  EncodeModelOptions options;
  options.profiler = sink.profiler_or_null();
  std::printf("Fig. 4(a): loop-based GPU encoding bandwidth (MB/s)\n\n");
  TablePrinter table({"block size", "GTX280 n=128", "GTX280 n=256",
                      "GTX280 n=512", "8800GT n=128", "8800GT n=256",
                      "8800GT n=512"});
  for (std::size_t k : block_size_sweep()) {
    std::vector<std::string> row{block_size_label(k)};
    for (const simgpu::DeviceSpec* spec :
         {&simgpu::gtx280(), &simgpu::geforce_8800gt()}) {
      for (std::size_t n : {128u, 256u, 512u}) {
        row.push_back(TablePrinter::num(
            model_encode_bandwidth(*spec, EncodeScheme::kLoopBased,
                                   {.n = n, .k = k}, options)
                .mb_per_s));
      }
    }
    table.add_row(std::move(row));
  }
  print_table(table, csv);

  if (!csv) {
    const coding::Params anchor{.n = 128, .k = 4096};
    print_analysis(
        model_encode_bandwidth(simgpu::gtx280(), EncodeScheme::kLoopBased,
                               anchor)
            .mb_per_s,
        anchor);
  }
  sink.write_or_die({{"bench", "fig4a_encoding"}});
  return 0;
}
