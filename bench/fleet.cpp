// Fleet serving capacity: sessions served and p99 segment latency as a
// function of offered load, with the fleet healthy and with a scripted
// mid-run device kill (1 of N) plus doubled load — the BENCH_fleet.json
// robustness curves.
//
// Usage:
//   fleet [--devices N] [--quick] [--json] [--csv] [--min-sessions N]
//
// Each sweep point plays the same Poisson session workload through the
// CodingService (admission queue, degradation ladder, hedged dispatch,
// epoch-guarded failover) and records the terminal-state accounting and
// the healthy/faulted-phase latency quantiles. --min-sessions exits
// non-zero if the lightest healthy run completes fewer sessions (CI
// smoke floor). Any accounting mismatch or bit-exactness failure exits
// non-zero unconditionally: the bench doubles as a soak.
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/service.h"
#include "simgpu/exec_engine.h"
#include "util/table_printer.h"

namespace extnc::bench {
namespace {

struct SweepPoint {
  double load = 0;
  bool faulted = false;
  serve::ServiceReport report;
};

serve::ServiceConfig make_config(std::size_t devices, double load,
                                 bool faulted, bool quick) {
  serve::ServiceConfig config;
  config.fleet.params = {.n = 16, .k = 256};
  for (std::size_t i = 0; i < devices; ++i) {
    config.fleet.devices.push_back(i % 2 == 0 ? simgpu::gtx280()
                                              : simgpu::geforce_8800gt());
  }
  config.fleet.threads = 1;
  config.offered_load = load;
  config.duration_s = quick ? 0.04 : 0.15;
  config.admission.capacity = 16;
  config.admission.policy = serve::ShedPolicy::kDegrade;
  config.seed = 42;
  if (faulted) {
    const double mid = config.duration_s / 2;
    config.plan.events.push_back(
        serve::FleetEvent{.at = mid, .device = 1, .kill = true});
    config.plan.load.push_back(
        serve::LoadPhase{.at = mid, .multiplier = 2.0});
    // A light probabilistic fault background on the surviving devices.
    config.fleet.faults.p_bit_flip = 0.01;
    config.fleet.faults.p_hang = 0.002;
    config.fleet.faults.seed = 42;
  }
  return config;
}

// JSON fragment for a quantile: "null" when the histogram has no samples
// (a healthy run has an empty faulted-phase histogram, and printing 0.0
// there poisons downstream trend tooling with a fake zero-latency tail).
std::string quantile_json(const StreamingHistogram& histogram, double q) {
  const std::optional<double> value = histogram.quantile_if_any(q);
  if (!value.has_value()) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9f", *value);
  return buffer;
}

// Table cell for a quantile in milliseconds; "-" when empty.
std::string quantile_ms_cell(const StreamingHistogram& histogram, double q) {
  const std::optional<double> value = histogram.quantile_if_any(q);
  if (!value.has_value()) return "-";
  return std::to_string(*value * 1e3);
}

void print_json(const std::vector<SweepPoint>& points, std::size_t devices,
                bool quick) {
  auto u = [](std::uint64_t v) { return static_cast<unsigned long long>(v); };
  std::printf("{\n");
  std::printf("  \"bench\": \"fleet\",\n");
  std::printf("  \"devices\": %zu,\n", devices);
  std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
  // Both the detected cores and the pool size actually used: the engine
  // pool honors EXTNC_SIMGPU_THREADS, so the two can differ and BENCH
  // baselines need to be honest about which environment produced them.
  std::printf("  \"host_cores\": %u,\n", std::thread::hardware_concurrency());
  std::printf("  \"pool_threads\": %zu,\n",
              simgpu::engine_pool().num_threads());
  std::printf("  \"runs\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& point = points[i];
    const serve::ServiceReport& r = point.report;
    std::printf("    {\"offered_load\": %.2f, \"scenario\": \"%s\", "
                "\"arrivals\": %llu, \"sessions_served\": %llu, "
                "\"completed\": %llu, \"degraded\": %llu, \"shed\": %llu, "
                "\"failed\": %llu, \"hedges\": %llu, "
                "\"stale_completions\": %llu, "
                "\"p99_segment_s\": %s, \"p99_segment_healthy_s\": %s, "
                "\"p99_segment_faulted_s\": %s, "
                "\"p50_segment_s\": %s}%s\n",
                point.load, point.faulted ? "faulted" : "healthy",
                u(r.arrivals), u(r.completed + r.degraded), u(r.completed),
                u(r.degraded), u(r.shed), u(r.failed), u(r.hedges),
                u(r.stale_completions),
                quantile_json(r.segment_latency_s, 0.99).c_str(),
                quantile_json(r.segment_latency_healthy_s, 0.99).c_str(),
                quantile_json(r.segment_latency_faulted_s, 0.99).c_str(),
                quantile_json(r.segment_latency_s, 0.5).c_str(),
                i + 1 < points.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

int run(int argc, char** argv) {
  check_flags(argc, argv, {"--devices", "--min-sessions"},
              {"--quick", "--json", "--csv"});
  const bool quick = has_flag(argc, argv, "--quick");
  const bool json = has_flag(argc, argv, "--json");
  const bool csv = has_flag(argc, argv, "--csv");
  const std::string devices_arg = flag_value(argc, argv, "--devices");
  const std::size_t devices =
      devices_arg.empty() ? 3 : static_cast<std::size_t>(
                                    std::atoll(devices_arg.c_str()));
  if (devices < 2) die("--devices must be >= 2 (the faulted sweep kills 1)");
  const std::string min_arg = flag_value(argc, argv, "--min-sessions");
  const std::uint64_t min_sessions =
      min_arg.empty() ? 0 : static_cast<std::uint64_t>(
                                std::atoll(min_arg.c_str()));

  const std::vector<double> loads =
      quick ? std::vector<double>{0.5, 1.0, 1.5}
            : std::vector<double>{0.3, 0.6, 0.9, 1.2, 1.5};

  std::vector<SweepPoint> points;
  for (const bool faulted : {false, true}) {
    for (const double load : loads) {
      SweepPoint point;
      point.load = load;
      point.faulted = faulted;
      serve::CodingService service(
          make_config(devices, load, faulted, quick));
      point.report = service.run();
      if (!point.report.accounting_exact() ||
          point.report.bitexact_failures != 0 ||
          point.report.decode_mismatches != 0) {
        std::fprintf(stderr,
                     "error: load %.2f %s: accounting or bit-exactness "
                     "violated\n",
                     load, faulted ? "faulted" : "healthy");
        return 1;
      }
      points.push_back(std::move(point));
    }
  }

  if (json) {
    print_json(points, devices, quick);
  } else {
    TablePrinter table({"load", "scenario", "arrivals", "served", "shed",
                        "failed", "p99 seg ms", "p99 faulted ms"});
    for (const SweepPoint& point : points) {
      const serve::ServiceReport& r = point.report;
      table.add_row({std::to_string(point.load),
                     point.faulted ? "faulted" : "healthy",
                     std::to_string(r.arrivals),
                     std::to_string(r.completed + r.degraded),
                     std::to_string(r.shed), std::to_string(r.failed),
                     quantile_ms_cell(r.segment_latency_s, 0.99),
                     quantile_ms_cell(r.segment_latency_faulted_s, 0.99)});
    }
    print_table(table, csv);
  }

  if (min_sessions > 0) {
    const serve::ServiceReport& lightest = points.front().report;
    const std::uint64_t served = lightest.completed + lightest.degraded;
    if (served < min_sessions) {
      std::fprintf(stderr,
                   "error: lightest healthy load served %llu sessions, "
                   "floor is %llu\n",
                   static_cast<unsigned long long>(served),
                   static_cast<unsigned long long>(min_sessions));
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace extnc::bench

int main(int argc, char** argv) { return extnc::bench::run(argc, argv); }
