// Fleet serving capacity: sessions served and p99 segment latency as a
// function of offered load, with the fleet healthy and with a scripted
// mid-run device kill (1 of N) plus doubled load — the BENCH_fleet.json
// robustness curves — plus one restore scenario (kill then heal the same
// device) recording the healed device's restore-ramp stage curve, which
// must climb monotonically to completion (the BENCH ramp row).
//
// Usage:
//   fleet [--devices N] [--quick] [--json] [--csv] [--min-sessions N]
//
// Each sweep point plays the same Poisson session workload through the
// CodingService (admission queue, degradation ladder, hedged dispatch,
// epoch-guarded failover) and records the terminal-state accounting and
// the healthy/faulted-phase latency quantiles. --min-sessions exits
// non-zero if the lightest healthy run completes fewer sessions (CI
// smoke floor). Any accounting mismatch or bit-exactness failure exits
// non-zero unconditionally: the bench doubles as a soak.
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/service.h"
#include "simgpu/exec_engine.h"
#include "util/table_printer.h"

namespace extnc::bench {
namespace {

enum class Scenario { kHealthy, kFaulted, kRestore };

const char* scenario_name(Scenario scenario) {
  switch (scenario) {
    case Scenario::kHealthy: return "healthy";
    case Scenario::kFaulted: return "faulted";
    case Scenario::kRestore: return "restore";
  }
  return "?";
}

struct SweepPoint {
  double load = 0;
  Scenario scenario = Scenario::kHealthy;
  serve::ServiceReport report;
};

serve::ServiceConfig make_config(std::size_t devices, double load,
                                 Scenario scenario, bool quick) {
  serve::ServiceConfig config;
  config.fleet.params = {.n = 16, .k = 256};
  for (std::size_t i = 0; i < devices; ++i) {
    config.fleet.devices.push_back(i % 2 == 0 ? simgpu::gtx280()
                                              : simgpu::geforce_8800gt());
  }
  config.fleet.threads = 1;
  config.offered_load = load;
  config.duration_s = quick ? 0.04 : 0.15;
  config.admission.capacity = 16;
  config.admission.policy = serve::ShedPolicy::kDegrade;
  config.seed = 42;
  if (scenario == Scenario::kFaulted) {
    const double mid = config.duration_s / 2;
    config.plan.events.push_back(
        serve::FleetEvent{.at = mid, .device = 1, .kill = true});
    config.plan.load.push_back(
        serve::LoadPhase{.at = mid, .multiplier = 2.0});
    // A light probabilistic fault background on the surviving devices.
    config.fleet.faults.p_bit_flip = 0.01;
    config.fleet.faults.p_hang = 0.002;
    config.fleet.faults.seed = 42;
  } else if (scenario == Scenario::kRestore) {
    // Kill device 1 early, heal it mid-run, and leave the fleet faultless
    // so the healed device's ramp climbs cleanly — the BENCH curve is the
    // re-warm schedule itself, not fault noise.
    config.plan.events.push_back(serve::FleetEvent{
        .at = config.duration_s / 4, .device = 1, .kill = true});
    config.plan.events.push_back(serve::FleetEvent{
        .at = config.duration_s / 2, .device = 1, .kill = false});
    config.fleet.restore_ramp.advance_after = quick ? 2 : 4;
  }
  return config;
}

// The healed device's stage curve must be a monotone climb ending at full
// share (no collapses: the restore scenario runs faultless).
bool ramp_curve_is_monotone(const serve::ServiceReport& report) {
  if (report.ramp_events.empty() || report.ramp_collapses != 0) return false;
  int last = -1;
  for (const auto& event : report.ramp_events) {
    if (event.stage <= last) return false;
    last = event.stage;
  }
  return last == serve::kRampStages;
}

// JSON fragment for a quantile: "null" when the histogram has no samples
// (a healthy run has an empty faulted-phase histogram, and printing 0.0
// there poisons downstream trend tooling with a fake zero-latency tail).
std::string quantile_json(const StreamingHistogram& histogram, double q) {
  const std::optional<double> value = histogram.quantile_if_any(q);
  if (!value.has_value()) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9f", *value);
  return buffer;
}

// Table cell for a quantile in milliseconds; "-" when empty.
std::string quantile_ms_cell(const StreamingHistogram& histogram, double q) {
  const std::optional<double> value = histogram.quantile_if_any(q);
  if (!value.has_value()) return "-";
  return std::to_string(*value * 1e3);
}

void print_json(const std::vector<SweepPoint>& points, std::size_t devices,
                bool quick) {
  auto u = [](std::uint64_t v) { return static_cast<unsigned long long>(v); };
  std::printf("{\n");
  std::printf("  \"bench\": \"fleet\",\n");
  std::printf("  \"devices\": %zu,\n", devices);
  std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
  // Both the detected cores and the pool size actually used: the engine
  // pool honors EXTNC_SIMGPU_THREADS, so the two can differ and BENCH
  // baselines need to be honest about which environment produced them.
  std::printf("  \"host_cores\": %u,\n", std::thread::hardware_concurrency());
  std::printf("  \"pool_threads\": %zu,\n",
              simgpu::engine_pool().num_threads());
  std::printf("  \"runs\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& point = points[i];
    const serve::ServiceReport& r = point.report;
    std::printf("    {\"offered_load\": %.2f, \"scenario\": \"%s\", "
                "\"arrivals\": %llu, \"sessions_served\": %llu, "
                "\"completed\": %llu, \"degraded\": %llu, \"shed\": %llu, "
                "\"failed\": %llu, \"hedges\": %llu, "
                "\"stale_completions\": %llu, "
                "\"p99_segment_s\": %s, \"p99_segment_healthy_s\": %s, "
                "\"p99_segment_faulted_s\": %s, "
                "\"p50_segment_s\": %s",
                point.load, scenario_name(point.scenario), u(r.arrivals),
                u(r.completed + r.degraded), u(r.completed), u(r.degraded),
                u(r.shed), u(r.failed), u(r.hedges), u(r.stale_completions),
                quantile_json(r.segment_latency_s, 0.99).c_str(),
                quantile_json(r.segment_latency_healthy_s, 0.99).c_str(),
                quantile_json(r.segment_latency_faulted_s, 0.99).c_str(),
                quantile_json(r.segment_latency_s, 0.5).c_str());
    if (point.scenario == Scenario::kRestore) {
      std::printf(", \"ramp_collapses\": %llu, \"ramp_curve\": [",
                  u(r.ramp_collapses));
      for (std::size_t j = 0; j < r.ramp_events.size(); ++j) {
        const auto& e = r.ramp_events[j];
        std::printf("{\"at_s\": %.6f, \"stage\": %d}%s", e.at, e.stage,
                    j + 1 < r.ramp_events.size() ? ", " : "");
      }
      std::printf("]");
    }
    std::printf("}%s\n", i + 1 < points.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

int run(int argc, char** argv) {
  check_flags(argc, argv, {"--devices", "--min-sessions"},
              {"--quick", "--json", "--csv"});
  const bool quick = has_flag(argc, argv, "--quick");
  const bool json = has_flag(argc, argv, "--json");
  const bool csv = has_flag(argc, argv, "--csv");
  const std::string devices_arg = flag_value(argc, argv, "--devices");
  const std::size_t devices =
      devices_arg.empty() ? 3 : static_cast<std::size_t>(
                                    std::atoll(devices_arg.c_str()));
  if (devices < 2) die("--devices must be >= 2 (the faulted sweep kills 1)");
  const std::string min_arg = flag_value(argc, argv, "--min-sessions");
  const std::uint64_t min_sessions =
      min_arg.empty() ? 0 : static_cast<std::uint64_t>(
                                std::atoll(min_arg.c_str()));

  const std::vector<double> loads =
      quick ? std::vector<double>{0.5, 1.0, 1.5}
            : std::vector<double>{0.3, 0.6, 0.9, 1.2, 1.5};

  std::vector<SweepPoint> runs;
  for (const Scenario scenario : {Scenario::kHealthy, Scenario::kFaulted}) {
    for (const double load : loads) {
      SweepPoint point;
      point.load = load;
      point.scenario = scenario;
      runs.push_back(std::move(point));
    }
  }
  // One restore row: the re-warm schedule at a representative load.
  SweepPoint restore;
  restore.load = 0.9;
  restore.scenario = Scenario::kRestore;
  runs.push_back(std::move(restore));

  std::vector<SweepPoint> points;
  for (SweepPoint& point : runs) {
    serve::CodingService service(
        make_config(devices, point.load, point.scenario, quick));
    point.report = service.run();
    if (!point.report.accounting_exact() ||
        point.report.bitexact_failures != 0 ||
        point.report.decode_mismatches != 0) {
      std::fprintf(stderr,
                   "error: load %.2f %s: accounting or bit-exactness "
                   "violated\n",
                   point.load, scenario_name(point.scenario));
      return 1;
    }
    if (point.scenario == Scenario::kRestore &&
        !ramp_curve_is_monotone(point.report)) {
      std::fprintf(stderr,
                   "error: restore scenario ramp curve is not a monotone "
                   "climb to full share\n");
      return 1;
    }
    points.push_back(std::move(point));
  }

  if (json) {
    print_json(points, devices, quick);
  } else {
    TablePrinter table({"load", "scenario", "arrivals", "served", "shed",
                        "failed", "p99 seg ms", "p99 faulted ms",
                        "ramp stages"});
    for (const SweepPoint& point : points) {
      const serve::ServiceReport& r = point.report;
      table.add_row({std::to_string(point.load),
                     scenario_name(point.scenario),
                     std::to_string(r.arrivals),
                     std::to_string(r.completed + r.degraded),
                     std::to_string(r.shed), std::to_string(r.failed),
                     quantile_ms_cell(r.segment_latency_s, 0.99),
                     quantile_ms_cell(r.segment_latency_faulted_s, 0.99),
                     point.scenario == Scenario::kRestore
                         ? std::to_string(r.ramp_events.size())
                         : "-"});
    }
    print_table(table, csv);
  }

  if (min_sessions > 0) {
    const serve::ServiceReport& lightest = points.front().report;
    const std::uint64_t served = lightest.completed + lightest.degraded;
    if (served < min_sessions) {
      std::fprintf(stderr,
                   "error: lightest healthy load served %llu sessions, "
                   "floor is %llu\n",
                   static_cast<unsigned long long>(served),
                   static_cast<unsigned long long>(min_sessions));
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace extnc::bench

int main(int argc, char** argv) { return extnc::bench::run(argc, argv); }
