// Shared helpers for the figure-reproduction benches.
//
// Every bench prints the same series the corresponding paper figure plots:
// the modeled 2009-hardware numbers (GTX 280 / 8800 GT via simgpu, Mac Pro
// via cpu::XeonModel) and, where a real code path exists on the host, a
// measured host series. Pass --csv to any bench for machine-readable
// output.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/table_printer.h"

namespace extnc::bench {

// The paper's block-size sweep: 128 bytes to 32 KB.
inline const std::vector<std::size_t>& block_size_sweep() {
  static const std::vector<std::size_t> sweep{128,  256,  512,   1024, 2048,
                                              4096, 8192, 16384, 32768};
  return sweep;
}

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

inline void print_table(const TablePrinter& table, bool csv) {
  if (csv) {
    table.print_csv(stdout);
  } else {
    table.print(stdout);
  }
}

inline std::string block_size_label(std::size_t k) {
  if (k >= 1024 && k % 1024 == 0) return std::to_string(k / 1024) + " KB";
  return std::to_string(k) + " B";
}

}  // namespace extnc::bench
