// Shared helpers for the figure-reproduction benches.
//
// Every bench prints the same series the corresponding paper figure plots:
// the modeled 2009-hardware numbers (GTX 280 / 8800 GT via simgpu, Mac Pro
// via cpu::XeonModel) and, where a real code path exists on the host, a
// measured host series. Pass --csv to any bench for machine-readable
// output.
// Failure policy: benches must never fail silently. An unknown flag, an
// unknown device name or an unwritable --profile-json path exits non-zero
// with a message on stderr instead of printing a default (or empty) table.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "simgpu/device_spec.h"
#include "simgpu/profiler.h"
#include "simgpu/trace_export.h"
#include "util/cli_flags.h"
#include "util/table_printer.h"

namespace extnc::bench {

// The paper's block-size sweep: 128 bytes to 32 KB.
inline const std::vector<std::size_t>& block_size_sweep() {
  static const std::vector<std::size_t> sweep{128,  256,  512,   1024, 2048,
                                              4096, 8192, 16384, 32768};
  return sweep;
}

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

[[noreturn]] inline void die(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(2);
}

// Value of "--flag VALUE"; empty if absent, fatal if the value is missing.
inline std::string flag_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      if (i + 1 >= argc) die(std::string(flag) + " requires a value");
      return argv[i + 1];
    }
  }
  return "";
}

// Reject mistyped arguments: every argv entry must be one of value_flags
// (which consume the next entry) or bool_flags. Thin wrapper over the
// shared strict parser (util/cli_flags.h); benches keep their positional
// flag_value/has_flag reads after validation.
inline void check_flags(int argc, char** argv,
                        std::initializer_list<const char*> value_flags,
                        std::initializer_list<const char*> bool_flags) {
  std::vector<CliFlag> known;
  for (const char* flag : value_flags) {
    known.push_back({flag, CliFlag::Kind::kText});
  }
  for (const char* flag : bool_flags) {
    known.push_back({flag, CliFlag::Kind::kBool});
  }
  std::string error;
  if (!CliFlags::parse(argc, argv, 1, known, &error).has_value()) die(error);
}

// Simulated device by CLI name; fatal on anything unrecognized.
inline const simgpu::DeviceSpec& device_by_name(const std::string& name) {
  if (name == "gtx280") return simgpu::gtx280();
  if (name == "8800gt") return simgpu::geforce_8800gt();
  die("unknown device '" + name + "' (expected gtx280 or 8800gt)");
}

// --profile-json support: a Profiler plus the output path it flushes to.
struct ProfileSink {
  simgpu::Profiler profiler;
  std::string path;

  bool enabled() const { return !path.empty(); }
  simgpu::Profiler* profiler_or_null() {
    return enabled() ? &profiler : nullptr;
  }
  // Writes the Chrome-trace JSON; exits non-zero on an unwritable path
  // rather than ending the run with a silently missing profile.
  void write_or_die(
      std::vector<std::pair<std::string, std::string>> metadata = {}) {
    if (!enabled()) return;
    simgpu::TraceOptions options;
    options.metadata = std::move(metadata);
    std::string error;
    if (!simgpu::write_chrome_trace(profiler, path, &error, options)) {
      std::fprintf(stderr, "error: --profile-json: %s\n", error.c_str());
      std::exit(1);
    }
    std::fprintf(stderr, "profile: wrote %zu launch events to %s\n",
                 profiler.launch_count(), path.c_str());
  }
};

inline ProfileSink profile_sink(int argc, char** argv) {
  ProfileSink sink;
  sink.path = flag_value(argc, argv, "--profile-json");
  return sink;
}

inline void print_table(const TablePrinter& table, bool csv) {
  if (csv) {
    table.print_csv(stdout);
  } else {
    table.print(stdout);
  }
}

inline std::string block_size_label(std::size_t k) {
  if (k >= 1024 && k % 1024 == 0) return std::to_string(k / 1024) + " KB";
  return std::to_string(k) + " B";
}

}  // namespace extnc::bench
