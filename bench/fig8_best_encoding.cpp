// Fig. 8: the best (table-based-5) encoding scheme across block sizes for
// n = 128, 256, 512, 1024 on the GTX 280. Paper labels at k = 4 KB:
// 298.5 / 146.9 / 73.5 / 36.6 MB/s.
#include <cstdio>

#include "bench_common.h"
#include "gpu/gpu_model.h"

int main(int argc, char** argv) {
  using namespace extnc;
  using namespace extnc::bench;
  using namespace extnc::gpu;
  check_flags(argc, argv, {"--profile-json"}, {"--csv"});
  const bool csv = has_flag(argc, argv, "--csv");
  ProfileSink sink = profile_sink(argc, argv);
  EncodeModelOptions options;
  options.profiler = sink.profiler_or_null();

  std::printf("Fig. 8: highly optimized encoding on GTX 280 (MB/s)\n\n");
  TablePrinter table(
      {"block size", "n=128", "n=256", "n=512", "n=1024"});
  for (std::size_t k : block_size_sweep()) {
    std::vector<std::string> row{block_size_label(k)};
    for (std::size_t n : {128u, 256u, 512u, 1024u}) {
      row.push_back(TablePrinter::num(
          model_encode_bandwidth(simgpu::gtx280(), EncodeScheme::kTable5,
                                 {.n = n, .k = k}, options)
              .mb_per_s));
    }
    table.add_row(std::move(row));
  }
  print_table(table, csv);
  if (!csv) {
    std::printf(
        "\nPaper anchors at k = 4 KB: 298.5 / 146.9 / 73.5 / 36.6 MB/s.\n");
  }
  sink.write_or_die({{"bench", "fig8_best_encoding"}});
  return 0;
}
