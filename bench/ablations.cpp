// The paper's smaller measured effects, one section per claim:
//   Sec. 5.4.1 — hybrid GPU+CPU encoding; GTX 280 ~4.3x the 8-core Xeon.
//   Sec. 5.4.2 — atomicMin pivot search: ~0.6% decode gain.
//   Sec. 5.4.3 — coefficient-matrix caching: 0.5%-3.4% decode gain,
//                biggest at small blocks.
//   Sec. 5.1.2 — encoding from many source segments at once costs ~0.6%
//                (extra preprocessing), so one-segment-many-blocks and
//                VoD-style many-segments perform alike.
//   Sec. 5.1.3 — dummy-input benchmark: removing all memory traffic gains
//                only ~0.5% (memory latency is fully hidden).
//   Sec. 5.1.2 — the table-based scheme ported back to the CPU loses up
//                to 43% against the SIMD loop-based encoder.
//   Sec. 5.1.2 — a future GPU with 64-bit integer ALUs would double
//                loop-based throughput.
#include <cstdio>

#include "bench_common.h"
#include "cpu/xeon_model.h"
#include "gpu/gpu_model.h"

int main(int argc, char** argv) {
  using namespace extnc;
  using namespace extnc::bench;
  using namespace extnc::gpu;
  const bool csv = has_flag(argc, argv, "--csv");
  const auto& gtx = simgpu::gtx280();
  const cpu::XeonModel xeon;
  const coding::Params base{.n = 128, .k = 4096};

  // ---------------------------------------------------------- Sec. 5.4.1
  {
    const double gpu_rate =
        model_encode_bandwidth(gtx, EncodeScheme::kTable5, base).mb_per_s;
    const double cpu_rate =
        xeon.encode_mb_per_s(base, cpu::EncodePartitioning::kFullBlock);
    std::printf("Sec. 5.4.1 — hybrid GPU+CPU encoding (n=128, k=4 KB)\n");
    std::printf("  GPU (table-based-5) : %7.1f MB/s\n", gpu_rate);
    std::printf("  CPU (8-core model)  : %7.1f MB/s\n", cpu_rate);
    std::printf("  combined            : %7.1f MB/s\n", gpu_rate + cpu_rate);
    std::printf("  GPU/CPU ratio       : %7.1fx (paper: ~4.3x)\n\n",
                gpu_rate / cpu_rate);
  }

  // ---------------------------------------------------------- Sec. 5.4.2
  {
    std::printf("Sec. 5.4.2 — atomicMin pivot search (decode, n=128)\n");
    TablePrinter table({"block size", "serial MB/s", "atomicMin MB/s",
                        "gain"});
    for (std::size_t k : {1024u, 4096u, 16384u}) {
      const coding::Params p{.n = 128, .k = k};
      const double serial = model_single_segment_decode(gtx, p, {}).mb_per_s;
      const double atomic =
          model_single_segment_decode(gtx, p, {.use_atomic_min = true})
              .mb_per_s;
      table.add_row({block_size_label(k), TablePrinter::num(serial, 2),
                     TablePrinter::num(atomic, 2),
                     TablePrinter::num(100 * (atomic / serial - 1), 2) + "%"});
    }
    print_table(table, csv);
    std::printf("  (paper: ~0.6%% improvement)\n\n");
  }

  // ---------------------------------------------------------- Sec. 5.4.3
  {
    std::printf("Sec. 5.4.3 — coefficient matrix cached in shared memory "
                "(decode, n=128)\n");
    TablePrinter table({"block size", "uncached MB/s", "cached MB/s", "gain"});
    for (std::size_t k : {512u, 1024u, 4096u, 16384u}) {
      const coding::Params p{.n = 128, .k = k};
      const double uncached = model_single_segment_decode(gtx, p, {}).mb_per_s;
      const double cached =
          model_single_segment_decode(gtx, p, {.cache_coefficients = true})
              .mb_per_s;
      table.add_row(
          {block_size_label(k), TablePrinter::num(uncached, 2),
           TablePrinter::num(cached, 2),
           TablePrinter::num(100 * (cached / uncached - 1), 2) + "%"});
    }
    print_table(table, csv);
    std::printf("  (paper: 0.5%%-3.4%%, biggest at small blocks)\n\n");
  }

  // ----------------------------------------------- Sec. 5.1.2 multi-segment
  {
    // Streaming: thousands of coded blocks amortize one segment's
    // preprocessing. VoD: every segment yields only n coded blocks.
    EncodeModelOptions streaming;
    streaming.coded_blocks = 16 * base.n;
    EncodeModelOptions vod;
    vod.coded_blocks = base.n;
    const double s =
        model_encode_bandwidth(gtx, EncodeScheme::kTable5, base, streaming)
            .mb_per_s;
    const double v =
        model_encode_bandwidth(gtx, EncodeScheme::kTable5, base, vod).mb_per_s;
    std::printf("Sec. 5.1.2 — many-blocks-per-segment vs VoD "
                "(n blocks per segment)\n");
    std::printf("  streaming workload  : %7.1f MB/s\n", s);
    std::printf("  VoD workload        : %7.1f MB/s (%.2f%% slower; paper: "
                "~0.6%%)\n\n",
                v, 100 * (1 - v / s));
  }

  // ------------------------------------------------ Sec. 5.1.3 dummy input
  {
    const auto est = model_encode_bandwidth(gtx, EncodeScheme::kTable5, base);
    // Dummy input: generate sources/coefficients on the fly, no memory.
    const double compute_only_s = est.time.compute_s + est.time.launch_s;
    const double dummy_rate = est.mb_per_s * est.time.total_s / compute_only_s;
    std::printf("Sec. 5.1.3 — dummy-input (no memory traffic) benchmark\n");
    std::printf("  normal encode       : %7.1f MB/s\n", est.mb_per_s);
    std::printf("  dummy input         : %7.1f MB/s (+%.2f%%; paper: "
                "~0.5%%)\n\n",
                dummy_rate, 100 * (dummy_rate / est.mb_per_s - 1));
  }

  // ------------------------------------------------- CPU table-based port
  {
    const double loop_rate =
        xeon.encode_mb_per_s(base, cpu::EncodePartitioning::kFullBlock);
    const double table_rate = xeon.encode_table_mb_per_s(base);
    std::printf("Sec. 5.1.2 — table-based scheme ported to the CPU\n");
    std::printf("  SIMD loop-based     : %7.1f MB/s\n", loop_rate);
    std::printf("  table-based         : %7.1f MB/s (%.0f%% drop; paper: up "
                "to 43%%)\n\n",
                table_rate, 100 * (1 - table_rate / loop_rate));
  }

  // ------------------------------------------------- 64-bit GPU speculation
  {
    const double rate32 =
        model_encode_bandwidth(gtx, EncodeScheme::kLoopBased, base).mb_per_s;
    std::printf("Sec. 5.1.2 — loop-based encoding on a future 64-bit GPU\n");
    std::printf("  32-bit ALUs (GTX280): %7.1f MB/s\n", rate32);
    std::printf("  64-bit ALUs (hypoth): %7.1f MB/s (byte-by-8-byte "
                "multiplies halve the instruction count)\n",
                rate32 * 2);
  }
  return 0;
}
