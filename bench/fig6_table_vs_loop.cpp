// Fig. 6: the optimized table-based encoding scheme (Sec. 5.1.1/5.1.2,
// "Table-based-1") against the loop-based scheme, both on the GTX 280,
// across block sizes and n = 128/256/512. The paper reports "at least 30%"
// improvement across all settings.
#include <cstdio>

#include "bench_common.h"
#include "gpu/gpu_model.h"

int main(int argc, char** argv) {
  using namespace extnc;
  using namespace extnc::bench;
  using namespace extnc::gpu;
  check_flags(argc, argv, {"--profile-json"}, {"--csv"});
  const bool csv = has_flag(argc, argv, "--csv");
  ProfileSink sink = profile_sink(argc, argv);
  EncodeModelOptions options;
  options.profiler = sink.profiler_or_null();

  std::printf(
      "Fig. 6: table-based (TB) vs loop-based (LB) encoding on GTX 280 "
      "(MB/s)\n\n");
  TablePrinter table({"block size", "TB n=128", "TB n=256", "TB n=512",
                      "LB n=128", "LB n=256", "LB n=512", "gain n=128"});
  for (std::size_t k : block_size_sweep()) {
    std::vector<std::string> row{block_size_label(k)};
    double tb128 = 0;
    double lb128 = 0;
    for (std::size_t n : {128u, 256u, 512u}) {
      const double rate = model_encode_bandwidth(
                              simgpu::gtx280(), EncodeScheme::kTable1,
                              {.n = n, .k = k}, options)
                              .mb_per_s;
      if (n == 128) tb128 = rate;
      row.push_back(TablePrinter::num(rate));
    }
    for (std::size_t n : {128u, 256u, 512u}) {
      const double rate = model_encode_bandwidth(
                              simgpu::gtx280(), EncodeScheme::kLoopBased,
                              {.n = n, .k = k}, options)
                              .mb_per_s;
      if (n == 128) lb128 = rate;
      row.push_back(TablePrinter::num(rate));
    }
    row.push_back(TablePrinter::num(100.0 * (tb128 / lb128 - 1.0), 0) + "%");
    table.add_row(std::move(row));
  }
  print_table(table, csv);
  sink.write_or_die({{"bench", "fig6_table_vs_loop"}});
  return 0;
}
