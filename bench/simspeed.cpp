// Host wall-clock throughput of the simgpu executor itself: how fast the
// simulator runs, not how fast the simulated device would be. This is the
// regression harness for the execution engines — the same workloads
// (fig4a-style encodes, fig9-style multi-segment decode) run under the
// interpreted serial engine, the interpreted parallel engine, and the
// warp-batched fast path (the default configuration: fast path on, engine
// auto). The JSON report records seconds, simulated-payload throughput,
// the parallel/serial speedup, and the fast/serial speedup.
//
// Usage:
//   simspeed [--engine serial|parallel|fast|both|all]
//            [--device gtx280|8800gt] [--quick] [--json] [--csv]
//            [--min-speedup X] [--min-fast-speedup X]
//            [--min-table-fast-speedup X]
//
// --min-speedup X exits non-zero if any workload's parallel engine is
// slower than X times the serial engine (CI smoke: X < 1 tolerates
// few-core runners, still catching pathological slowdowns). Requires the
// serial and parallel dimensions. --min-fast-speedup X is the same floor
// for the fast path against the interpreted serial engine; the fast path
// is single-host-thread SIMD, so this floor holds on any runner.
// --min-table-fast-speedup X applies that floor to the encode/tb*
// workloads only — the table schemes lean on the cached access-pattern
// profile (gpu/gpu_encoder.h TableFastProfile), so this is the regression
// gate for profile-based accounting staying ahead of byte walking.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "coding/block_decoder.h"
#include "coding/encoder.h"
#include "gpu/gpu_encoder.h"
#include "gpu/gpu_multiseg_decoder.h"
#include "simgpu/exec_engine.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace extnc::bench {
namespace {

using coding::CodedBatch;
using coding::Params;
using coding::Segment;
using gpu::EncodeScheme;
using simgpu::ExecEngine;

struct Workload {
  std::string name;
  // Runs the workload once; returns simulated payload bytes processed.
  std::function<std::size_t()> run;
};

CodedBatch independent_batch(const Segment& segment, Rng& rng) {
  const Params& params = segment.params();
  const coding::Encoder encoder(segment);
  coding::BlockDecoder probe(params);
  CodedBatch batch(params, params.n);
  std::size_t stored = 0;
  while (stored < params.n) {
    coding::CodedBlock block = encoder.encode(rng);
    if (!probe.add(block)) continue;
    std::copy(block.coefficients().begin(), block.coefficients().end(),
              batch.coefficients(stored).begin());
    std::copy(block.payload().begin(), block.payload().end(),
              batch.payload(stored).begin());
    ++stored;
  }
  return batch;
}

struct Measurement {
  double seconds = 0;
  double mb_per_s = 0;
};

Measurement measure(const Workload& workload, int repeats) {
  // One untimed warm-up run (first-touch allocation, texture-cache fill).
  (void)workload.run();
  double best_s = 0;
  std::size_t bytes = 0;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    bytes = workload.run();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (r == 0 || elapsed.count() < best_s) best_s = elapsed.count();
  }
  Measurement m;
  m.seconds = best_s;
  m.mb_per_s = static_cast<double>(bytes) / (1024.0 * 1024.0) / best_s;
  return m;
}

std::vector<Workload> build_workloads(const simgpu::DeviceSpec& spec,
                                      bool quick) {
  const std::size_t k = quick ? 1024 : 4096;
  const std::size_t n = quick ? 16 : 32;
  const std::size_t batch = quick ? 16 : 64;
  const std::size_t segments = quick ? 3 : 6;

  std::vector<Workload> workloads;

  // fig4a-style encodes: the loop-based kernel and every table scheme
  // (tb0-tb5 all ride the cached-profile fast path; each has a distinct
  // lookup structure, so each gets its own regression row).
  for (const auto& [label, scheme] :
       {std::pair<const char*, EncodeScheme>{"encode/loop",
                                             EncodeScheme::kLoopBased},
        std::pair<const char*, EncodeScheme>{"encode/tb0",
                                             EncodeScheme::kTable0},
        std::pair<const char*, EncodeScheme>{"encode/tb1",
                                             EncodeScheme::kTable1},
        std::pair<const char*, EncodeScheme>{"encode/tb2",
                                             EncodeScheme::kTable2},
        std::pair<const char*, EncodeScheme>{"encode/tb3",
                                             EncodeScheme::kTable3},
        std::pair<const char*, EncodeScheme>{"encode/tb4",
                                             EncodeScheme::kTable4},
        std::pair<const char*, EncodeScheme>{"encode/tb5",
                                             EncodeScheme::kTable5}}) {
    workloads.push_back(
        {label, [&spec, label = std::string(label), scheme, n, k, batch] {
           Rng rng(7);
           const Segment segment =
               Segment::random(Params{.n = n, .k = k}, rng);
           gpu::GpuEncoder encoder(spec, segment, scheme);
           const CodedBatch out = encoder.encode_batch(batch, rng);
           return out.count() * k;
         }});
  }

  // fig9-style multi-segment decode (stage 1 inversions + stage 2 matrix
  // product).
  workloads.push_back(
      {"decode/multiseg", [&spec, n, k, segments] {
         Rng rng(11);
         const Params params{.n = n, .k = k};
         std::vector<CodedBatch> batches;
         batches.reserve(segments);
         for (std::size_t s = 0; s < segments; ++s) {
           batches.push_back(
               independent_batch(Segment::random(params, rng), rng));
         }
         gpu::GpuMultiSegmentDecoder decoder(spec, params);
         const auto decoded = decoder.decode_all(batches);
         return decoded.size() * n * k;
       }});
  return workloads;
}

struct Row {
  std::string workload;
  Measurement serial;
  Measurement parallel;
  Measurement fast;
  bool has_serial = false;
  bool has_parallel = false;
  bool has_fast = false;

  double speedup() const {
    return (has_serial && has_parallel && parallel.seconds > 0)
               ? serial.seconds / parallel.seconds
               : 0;
  }
  double fast_speedup() const {
    return (has_serial && has_fast && fast.seconds > 0)
               ? serial.seconds / fast.seconds
               : 0;
  }
};

void print_json(const std::vector<Row>& rows, const std::string& device,
                bool quick) {
  std::printf("{\n");
  std::printf("  \"bench\": \"simspeed\",\n");
  std::printf("  \"device\": \"%s\",\n", device.c_str());
  std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
  std::printf("  \"host_cores\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"pool_threads\": %zu,\n",
              simgpu::engine_pool().num_threads());
  std::printf("  \"workloads\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::printf("    {\"name\": \"%s\"", row.workload.c_str());
    if (row.has_serial) {
      std::printf(", \"serial_s\": %.6f, \"serial_mb_per_s\": %.2f",
                  row.serial.seconds, row.serial.mb_per_s);
    }
    if (row.has_parallel) {
      std::printf(", \"parallel_s\": %.6f, \"parallel_mb_per_s\": %.2f",
                  row.parallel.seconds, row.parallel.mb_per_s);
    }
    if (row.has_fast) {
      std::printf(", \"fast_s\": %.6f, \"fast_mb_per_s\": %.2f",
                  row.fast.seconds, row.fast.mb_per_s);
    }
    if (row.has_serial && row.has_parallel) {
      std::printf(", \"speedup\": %.3f", row.speedup());
    }
    if (row.has_serial && row.has_fast) {
      std::printf(", \"fast_speedup\": %.3f", row.fast_speedup());
    }
    std::printf("}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
}

int run(int argc, char** argv) {
  check_flags(argc, argv,
              {"--engine", "--device", "--min-speedup", "--min-fast-speedup",
               "--min-table-fast-speedup"},
              {"--quick", "--json", "--csv"});
  const std::string engine_arg = flag_value(argc, argv, "--engine");
  const std::string device_arg = flag_value(argc, argv, "--device");
  const std::string min_speedup_arg =
      flag_value(argc, argv, "--min-speedup");
  const std::string min_fast_arg =
      flag_value(argc, argv, "--min-fast-speedup");
  const std::string min_table_fast_arg =
      flag_value(argc, argv, "--min-table-fast-speedup");
  const bool quick = has_flag(argc, argv, "--quick");
  const bool json = has_flag(argc, argv, "--json");
  const bool csv = has_flag(argc, argv, "--csv");

  const std::string engine_mode = engine_arg.empty() ? "all" : engine_arg;
  const bool run_serial = engine_mode == "all" || engine_mode == "both" ||
                          engine_mode == "serial";
  const bool run_parallel = engine_mode == "all" || engine_mode == "both" ||
                            engine_mode == "parallel";
  const bool run_fast = engine_mode == "all" || engine_mode == "fast";
  if (!run_serial && !run_parallel && !run_fast) {
    die("unknown --engine '" + engine_mode +
        "' (expected serial, parallel, fast, both or all)");
  }
  double min_speedup = 0;
  if (!min_speedup_arg.empty()) {
    if (!run_serial || !run_parallel) {
      die("--min-speedup requires the serial and parallel dimensions");
    }
    min_speedup = std::atof(min_speedup_arg.c_str());
    if (min_speedup <= 0) die("--min-speedup must be a positive number");
  }
  double min_fast_speedup = 0;
  if (!min_fast_arg.empty()) {
    if (!run_serial || !run_fast) {
      die("--min-fast-speedup requires the serial and fast dimensions");
    }
    min_fast_speedup = std::atof(min_fast_arg.c_str());
    if (min_fast_speedup <= 0) {
      die("--min-fast-speedup must be a positive number");
    }
  }
  double min_table_fast_speedup = 0;
  if (!min_table_fast_arg.empty()) {
    if (!run_serial || !run_fast) {
      die("--min-table-fast-speedup requires the serial and fast "
          "dimensions");
    }
    min_table_fast_speedup = std::atof(min_table_fast_arg.c_str());
    if (min_table_fast_speedup <= 0) {
      die("--min-table-fast-speedup must be a positive number");
    }
  }
  const std::string device = device_arg.empty() ? "gtx280" : device_arg;
  const simgpu::DeviceSpec& spec = device_by_name(device);
  const int repeats = quick ? 2 : 3;

  const bool fast_saved = simgpu::fast_path_enabled();
  std::vector<Row> rows;
  for (const Workload& workload : build_workloads(spec, quick)) {
    Row row;
    row.workload = workload.name;
    // The serial and parallel dimensions measure the interpreted engines —
    // the historical baselines — so the fast path is pinned off for them.
    if (run_serial) {
      simgpu::set_fast_path_enabled(false);
      simgpu::set_default_engine(ExecEngine::kSerial);
      row.serial = measure(workload, repeats);
      row.has_serial = true;
    }
    if (run_parallel) {
      simgpu::set_fast_path_enabled(false);
      simgpu::set_default_engine(ExecEngine::kParallel);
      row.parallel = measure(workload, repeats);
      row.has_parallel = true;
    }
    // The fast dimension is the shipping default: fast path on, engine
    // auto (which keeps small launches serial).
    if (run_fast) {
      simgpu::set_fast_path_enabled(true);
      simgpu::set_default_engine(ExecEngine::kAuto);
      row.fast = measure(workload, repeats);
      row.has_fast = true;
    }
    simgpu::set_default_engine(ExecEngine::kAuto);
    simgpu::set_fast_path_enabled(fast_saved);
    rows.push_back(row);
  }

  if (json) {
    print_json(rows, device, quick);
  } else {
    TablePrinter table({"workload", "serial s", "parallel s", "fast s",
                        "speedup", "fast speedup", "fast MB/s"});
    for (const Row& row : rows) {
      table.add_row(
          {row.workload,
           row.has_serial ? std::to_string(row.serial.seconds) : "-",
           row.has_parallel ? std::to_string(row.parallel.seconds) : "-",
           row.has_fast ? std::to_string(row.fast.seconds) : "-",
           row.speedup() > 0 ? std::to_string(row.speedup()) : "-",
           row.fast_speedup() > 0 ? std::to_string(row.fast_speedup()) : "-",
           row.has_fast ? std::to_string(row.fast.mb_per_s) : "-"});
    }
    print_table(table, csv);
  }

  if (min_speedup > 0) {
    for (const Row& row : rows) {
      if (row.speedup() < min_speedup) {
        std::fprintf(stderr,
                     "error: %s: parallel/serial speedup %.3f below "
                     "--min-speedup %.3f (pool=%zu threads)\n",
                     row.workload.c_str(), row.speedup(), min_speedup,
                     simgpu::engine_pool().num_threads());
        return 1;
      }
    }
  }
  if (min_table_fast_speedup > 0) {
    for (const Row& row : rows) {
      if (row.workload.rfind("encode/tb", 0) != 0) continue;
      if (row.fast_speedup() < min_table_fast_speedup) {
        std::fprintf(stderr,
                     "error: %s: fast/serial speedup %.3f below "
                     "--min-table-fast-speedup %.3f\n",
                     row.workload.c_str(), row.fast_speedup(),
                     min_table_fast_speedup);
        return 1;
      }
    }
  }
  if (min_fast_speedup > 0) {
    for (const Row& row : rows) {
      if (row.fast_speedup() < min_fast_speedup) {
        std::fprintf(stderr,
                     "error: %s: fast/serial speedup %.3f below "
                     "--min-fast-speedup %.3f\n",
                     row.workload.c_str(), row.fast_speedup(),
                     min_fast_speedup);
        return 1;
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace extnc::bench

int main(int argc, char** argv) { return extnc::bench::run(argc, argv); }
