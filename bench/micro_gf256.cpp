// Microbenchmarks of the GF(2^8) primitives: scalar multiply variants,
// every region-op backend available on this host, and dense matrix
// operations. google-benchmark binary.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "gf256/gf.h"
#include "gf256/matrix.h"
#include "gf256/region.h"
#include "gf256/swar.h"
#include "util/aligned_buffer.h"
#include "util/rng.h"

namespace extnc::gf256 {
namespace {

void BM_MulTable(benchmark::State& state) {
  Rng rng(1);
  std::uint8_t x = rng.next_byte();
  std::uint8_t y = rng.next_byte();
  for (auto _ : state) {
    benchmark::DoNotOptimize(x = mul(x, static_cast<std::uint8_t>(y | 1)));
  }
}
BENCHMARK(BM_MulTable);

void BM_MulLoop(benchmark::State& state) {
  Rng rng(2);
  std::uint8_t x = rng.next_byte();
  std::uint8_t y = rng.next_byte();
  for (auto _ : state) {
    benchmark::DoNotOptimize(x = mul_loop(x, static_cast<std::uint8_t>(y | 1)));
  }
}
BENCHMARK(BM_MulLoop);

void BM_MulPreprocessed(benchmark::State& state) {
  const Tables& t = tables();
  Rng rng(3);
  std::uint8_t log_x = t.log[rng.next_nonzero_byte()];
  const std::uint8_t log_y = t.log[rng.next_nonzero_byte()];
  for (auto _ : state) {
    benchmark::DoNotOptimize(log_x = mul_preprocessed(log_x | 1, log_y));
  }
}
BENCHMARK(BM_MulPreprocessed);

void BM_MulByteWord64(benchmark::State& state) {
  Rng rng(4);
  std::uint64_t w = rng.next();
  const std::uint8_t c = rng.next_nonzero_byte();
  for (auto _ : state) {
    benchmark::DoNotOptimize(w = mul_byte_word(c, w));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_MulByteWord64);

void BM_MulAddRegion(benchmark::State& state) {
  const auto& backends = available_backends();
  const auto index = static_cast<std::size_t>(state.range(0));
  if (index >= backends.size()) {
    state.SkipWithError("backend not available on this host");
    return;
  }
  const Ops& ops = *backends[index];
  state.SetLabel(ops.name);
  const auto len = static_cast<std::size_t>(state.range(1));
  Rng rng(5);
  AlignedBuffer src(len);
  AlignedBuffer dst(len);
  for (auto& b : src.span()) b = rng.next_byte();
  for (auto _ : state) {
    ops.mul_add_region(dst.data(), src.data(), 0x53, len);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_MulAddRegion)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6}, {4096, 65536}});

// The encoder shape: n source rows accumulated into one k-byte payload.
// Fused = one mul_add_regions call; PerRow = n sequential mul_add_region
// calls. Same bytes out (XOR is order-independent) — the fused kernel's win
// is destination cache-blocking, visible here as bytes/s over n*k.
void BM_MulAddRegionsFused(benchmark::State& state) {
  const auto& backends = available_backends();
  const auto index = static_cast<std::size_t>(state.range(0));
  if (index >= backends.size()) {
    state.SkipWithError("backend not available on this host");
    return;
  }
  const Ops& ops = *backends[index];
  state.SetLabel(ops.name);
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto k = static_cast<std::size_t>(state.range(2));
  Rng rng(8);
  AlignedBuffer sources(n * k);
  AlignedBuffer dst(k);
  for (auto& b : sources.span()) b = rng.next_byte();
  std::vector<const std::uint8_t*> srcs(n);
  std::vector<std::uint8_t> coeffs(n);
  for (std::size_t i = 0; i < n; ++i) {
    srcs[i] = sources.data() + i * k;
    coeffs[i] = rng.next_nonzero_byte();
  }
  for (auto _ : state) {
    ops.mul_add_regions(dst.data(), srcs.data(), coeffs.data(), n, k);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * k));
}
BENCHMARK(BM_MulAddRegionsFused)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6}, {128}, {4096, 65536}});

void BM_MulAddRegionsPerRow(benchmark::State& state) {
  const auto& backends = available_backends();
  const auto index = static_cast<std::size_t>(state.range(0));
  if (index >= backends.size()) {
    state.SkipWithError("backend not available on this host");
    return;
  }
  const Ops& ops = *backends[index];
  state.SetLabel(ops.name);
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto k = static_cast<std::size_t>(state.range(2));
  Rng rng(8);
  AlignedBuffer sources(n * k);
  AlignedBuffer dst(k);
  for (auto& b : sources.span()) b = rng.next_byte();
  std::vector<const std::uint8_t*> srcs(n);
  std::vector<std::uint8_t> coeffs(n);
  for (std::size_t i = 0; i < n; ++i) {
    srcs[i] = sources.data() + i * k;
    coeffs[i] = rng.next_nonzero_byte();
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      ops.mul_add_region(dst.data(), srcs[i], coeffs[i], k);
    }
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * k));
}
BENCHMARK(BM_MulAddRegionsPerRow)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6}, {128}, {4096, 65536}});

void BM_MatrixInvert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const Matrix m = Matrix::random_invertible(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.inverted());
  }
}
BENCHMARK(BM_MatrixInvert)->Arg(32)->Arg(128)->Arg(256);

void BM_MatrixMultiplyRows(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 4096;
  Rng rng(7);
  const Matrix coeffs = Matrix::random_dense(n, n, rng);
  AlignedBuffer payload(n * k);
  AlignedBuffer out(n * k);
  for (auto& b : payload.span()) b = rng.next_byte();
  for (auto _ : state) {
    coeffs.multiply_rows(payload.data(), k, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * k));
}
BENCHMARK(BM_MatrixMultiplyRows)->Arg(32)->Arg(128);

}  // namespace
}  // namespace extnc::gf256

BENCHMARK_MAIN();
