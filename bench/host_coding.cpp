// Host-measured end-to-end coding throughput: the real multi-threaded SIMD
// encoder/decoder of this library on this machine (the "measured"
// counterpart to the modeled 2009-hardware figures). google-benchmark
// binary.
#include <benchmark/benchmark.h>

#include "coding/block_decoder.h"
#include "coding/encoder.h"
#include "coding/progressive_decoder.h"
#include "cpu/cpu_decoder.h"
#include "cpu/cpu_encoder.h"
#include "cpu/multi_segment_decoder.h"
#include "util/rng.h"

namespace extnc {
namespace {

using coding::CodedBatch;
using coding::Params;
using coding::Segment;

void BM_CpuEncode(benchmark::State& state) {
  const Params params{.n = static_cast<std::size_t>(state.range(0)),
                      .k = static_cast<std::size_t>(state.range(1))};
  const auto partitioning = state.range(2) == 0
                                ? cpu::EncodePartitioning::kFullBlock
                                : cpu::EncodePartitioning::kPartitionedBlock;
  state.SetLabel(partitioning == cpu::EncodePartitioning::kFullBlock
                     ? "full-block"
                     : "partitioned");
  Rng rng(1);
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool;
  const cpu::CpuEncoder encoder(segment, pool, partitioning);
  CodedBatch batch(params, 64);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    for (auto& c : batch.coefficients(j)) c = rng.next_nonzero_byte();
  }
  for (auto _ : state) {
    encoder.encode_into(batch);
    benchmark::DoNotOptimize(batch.payloads_data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.payload_bytes()));
}
BENCHMARK(BM_CpuEncode)
    ->ArgsProduct({{128, 256}, {1024, 4096, 16384}, {0, 1}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SerialDecode(benchmark::State& state) {
  const Params params{.n = static_cast<std::size_t>(state.range(0)),
                      .k = static_cast<std::size_t>(state.range(1))};
  Rng rng(2);
  const Segment segment = Segment::random(params, rng);
  const coding::Encoder encoder(segment);
  // Pre-generate enough independent blocks outside the timed region.
  std::vector<coding::CodedBlock> blocks;
  {
    coding::ProgressiveDecoder probe(params);
    while (!probe.is_complete()) {
      coding::CodedBlock block = encoder.encode(rng);
      if (probe.add(block) ==
          coding::ProgressiveDecoder::Result::kAccepted) {
        blocks.push_back(std::move(block));
      }
    }
  }
  for (auto _ : state) {
    coding::ProgressiveDecoder decoder(params);
    for (const auto& block : blocks) decoder.add(block);
    benchmark::DoNotOptimize(decoder.is_complete());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(params.segment_bytes()));
}
BENCHMARK(BM_SerialDecode)
    ->ArgsProduct({{64, 128}, {1024, 4096}})
    ->Unit(benchmark::kMillisecond);

void BM_ParallelDecode(benchmark::State& state) {
  const Params params{.n = static_cast<std::size_t>(state.range(0)),
                      .k = static_cast<std::size_t>(state.range(1))};
  Rng rng(3);
  const Segment segment = Segment::random(params, rng);
  const coding::Encoder encoder(segment);
  std::vector<coding::CodedBlock> blocks;
  {
    coding::ProgressiveDecoder probe(params);
    while (!probe.is_complete()) {
      coding::CodedBlock block = encoder.encode(rng);
      if (probe.add(block) ==
          coding::ProgressiveDecoder::Result::kAccepted) {
        blocks.push_back(std::move(block));
      }
    }
  }
  ThreadPool pool;
  for (auto _ : state) {
    cpu::CpuDecoder decoder(params, pool);
    for (const auto& block : blocks) decoder.add(block);
    benchmark::DoNotOptimize(decoder.is_complete());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(params.segment_bytes()));
}
BENCHMARK(BM_ParallelDecode)
    ->ArgsProduct({{64, 128}, {4096, 16384}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_MultiSegmentDecode(benchmark::State& state) {
  const Params params{.n = static_cast<std::size_t>(state.range(0)),
                      .k = static_cast<std::size_t>(state.range(1))};
  const auto segments = static_cast<std::size_t>(state.range(2));
  Rng rng(4);
  std::vector<CodedBatch> batches;
  for (std::size_t s = 0; s < segments; ++s) {
    const Segment segment = Segment::random(params, rng);
    const coding::Encoder encoder(segment);
    coding::BlockDecoder probe(params);
    CodedBatch batch(params, params.n);
    std::size_t stored = 0;
    while (stored < params.n) {
      coding::CodedBlock block = encoder.encode(rng);
      if (!probe.add(block)) continue;
      std::copy(block.coefficients().begin(), block.coefficients().end(),
                batch.coefficients(stored).begin());
      std::copy(block.payload().begin(), block.payload().end(),
                batch.payload(stored).begin());
      ++stored;
    }
    batches.push_back(std::move(batch));
  }
  ThreadPool pool;
  const cpu::MultiSegmentDecoder decoder(params, pool);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.decode_all(batches));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(segments * params.segment_bytes()));
}
BENCHMARK(BM_MultiSegmentDecode)
    ->Args({64, 4096, 8})
    ->Args({128, 4096, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace extnc

BENCHMARK_MAIN();
