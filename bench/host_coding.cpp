// Host-measured coding throughput: the real SIMD encoder/decoder of this
// library on this machine (the "measured" counterpart to the modeled
// 2009-hardware figures), reported per GF(2^8) backend.
//
// Three sections:
//   * backends — every backend the host supports runs the encoder shape
//     (n source rows fused into one k-byte payload) twice: one fused
//     mul_add_regions call vs n sequential mul_add_region calls. Same
//     bytes out; the ratio is the destination-blocking win.
//   * coding   — the shipping code paths (CpuEncoder full/partitioned,
//     serial + pool-parallel progressive decode, multi-segment decode) on
//     the process-selected backend (EXTNC_GF256_BACKEND forces it).
//   * wire     — frame parse with the owned copy (parse) vs the borrowed
//     view (parse_view) on the decode hot path's packet shape.
//
// Usage:
//   host_coding [--quick] [--json] [--csv]
//               [--min-mb-per-s X] [--min-fused-speedup X]
//
// --min-mb-per-s X exits non-zero if any backend's fused encoder-shape
// throughput lands below X MB/s — the CI floor for BENCH_hostpath.json.
// --min-fused-speedup X is the same gate for the best backend's
// fused/per-row ratio (the fused kernel must not regress into the per-row
// path). Floors are deliberately loose: they catch a dispatch ladder that
// silently fell to scalar or a fused kernel that lost its blocking, not
// runner-to-runner noise.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "coding/block_decoder.h"
#include "coding/encoder.h"
#include "coding/progressive_decoder.h"
#include "coding/wire.h"
#include "cpu/cpu_decoder.h"
#include "cpu/cpu_encoder.h"
#include "cpu/multi_segment_decoder.h"
#include "gf256/region.h"
#include "util/aligned_buffer.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace extnc::bench {
namespace {

using coding::CodedBatch;
using coding::Params;
using coding::Segment;

struct Shape {
  std::size_t n;
  std::size_t k;
  std::size_t batch;
  std::size_t segments;
  int repeats;
};

Shape shape_for(bool quick) {
  // Quick mode is the CI configuration BENCH_hostpath.json commits.
  if (quick) return {.n = 64, .k = 1024, .batch = 16, .segments = 3,
                     .repeats = 2};
  return {.n = 128, .k = 4096, .batch = 64, .segments = 6, .repeats = 3};
}

// Best-of-`repeats` wall-clock of fn(); returns MB/s over `bytes` per run.
template <typename Fn>
double measure_mb_per_s(int repeats, std::size_t bytes, Fn&& fn) {
  fn();  // untimed warm-up (first-touch, table fill)
  double best_s = 0;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (r == 0 || elapsed.count() < best_s) best_s = elapsed.count();
  }
  return static_cast<double>(bytes) / (1024.0 * 1024.0) / best_s;
}

struct BackendRow {
  std::string name;
  double fused_mb_per_s = 0;
  double per_row_mb_per_s = 0;
  double fused_speedup() const {
    return per_row_mb_per_s > 0 ? fused_mb_per_s / per_row_mb_per_s : 0;
  }
};

// The encoder shape, driven straight at an Ops table (the coding classes
// always use the process-selected backend, so per-backend rows bypass
// them). `rounds` coded blocks per run amortize timer granularity.
std::vector<BackendRow> bench_backends(const Shape& shape) {
  const std::size_t rounds = shape.batch;
  Rng rng(21);
  AlignedBuffer sources(shape.n * shape.k);
  for (auto& b : sources.span()) b = rng.next_byte();
  std::vector<const std::uint8_t*> srcs(shape.n);
  std::vector<std::uint8_t> coeffs(shape.n);
  for (std::size_t i = 0; i < shape.n; ++i) {
    srcs[i] = sources.data() + i * shape.k;
    coeffs[i] = rng.next_nonzero_byte();
  }
  AlignedBuffer dst(shape.k);
  const std::size_t bytes = rounds * shape.n * shape.k;

  std::vector<BackendRow> rows;
  for (const gf256::Ops* backend : gf256::available_backends()) {
    BackendRow row;
    row.name = backend->name;
    row.fused_mb_per_s =
        measure_mb_per_s(shape.repeats, bytes, [&] {
          for (std::size_t r = 0; r < rounds; ++r) {
            backend->mul_add_regions(dst.data(), srcs.data(), coeffs.data(),
                                     shape.n, shape.k);
          }
        });
    row.per_row_mb_per_s =
        measure_mb_per_s(shape.repeats, bytes, [&] {
          for (std::size_t r = 0; r < rounds; ++r) {
            for (std::size_t i = 0; i < shape.n; ++i) {
              backend->mul_add_region(dst.data(), srcs[i], coeffs[i],
                                      shape.k);
            }
          }
        });
    rows.push_back(row);
  }
  return rows;
}

struct CodingRow {
  std::string name;
  double mb_per_s = 0;
};

std::vector<coding::CodedBlock> independent_blocks(const Segment& segment,
                                                   Rng& rng) {
  const coding::Encoder encoder(segment);
  coding::ProgressiveDecoder probe(segment.params());
  std::vector<coding::CodedBlock> blocks;
  while (!probe.is_complete()) {
    coding::CodedBlock block = encoder.encode(rng);
    if (probe.add(block) == coding::ProgressiveDecoder::Result::kAccepted) {
      blocks.push_back(std::move(block));
    }
  }
  return blocks;
}

std::vector<CodingRow> bench_coding(const Shape& shape, ThreadPool& pool) {
  const Params params{.n = shape.n, .k = shape.k};
  Rng rng(22);
  const Segment segment = Segment::random(params, rng);
  std::vector<CodingRow> rows;

  for (const auto& [label, partitioning] :
       {std::pair<const char*, cpu::EncodePartitioning>{
            "cpu_encode/full-block", cpu::EncodePartitioning::kFullBlock},
        std::pair<const char*, cpu::EncodePartitioning>{
            "cpu_encode/partitioned",
            cpu::EncodePartitioning::kPartitionedBlock}}) {
    const cpu::CpuEncoder encoder(segment, pool, partitioning);
    CodedBatch batch(params, shape.batch);
    for (std::size_t j = 0; j < batch.count(); ++j) {
      for (auto& c : batch.coefficients(j)) c = rng.next_nonzero_byte();
    }
    rows.push_back(
        {label, measure_mb_per_s(shape.repeats, batch.payload_bytes(),
                                 [&] { encoder.encode_into(batch); })});
  }

  const std::vector<coding::CodedBlock> blocks =
      independent_blocks(segment, rng);
  rows.push_back({"decode/serial",
                  measure_mb_per_s(shape.repeats, params.segment_bytes(), [&] {
                    coding::ProgressiveDecoder decoder(params);
                    for (const auto& block : blocks) decoder.add(block);
                  })});
  rows.push_back({"decode/parallel",
                  measure_mb_per_s(shape.repeats, params.segment_bytes(), [&] {
                    cpu::CpuDecoder decoder(params, pool);
                    for (const auto& block : blocks) decoder.add(block);
                  })});

  std::vector<CodedBatch> batches;
  for (std::size_t s = 0; s < shape.segments; ++s) {
    const Segment seg = Segment::random(params, rng);
    const std::vector<coding::CodedBlock> segment_blocks =
        independent_blocks(seg, rng);
    CodedBatch batch(params, params.n);
    for (std::size_t j = 0; j < params.n; ++j) {
      std::copy(segment_blocks[j].coefficients().begin(),
                segment_blocks[j].coefficients().end(),
                batch.coefficients(j).begin());
      std::copy(segment_blocks[j].payload().begin(),
                segment_blocks[j].payload().end(), batch.payload(j).begin());
    }
    batches.push_back(std::move(batch));
  }
  const cpu::MultiSegmentDecoder multiseg(params, pool);
  rows.push_back(
      {"decode/multiseg",
       measure_mb_per_s(shape.repeats,
                        shape.segments * params.segment_bytes(),
                        [&] { (void)multiseg.decode_all(batches); })});
  return rows;
}

std::vector<CodingRow> bench_wire(const Shape& shape) {
  const Params params{.n = shape.n, .k = shape.k};
  Rng rng(23);
  const Segment segment = Segment::random(params, rng);
  const coding::CodedBlock block = coding::Encoder(segment).encode(rng);
  const std::vector<std::uint8_t> frame = coding::serialize(0, block);
  // Enough frames per run for a stable clock read.
  const std::size_t rounds = 64;
  const std::size_t bytes = rounds * frame.size();
  std::vector<CodingRow> rows;
  rows.push_back({"wire/parse_copy",
                  measure_mb_per_s(shape.repeats, bytes, [&] {
                    for (std::size_t r = 0; r < rounds; ++r) {
                      const auto parsed = coding::parse(frame);
                      if (!parsed.ok()) die("parse failed");
                    }
                  })});
  rows.push_back({"wire/parse_view",
                  measure_mb_per_s(shape.repeats, bytes, [&] {
                    for (std::size_t r = 0; r < rounds; ++r) {
                      const auto parsed = coding::parse_view(frame);
                      if (!parsed.ok()) die("parse_view failed");
                    }
                  })});
  return rows;
}

void print_json(const std::vector<BackendRow>& backends,
                const std::vector<CodingRow>& coding,
                const std::vector<CodingRow>& wire, const Shape& shape,
                bool quick, std::size_t pool_threads) {
  std::printf("{\n");
  std::printf("  \"bench\": \"hostpath\",\n");
  std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
  std::printf("  \"host_cores\": %u,\n", std::thread::hardware_concurrency());
  std::printf("  \"pool_threads\": %zu,\n", pool_threads);
  std::printf("  \"selected_backend\": \"%s\",\n", gf256::ops().name);
  std::printf("  \"n\": %zu,\n", shape.n);
  std::printf("  \"k\": %zu,\n", shape.k);
  std::printf("  \"backends\": [\n");
  for (std::size_t i = 0; i < backends.size(); ++i) {
    const BackendRow& row = backends[i];
    std::printf("    {\"name\": \"%s\", \"fused_mb_per_s\": %.2f, "
                "\"per_row_mb_per_s\": %.2f, \"fused_speedup\": %.3f}%s\n",
                row.name.c_str(), row.fused_mb_per_s, row.per_row_mb_per_s,
                row.fused_speedup(), i + 1 < backends.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"coding\": [\n");
  for (std::size_t i = 0; i < coding.size(); ++i) {
    std::printf("    {\"name\": \"%s\", \"mb_per_s\": %.2f}%s\n",
                coding[i].name.c_str(), coding[i].mb_per_s,
                i + 1 < coding.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"wire\": [\n");
  for (std::size_t i = 0; i < wire.size(); ++i) {
    std::printf("    {\"name\": \"%s\", \"mb_per_s\": %.2f}%s\n",
                wire[i].name.c_str(), wire[i].mb_per_s,
                i + 1 < wire.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
}

int run(int argc, char** argv) {
  check_flags(argc, argv, {"--min-mb-per-s", "--min-fused-speedup"},
              {"--quick", "--json", "--csv"});
  const bool quick = has_flag(argc, argv, "--quick");
  const bool json = has_flag(argc, argv, "--json");
  const bool csv = has_flag(argc, argv, "--csv");
  const std::string min_mb_arg = flag_value(argc, argv, "--min-mb-per-s");
  const std::string min_fused_arg =
      flag_value(argc, argv, "--min-fused-speedup");
  double min_mb_per_s = 0;
  if (!min_mb_arg.empty()) {
    min_mb_per_s = std::atof(min_mb_arg.c_str());
    if (min_mb_per_s <= 0) die("--min-mb-per-s must be a positive number");
  }
  double min_fused_speedup = 0;
  if (!min_fused_arg.empty()) {
    min_fused_speedup = std::atof(min_fused_arg.c_str());
    if (min_fused_speedup <= 0) {
      die("--min-fused-speedup must be a positive number");
    }
  }

  const Shape shape = shape_for(quick);
  ThreadPool pool;
  const std::vector<BackendRow> backends = bench_backends(shape);
  const std::vector<CodingRow> coding = bench_coding(shape, pool);
  const std::vector<CodingRow> wire = bench_wire(shape);

  if (json) {
    print_json(backends, coding, wire, shape, quick, pool.num_threads());
  } else {
    TablePrinter backend_table(
        {"backend", "fused MB/s", "per-row MB/s", "fused speedup"});
    for (const BackendRow& row : backends) {
      backend_table.add_row({row.name, std::to_string(row.fused_mb_per_s),
                             std::to_string(row.per_row_mb_per_s),
                             std::to_string(row.fused_speedup())});
    }
    print_table(backend_table, csv);
    TablePrinter path_table({"path", "MB/s"});
    for (const CodingRow& row : coding) {
      path_table.add_row({row.name, std::to_string(row.mb_per_s)});
    }
    for (const CodingRow& row : wire) {
      path_table.add_row({row.name, std::to_string(row.mb_per_s)});
    }
    print_table(path_table, csv);
  }

  if (min_mb_per_s > 0) {
    for (const BackendRow& row : backends) {
      if (row.fused_mb_per_s < min_mb_per_s) {
        std::fprintf(stderr,
                     "error: backend %s: fused %.2f MB/s below "
                     "--min-mb-per-s %.2f\n",
                     row.name.c_str(), row.fused_mb_per_s, min_mb_per_s);
        return 1;
      }
    }
  }
  if (min_fused_speedup > 0 && !backends.empty()) {
    // Gate the best backend (the one the dispatch ladder selects): the
    // fused kernel must beat (or at X<1, at least not lose badly to) the
    // per-row loop on the encoder shape.
    const BackendRow& best = backends.front();
    if (best.fused_speedup() < min_fused_speedup) {
      std::fprintf(stderr,
                   "error: backend %s: fused/per-row speedup %.3f below "
                   "--min-fused-speedup %.3f\n",
                   best.name.c_str(), best.fused_speedup(),
                   min_fused_speedup);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace extnc::bench

int main(int argc, char** argv) { return extnc::bench::run(argc, argv); }
