// Fig. 9: parallel multi-segment decoding — GTX 280 with 3 and 6 segments
// in flight vs the Mac Pro decoding 8 segments (one per core), across
// block sizes and n. Stage-1 (matrix inversion) share annotations are
// printed alongside, as on the paper's figure.
#include <cstdio>

#include "bench_common.h"
#include "cpu/xeon_model.h"
#include "gpu/gpu_model.h"

int main(int argc, char** argv) {
  using namespace extnc;
  using namespace extnc::bench;
  check_flags(argc, argv, {"--profile-json"}, {"--csv"});
  const bool csv = has_flag(argc, argv, "--csv");
  ProfileSink sink = profile_sink(argc, argv);
  const cpu::XeonModel xeon;

  std::printf(
      "Fig. 9: parallel multi-segment decoding (MB/s); s1%% = stage-1 share "
      "of decode time\n\n");
  TablePrinter table({"block size", "GTX 6seg n=128", "s1%", "GTX 3seg n=128",
                      "s1%", "GTX 3seg n=256", "GTX 3seg n=512",
                      "MacPro n=128", "MacPro n=256", "MacPro n=512"});
  for (std::size_t k : block_size_sweep()) {
    const auto six = gpu::model_multi_segment_decode(
        simgpu::gtx280(), {.n = 128, .k = k}, 6, sink.profiler_or_null());
    const auto three = gpu::model_multi_segment_decode(
        simgpu::gtx280(), {.n = 128, .k = k}, 3, sink.profiler_or_null());
    std::vector<std::string> row{block_size_label(k)};
    row.push_back(TablePrinter::num(six.mb_per_s));
    row.push_back(TablePrinter::num(100 * six.stage1_share, 0));
    row.push_back(TablePrinter::num(three.mb_per_s));
    row.push_back(TablePrinter::num(100 * three.stage1_share, 0));
    for (std::size_t n : {256u, 512u}) {
      row.push_back(TablePrinter::num(
          gpu::model_multi_segment_decode(simgpu::gtx280(), {.n = n, .k = k},
                                          3, sink.profiler_or_null())
              .mb_per_s));
    }
    for (std::size_t n : {128u, 256u, 512u}) {
      row.push_back(TablePrinter::num(
          xeon.decode_multi_segment_mb_per_s({.n = n, .k = k})));
    }
    table.add_row(std::move(row));
  }
  print_table(table, csv);

  if (!csv) {
    std::printf(
        "\nChecks: 6-seg n=128 peaks near 254 MB/s; the Mac Pro curves drop "
        "once 8 segments outgrow the 24 MB L2 (32 KB blocks for n=128, "
        "16 KB for n=256, 8 KB for n=512); multi-segment GPU decode beats "
        "the Mac Pro for blocks above 256 B.\n");
  }
  sink.write_or_die({{"bench", "fig9_multiseg_decoding"}});
  return 0;
}
