// Fig. 7: the full optimization ladder at n = 128 on the GTX 280 — from
// the loop-based baseline through Table-based-0..5 (Sec. 5.1.3). Also
// prints the measured shared-memory conflict degree per scheme, the
// quantity the TB-4 -> TB-5 step exists to reduce.
#include <cstdio>

#include "bench_common.h"
#include "coding/segment.h"
#include "gpu/gpu_encoder.h"
#include "gpu/gpu_model.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace extnc;
  using namespace extnc::bench;
  using namespace extnc::gpu;
  check_flags(argc, argv, {"--profile-json"}, {"--csv"});
  const bool csv = has_flag(argc, argv, "--csv");
  ProfileSink sink = profile_sink(argc, argv);
  EncodeModelOptions options;
  options.profiler = sink.profiler_or_null();
  const coding::Params params{.n = 128, .k = 4096};

  struct Row {
    EncodeScheme scheme;
    double paper_mb_per_s;
  };
  const Row rows[] = {
      {EncodeScheme::kLoopBased, 133.0}, {EncodeScheme::kTable0, 106.0},
      {EncodeScheme::kTable1, 172.0},    {EncodeScheme::kTable2, 193.0},
      {EncodeScheme::kTable3, 208.0},    {EncodeScheme::kTable4, 239.0},
      {EncodeScheme::kTable5, 294.0},
  };

  std::printf("Fig. 7: encoding schemes at n = 128, k = 4 KB on GTX 280\n\n");
  TablePrinter table({"scheme", "model MB/s", "paper MB/s", "vs loop-based",
                      "shared conflict degree"});
  const double loop_rate =
      model_encode_bandwidth(simgpu::gtx280(), EncodeScheme::kLoopBased,
                             params, options)
          .mb_per_s;
  Rng rng(1);
  const coding::Segment segment =
      coding::Segment::random({.n = 128, .k = 512}, rng);
  for (const Row& row : rows) {
    const double rate =
        model_encode_bandwidth(simgpu::gtx280(), row.scheme, params, options)
            .mb_per_s;
    // Measure the conflict degree from a real (small) kernel run.
    GpuEncoder encoder(simgpu::gtx280(), segment, row.scheme,
                       sink.profiler_or_null());
    (void)encoder.encode_batch(16, rng);
    table.add_row({scheme_name(row.scheme), TablePrinter::num(rate),
                   TablePrinter::num(row.paper_mb_per_s),
                   TablePrinter::num(rate / loop_rate, 2) + "x",
                   TablePrinter::num(
                       encoder.encode_metrics().shared_conflict_degree(), 2)});
  }
  print_table(table, csv);

  if (!csv) {
    std::printf(
        "\nHeadline: table-based-5 / loop-based should be ~2.2x (paper "
        "Sec. 5.1.3).\n");
  }
  sink.write_or_die({{"bench", "fig7_ladder"}});
  return 0;
}
