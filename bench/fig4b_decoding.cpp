// Fig. 4(b): single-segment decoding bandwidth vs block size — GPU
// (GTX 280, modeled) against the 8-core Mac Pro (modeled) for n = 128,
// 256, 512. The paper's qualitative claims to look for in the output: the
// CPU wins below 8 KB, the GPU wins at 8 KB and above, and both rise with
// block size.
#include <cstdio>

#include "bench_common.h"
#include "cpu/xeon_model.h"
#include "gpu/gpu_model.h"

int main(int argc, char** argv) {
  using namespace extnc;
  using namespace extnc::bench;
  check_flags(argc, argv, {"--profile-json"}, {"--csv"});
  const bool csv = has_flag(argc, argv, "--csv");
  ProfileSink sink = profile_sink(argc, argv);
  const cpu::XeonModel xeon;

  std::printf("Fig. 4(b): single-segment decoding bandwidth (MB/s)\n\n");
  TablePrinter table({"block size", "GTX280 n=128", "GTX280 n=256",
                      "GTX280 n=512", "MacPro n=128", "MacPro n=256",
                      "MacPro n=512"});
  for (std::size_t k : block_size_sweep()) {
    std::vector<std::string> row{block_size_label(k)};
    for (std::size_t n : {128u, 256u, 512u}) {
      row.push_back(TablePrinter::num(
          gpu::model_single_segment_decode(simgpu::gtx280(), {.n = n, .k = k},
                                           {}, sink.profiler_or_null())
              .mb_per_s));
    }
    for (std::size_t n : {128u, 256u, 512u}) {
      row.push_back(TablePrinter::num(
          xeon.decode_single_segment_mb_per_s({.n = n, .k = k})));
    }
    table.add_row(std::move(row));
  }
  print_table(table, csv);

  if (!csv) {
    std::printf(
        "\nCrossover check (n=128): GPU decode should first beat the Mac Pro "
        "at 8 KB blocks (paper Sec. 4.3).\n");
  }
  sink.write_or_die({{"bench", "fig4b_decoding"}});
  return 0;
}
