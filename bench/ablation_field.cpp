// Field-size ablation: GF(2^8) vs GF(2^16).
//
// Bigger symbols make linearly dependent blocks vanish (~1/(q-1) wasted
// blocks per decode) but blow the log/exp tables from 768 B to 384 KB —
// which is why the paper's entire shared-memory engineering (Sec. 5.1)
// and most practice stays at 8 bits. Measured here on the host: region-op
// throughput of each field's table-driven path, plus the dependence rates.
#include <cstdio>

#include "bench_common.h"
#include "coding/encoder.h"
#include "coding/progressive_decoder.h"
#include "gf256/region.h"
#include "gf65536/codec16.h"
#include "gf65536/gf16.h"
#include "util/aligned_buffer.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace extnc;

double gf256_table_rate_mb() {
  // Scalar table path (the apples-to-apples comparison; SIMD nibble tables
  // have no GF(2^16) analog precisely because of table size).
  Rng rng(1);
  const std::size_t len = 1 << 20;
  AlignedBuffer src(len);
  AlignedBuffer dst(len);
  for (auto& b : src.span()) b = rng.next_byte();
  const gf256::Ops& ops = gf256::scalar_ops();
  ops.mul_add_region(dst.data(), src.data(), 0x53, len);  // warm-up
  Timer timer;
  const int reps = 64;
  for (int r = 0; r < reps; ++r) {
    ops.mul_add_region(dst.data(), src.data(),
                       static_cast<std::uint8_t>(1 + r), len);
  }
  return mb_per_second(static_cast<double>(len) * reps,
                       timer.elapsed_seconds());
}

double gf256_simd_rate_mb() {
  Rng rng(2);
  const std::size_t len = 1 << 20;
  AlignedBuffer src(len);
  AlignedBuffer dst(len);
  for (auto& b : src.span()) b = rng.next_byte();
  const gf256::Ops& ops = gf256::ops();
  Timer timer;
  const int reps = 64;
  for (int r = 0; r < reps; ++r) {
    ops.mul_add_region(dst.data(), src.data(),
                       static_cast<std::uint8_t>(1 + r), len);
  }
  return mb_per_second(static_cast<double>(len) * reps,
                       timer.elapsed_seconds());
}

double gf65536_rate_mb() {
  Rng rng(3);
  const std::size_t symbols = 1 << 19;  // 1 MB
  std::vector<std::uint16_t> src(symbols);
  std::vector<std::uint16_t> dst(symbols);
  for (auto& s : src) s = static_cast<std::uint16_t>(rng.next());
  gf65536::mul_add_region(dst.data(), src.data(), 0x1234, symbols);
  Timer timer;
  const int reps = 64;
  for (int r = 0; r < reps; ++r) {
    gf65536::mul_add_region(dst.data(), src.data(),
                            static_cast<std::uint16_t>(1 + r), symbols);
  }
  return mb_per_second(static_cast<double>(symbols) * 2 * reps,
                       timer.elapsed_seconds());
}

double dependents_per_decode_gf256(std::size_t n, int decodes) {
  Rng rng(4);
  const coding::Params params{.n = n, .k = 8};
  std::size_t dependent = 0;
  for (int d = 0; d < decodes; ++d) {
    const coding::Segment segment = coding::Segment::random(params, rng);
    const coding::Encoder encoder(segment);
    coding::ProgressiveDecoder decoder(params);
    while (!decoder.is_complete()) {
      if (decoder.add(encoder.encode(rng)) !=
          coding::ProgressiveDecoder::Result::kAccepted) {
        ++dependent;
      }
    }
  }
  return static_cast<double>(dependent) / decodes;
}

double dependents_per_decode_gf65536(std::size_t n, int decodes) {
  Rng rng(5);
  const gf65536::Params16 params{.n = n, .symbols = 4};
  std::size_t dependent = 0;
  std::vector<std::uint16_t> coeffs;
  std::vector<std::uint16_t> payload;
  for (int d = 0; d < decodes; ++d) {
    const auto encoder = gf65536::Encoder16::random(params, rng);
    gf65536::Decoder16 decoder(params);
    while (!decoder.is_complete()) {
      encoder.encode(rng, coeffs, payload);
      if (decoder.add(coeffs, payload) !=
          gf65536::Decoder16::Result::kAccepted) {
        ++dependent;
      }
    }
  }
  return static_cast<double>(dependent) / decodes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace extnc::bench;
  const bool csv = has_flag(argc, argv, "--csv");

  std::printf("Field-size ablation: GF(2^8) vs GF(2^16)\n\n");
  TablePrinter table({"metric", "GF(2^8)", "GF(2^16)"});
  table.add_row({"log/exp table footprint", "768 B", "384 KB"});
  table.add_row({"table mul_add MB/s (scalar)",
                 TablePrinter::num(gf256_table_rate_mb(), 0),
                 TablePrinter::num(gf65536_rate_mb(), 0)});
  table.add_row({"best mul_add MB/s (SIMD nibble tables)",
                 TablePrinter::num(gf256_simd_rate_mb(), 0), "n/a"});
  const int decodes = 3000;
  table.add_row({"dependent blocks per decode (n=8)",
                 TablePrinter::num(dependents_per_decode_gf256(8, decodes), 4),
                 TablePrinter::num(dependents_per_decode_gf65536(8, decodes),
                                   4)});
  print_table(table, csv);
  std::printf(
      "\nExpected: ~1/255 vs ~1/65535 wasted blocks per decode; the larger "
      "field's tables fall out of L1/shared memory, killing the throughput "
      "edge that makes the GF(2^8) pipeline viable on 2009 GPUs.\n");
  return 0;
}
