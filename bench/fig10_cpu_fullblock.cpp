// Fig. 10: CPU full-block vs partitioned-block encoding (Sec. 5.3).
// Prints the modeled 2009 Mac Pro series (the paper's figure) and a
// measured series for the same two schemes running on this host with the
// library's real multi-threaded SIMD encoder.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "cpu/cpu_encoder.h"
#include "cpu/xeon_model.h"
#include "gf256/region.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace extnc;

double measure_host(cpu::EncodePartitioning partitioning, std::size_t n,
                    std::size_t k, ThreadPool& pool, Rng& rng) {
  const coding::Params params{.n = n, .k = k};
  const coding::Segment segment = coding::Segment::random(params, rng);
  const cpu::CpuEncoder encoder(segment, pool, partitioning);
  // Size the batch for a ~50 ms measurement window.
  const std::size_t batch_blocks =
      std::max<std::size_t>(4, (1 << 24) / params.segment_bytes());
  coding::CodedBatch batch(params, batch_blocks);
  Rng coeff_rng(7);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    for (auto& c : batch.coefficients(j)) c = coeff_rng.next_nonzero_byte();
  }
  encoder.encode_into(batch);  // warm-up
  Timer timer;
  encoder.encode_into(batch);
  return mb_per_second(static_cast<double>(batch.payload_bytes()),
                       timer.elapsed_seconds());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace extnc::bench;
  check_flags(argc, argv, {}, {"--csv", "--no-host"});
  const bool csv = has_flag(argc, argv, "--csv");
  const bool skip_host = has_flag(argc, argv, "--no-host");
  const cpu::XeonModel xeon;

  std::printf(
      "Fig. 10: CPU encoding, full-block (FB) vs partitioned-block (PB) "
      "(MB/s)\n\n");
  std::printf("Modeled 2009 Mac Pro (8-core Xeon, 8 threads, SIMD):\n");
  TablePrinter model({"block size", "FB n=128", "FB n=256", "FB n=512",
                      "PB n=128", "PB n=256", "PB n=512"});
  for (std::size_t k : block_size_sweep()) {
    std::vector<std::string> row{block_size_label(k)};
    for (auto scheme : {cpu::EncodePartitioning::kFullBlock,
                        cpu::EncodePartitioning::kPartitionedBlock}) {
      for (std::size_t n : {128u, 256u, 512u}) {
        row.push_back(
            TablePrinter::num(xeon.encode_mb_per_s({.n = n, .k = k}, scheme)));
      }
    }
    model.add_row(std::move(row));
  }
  print_table(model, csv);

  if (!skip_host) {
    std::printf("\nMeasured on this host (%u hardware threads, %s SIMD):\n",
                std::thread::hardware_concurrency(), gf256::ops().name);
    ThreadPool pool;
    Rng rng(1);
    TablePrinter host({"block size", "FB n=128", "PB n=128", "FB n=256",
                       "PB n=256"});
    for (std::size_t k : block_size_sweep()) {
      std::vector<std::string> row{block_size_label(k)};
      for (std::size_t n : {128u, 256u}) {
        row.push_back(TablePrinter::num(measure_host(
            cpu::EncodePartitioning::kFullBlock, n, k, pool, rng)));
        row.push_back(TablePrinter::num(measure_host(
            cpu::EncodePartitioning::kPartitionedBlock, n, k, pool, rng)));
      }
      host.add_row(std::move(row));
    }
    print_table(host, csv);
    std::printf(
        "\nExpected shape: FB flat across block sizes; PB catches up as "
        "blocks grow (Sec. 5.3).\n");
  }
  return 0;
}
