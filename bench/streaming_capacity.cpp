// Sec. 5.1.1 / 5.1.3 streaming-server capacity: peers served at 768 kbps
// with 512 KB segments (128 x 4 KB), for each encoding scheme's modeled
// bandwidth. Paper anchors: 1385 peers at the loop-based 133 MB/s, >1844
// after the first table-based scheme, >3000 at the final 294 MB/s — which
// saturates two gigabit interfaces.
#include <cstdio>

#include "bench_common.h"
#include "gpu/gpu_model.h"
#include "net/streaming.h"

int main(int argc, char** argv) {
  using namespace extnc;
  using namespace extnc::bench;
  using namespace extnc::gpu;
  const bool csv = has_flag(argc, argv, "--csv");
  const net::StreamConfig config;

  std::printf(
      "Streaming-server capacity (768 kbps streams, 512 KB segments of "
      "128 x 4 KB)\n\n");
  std::printf("Segment duration: %.2f s of content (client buffering delay)\n",
              net::segment_duration_s(config));
  std::printf("Peers per gigabit NIC: %zu\n\n", net::peers_by_nic(config));

  TablePrinter table({"scheme", "coding MB/s", "peers served",
                      "coded blocks/segment", "GbE NICs saturated"});
  for (EncodeScheme scheme :
       {EncodeScheme::kLoopBased, EncodeScheme::kTable1,
        EncodeScheme::kTable5}) {
    const double rate =
        model_encode_bandwidth(simgpu::gtx280(), scheme, config.segment)
            .mb_per_s;
    const std::size_t peers = net::peers_by_coding_rate(rate, config);
    table.add_row({scheme_name(scheme), TablePrinter::num(rate),
                   std::to_string(peers),
                   std::to_string(net::coded_blocks_per_segment(peers, config)),
                   TablePrinter::num(net::nics_saturated(rate, config), 2)});
  }
  print_table(table, csv);

  std::printf(
      "\nGPU memory: %zu segments fit the GTX 280's 1 GB (paper: \"hundreds "
      "of such segments\").\n",
      net::segments_in_memory(1024ull * 1024 * 1024, config));
  std::printf(
      "Paper anchors: 1385 peers (loop-based), 1844+ (first table-based "
      "scheme), 3000+ (table-based-5).\n");
  return 0;
}
