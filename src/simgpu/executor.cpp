#include "simgpu/executor.h"

#include <algorithm>
#include <string>

#include "simgpu/exec_engine.h"
#include "simgpu/fault_injector.h"
#include "simgpu/profiler.h"
#include "simgpu/static_model.h"
#include "simgpu/timing.h"
#include "util/metrics_registry.h"

namespace extnc::simgpu {

// ------------------------------------------------------------ TextureCache

TextureCache::TextureCache(std::size_t cache_bytes, std::size_t line_bytes)
    : num_lines_(std::max<std::size_t>(1, cache_bytes / line_bytes)),
      line_bytes_(line_bytes),
      tags_(num_lines_, 0) {}

bool TextureCache::access(std::uintptr_t address) {
  const std::uintptr_t line = address / line_bytes_;
  const std::size_t set = line % num_lines_;
  // Tag 0 marks an empty line; real line ids are offset by 1 so address 0
  // cannot alias "empty".
  const std::uintptr_t tag = line + 1;
  if (tags_[set] == tag) return true;
  tags_[set] = tag;
  return false;
}

bool TextureCache::resident(std::uintptr_t address) const {
  const std::uintptr_t line = address / line_bytes_;
  return tags_[line % num_lines_] == line + 1;
}

void TextureCache::invalidate() {
  std::fill(tags_.begin(), tags_.end(), 0);
}

// --------------------------------------------------------------- ThreadCtx

std::size_t ThreadCtx::block_index() const { return block_->block_index(); }
std::size_t ThreadCtx::threads_per_block() const {
  return block_->num_threads();
}
std::size_t ThreadCtx::global_index() const {
  return block_->block_index() * block_->num_threads() + lane_;
}

// Checked launches route every access through BlockCheckState; a refused
// access (OOB) is suppressed — loads read 0, stores are dropped — so the
// kernel finishes and the checker reports every finding. Unchecked
// launches fall through to SharedMemory's own always-on bounds CHECKs
// (global accesses have no region info to validate against there).

std::uint8_t ThreadCtx::gload_u8(const std::uint8_t* p) {
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  block_->record_global(seq_++, addr, 1);
  block_->pending_load_bytes_ += 1;
  if (block_->check_ != nullptr && !block_->check_->on_global(lane_, addr, 1)) {
    return 0;
  }
  return *p;
}

std::uint32_t ThreadCtx::gload_u32(const void* p) {
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  block_->record_global(seq_++, addr, 4);
  block_->pending_load_bytes_ += 4;
  if (block_->check_ != nullptr && !block_->check_->on_global(lane_, addr, 4)) {
    return 0;
  }
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

void ThreadCtx::gstore_u8(std::uint8_t* p, std::uint8_t v) {
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  block_->record_global(seq_++, addr, 1);
  block_->pending_store_bytes_ += 1;
  if (block_->check_ != nullptr && !block_->check_->on_global(lane_, addr, 1)) {
    return;
  }
  *p = v;
}

void ThreadCtx::gstore_u32(void* p, std::uint32_t v) {
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  block_->record_global(seq_++, addr, 4);
  block_->pending_store_bytes_ += 4;
  if (block_->check_ != nullptr && !block_->check_->on_global(lane_, addr, 4)) {
    return;
  }
  std::memcpy(p, &v, 4);
}

std::uint8_t ThreadCtx::sload_u8(std::size_t offset) {
  block_->record_shared(seq_++, offset, 1);
  if (block_->check_ != nullptr &&
      !block_->check_->on_shared(lane_, offset, 1, /*is_write=*/false,
                                 /*is_atomic=*/false)) {
    return 0;
  }
  return block_->shared().read_u8(offset);
}

std::uint32_t ThreadCtx::sload_u32(std::size_t offset) {
  block_->record_shared(seq_++, offset, 4);
  if (block_->check_ != nullptr &&
      !block_->check_->on_shared(lane_, offset, 4, /*is_write=*/false,
                                 /*is_atomic=*/false)) {
    return 0;
  }
  return block_->shared().read_u32(offset);
}

void ThreadCtx::sstore_u8(std::size_t offset, std::uint8_t v) {
  block_->record_shared(seq_++, offset, 1);
  if (block_->check_ != nullptr &&
      !block_->check_->on_shared(lane_, offset, 1, /*is_write=*/true,
                                 /*is_atomic=*/false)) {
    return;
  }
  block_->shared().write_u8(offset, v);
}

void ThreadCtx::sstore_u32(std::size_t offset, std::uint32_t v) {
  block_->record_shared(seq_++, offset, 4);
  if (block_->check_ != nullptr &&
      !block_->check_->on_shared(lane_, offset, 4, /*is_write=*/true,
                                 /*is_atomic=*/false)) {
    return;
  }
  block_->shared().write_u32(offset, v);
}

std::uint32_t ThreadCtx::atomic_min_shared(std::size_t offset,
                                           std::uint32_t v) {
  EXTNC_CHECK(block_->spec().has_shared_atomics);
  block_->record_shared(seq_++, offset, 4);
  block_->pending_atomic_ops_ += 1;
  if (block_->check_ != nullptr &&
      !block_->check_->on_shared(lane_, offset, 4, /*is_write=*/true,
                                 /*is_atomic=*/true)) {
    return 0;
  }
  const std::uint32_t old = block_->shared().read_u32(offset);
  block_->shared().write_u32(offset, std::min(old, v));
  return old;
}

std::uint32_t ThreadCtx::tex1d_u32(const std::uint32_t* base,
                                   std::size_t index) {
  ++seq_;  // a texture fetch occupies an access slot like any load
  block_->record_texture(reinterpret_cast<std::uintptr_t>(base + index), 4);
  return base[index];
}

std::uint8_t ThreadCtx::tex1d_u8(const std::uint8_t* base, std::size_t index) {
  ++seq_;
  block_->record_texture(reinterpret_cast<std::uintptr_t>(base + index), 1);
  return base[index];
}

void ThreadCtx::count_alu(double ops) {
  block_->metrics_->alu_deciops += KernelMetrics::deciops(ops);
}

// ---------------------------------------------------------------- BlockCtx

// The serialization-degree rule lives in static_model.{h,cpp}
// (simgpu::shared_group_degree): the interpreted flush, the fast-path bulk
// groups and the static kernel models all call the one definition, so the
// three accounting paths can never disagree.

void BlockCtx::fast_global_group(const std::uintptr_t* addrs,
                                 std::size_t count, std::size_t access_bytes,
                                 std::uint64_t load_bytes,
                                 std::uint64_t store_bytes) {
  const std::uint64_t seg_bytes = spec_->coalesce_segment_bytes;
  std::array<std::uint64_t, 2 * kGroupLanes> segments;
  std::uint32_t live = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t first = addrs[i] / seg_bytes;
    const std::uint64_t last = (addrs[i] + access_bytes - 1) / seg_bytes;
    for (std::uint64_t seg = first; seg <= last; ++seg) {
      bool seen = false;
      for (std::uint32_t j = 0; j < live; ++j) {
        if (segments[j] == seg) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        EXTNC_DASSERT(live < segments.size());
        segments[live++] = seg;
      }
    }
  }
  metrics_->global_transactions += live;
  metrics_->global_load_bytes += load_bytes;
  metrics_->global_store_bytes += store_bytes;
  metrics_->alu_deciops += static_cast<std::uint64_t>(count) * 10;
}

void BlockCtx::fast_shared_group(const std::uintptr_t* words,
                                 std::size_t count) {
  metrics_->shared_accesses += count;
  metrics_->shared_access_events += 1;
  metrics_->shared_serialized_cycles += shared_group_degree(
      words, count, static_cast<std::uint32_t>(spec_->shared_banks));
  metrics_->alu_deciops += static_cast<std::uint64_t>(count) * 10;
}

void BlockCtx::step(const std::function<void(ThreadCtx&)>& fn) {
  step_partial(config_.threads_per_block, fn);
}

void BlockCtx::step_partial(std::size_t count,
                            const std::function<void(ThreadCtx&)>& fn) {
  EXTNC_CHECK(count <= config_.threads_per_block);
  if (check_ != nullptr) check_->on_partial_step(count);
  const std::size_t half = static_cast<std::size_t>(spec_->half_warp);
  current_half_warp_ = 0;
  for (std::size_t lane = 0; lane < count; ++lane) {
    const std::size_t hw = lane / half;
    if (hw != current_half_warp_) {
      flush_half_warp();
      current_half_warp_ = hw;
    }
    ThreadCtx thread;
    thread.block_ = this;
    thread.lane_ = lane;
    thread.seq_ = 0;
    fn(thread);
  }
  flush_half_warp();
  metrics_->barriers += 1;
  // The step boundary is the barrier: per-segment hazard state rolls over.
  if (check_ != nullptr) check_->on_barrier();
}

void BlockCtx::record_global(std::uint32_t seq, std::uintptr_t addr,
                             std::size_t size) {
  if (seq >= global_groups_.size()) global_groups_.resize(seq + 1);
  GlobalGroup& group = global_groups_[seq];
  if (group.count == 0) global_live_.push_back(seq);
  const std::uint64_t seg_bytes = spec_->coalesce_segment_bytes;
  const std::uint64_t first = addr / seg_bytes;
  const std::uint64_t last = (addr + size - 1) / seg_bytes;
  for (std::uint64_t seg = first; seg <= last; ++seg) {
    bool seen = false;
    for (std::uint32_t i = 0; i < group.count; ++i) {
      if (group.segments[i] == seg) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      EXTNC_DASSERT(group.count < group.segments.size());
      group.segments[group.count++] = seg;
    }
  }
  // Memory instructions occupy issue slots like ALU instructions do.
  pending_mem_instrs_ += 1;
}

void BlockCtx::record_shared(std::uint32_t seq, std::size_t offset,
                             std::size_t size) {
  if (seq >= shared_groups_.size()) shared_groups_.resize(seq + 1);
  SharedGroup& group = shared_groups_[seq];
  if (group.count == 0) shared_live_.push_back(seq);
  // Bank of a shared access is determined by its 32-bit word address
  // (derived from the word at flush time).
  const std::uintptr_t word = offset / 4;
  EXTNC_DASSERT(group.count < group.words.size());
  group.words[group.count] = word;
  ++group.count;
  (void)size;
  pending_shared_accesses_ += 1;
  pending_mem_instrs_ += 1;
}

void BlockCtx::record_texture(std::uintptr_t addr, std::size_t size) {
  pending_texture_fetches_ += 1;
  pending_mem_instrs_ += 1;
  if (!texture_->access(addr)) pending_texture_misses_ += 1;
  (void)size;
}

void BlockCtx::flush_half_warp() {
  for (const std::uint32_t seq : global_live_) {
    GlobalGroup& group = global_groups_[seq];
    metrics_->global_transactions += group.count;
    if (check_ != nullptr) {
      check_->on_global_group(current_half_warp_, seq, group.count);
    }
    group.count = 0;
  }
  global_live_.clear();
  for (const std::uint32_t seq : shared_live_) {
    SharedGroup& group = shared_groups_[seq];
    const std::uint64_t degree =
        shared_group_degree(group.words.data(), group.count,
                            static_cast<std::uint32_t>(spec_->shared_banks));
    metrics_->shared_access_events += 1;
    metrics_->shared_serialized_cycles += degree;
    if (check_ != nullptr) {
      check_->on_shared_group(current_half_warp_, seq, degree);
    }
    group.count = 0;
  }
  shared_live_.clear();
  // Drain the batched counters. Memory instructions occupy issue slots and
  // are integer-valued, so folding them here (instead of += 1 per access)
  // charges the identical deci-op total.
  metrics_->alu_deciops += pending_mem_instrs_ * 10;
  metrics_->global_load_bytes += pending_load_bytes_;
  metrics_->global_store_bytes += pending_store_bytes_;
  metrics_->shared_accesses += pending_shared_accesses_;
  metrics_->texture_fetches += pending_texture_fetches_;
  metrics_->texture_misses += pending_texture_misses_;
  metrics_->atomic_ops += pending_atomic_ops_;
  pending_mem_instrs_ = 0;
  pending_load_bytes_ = 0;
  pending_store_bytes_ = 0;
  pending_shared_accesses_ = 0;
  pending_texture_fetches_ = 0;
  pending_texture_misses_ = 0;
  pending_atomic_ops_ = 0;
}

// ---------------------------------------------------------------- Launcher

namespace {

std::size_t num_texture_units(const DeviceSpec& spec) {
  const std::size_t per =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::max(1, spec.sms_per_texture_cache)));
  const std::size_t sms =
      std::max<std::size_t>(1, static_cast<std::size_t>(spec.num_sms));
  return (sms + per - 1) / per;
}

}  // namespace

Launcher::Launcher(const DeviceSpec& spec) : spec_(&spec) {
  texture_caches_.assign(
      num_texture_units(spec),
      TextureCache(spec.texture_cache_bytes, spec.texture_cache_line_bytes));
}

std::size_t Launcher::texture_unit_of(std::size_t block) const {
  const std::size_t sms =
      std::max<std::size_t>(1, static_cast<std::size_t>(spec_->num_sms));
  const std::size_t per = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::max(1, spec_->sms_per_texture_cache)));
  return (block % sms) / per;
}

void Launcher::run_blocks(const LaunchConfig& config,
                          const std::function<void(BlockCtx&)>& kernel,
                          std::size_t only_unit,
                          std::vector<KernelMetrics>& block_metrics,
                          Checker* checker,
                          std::vector<BlockCheckSink>* check_sinks,
                          BlockError& error) {
  // One reusable context per caller: shared memory is re-zeroed for every
  // block (CUDA's non-persistence contract) and the accounting scratch
  // keeps only its capacity across blocks. The sanitizer scratch follows
  // the same pattern — per worker, per-block state reset in begin_block —
  // and its findings land in per-block sinks, so the merged report is
  // engine-independent just like the metrics.
  SharedMemory shared(spec_->shared_mem_per_sm);
  BlockCtx ctx;
  ctx.spec_ = spec_;
  ctx.config_ = config;
  ctx.shared_ = &shared;
  // Bulk lowerings are only offered to unchecked launches: the sanitizer
  // needs to see every individual access, so a resolved checker forces the
  // interpreted path (this is also what keeps the checker-gate CI job
  // honest without any extra plumbing).
  ctx.fast_ = checker == nullptr && fast_path_enabled();
  BlockCheckState check_state;
  if (checker != nullptr) {
    check_state.attach(*checker, config.threads_per_block,
                       config.shape.partial_counts,
                       static_cast<std::size_t>(spec_->half_warp),
                       shared.size(), launch_label_);
    ctx.check_ = &check_state;
  }
  bool first = true;
  for (std::size_t b = 0; b < config.blocks; ++b) {
    const std::size_t unit = texture_unit_of(b);
    if (only_unit != kAllUnits && unit != only_unit) continue;
    if (!first) std::memset(shared.data(), 0, shared.size());
    first = false;
    ctx.block_index_ = b;
    ctx.texture_ = &texture_caches_[unit];
    ctx.metrics_ = &block_metrics[b];
    if (checker != nullptr) check_state.begin_block(b, &(*check_sinks)[b]);
    try {
      kernel(ctx);
    } catch (...) {
      error.block = b;
      error.error = std::current_exception();
      return;
    }
  }
}

void Launcher::launch(const LaunchConfig& config,
                      const std::function<void(BlockCtx&)>& kernel) {
  EXTNC_CHECK(config.blocks >= 1);
  EXTNC_CHECK(config.threads_per_block >= 1);
  EXTNC_CHECK(config.threads_per_block <=
              static_cast<std::size_t>(spec_->max_threads_per_block));
  EXTNC_CHECK(static_cast<std::size_t>(spec_->half_warp) <=
              BlockCtx::kGroupLanes);
  // Fault gate: the injector may reject the launch outright (nothing runs,
  // no metrics accrue) or decree damage to apply after it completes.
  FaultClass fault = FaultClass::kNone;
  if (injector_ != nullptr) {
    fault = injector_->begin_launch();
    if (fault == FaultClass::kDeviceLost ||
        fault == FaultClass::kLaunchFailure) {
      throw DeviceError(fault,
                        std::string("simgpu: launch ") +
                            (launch_label_.empty() ? "<unlabeled>"
                                                   : launch_label_.c_str()) +
                            " failed: " + fault_class_name(fault));
    }
  }

  // Engine resolution: per-launch override first, then the process default
  // (environment-initialized). kAuto means "parallel when it can help".
  const ExecEngine requested = config.engine != ExecEngine::kAuto
                                   ? config.engine
                                   : default_engine();
  const std::size_t per_unit = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::max(1, spec_->sms_per_texture_cache)));
  // kAuto additionally requires enough blocks to amortize the run_batch
  // latch: small launches lose more to dispatch overhead than block
  // parallelism wins back (BENCH_simspeed showed 0.92-0.97x there). An
  // explicit kParallel still forces the pool — the equivalence suites pin
  // small launches onto it deliberately.
  constexpr std::size_t kAutoDispatchMinBlocks = 16;
  const bool use_parallel = requested != ExecEngine::kSerial &&
                            texture_caches_.size() > 1 &&
                            config.blocks > per_unit &&
                            engine_pool().num_threads() > 1 &&
                            (requested == ExecEngine::kParallel ||
                             config.blocks >= kAutoDispatchMinBlocks);

  // Account each block into its own metrics slot and merge in ascending
  // block order below: every counter (scalar work included, stored as
  // integer deci-ops) is integral, so the reduction is bit-identical no
  // matter which host thread ran which block.
  KernelMetrics launch_metrics;
  launch_metrics.kernel_launches = 1;
  launch_metrics.blocks = config.blocks;
  launch_metrics.threads_per_block = config.threads_per_block;
  std::vector<KernelMetrics> block_metrics(config.blocks);
  Checker* checker = resolve_checker(config);
  std::vector<BlockCheckSink> check_sinks(checker != nullptr ? config.blocks
                                                             : 0);
  std::vector<BlockCheckSink>* sinks =
      checker != nullptr ? &check_sinks : nullptr;
  const std::uint64_t ticket =
      profiler_ != nullptr ? profiler_->begin_ticket() : 0;

  BlockError failure;
  try {
    if (use_parallel) {
      // One task per texture-cache unit: a unit's cache is touched only by
      // its own task, and that task visits the unit's blocks in ascending
      // order — exactly the subsequence the serial engine would feed it.
      const std::size_t units = texture_caches_.size();
      std::vector<BlockError> errors(units);
      engine_pool().run_batch(units, [&](std::size_t unit) {
        run_blocks(config, kernel, unit, block_metrics, checker, sinks,
                   errors[unit]);
      });
      for (const BlockError& e : errors) {
        if (e.error != nullptr && e.block < failure.block) failure = e;
      }
    } else {
      run_blocks(config, kernel, kAllUnits, block_metrics, checker, sinks,
                 failure);
    }
    if (failure.error != nullptr) std::rethrow_exception(failure.error);
  } catch (...) {
    // A throwing kernel aborts the launch: nothing is accounted, and the
    // injector/profiler are told so their launch-granularity state stays
    // consistent for the next launch.
    if (injector_ != nullptr) injector_->cancel_launch();
    if (profiler_ != nullptr) profiler_->abandon_ticket(ticket);
    throw;
  }
  metrics::count(use_parallel ? "simgpu.launch.parallel"
                              : "simgpu.launch.serial");

  for (const KernelMetrics& bm : block_metrics) launch_metrics.merge(bm);
  metrics_.merge(launch_metrics);
  // Fold per-block check sinks into one launch report, in ascending block
  // order: the parallel engine filled disjoint slots, so this merge makes
  // its report bit-identical to the serial engine's.
  CheckReport launch_report;
  std::uint64_t check_events = 0;
  if (checker != nullptr) {
    launch_report.checked_launches = 1;
    const std::size_t cap = checker->config().max_findings_per_launch;
    for (const BlockCheckSink& sink : check_sinks) {
      for (std::size_t i = 0; i < kCheckKindCount; ++i) {
        launch_report.counts[i] += sink.counts[i];
      }
      for (const CheckFinding& finding : sink.findings) {
        if (launch_report.findings.size() >= cap) break;
        launch_report.findings.push_back(finding);
      }
    }
    check_events = launch_report.total();
  }
  // Advance the modeled clock; an injected hang stalls this launch by the
  // plan's stall factor, which is what a supervisor's watchdog detects.
  const double multiplier =
      injector_ != nullptr ? injector_->time_multiplier(fault) : 1.0;
  last_launch_s_ =
      estimate_time_cached(*spec_, launch_metrics).total_s * multiplier;
  elapsed_s_ += last_launch_s_;
  if (injector_ != nullptr) {
    injector_->finish_launch(fault, last_launch_s_);
  }
  if (profiler_ != nullptr) {
    profiler_->record_launch_at(ticket, *spec_, launch_label_, launch_metrics,
                                check_events);
  }
  // The throw comes last: the launch ran to completion and every consumer
  // (metrics, injector, profiler) saw it, so a caught CheckError leaves the
  // device in the same state as a clean launch.
  if (checker != nullptr && checker->absorb(launch_report)) {
    throw CheckError(std::move(launch_report));
  }
}

Checker* Launcher::resolve_checker(const LaunchConfig& config) {
  if (config.check == CheckToggle::kOff) return nullptr;
  if (checker_ != nullptr) return checker_;
  const std::optional<CheckConfig::Mode> env = env_check_mode();
  if (config.check == CheckToggle::kDefault && !env.has_value()) {
    return nullptr;
  }
  if (owned_checker_ == nullptr) {
    CheckConfig cfg;
    cfg.mode = env.value_or(CheckConfig::Mode::kThrow);
    owned_checker_ = std::make_unique<Checker>(cfg);
  }
  return owned_checker_.get();
}

void Launcher::invalidate_texture_cache() {
  for (TextureCache& cache : texture_caches_) cache.invalidate();
}

}  // namespace extnc::simgpu
