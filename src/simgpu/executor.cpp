#include "simgpu/executor.h"

#include <algorithm>
#include <array>
#include <string>

#include "simgpu/fault_injector.h"
#include "simgpu/profiler.h"
#include "simgpu/timing.h"

namespace extnc::simgpu {

// ------------------------------------------------------------ TextureCache

TextureCache::TextureCache(std::size_t cache_bytes, std::size_t line_bytes)
    : num_lines_(std::max<std::size_t>(1, cache_bytes / line_bytes)),
      line_bytes_(line_bytes),
      tags_(num_lines_, 0) {}

bool TextureCache::access(std::uintptr_t address) {
  const std::uintptr_t line = address / line_bytes_;
  const std::size_t set = line % num_lines_;
  // Tag 0 marks an empty line; real line ids are offset by 1 so address 0
  // cannot alias "empty".
  const std::uintptr_t tag = line + 1;
  if (tags_[set] == tag) return true;
  tags_[set] = tag;
  return false;
}

void TextureCache::invalidate() {
  std::fill(tags_.begin(), tags_.end(), 0);
}

// --------------------------------------------------------------- ThreadCtx

std::size_t ThreadCtx::block_index() const { return block_->block_index(); }
std::size_t ThreadCtx::threads_per_block() const {
  return block_->num_threads();
}
std::size_t ThreadCtx::global_index() const {
  return block_->block_index() * block_->num_threads() + lane_;
}

std::uint8_t ThreadCtx::gload_u8(const std::uint8_t* p) {
  block_->record_global(seq_++, reinterpret_cast<std::uintptr_t>(p), 1);
  block_->metrics_->global_load_bytes += 1;
  return *p;
}

std::uint32_t ThreadCtx::gload_u32(const void* p) {
  block_->record_global(seq_++, reinterpret_cast<std::uintptr_t>(p), 4);
  block_->metrics_->global_load_bytes += 4;
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

void ThreadCtx::gstore_u8(std::uint8_t* p, std::uint8_t v) {
  block_->record_global(seq_++, reinterpret_cast<std::uintptr_t>(p), 1);
  block_->metrics_->global_store_bytes += 1;
  *p = v;
}

void ThreadCtx::gstore_u32(void* p, std::uint32_t v) {
  block_->record_global(seq_++, reinterpret_cast<std::uintptr_t>(p), 4);
  block_->metrics_->global_store_bytes += 4;
  std::memcpy(p, &v, 4);
}

std::uint8_t ThreadCtx::sload_u8(std::size_t offset) {
  block_->record_shared(seq_++, offset, 1);
  return block_->shared().read_u8(offset);
}

std::uint32_t ThreadCtx::sload_u32(std::size_t offset) {
  block_->record_shared(seq_++, offset, 4);
  return block_->shared().read_u32(offset);
}

void ThreadCtx::sstore_u8(std::size_t offset, std::uint8_t v) {
  block_->record_shared(seq_++, offset, 1);
  block_->shared().write_u8(offset, v);
}

void ThreadCtx::sstore_u32(std::size_t offset, std::uint32_t v) {
  block_->record_shared(seq_++, offset, 4);
  block_->shared().write_u32(offset, v);
}

std::uint32_t ThreadCtx::atomic_min_shared(std::size_t offset,
                                           std::uint32_t v) {
  EXTNC_CHECK(block_->spec().has_shared_atomics);
  block_->record_shared(seq_++, offset, 4);
  block_->metrics_->atomic_ops += 1;
  const std::uint32_t old = block_->shared().read_u32(offset);
  block_->shared().write_u32(offset, std::min(old, v));
  return old;
}

std::uint32_t ThreadCtx::tex1d_u32(const std::uint32_t* base,
                                   std::size_t index) {
  ++seq_;  // a texture fetch occupies an access slot like any load
  block_->record_texture(reinterpret_cast<std::uintptr_t>(base + index), 4);
  return base[index];
}

std::uint8_t ThreadCtx::tex1d_u8(const std::uint8_t* base, std::size_t index) {
  ++seq_;
  block_->record_texture(reinterpret_cast<std::uintptr_t>(base + index), 1);
  return base[index];
}

void ThreadCtx::count_alu(double ops) { block_->metrics_->alu_ops += ops; }

// ---------------------------------------------------------------- BlockCtx

void BlockCtx::step(const std::function<void(ThreadCtx&)>& fn) {
  step_partial(config_.threads_per_block, fn);
}

void BlockCtx::step_partial(std::size_t count,
                            const std::function<void(ThreadCtx&)>& fn) {
  EXTNC_CHECK(count <= config_.threads_per_block);
  const std::size_t half = static_cast<std::size_t>(spec_->half_warp);
  current_half_warp_ = 0;
  for (std::size_t lane = 0; lane < count; ++lane) {
    const std::size_t hw = lane / half;
    if (hw != current_half_warp_) {
      flush_half_warp();
      current_half_warp_ = hw;
    }
    ThreadCtx thread;
    thread.block_ = this;
    thread.lane_ = lane;
    thread.seq_ = 0;
    fn(thread);
  }
  flush_half_warp();
  metrics_->barriers += 1;
}

void BlockCtx::record_global(std::uint32_t seq, std::uintptr_t addr,
                             std::size_t size) {
  const std::uint64_t seg_bytes = spec_->coalesce_segment_bytes;
  GlobalGroup& group = global_groups_[seq];
  const std::uint64_t first = addr / seg_bytes;
  const std::uint64_t last = (addr + size - 1) / seg_bytes;
  for (std::uint64_t seg = first; seg <= last; ++seg) {
    if (std::find(group.segments.begin(), group.segments.end(), seg) ==
        group.segments.end()) {
      group.segments.push_back(seg);
    }
  }
  // Memory instructions occupy issue slots like ALU instructions do.
  metrics_->alu_ops += 1;
}

void BlockCtx::record_shared(std::uint32_t seq, std::size_t offset,
                             std::size_t size) {
  // Bank of a shared access is determined by its 32-bit word address.
  const std::uintptr_t word = offset / 4;
  const std::uint32_t bank =
      static_cast<std::uint32_t>(word % spec_->shared_banks);
  shared_groups_[seq].accesses.emplace_back(bank, word);
  (void)size;
  metrics_->shared_accesses += 1;
  metrics_->alu_ops += 1;
}

void BlockCtx::record_texture(std::uintptr_t addr, std::size_t size) {
  metrics_->texture_fetches += 1;
  metrics_->alu_ops += 1;
  if (!texture_->access(addr)) metrics_->texture_misses += 1;
  (void)size;
}

void BlockCtx::flush_half_warp() {
  for (auto& [seq, group] : global_groups_) {
    metrics_->global_transactions += group.segments.size();
  }
  global_groups_.clear();
  for (auto& [seq, group] : shared_groups_) {
    // Serialized cycles for one half-warp access step: the worst bank must
    // serve one cycle per *distinct word* addressed in it (lanes reading
    // the same word are satisfied by one broadcast).
    std::array<std::vector<std::uintptr_t>, 32> words_per_bank;
    std::uint64_t degree = 1;
    for (const auto& [bank, word] : group.accesses) {
      auto& words = words_per_bank[bank % 32];
      if (std::find(words.begin(), words.end(), word) == words.end()) {
        words.push_back(word);
        degree = std::max<std::uint64_t>(degree, words.size());
      }
    }
    metrics_->shared_access_events += 1;
    metrics_->shared_serialized_cycles += degree;
  }
  shared_groups_.clear();
}

// ---------------------------------------------------------------- Launcher

Launcher::Launcher(const DeviceSpec& spec)
    : spec_(&spec),
      texture_cache_(spec.texture_cache_bytes, spec.texture_cache_line_bytes) {}

void Launcher::launch(const LaunchConfig& config,
                      const std::function<void(BlockCtx&)>& kernel) {
  EXTNC_CHECK(config.blocks >= 1);
  EXTNC_CHECK(config.threads_per_block >= 1);
  EXTNC_CHECK(config.threads_per_block <=
              static_cast<std::size_t>(spec_->max_threads_per_block));
  // Fault gate: the injector may reject the launch outright (nothing runs,
  // no metrics accrue) or decree damage to apply after it completes.
  FaultClass fault = FaultClass::kNone;
  if (injector_ != nullptr) {
    fault = injector_->begin_launch();
    if (fault == FaultClass::kDeviceLost ||
        fault == FaultClass::kLaunchFailure) {
      throw DeviceError(fault,
                        std::string("simgpu: launch ") +
                            (launch_label_.empty() ? "<unlabeled>"
                                                   : launch_label_.c_str()) +
                            " failed: " + fault_class_name(fault));
    }
  }
  // Account the launch into its own metrics object so an attached profiler
  // sees exactly this launch's delta; the cumulative metrics_ then absorbs
  // it (merge adopts the geometry, since kernel_launches == 1).
  KernelMetrics launch_metrics;
  launch_metrics.kernel_launches = 1;
  launch_metrics.blocks = config.blocks;
  launch_metrics.threads_per_block = config.threads_per_block;
  for (std::size_t b = 0; b < config.blocks; ++b) {
    SharedMemory shared(spec_->shared_mem_per_sm);
    BlockCtx ctx;
    ctx.spec_ = spec_;
    ctx.config_ = config;
    ctx.block_index_ = b;
    ctx.shared_ = &shared;
    ctx.texture_ = &texture_cache_;
    ctx.metrics_ = &launch_metrics;
    kernel(ctx);
  }
  metrics_.merge(launch_metrics);
  // Advance the modeled clock; an injected hang stalls this launch by the
  // plan's stall factor, which is what a supervisor's watchdog detects.
  const double multiplier =
      injector_ != nullptr ? injector_->time_multiplier(fault) : 1.0;
  last_launch_s_ = estimate_time(*spec_, launch_metrics).total_s * multiplier;
  elapsed_s_ += last_launch_s_;
  if (injector_ != nullptr) {
    injector_->finish_launch(fault, last_launch_s_);
  }
  if (profiler_ != nullptr) {
    profiler_->record_launch(*spec_, launch_label_, launch_metrics);
  }
}

void Launcher::invalidate_texture_cache() { texture_cache_.invalidate(); }

}  // namespace extnc::simgpu
