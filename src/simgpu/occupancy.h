// CUDA-style occupancy calculator for the simulated devices.
//
// Mirrors the spreadsheet NVIDIA shipped with the CUDA 2.0 toolkit the
// paper used: given a kernel's threads per block, registers per thread and
// shared memory per block, how many blocks can be resident on one SM, and
// what fraction of the SM's warp slots do they fill? The paper's kernels
// live at both extremes — 256-thread encode blocks sized to share one set
// of exp tables, and skinny decode blocks that cannot fill an SM (the root
// cause of Fig. 4(b)'s left side).
#pragma once

#include <cstddef>

#include "simgpu/device_spec.h"

namespace extnc::simgpu {

struct KernelResources {
  std::size_t threads_per_block = 256;
  std::size_t registers_per_thread = 16;
  std::size_t shared_bytes_per_block = 2048;
};

struct OccupancyResult {
  std::size_t blocks_per_sm = 0;
  std::size_t warps_per_sm = 0;
  double occupancy = 0;  // warps / max warps
  // Which resource capped blocks_per_sm.
  enum class Limiter { kThreads, kRegisters, kSharedMemory, kBlockSlots };
  Limiter limiter = Limiter::kBlockSlots;
};

// GT200-generation per-SM limits not in DeviceSpec (identical for the
// paper's parts except the register file).
struct SmLimits {
  std::size_t max_threads_per_sm = 1024;  // GT200 (G92: 768)
  std::size_t max_blocks_per_sm = 8;
  std::size_t registers_per_sm = 16384;   // GT200 (G92: 8192)
  std::size_t register_allocation_unit = 512;
  std::size_t shared_allocation_unit = 512;
};

SmLimits sm_limits_for(const DeviceSpec& spec);

OccupancyResult compute_occupancy(const DeviceSpec& spec,
                                  const KernelResources& kernel);

}  // namespace extnc::simgpu
