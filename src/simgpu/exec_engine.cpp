#include "simgpu/exec_engine.h"

#include <atomic>
#include <charconv>
#include <cstdlib>
#include <mutex>
#include <string_view>
#include <thread>

namespace extnc::simgpu {

const char* engine_name(ExecEngine engine) {
  switch (engine) {
    case ExecEngine::kAuto: return "auto";
    case ExecEngine::kSerial: return "serial";
    case ExecEngine::kParallel: return "parallel";
  }
  return "?";
}

std::optional<ExecEngine> parse_engine(std::string_view text) {
  if (text == "auto") return ExecEngine::kAuto;
  if (text == "serial") return ExecEngine::kSerial;
  if (text == "parallel") return ExecEngine::kParallel;
  return std::nullopt;
}

ExecEngine engine_from_env() {
  const char* value = std::getenv("EXTNC_SIMGPU_ENGINE");
  if (value == nullptr) return ExecEngine::kAuto;
  return parse_engine(value).value_or(ExecEngine::kAuto);
}

std::size_t threads_from_env() {
  const char* value = std::getenv("EXTNC_SIMGPU_THREADS");
  if (value == nullptr) return 0;
  std::string_view text(value);
  std::size_t threads = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), threads);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return 0;
  return threads;
}

bool fast_from_env() {
  const char* value = std::getenv("EXTNC_SIMGPU_FAST");
  if (value == nullptr) return true;
  return std::string_view(value) != "0";
}

namespace {

std::atomic<ExecEngine>& default_engine_slot() {
  static std::atomic<ExecEngine> slot(engine_from_env());
  return slot;
}

std::atomic<bool>& fast_path_slot() {
  static std::atomic<bool> slot(fast_from_env());
  return slot;
}

}  // namespace

ExecEngine default_engine() {
  return default_engine_slot().load(std::memory_order_relaxed);
}

void set_default_engine(ExecEngine engine) {
  default_engine_slot().store(engine, std::memory_order_relaxed);
}

ThreadPool& engine_pool() {
  static ThreadPool pool(threads_from_env());
  return pool;
}

bool fast_path_enabled() {
  return fast_path_slot().load(std::memory_order_relaxed);
}

void set_fast_path_enabled(bool enabled) {
  fast_path_slot().store(enabled, std::memory_order_relaxed);
}

}  // namespace extnc::simgpu
