#include "simgpu/device_spec.h"

namespace extnc::simgpu {

const DeviceSpec& gtx280() {
  static constexpr DeviceSpec spec{
      .name = "GTX 280",
      .num_sms = 30,
      .cores_per_sm = 8,
      .core_clock_hz = 1.458e9,
      .mem_bandwidth_bytes_per_s = 141.7e9,
      .shared_mem_per_sm = 16 * 1024,
      .shared_banks = 16,
      .shared_cycles_per_access = 2,
      .warp_size = 32,
      .half_warp = 16,
      .max_threads_per_block = 512,
      .global_mem_bytes = 1024ull * 1024 * 1024,
      .has_shared_atomics = true,
      .sms_per_texture_cache = 3,
      .texture_cache_bytes = 8 * 1024,
      .texture_cache_line_bytes = 32,
      .coalesce_segment_bytes = 64,
  };
  return spec;
}

const DeviceSpec& geforce_8800gt() {
  static constexpr DeviceSpec spec{
      .name = "8800 GT",
      .num_sms = 14,
      .cores_per_sm = 8,
      .core_clock_hz = 1.5e9,
      .mem_bandwidth_bytes_per_s = 57.6e9,
      .shared_mem_per_sm = 16 * 1024,
      .shared_banks = 16,
      .shared_cycles_per_access = 2,
      .warp_size = 32,
      .half_warp = 16,
      .max_threads_per_block = 512,
      .global_mem_bytes = 512ull * 1024 * 1024,
      .has_shared_atomics = false,
      .sms_per_texture_cache = 2,
      .texture_cache_bytes = 8 * 1024,
      .texture_cache_line_bytes = 32,
      .coalesce_segment_bytes = 64,
  };
  return spec;
}

const DeviceSpec& hypothetical_64bit() {
  // GTX 280 with 64-bit integer datapaths: the loop-based kernel would do
  // byte-by-8-byte multiplies, halving its per-byte instruction count.
  // Everything else unchanged.
  static constexpr DeviceSpec spec{
      .name = "hypothetical 64-bit GPU",
      .num_sms = 30,
      .cores_per_sm = 8,
      .core_clock_hz = 1.458e9,
      .mem_bandwidth_bytes_per_s = 141.7e9,
      .shared_mem_per_sm = 32 * 1024,
      .shared_banks = 16,
      .shared_cycles_per_access = 2,
      .warp_size = 32,
      .half_warp = 16,
      .max_threads_per_block = 512,
      .global_mem_bytes = 2048ull * 1024 * 1024,
      .has_shared_atomics = true,
      .sms_per_texture_cache = 3,
      .texture_cache_bytes = 8 * 1024,
      .texture_cache_line_bytes = 32,
      .coalesce_segment_bytes = 64,
  };
  return spec;
}

}  // namespace extnc::simgpu
