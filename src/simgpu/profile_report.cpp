#include "simgpu/profile_report.h"

#include "util/table_printer.h"

namespace extnc::simgpu {

const char* bottleneck_bound(double compute_s, double memory_s,
                             double launch_s) {
  if (launch_s >= compute_s && launch_s >= memory_s) return "launch";
  return compute_s >= memory_s ? "compute" : "memory";
}

void print_bottleneck_report(const Profiler& profiler, std::FILE* out,
                             bool csv) {
  const double total_s = profiler.total_seconds();
  if (!csv) {
    std::fprintf(out,
                 "Kernel bottleneck report: %zu launches, %.3f ms modeled\n\n",
                 profiler.launch_count(), total_s * 1e3);
  }
  TablePrinter table({"kernel", "launches", "total ms", "% of run", "bound",
                      "compute ms", "memory ms", "launch ms", "occupancy",
                      "conflict cycles/launch", "conflict degree",
                      "tex hit %"});
  for (const Profiler::LabelSummary& s : profiler.by_label()) {
    const double share = total_s > 0 ? 100.0 * s.total_s / total_s : 0.0;
    // Occupancy of the label's most recent geometry (merge keeps the last
    // launch's blocks/threads, which is what all launches of one label
    // share in practice).
    const double occupancy =
        profiler.launches().empty()
            ? 0.0
            : [&] {
                for (auto it = profiler.launches().rbegin();
                     it != profiler.launches().rend(); ++it) {
                  if (it->label == s.label) return it->time.occupancy;
                }
                return 0.0;
              }();
    table.add_row(
        {s.label, std::to_string(s.launches),
         TablePrinter::num(s.total_s * 1e3, 3),
         TablePrinter::num(share, 1) + "%",
         bottleneck_bound(s.compute_s, s.memory_s, s.launch_s),
         TablePrinter::num(s.compute_s * 1e3, 3),
         TablePrinter::num(s.memory_s * 1e3, 3),
         TablePrinter::num(s.launch_s * 1e3, 3),
         TablePrinter::num(occupancy, 2),
         TablePrinter::num(s.serialized_cycles_per_launch(), 0),
         TablePrinter::num(s.metrics.shared_conflict_degree(), 2),
         TablePrinter::num(100.0 * s.metrics.texture_hit_rate(), 1)});
  }
  if (csv) {
    table.print_csv(out);
  } else {
    table.print(out);
  }
}

}  // namespace extnc::simgpu
