#include "simgpu/checker.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/assert.h"
#include "util/metrics_registry.h"

namespace extnc::simgpu {

namespace {

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

const char* check_kind_name(CheckKind kind) {
  switch (kind) {
    case CheckKind::kSharedWriteWrite:
      return "shared_write_write";
    case CheckKind::kSharedReadWrite:
      return "shared_read_write";
    case CheckKind::kSharedOob:
      return "shared_oob";
    case CheckKind::kSharedMisaligned:
      return "shared_misaligned";
    case CheckKind::kGlobalOob:
      return "global_oob";
    case CheckKind::kGlobalMisaligned:
      return "global_misaligned";
    case CheckKind::kBarrierDivergence:
      return "barrier_divergence";
    case CheckKind::kStaleSharedRead:
      return "stale_shared_read";
    case CheckKind::kBankConflictLint:
      return "bank_conflict";
    case CheckKind::kUncoalescedLint:
      return "uncoalesced";
  }
  return "unknown";
}

bool check_kind_advisory(CheckKind kind) {
  return kind == CheckKind::kBankConflictLint ||
         kind == CheckKind::kUncoalescedLint;
}

// ------------------------------------------------------------ CheckFinding

std::string CheckFinding::to_string() const {
  std::string out = check_kind_advisory(kind) ? "advisory " : "error ";
  out += check_kind_name(kind);
  out += " [";
  out += label.empty() ? "<unlabeled>" : label;
  append_fmt(out, "] block=%zu segment=%" PRIu64, block, segment);
  switch (kind) {
    case CheckKind::kSharedWriteWrite:
    case CheckKind::kSharedReadWrite:
      append_fmt(out, " offset=%" PRIu64 " lane=%zu vs lane=%zu", address,
                 lane, other_lane);
      break;
    case CheckKind::kSharedOob:
    case CheckKind::kSharedMisaligned:
      append_fmt(out, " offset=%" PRIu64 " size=%zu lane=%zu", address, size,
                 lane);
      break;
    case CheckKind::kGlobalOob:
    case CheckKind::kGlobalMisaligned:
      append_fmt(out, " addr=0x%" PRIx64 " size=%zu lane=%zu", address, size,
                 lane);
      break;
    case CheckKind::kBarrierDivergence:
      append_fmt(out, " undeclared partial count=%" PRIu64, value);
      break;
    case CheckKind::kStaleSharedRead:
      append_fmt(out, " offset=%" PRIu64 " lane=%zu", address, lane);
      break;
    case CheckKind::kBankConflictLint:
      append_fmt(out, " seq=%" PRIu64 " half-warp at lane=%zu degree=%" PRIu64,
                 address, lane, value);
      break;
    case CheckKind::kUncoalescedLint:
      append_fmt(out,
                 " seq=%" PRIu64 " half-warp at lane=%zu transactions=%" PRIu64,
                 address, lane, value);
      break;
  }
  return out;
}

// ------------------------------------------------------------- CheckReport

std::uint64_t CheckReport::errors() const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < kCheckKindCount; ++i) {
    if (!check_kind_advisory(static_cast<CheckKind>(i))) sum += counts[i];
  }
  return sum;
}

std::uint64_t CheckReport::advisories() const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < kCheckKindCount; ++i) {
    if (check_kind_advisory(static_cast<CheckKind>(i))) sum += counts[i];
  }
  return sum;
}

void CheckReport::merge(const CheckReport& other, std::size_t max_findings) {
  for (std::size_t i = 0; i < kCheckKindCount; ++i) {
    counts[i] += other.counts[i];
  }
  checked_launches += other.checked_launches;
  for (const CheckFinding& finding : other.findings) {
    if (findings.size() >= max_findings) break;
    findings.push_back(finding);
  }
}

std::string CheckReport::to_string(std::size_t max_findings) const {
  std::string out;
  append_fmt(out,
             "%" PRIu64 " error(s), %" PRIu64 " advisory(ies) over %" PRIu64
             " checked launch(es)",
             errors(), advisories(), checked_launches);
  for (std::size_t i = 0; i < kCheckKindCount; ++i) {
    if (counts[i] == 0) continue;
    append_fmt(out, "\n  %-20s %" PRIu64,
               check_kind_name(static_cast<CheckKind>(i)), counts[i]);
  }
  const std::size_t shown = std::min(max_findings, findings.size());
  for (std::size_t i = 0; i < shown; ++i) {
    out += "\n  ";
    out += findings[i].to_string();
  }
  if (findings.size() > shown) {
    append_fmt(out, "\n  ... %zu more finding(s)", findings.size() - shown);
  }
  return out;
}

// -------------------------------------------------------------- CheckError

namespace {

std::string check_error_message(const CheckReport& report) {
  std::string out = "simgpu checker: ";
  append_fmt(out, "%" PRIu64 " error finding(s)", report.errors());
  for (const CheckFinding& finding : report.findings) {
    if (check_kind_advisory(finding.kind)) continue;
    out += ": ";
    out += finding.to_string();
    break;
  }
  return out;
}

}  // namespace

CheckError::CheckError(CheckReport report)
    : std::runtime_error(check_error_message(report)),
      report_(std::make_shared<const CheckReport>(std::move(report))) {}

// ----------------------------------------------------------------- Checker

void Checker::watch_global(const void* base, std::size_t size,
                           std::string name) {
  if (base == nullptr || size == 0) return;
  const auto addr = reinterpret_cast<std::uintptr_t>(base);
  unwatch_global(base);
  GlobalRegion region{addr, size, std::move(name)};
  const auto it = std::lower_bound(
      regions_.begin(), regions_.end(), addr,
      [](const GlobalRegion& r, std::uintptr_t a) { return r.base < a; });
  regions_.insert(it, std::move(region));
}

void Checker::unwatch_global(const void* base) {
  const auto addr = reinterpret_cast<std::uintptr_t>(base);
  std::erase_if(regions_,
                [addr](const GlobalRegion& r) { return r.base == addr; });
}

void Checker::clear_globals() { regions_.clear(); }

bool Checker::contains_global(std::uintptr_t addr, std::size_t size) const {
  // First region with base > addr; the candidate is its predecessor.
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), addr,
      [](std::uintptr_t a, const GlobalRegion& r) { return a < r.base; });
  if (it == regions_.begin()) return false;
  const GlobalRegion& region = *std::prev(it);
  return addr - region.base + size <= region.size;
}

Checker::ScopedWatch::ScopedWatch(Checker* checker, const void* base,
                                  std::size_t size, std::string name)
    : checker_(checker), base_(base) {
  if (checker_ != nullptr) {
    checker_->watch_global(base, size, std::move(name));
  }
}

Checker::ScopedWatch::ScopedWatch(ScopedWatch&& other) noexcept
    : checker_(other.checker_), base_(other.base_) {
  other.checker_ = nullptr;
}

Checker::ScopedWatch& Checker::ScopedWatch::operator=(
    ScopedWatch&& other) noexcept {
  if (this == &other) return *this;
  if (checker_ != nullptr) checker_->unwatch_global(base_);
  checker_ = other.checker_;
  base_ = other.base_;
  other.checker_ = nullptr;
  return *this;
}

Checker::ScopedWatch::~ScopedWatch() {
  if (checker_ != nullptr) checker_->unwatch_global(base_);
}

void Checker::reset() {
  std::lock_guard lock(mutex_);
  report_ = CheckReport{};
}

bool Checker::absorb(const CheckReport& launch_report) {
  metrics::count("simgpu.check.launches");
  for (std::size_t i = 0; i < kCheckKindCount; ++i) {
    if (launch_report.counts[i] == 0) continue;
    metrics::count(std::string("simgpu.check.") +
                       check_kind_name(static_cast<CheckKind>(i)),
                   static_cast<double>(launch_report.counts[i]));
  }
  std::lock_guard lock(mutex_);
  report_.merge(launch_report, config_.max_findings_total);
  return config_.mode == CheckConfig::Mode::kThrow &&
         launch_report.errors() > 0;
}

std::optional<CheckConfig::Mode> env_check_mode() {
  const char* value = std::getenv("EXTNC_SIMGPU_CHECK");
  if (value == nullptr) return std::nullopt;
  if (std::strcmp(value, "") == 0 || std::strcmp(value, "0") == 0 ||
      std::strcmp(value, "off") == 0) {
    return std::nullopt;
  }
  if (std::strcmp(value, "collect") == 0) return CheckConfig::Mode::kCollect;
  // "1" / "on" / "throw" (and anything else non-off: fail loudly rather
  // than silently skipping the checking the user asked for).
  return CheckConfig::Mode::kThrow;
}

// --------------------------------------------------------- BlockCheckState

void BlockCheckState::attach(const Checker& checker,
                             std::size_t threads_per_block,
                             std::vector<std::size_t> declared_partials,
                             std::size_t half_warp, std::size_t shared_size,
                             std::string_view label) {
  checker_ = &checker;
  threads_per_block_ = threads_per_block;
  declared_partials_ = std::move(declared_partials);
  half_warp_ = std::max<std::size_t>(1, half_warp);
  shared_size_ = shared_size;
  label_ = std::string(label);
  touch_stamp_.assign(shared_size, 0);
  writer_.assign(shared_size, 0);
  reader_.assign(shared_size, 0);
  seg_flags_.assign(shared_size, 0);
  block_flags_.assign(shared_size, 0);
  stamp_ = 0;
}

void BlockCheckState::begin_block(std::size_t block, BlockCheckSink* sink) {
  block_ = block;
  sink_ = sink;
  segment_ = 0;
  ++stamp_;  // invalidates all per-segment byte state at once
  std::memset(block_flags_.data(), 0, block_flags_.size());
  reported_partials_.clear();
  lint_seen_.clear();
}

void BlockCheckState::record(CheckFinding finding) {
  EXTNC_DASSERT(sink_ != nullptr);
  sink_->counts[static_cast<std::size_t>(finding.kind)] += 1;
  if (sink_->findings.size() >=
      checker_->config().max_findings_per_launch) {
    return;
  }
  finding.label = label_;
  finding.block = block_;
  finding.segment = segment_;
  sink_->findings.push_back(std::move(finding));
}

void BlockCheckState::count_only(CheckKind kind) {
  sink_->counts[static_cast<std::size_t>(kind)] += 1;
}

bool BlockCheckState::on_shared(std::size_t lane, std::size_t offset,
                                std::size_t size, bool is_write,
                                bool is_atomic) {
  if (size > shared_size_ || offset > shared_size_ - size) {
    record({.kind = CheckKind::kSharedOob,
            .lane = lane,
            .address = offset,
            .size = size});
    return false;  // suppress: the scratchpad has no byte to touch
  }
  if (size == 4 && offset % 4 != 0) {
    record({.kind = CheckKind::kSharedMisaligned,
            .lane = lane,
            .address = offset,
            .size = size});
  }
  const auto me = static_cast<std::uint16_t>(lane + 1);
  for (std::size_t i = offset; i < offset + size; ++i) {
    if (touch_stamp_[i] != stamp_) {
      touch_stamp_[i] = stamp_;
      writer_[i] = 0;
      reader_[i] = 0;
      seg_flags_[i] = 0;
    }
    // The read half (plain loads and the read side of an atomic RMW):
    // hazard against a different lane's earlier plain write, stale if the
    // byte was never produced this block.
    const bool reads = !is_write || is_atomic;
    if (reads) {
      if (!(block_flags_[i] & kWritten)) {
        if (block_flags_[i] & kStaleSeen) {
          count_only(CheckKind::kStaleSharedRead);
        } else {
          block_flags_[i] |= kStaleSeen;
          record({.kind = CheckKind::kStaleSharedRead,
                  .lane = lane,
                  .address = i});
        }
      }
      const std::uint16_t w = writer_[i];
      const bool exempt = is_atomic && (seg_flags_[i] & kAtomicWriter);
      if (w != 0 && w != me && !exempt) {
        if (seg_flags_[i] & kHazardSeen) {
          count_only(CheckKind::kSharedReadWrite);
        } else {
          seg_flags_[i] |= kHazardSeen;
          record({.kind = CheckKind::kSharedReadWrite,
                  .lane = lane,
                  .other_lane = static_cast<std::size_t>(w - 1),
                  .address = i});
        }
      }
    }
    if (is_write) {
      const std::uint16_t w = writer_[i];
      const std::uint16_t r = reader_[i];
      const bool atomic_pair = is_atomic && (seg_flags_[i] & kAtomicWriter);
      CheckKind hazard = CheckKind::kSharedWriteWrite;
      std::uint16_t other = 0;
      if (w != 0 && w != me && !atomic_pair) {
        other = w;
      } else if (r != 0 && r != me && !is_atomic) {
        // An earlier plain read raced with this write. (The atomic case
        // was already reported above via the RMW's read half.)
        hazard = CheckKind::kSharedReadWrite;
        other = r;
      }
      if (other != 0) {
        if (seg_flags_[i] & kHazardSeen) {
          count_only(hazard);
        } else {
          seg_flags_[i] |= kHazardSeen;
          record({.kind = hazard,
                  .lane = lane,
                  .other_lane = static_cast<std::size_t>(other - 1),
                  .address = i});
        }
      }
      writer_[i] = me;
      if (is_atomic) {
        seg_flags_[i] |= kAtomicWriter;
      } else {
        seg_flags_[i] =
            static_cast<std::uint8_t>(seg_flags_[i] & ~kAtomicWriter);
      }
      block_flags_[i] |= kWritten;
    } else {
      reader_[i] = me;
    }
  }
  return true;
}

bool BlockCheckState::on_global(std::size_t lane, std::uintptr_t addr,
                                std::size_t size) {
  if (size == 4 && addr % 4 != 0) {
    record({.kind = CheckKind::kGlobalMisaligned,
            .lane = lane,
            .address = addr,
            .size = size});
  }
  if (checker_->has_globals() && !checker_->contains_global(addr, size)) {
    record({.kind = CheckKind::kGlobalOob,
            .lane = lane,
            .address = addr,
            .size = size});
    return false;
  }
  return true;
}

void BlockCheckState::on_partial_step(std::size_t count) {
  if (count == threads_per_block_) return;
  for (const std::size_t declared : declared_partials_) {
    if (count == declared) return;
  }
  for (const std::size_t reported : reported_partials_) {
    if (count == reported) {
      count_only(CheckKind::kBarrierDivergence);
      return;
    }
  }
  reported_partials_.push_back(count);
  record({.kind = CheckKind::kBarrierDivergence, .value = count});
}

void BlockCheckState::on_barrier() {
  ++segment_;
  ++stamp_;
}

void BlockCheckState::on_shared_group(std::size_t half_warp,
                                      std::uint32_t seq,
                                      std::uint64_t degree) {
  const CheckConfig& config = checker_->config();
  if (!config.perf_lints || degree < config.bank_conflict_threshold) return;
  // Dedup per (segment, instruction site): a hot site fires once per
  // half-warp per barrier segment, which would flood the findings list.
  const std::uint64_t key = (segment_ << 32) ^ seq;
  if (!lint_seen_.insert(key * 2).second) {
    count_only(CheckKind::kBankConflictLint);
    return;
  }
  record({.kind = CheckKind::kBankConflictLint,
          .lane = half_warp * half_warp_,
          .address = seq,
          .value = degree});
}

void BlockCheckState::on_global_group(std::size_t half_warp,
                                      std::uint32_t seq,
                                      std::uint32_t transactions) {
  const CheckConfig& config = checker_->config();
  if (!config.perf_lints || transactions < config.uncoalesced_threshold) {
    return;
  }
  const std::uint64_t key = (segment_ << 32) ^ seq;
  if (!lint_seen_.insert(key * 2 + 1).second) {
    count_only(CheckKind::kUncoalescedLint);
    return;
  }
  record({.kind = CheckKind::kUncoalescedLint,
          .lane = half_warp * half_warp_,
          .address = seq,
          .value = transactions});
}

}  // namespace extnc::simgpu
