// Counters accumulated by the functional executor while a kernel runs.
//
// The timing model turns these into seconds; tests assert on them directly
// (e.g. "the TB-5 exp-table layout must produce fewer bank-conflict cycles
// than the TB-1 layout" — the paper's Sec. 5.1.3 claim, measured rather
// than assumed).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace extnc::simgpu {

struct KernelMetrics {
  // Scalar-instruction work charged by kernels via ThreadCtx::count_alu,
  // stored exactly in tenths of an op ("deci-ops"). Every per-word /
  // per-byte / per-iteration cost in gpu/kernel_cost.h is a multiple of
  // 0.1, so quantizing each individual charge to deci-ops loses nothing —
  // and integer accumulation is associative, which is what lets the bulk
  // fast path charge `count * deciops(x)` and still match the interpreted
  // path's lane-at-a-time accumulation bit-for-bit.
  std::uint64_t alu_deciops = 0;

  // Quantize one charge exactly as count_alu does. Bulk accounting must
  // quantize per conceptual call and then multiply by the call count
  // (never quantize the product) to reproduce the interpreted total.
  static std::uint64_t deciops(double ops) {
    return static_cast<std::uint64_t>(std::llround(ops * 10.0));
  }

  double alu_ops() const { return static_cast<double>(alu_deciops) / 10.0; }
  void add_alu_ops(double ops) { alu_deciops += deciops(ops); }
  void set_alu_ops(double ops) { alu_deciops = deciops(ops); }

  // Global memory.
  std::uint64_t global_load_bytes = 0;
  std::uint64_t global_store_bytes = 0;
  // Memory transactions after warp-level coalescing (one per distinct
  // 64-byte segment touched by a warp access step). Broadcast loads (all
  // lanes hit the same address) count one transaction.
  std::uint64_t global_transactions = 0;

  // Shared memory: individual lane accesses and the serialized half-warp
  // access cycles they cost (conflict-free: cycles == events; a d-way
  // conflict costs d cycles for that event).
  std::uint64_t shared_accesses = 0;
  std::uint64_t shared_access_events = 0;   // half-warp access steps
  std::uint64_t shared_serialized_cycles = 0;  // sum of per-event degrees

  // Texture path.
  std::uint64_t texture_fetches = 0;
  std::uint64_t texture_misses = 0;

  std::uint64_t atomic_ops = 0;
  std::uint64_t barriers = 0;
  std::uint64_t kernel_launches = 0;

  // Launch geometry of the (last) launch; used for occupancy.
  std::size_t blocks = 0;
  std::size_t threads_per_block = 0;

  void merge(const KernelMetrics& other) {
    alu_deciops += other.alu_deciops;
    global_load_bytes += other.global_load_bytes;
    global_store_bytes += other.global_store_bytes;
    global_transactions += other.global_transactions;
    shared_accesses += other.shared_accesses;
    shared_access_events += other.shared_access_events;
    shared_serialized_cycles += other.shared_serialized_cycles;
    texture_fetches += other.texture_fetches;
    texture_misses += other.texture_misses;
    atomic_ops += other.atomic_ops;
    barriers += other.barriers;
    kernel_launches += other.kernel_launches;
    // Geometry is "of the last launch": merging a metrics object that never
    // launched must not wipe the recorded geometry with zeros.
    if (other.kernel_launches > 0) {
      blocks = other.blocks;
      threads_per_block = other.threads_per_block;
    }
  }

  // Average bank-conflict degree over all shared access events (1.0 means
  // conflict-free).
  double shared_conflict_degree() const {
    if (shared_access_events == 0) return 1.0;
    return static_cast<double>(shared_serialized_cycles) /
           static_cast<double>(shared_access_events);
  }

  double texture_hit_rate() const {
    if (texture_fetches == 0) return 1.0;
    return 1.0 - static_cast<double>(texture_misses) /
                     static_cast<double>(texture_fetches);
  }

  std::uint64_t global_bytes() const {
    return global_load_bytes + global_store_bytes;
  }
};

}  // namespace extnc::simgpu
