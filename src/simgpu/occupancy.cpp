#include "simgpu/occupancy.h"

#include <algorithm>
#include <cstring>

#include "util/assert.h"

namespace extnc::simgpu {

namespace {

std::size_t round_up(std::size_t value, std::size_t unit) {
  return (value + unit - 1) / unit * unit;
}

}  // namespace

SmLimits sm_limits_for(const DeviceSpec& spec) {
  SmLimits limits;
  if (std::strcmp(spec.name, "8800 GT") == 0) {
    // G92: smaller register file and thread budget than GT200.
    limits.max_threads_per_sm = 768;
    limits.registers_per_sm = 8192;
  }
  return limits;
}

OccupancyResult compute_occupancy(const DeviceSpec& spec,
                                  const KernelResources& kernel) {
  EXTNC_CHECK(kernel.threads_per_block >= 1);
  EXTNC_CHECK(kernel.threads_per_block <=
              static_cast<std::size_t>(spec.max_threads_per_block));
  const SmLimits limits = sm_limits_for(spec);

  OccupancyResult result;

  // Registers are allocated per block in fixed-size chunks.
  const std::size_t regs_per_block = round_up(
      kernel.registers_per_thread * kernel.threads_per_block,
      limits.register_allocation_unit);
  const std::size_t shared_per_block =
      round_up(std::max<std::size_t>(kernel.shared_bytes_per_block, 1),
               limits.shared_allocation_unit);

  const std::size_t by_threads =
      limits.max_threads_per_sm / kernel.threads_per_block;
  const std::size_t by_registers =
      regs_per_block == 0 ? limits.max_blocks_per_sm
                          : limits.registers_per_sm / regs_per_block;
  const std::size_t by_shared = spec.shared_mem_per_sm / shared_per_block;
  const std::size_t by_slots = limits.max_blocks_per_sm;

  result.blocks_per_sm =
      std::min({by_threads, by_registers, by_shared, by_slots});
  if (result.blocks_per_sm == by_threads) {
    result.limiter = OccupancyResult::Limiter::kThreads;
  }
  if (result.blocks_per_sm == by_slots) {
    result.limiter = OccupancyResult::Limiter::kBlockSlots;
  }
  if (result.blocks_per_sm == by_registers &&
      by_registers < std::min(by_threads, by_slots)) {
    result.limiter = OccupancyResult::Limiter::kRegisters;
  }
  if (result.blocks_per_sm == by_shared &&
      by_shared < std::min({by_threads, by_registers, by_slots})) {
    result.limiter = OccupancyResult::Limiter::kSharedMemory;
  }

  const std::size_t warp =
      static_cast<std::size_t>(spec.warp_size);
  const std::size_t warps_per_block =
      (kernel.threads_per_block + warp - 1) / warp;
  result.warps_per_sm = result.blocks_per_sm * warps_per_block;
  const double max_warps =
      static_cast<double>(limits.max_threads_per_sm) / spec.warp_size;
  result.occupancy =
      static_cast<double>(result.warps_per_sm) / max_warps;
  result.occupancy = std::min(result.occupancy, 1.0);
  return result;
}

}  // namespace extnc::simgpu
