#include "simgpu/timing.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "util/metrics_registry.h"

namespace extnc::simgpu {

double occupancy_factor(const DeviceSpec& spec, std::size_t blocks,
                        std::size_t threads_per_block,
                        const Calibration& calib) {
  const double sms_used =
      static_cast<double>(std::min<std::size_t>(blocks, spec.num_sms));
  if (sms_used == 0) return 0;
  // Blocks resident on one SM at a time (GT200 allows up to 8, bounded by
  // threads); extra blocks queue behind them and do not add latency hiding.
  const double blocks_per_sm = std::min(
      std::ceil(static_cast<double>(blocks) / sms_used),
      std::floor(1024.0 / static_cast<double>(threads_per_block)));
  const double warps =
      std::max(1.0, blocks_per_sm) *
      (static_cast<double>(threads_per_block) / spec.warp_size);
  // Squared ramp: latency hiding improves superlinearly with the first few
  // warps and saturates by ~8 (the table-based encode kernels'
  // one-block-per-SM geometry runs at ~0.9).
  const double w50 = calib.warps_at_half_utilization;
  return warps * warps / (warps * warps + w50 * w50);
}

TimeBreakdown estimate_time(const DeviceSpec& spec, const KernelMetrics& m,
                            const Calibration& calib) {
  TimeBreakdown t;
  const double sms_used = static_cast<double>(
      std::min<std::size_t>(std::max<std::size_t>(m.blocks, 1), spec.num_sms));

  t.occupancy =
      occupancy_factor(spec, std::max<std::size_t>(m.blocks, 1),
                       std::max<std::size_t>(m.threads_per_block, 1), calib);

  // SP issue slots: alu_ops spread over the SPs of the SMs actually used.
  const double issue_rate = sms_used * spec.cores_per_sm * spec.core_clock_hz *
                            calib.compute_efficiency * t.occupancy;
  const double issue_s = m.alu_ops() / issue_rate;

  // Excess shared-memory serialization: conflict cycles beyond the one
  // slot per access already charged. Each serialized cycle stalls a whole
  // SM (8 SP slots) for spec.shared_cycles_per_access cycles.
  const double conflict_cycles =
      static_cast<double>(m.shared_serialized_cycles -
                          std::min(m.shared_serialized_cycles,
                                   m.shared_access_events)) *
      spec.shared_cycles_per_access;
  const double shared_s = conflict_cycles * spec.cores_per_sm /
                          issue_rate;  // cycles -> equivalent issue slots

  t.compute_s = issue_s + shared_s;

  // Memory: transactions stream at bandwidth with a minimum granule;
  // texture misses are extra line fills.
  const double transaction_bytes =
      static_cast<double>(m.global_transactions) * calib.min_transaction_bytes;
  const double demand_bytes = static_cast<double>(m.global_bytes());
  const double texture_bytes = static_cast<double>(m.texture_misses) *
                               static_cast<double>(spec.texture_cache_line_bytes);
  t.memory_s = (std::max(transaction_bytes, demand_bytes) + texture_bytes) /
               spec.mem_bandwidth_bytes_per_s;

  t.launch_s =
      static_cast<double>(std::max<std::uint64_t>(m.kernel_launches, 1)) *
      calib.launch_overhead_s;
  // Longest per-SM barrier chain (blocks sync independently in parallel).
  const double barrier_chain =
      static_cast<double>(m.barriers) /
      static_cast<double>(std::max<std::size_t>(m.blocks, 1));
  t.launch_s += barrier_chain * calib.barrier_latency_s;

  t.total_s = std::max(t.compute_s, t.memory_s) + t.launch_s;
  return t;
}

namespace {

// Every input field estimate_time/occupancy_factor read, flattened to raw
// bits. Fields the model never reads (texture_fetches, shared_accesses,
// atomic_ops, spec name, ...) are deliberately excluded: launches that
// differ only there produce the same breakdown, so excluding them raises
// the hit rate without risking a wrong hit.
struct MemoKey {
  std::array<std::uint64_t, 23> v;
  bool operator==(const MemoKey& other) const { return v == other.v; }
};

struct MemoKeyHash {
  std::size_t operator()(const MemoKey& key) const {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a
    for (std::uint64_t word : key.v) {
      h ^= word;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

std::uint64_t bits(double d) {
  std::uint64_t out;
  std::memcpy(&out, &d, sizeof(out));
  return out;
}

MemoKey memo_key(const DeviceSpec& spec, const KernelMetrics& m,
                 const Calibration& calib) {
  return MemoKey{{
      static_cast<std::uint64_t>(spec.num_sms),
      static_cast<std::uint64_t>(spec.cores_per_sm),
      bits(spec.core_clock_hz),
      bits(spec.mem_bandwidth_bytes_per_s),
      static_cast<std::uint64_t>(spec.shared_cycles_per_access),
      static_cast<std::uint64_t>(spec.warp_size),
      static_cast<std::uint64_t>(spec.texture_cache_line_bytes),
      bits(calib.compute_efficiency),
      bits(calib.launch_overhead_s),
      bits(calib.warps_at_half_utilization),
      bits(calib.min_transaction_bytes),
      bits(calib.barrier_latency_s),
      m.alu_deciops,
      m.global_load_bytes,
      m.global_store_bytes,
      m.global_transactions,
      m.shared_access_events,
      m.shared_serialized_cycles,
      m.texture_misses,
      m.barriers,
      m.kernel_launches,
      static_cast<std::uint64_t>(m.blocks),
      static_cast<std::uint64_t>(m.threads_per_block),
  }};
}

// Bounded: cleared wholesale when full. Fleet runs cycle through a small
// set of launch shapes, so 4096 distinct keys is generous; clearing (vs
// LRU) keeps the hot path to one hash lookup.
constexpr std::size_t kMemoCapacity = 4096;

std::mutex memo_mutex;

std::unordered_map<MemoKey, TimeBreakdown, MemoKeyHash>& memo_cache() {
  static auto* cache =
      new std::unordered_map<MemoKey, TimeBreakdown, MemoKeyHash>();
  return *cache;
}

}  // namespace

TimeBreakdown estimate_time_cached(const DeviceSpec& spec,
                                   const KernelMetrics& m,
                                   const Calibration& calib) {
  const MemoKey key = memo_key(spec, m, calib);
  {
    std::lock_guard lock(memo_mutex);
    auto& cache = memo_cache();
    if (auto it = cache.find(key); it != cache.end()) {
      metrics::count("simgpu.timing.memo_hit");
      return it->second;
    }
  }
  // Compute outside the lock; estimate_time is pure, so a racing insert of
  // the same key writes the same value.
  const TimeBreakdown t = estimate_time(spec, m, calib);
  {
    std::lock_guard lock(memo_mutex);
    auto& cache = memo_cache();
    if (cache.size() >= kMemoCapacity) cache.clear();
    cache.emplace(key, t);
  }
  metrics::count("simgpu.timing.memo_miss");
  return t;
}

void clear_timing_memo() {
  std::lock_guard lock(memo_mutex);
  memo_cache().clear();
}

}  // namespace extnc::simgpu
