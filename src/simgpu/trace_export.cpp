#include "simgpu/trace_export.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace extnc::simgpu {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[160];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

void append_event(std::string& out, const LaunchProfile& launch) {
  out += "    {\"name\": ";
  append_escaped(out, launch.label);
  out += ", \"cat\": \"kernel\", \"ph\": \"X\"";
  // Times in microseconds, the unit chrome://tracing expects.
  append_fmt(out, ", \"ts\": %.4f, \"dur\": %.4f", launch.start_s * 1e6,
             (launch.end_s - launch.start_s) * 1e6);
  out += ", \"pid\": 0, \"tid\": 0, \"args\": {";
  append_fmt(out, "\"blocks\": %zu, \"threads_per_block\": %zu",
             launch.blocks, launch.threads_per_block);
  append_fmt(out, ", \"alu_ops\": %.1f", launch.metrics.alu_ops());
  append_fmt(out, ", \"global_load_bytes\": %" PRIu64,
             launch.metrics.global_load_bytes);
  append_fmt(out, ", \"global_store_bytes\": %" PRIu64,
             launch.metrics.global_store_bytes);
  append_fmt(out, ", \"global_transactions\": %" PRIu64,
             launch.metrics.global_transactions);
  append_fmt(out, ", \"shared_accesses\": %" PRIu64,
             launch.metrics.shared_accesses);
  append_fmt(out, ", \"shared_access_events\": %" PRIu64,
             launch.metrics.shared_access_events);
  append_fmt(out, ", \"shared_serialized_cycles\": %" PRIu64,
             launch.metrics.shared_serialized_cycles);
  append_fmt(out, ", \"shared_conflict_degree\": %.4f",
             launch.metrics.shared_conflict_degree());
  append_fmt(out, ", \"texture_fetches\": %" PRIu64,
             launch.metrics.texture_fetches);
  append_fmt(out, ", \"texture_hit_rate\": %.4f",
             launch.metrics.texture_hit_rate());
  append_fmt(out, ", \"barriers\": %" PRIu64, launch.metrics.barriers);
  append_fmt(out, ", \"occupancy\": %.4f", launch.time.occupancy);
  append_fmt(out, ", \"compute_us\": %.4f", launch.time.compute_s * 1e6);
  append_fmt(out, ", \"memory_us\": %.4f", launch.time.memory_s * 1e6);
  append_fmt(out, ", \"launch_us\": %.4f", launch.time.launch_s * 1e6);
  // Only checked launches carry the field, so unchecked traces (and the
  // golden file) are byte-stable.
  if (launch.check_findings > 0) {
    append_fmt(out, ", \"check_findings\": %" PRIu64, launch.check_findings);
  }
  out += "}}";
}

}  // namespace

std::string to_chrome_trace(const Profiler& profiler,
                            const TraceOptions& options) {
  std::string out;
  out += "{\n  \"traceEvents\": [\n";

  const std::string device = profiler.launches().empty()
                                 ? std::string("simgpu")
                                 : profiler.launches().front().device;
  out += "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
         "\"args\": {\"name\": ";
  append_escaped(out, "simgpu " + device);
  out += "}},\n";
  out += "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
         "\"tid\": 0, \"args\": {\"name\": \"kernel launches\"}}";

  for (const LaunchProfile& launch : profiler.launches()) {
    out += ",\n";
    append_event(out, launch);
  }
  out += "\n  ],\n  \"displayTimeUnit\": \"ms\"";

  if (!options.metadata.empty()) {
    out += ",\n  \"otherData\": {";
    bool first = true;
    for (const auto& [key, value] : options.metadata) {
      if (!first) out += ", ";
      first = false;
      append_escaped(out, key);
      out += ": ";
      append_escaped(out, value);
    }
    out += "}";
  }
  out += "\n}\n";
  return out;
}

bool write_chrome_trace(const Profiler& profiler, const std::string& path,
                        std::string* error, const TraceOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  const std::string json = to_chrome_trace(profiler, options);
  const bool wrote = std::fwrite(json.data(), 1, json.size(), f) ==
                     json.size();
  const bool closed = std::fclose(f) == 0;
  if (!(wrote && closed)) {
    if (error != nullptr) *error = "short write to '" + path + "'";
    return false;
  }
  return true;
}

}  // namespace extnc::simgpu
