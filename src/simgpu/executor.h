// Functional CUDA-like executor with memory-system accounting.
//
// Kernels are written against a BlockCtx and executed bit-exactly on the
// host. The execution model is "barrier-segmented": BlockCtx::step runs a
// callable for every thread of the block in lane order, and the boundary
// between two steps is a __syncthreads(). This keeps each block
// deterministic and single-threaded while preserving exactly the
// synchronization structure the paper's kernels have (per-block barriers
// only — CUDA has no global barrier, which is what forces the decoder's
// task-partitioning scheme in Sec. 4.2.2). Blocks of one launch never
// share state, so the launcher may run them serially or across host
// worker threads with bit-identical results (exec_engine.h).
//
// Every memory access goes through ThreadCtx, which aggregates accesses at
// half-warp granularity (16 lanes, the GT200 coalescing/bank-conflict
// unit):
//  * global accesses are grouped by access sequence number and counted as
//    one transaction per distinct 64-byte segment the half-warp touches —
//    a broadcast (all lanes, same address) is one transaction, a fully
//    coalesced sweep is four;
//  * shared accesses are resolved into bank conflicts: an access step
//    costs max-over-banks(distinct 32-bit words addressed in that bank)
//    serialized cycles, so a layout change (e.g. the TB-5 replicated exp
//    tables) shows up in the metrics with no model changes;
//  * texture fetches run through a direct-mapped cache model.
//
// Aggregation by sequence number assumes lanes of a half-warp execute the
// same access sequence, which holds for all kernels in this library
// (divergent kernels would see slightly misattributed grouping, never
// wrong functional results).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "simgpu/checker.h"
#include "simgpu/device_spec.h"
#include "simgpu/exec_engine.h"
#include "simgpu/metrics.h"
#include "util/aligned_buffer.h"
#include "util/assert.h"

namespace extnc::simgpu {

// Per-launch sanitizer toggle; kDefault means "checked iff a Checker is
// attached to the Launcher or EXTNC_SIMGPU_CHECK enables one".
enum class CheckToggle { kDefault, kOff, kOn };

// The kernel's declared execution shape, consumed by the sanitizer: every
// lane count a step_partial may legitimately use (full steps are always
// legitimate). A checked launch flags any other partial width as barrier
// divergence.
struct LaunchShape {
  std::vector<std::size_t> partial_counts;
};

struct LaunchConfig {
  std::size_t blocks = 1;
  std::size_t threads_per_block = 256;
  // Per-launch engine override; kAuto defers to the process default (see
  // exec_engine.h for the full selection order).
  ExecEngine engine = ExecEngine::kAuto;
  // Kernel sanitizer (simgpu/checker.h): opt-in/out and declared shape.
  CheckToggle check = CheckToggle::kDefault;
  LaunchShape shape;
};

// Per-block scratchpad (the 16 KB on-chip shared memory of one SM).
class SharedMemory {
 public:
  explicit SharedMemory(std::size_t size) : storage_(size) {}

  std::size_t size() const { return storage_.size(); }
  std::uint8_t* data() { return storage_.data(); }

  // True when [offset, offset+size) lies inside the scratchpad. Every
  // accessor routes through this one bounds predicate, and enforces it
  // with EXTNC_CHECK — in release builds too: an OOB shared access is
  // kernel corruption, never a hot-path cost worth compiling out. (The
  // sanitizer uses the same predicate to *report* instead of abort.)
  bool contains(std::size_t offset, std::size_t size) const {
    return size <= storage_.size() && offset <= storage_.size() - size;
  }

  std::uint8_t read_u8(std::size_t offset) const {
    EXTNC_CHECK(contains(offset, 1));
    return storage_[offset];
  }
  void write_u8(std::size_t offset, std::uint8_t value) {
    EXTNC_CHECK(contains(offset, 1));
    storage_[offset] = value;
  }
  std::uint32_t read_u32(std::size_t offset) const {
    EXTNC_CHECK(contains(offset, 4));
    std::uint32_t v;
    std::memcpy(&v, storage_.data() + offset, 4);
    return v;
  }
  void write_u32(std::size_t offset, std::uint32_t value) {
    EXTNC_CHECK(contains(offset, 4));
    std::memcpy(storage_.data() + offset, &value, 4);
  }

 private:
  AlignedBuffer storage_;
};

// Direct-mapped read-only texture cache model.
class TextureCache {
 public:
  TextureCache(std::size_t cache_bytes, std::size_t line_bytes);

  // Returns true on hit; records the line on miss.
  bool access(std::uintptr_t address);
  // Non-mutating residency probe: would `access` hit right now? Used by
  // closed-form texture accounting (static models / fast-path lowerings)
  // to seed a residency window without perturbing the cache.
  bool resident(std::uintptr_t address) const;
  void invalidate();

  std::size_t num_lines() const { return num_lines_; }
  std::size_t line_bytes() const { return line_bytes_; }

 private:
  std::size_t num_lines_;
  std::size_t line_bytes_;
  std::vector<std::uintptr_t> tags_;  // 0 == empty
};

class BlockCtx;

// Handle through which kernel code touches memory; one per logical thread.
class ThreadCtx {
 public:
  std::size_t lane() const { return lane_; }
  std::size_t block_index() const;
  std::size_t threads_per_block() const;
  std::size_t global_index() const;

  // --- global memory ----------------------------------------------------
  std::uint8_t gload_u8(const std::uint8_t* p);
  std::uint32_t gload_u32(const void* p);
  void gstore_u8(std::uint8_t* p, std::uint8_t v);
  void gstore_u32(void* p, std::uint32_t v);

  // --- shared memory ------------------------------------------------------
  std::uint8_t sload_u8(std::size_t offset);
  std::uint32_t sload_u32(std::size_t offset);
  void sstore_u8(std::size_t offset, std::uint8_t v);
  void sstore_u32(std::size_t offset, std::uint32_t v);
  // atomicMin on shared memory (GTX 280+, Sec. 5.4.2); returns old value.
  std::uint32_t atomic_min_shared(std::size_t offset, std::uint32_t v);

  // --- texture ------------------------------------------------------------
  std::uint32_t tex1d_u32(const std::uint32_t* base, std::size_t index);
  std::uint8_t tex1d_u8(const std::uint8_t* base, std::size_t index);

  // Charge scalar-instruction work (address math, tests, xors, loop
  // control). Memory instructions are charged automatically, one per
  // access.
  void count_alu(double ops);

  // A lane sitting out a predicated/branched-around access must still
  // advance its access sequence so that the remaining lanes' accesses stay
  // grouped with the same instruction site (on hardware, grouping is by
  // PC; here it is by per-thread sequence number). Call once per skipped
  // access.
  void skip_access() { ++seq_; }

 private:
  friend class BlockCtx;
  BlockCtx* block_ = nullptr;
  std::size_t lane_ = 0;
  std::uint32_t seq_ = 0;  // per-thread access sequence number
};

class Launcher;

// Context for one thread block; passed to the kernel callable.
class BlockCtx {
 public:
  std::size_t block_index() const { return block_index_; }
  std::size_t num_blocks() const { return config_.blocks; }
  std::size_t num_threads() const { return config_.threads_per_block; }
  SharedMemory& shared() { return *shared_; }
  const DeviceSpec& spec() const { return *spec_; }

  // Execute fn(thread) for every lane, then a barrier.
  void step(const std::function<void(ThreadCtx&)>& fn);
  // Execute fn for lanes [0, count) only (partial step, still a barrier) —
  // the "if (tid < count)" idiom.
  void step_partial(std::size_t count,
                    const std::function<void(ThreadCtx&)>& fn);

  // --- zero-instrumentation fast path -----------------------------------
  // True when this launch runs unchecked (no sanitizer resolved) and the
  // process-wide fast path is enabled (exec_engine.h). A kernel that ships
  // a bulk lowering branches on this flag: instead of stepping lanes
  // through ThreadCtx it computes whole half-warps via the host SIMD
  // GF(2^8) region ops and charges the bulk accounting below. A lowering
  // MUST charge exactly what the interpreted path would — the equivalence
  // suites hold it to bit-identity on outputs and every KernelMetrics
  // field. Lowerings with shape preconditions (lane alignment, word
  // counts) fall back to the interpreted step()s when they do not hold.
  bool fast_path() const { return fast_; }

  // One barrier per (would-be) step/step_partial.
  void fast_barriers(std::uint64_t count) { metrics_->barriers += count; }

  // Scalar work, pre-quantized: mirror each conceptual count_alu(x) charge
  // as KernelMetrics::deciops(x) multiplied by the number of lanes/calls
  // that would have made it (quantize per call, then multiply — never
  // quantize the product).
  void fast_alu_deciops(std::uint64_t deci) { metrics_->alu_deciops += deci; }

  // One half-warp global access step whose lanes touch exactly the byte
  // range [addr, addr + span_bytes) — a contiguous sweep or a broadcast
  // (span_bytes = access size). Charges `instrs` memory instructions (one
  // per participating lane; they occupy issue slots exactly like the
  // interpreted pending_mem_instrs_ fold) and the given demand bytes;
  // transactions = distinct 64-byte segments the span overlaps, which for
  // a contiguous/broadcast group equals the interpreted per-lane dedup.
  // Strided groups must instead account each contiguous run separately.
  void fast_global_span(std::uintptr_t addr, std::size_t span_bytes,
                        std::uint64_t instrs, std::uint64_t load_bytes,
                        std::uint64_t store_bytes) {
    const std::uint64_t seg = spec_->coalesce_segment_bytes;
    metrics_->global_transactions +=
        (addr % seg + span_bytes + seg - 1) / seg;
    metrics_->global_load_bytes += load_bytes;
    metrics_->global_store_bytes += store_bytes;
    metrics_->alu_deciops += instrs * 10;
  }

  // One half-warp global access step at arbitrary per-lane addresses, each
  // access `access_bytes` wide: transactions = distinct 64-byte segments
  // across the group, deduplicated exactly like record_global. Use this
  // for strided/scattered groups; fast_global_span is the cheap closed
  // form for contiguous or broadcast ones.
  void fast_global_group(const std::uintptr_t* addrs, std::size_t count,
                         std::size_t access_bytes, std::uint64_t load_bytes,
                         std::uint64_t store_bytes);

  // One half-warp shared access step at the given 32-bit word indices
  // (offset / 4, one entry per participating lane). Serialization degree
  // uses the same distinct-words-per-bank rule as flush_half_warp.
  void fast_shared_group(const std::uintptr_t* words, std::size_t count);

  // Closed-form bulk accounting for profiled shared access steps: `events`
  // groups totalling `accesses` lane accesses and `cycles` serialized
  // cycles, with the degrees pre-evaluated per group class (the table-
  // scheme conflict profiles, gpu/kernel_audit.h derivation). Each access
  // is one memory instruction, as in fast_shared_group.
  void fast_shared_bulk(std::uint64_t accesses, std::uint64_t events,
                        std::uint64_t cycles) {
    metrics_->shared_accesses += accesses;
    metrics_->shared_access_events += events;
    metrics_->shared_serialized_cycles += cycles;
    metrics_->alu_deciops += accesses * 10;
  }

  // Closed-form bulk accounting for profiled global access steps:
  // `transactions` pre-deduplicated coalescing transactions across `instrs`
  // memory instructions. Only valid when the caller evaluated the span /
  // group dedup itself (cached per group class or via the static models).
  void fast_global_bulk(std::uint64_t transactions, std::uint64_t instrs,
                        std::uint64_t load_bytes, std::uint64_t store_bytes) {
    metrics_->global_transactions += transactions;
    metrics_->global_load_bytes += load_bytes;
    metrics_->global_store_bytes += store_bytes;
    metrics_->alu_deciops += instrs * 10;
  }

  // One texture fetch; evolves the per-TPC cache state exactly like
  // tex1d_* so a later interpreted launch sees the same tags.
  void fast_texture_fetch(std::uintptr_t addr) {
    metrics_->texture_fetches += 1;
    metrics_->alu_deciops += 10;
    if (!texture_->access(addr)) metrics_->texture_misses += 1;
  }

  // Closed-form texture accounting: charge `fetches` fetch instructions
  // and `misses` misses in bulk. Only valid when the miss count is
  // order-independent (a kResident table, see static_model.h); the caller
  // must then evolve texture_cache() to the exact post-step tag state by
  // access()ing each newly-resident line once.
  void fast_texture_bulk(std::uint64_t fetches, std::uint64_t misses) {
    metrics_->texture_fetches += fetches;
    metrics_->texture_misses += misses;
    metrics_->alu_deciops += fetches * 10;
  }
  // This block's texture-cache unit (stateful across launches).
  TextureCache& texture_cache() { return *texture_; }

 private:
  friend class Launcher;
  friend class ThreadCtx;

  void flush_half_warp();
  void record_global(std::uint32_t seq, std::uintptr_t addr, std::size_t size);
  void record_shared(std::uint32_t seq, std::size_t offset, std::size_t size);
  void record_texture(std::uintptr_t addr, std::size_t size);

  const DeviceSpec* spec_ = nullptr;
  LaunchConfig config_;
  std::size_t block_index_ = 0;
  SharedMemory* shared_ = nullptr;
  TextureCache* texture_ = nullptr;
  KernelMetrics* metrics_ = nullptr;
  // Sanitizer hook; null on unchecked launches so the hot paths pay one
  // pointer test. Per worker, like the accounting scratch below.
  BlockCheckState* check_ = nullptr;
  // Set by Launcher::run_blocks: unchecked launch and fast path enabled.
  bool fast_ = false;

  // Half-warp aggregation state (fast path): groups are flat vectors
  // indexed by the per-thread access sequence number — the grouping key —
  // with a first-touch list so a flush only visits live groups. The
  // vectors are reused across half-warps, steps and blocks; only their
  // capacity persists, never accounting state.
  //
  // Per-group storage is inline and fixed-size: a group collects the
  // accesses of one half-warp (<= 16 lanes on every spec), and a single
  // 4-byte access spans at most two 64-byte coalescing segments.
  static constexpr std::size_t kGroupLanes = 16;
  struct GlobalGroup {
    std::uint32_t count = 0;  // live entries in segments
    std::array<std::uint64_t, 2 * kGroupLanes> segments;  // distinct 64B ids
  };
  struct SharedGroup {
    std::uint32_t count = 0;  // live word entries
    std::array<std::uintptr_t, kGroupLanes> words;
  };
  std::size_t current_half_warp_ = 0;
  std::vector<GlobalGroup> global_groups_;   // indexed by seq
  std::vector<SharedGroup> shared_groups_;   // indexed by seq
  std::vector<std::uint32_t> global_live_;   // seqs touched this half-warp
  std::vector<std::uint32_t> shared_live_;

  // Metric increments batched per half-warp; flushed by flush_half_warp so
  // the hot access paths touch only these plain counters.
  std::uint64_t pending_mem_instrs_ = 0;  // issue slots -> alu_ops
  std::uint64_t pending_load_bytes_ = 0;
  std::uint64_t pending_store_bytes_ = 0;
  std::uint64_t pending_shared_accesses_ = 0;
  std::uint64_t pending_texture_fetches_ = 0;
  std::uint64_t pending_texture_misses_ = 0;
  std::uint64_t pending_atomic_ops_ = 0;
};

class FaultInjector;
class Profiler;

// Owns metrics and the texture cache; launches kernels on a device spec.
class Launcher {
 public:
  explicit Launcher(const DeviceSpec& spec);

  const DeviceSpec& spec() const { return *spec_; }
  KernelMetrics& metrics() { return metrics_; }
  const KernelMetrics& metrics() const { return metrics_; }
  void reset_metrics() { metrics_ = KernelMetrics{}; }

  // Optional observability hook: with a profiler attached, every launch is
  // additionally recorded as one LaunchProfile (label, geometry, the
  // launch's own KernelMetrics delta, modeled time). The label is sticky —
  // set it before the launch(es) it should attribute; reset_metrics() does
  // not touch it. The profiler is borrowed, never owned.
  void set_profiler(Profiler* profiler) { profiler_ = profiler; }
  Profiler* profiler() const { return profiler_; }
  void set_launch_label(std::string label) {
    launch_label_ = std::move(label);
  }
  const std::string& launch_label() const { return launch_label_; }

  // Optional fault model (simgpu/fault_injector.h). With an injector
  // attached, every launch consults it first: a kLaunchFailure or
  // kDeviceLost verdict aborts the launch with a DeviceError (nothing
  // runs, no metrics accrue), a kHang verdict stalls the launch's modeled
  // time by the plan's stall factor, and kHang/kBitFlip verdicts damage
  // the injector's watched regions after the kernel completes. The
  // injector is borrowed, never owned; one injector shared by several
  // launchers models one device.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  // Optional kernel sanitizer (simgpu/checker.h). With a checker attached
  // every launch (unless LaunchConfig::check == kOff) runs instrumented:
  // shared-memory hazards, OOB/misalignment, barrier divergence, stale
  // shared reads and advisory perf lints are collected per block, merged
  // in ascending block order (bit-identical on both engines) and absorbed
  // into the checker's cumulative report. In kThrow mode a launch with
  // error findings throws CheckError — after metrics, profiler record and
  // injector accounting completed, so device state stays consistent.
  // Without an attached checker, EXTNC_SIMGPU_CHECK=1|throw|collect (or
  // LaunchConfig::check == kOn) makes the launcher create an internal
  // one. The attached checker is borrowed, never owned; one checker
  // shared by several launchers aggregates across them.
  void set_checker(Checker* checker) { checker_ = checker; }
  Checker* checker() const { return checker_; }

  // Run the kernel over every block. Shared memory contents do NOT persist
  // across blocks or launches, matching CUDA semantics the paper leans on
  // in Sec. 5.1.2 ("CUDA's shared memory is not persistent across GPU
  // kernel calls").
  //
  // Blocks are independent (barriers only synchronize within a block), so
  // the engine may schedule them across host worker threads; results —
  // output bytes, KernelMetrics, modeled timing, profiler records — are
  // bit-identical to the serial engine either way. See exec_engine.h for
  // how the engine is selected and DESIGN.md ("Parallel block execution")
  // for the determinism argument. Blocks are accounted into per-block
  // KernelMetrics and merged in ascending block order, and each
  // texture-cache unit is only ever touched by the worker that owns it,
  // which is what makes the reduction deterministic.
  void launch(const LaunchConfig& config,
              const std::function<void(BlockCtx&)>& kernel);

  // Modeled seconds this launcher's launches have consumed (timing model,
  // default calibration; includes injected hang stalls). This is the clock
  // watchdog supervisors compare against a per-attempt budget.
  double elapsed_seconds() const { return elapsed_s_; }
  double last_launch_seconds() const { return last_launch_s_; }

  // The texture caches persist across launches (they are hardware caches);
  // tests can clear them. The device has one texture cache per TPC
  // (DeviceSpec::sms_per_texture_cache SMs share one unit); block b runs on
  // SM (b % num_sms) and fetches through that SM's unit, on the serial and
  // the parallel engine alike.
  void invalidate_texture_cache();
  std::size_t texture_cache_units() const { return texture_caches_.size(); }
  std::size_t texture_unit_of(std::size_t block) const;

 private:
  // The failing block (lowest index wins so the parallel engine reports
  // the same error the serial engine would hit first) and its exception.
  struct BlockError {
    std::size_t block = static_cast<std::size_t>(-1);
    std::exception_ptr error;
  };

  // Run this launch's blocks whose texture unit == only_unit (or every
  // block when only_unit == kAllUnits), in ascending block order, each
  // accounted into block_metrics[b] (and, when checking, check_sinks[b]).
  // Stops at the first throwing block.
  static constexpr std::size_t kAllUnits = static_cast<std::size_t>(-1);
  void run_blocks(const LaunchConfig& config,
                  const std::function<void(BlockCtx&)>& kernel,
                  std::size_t only_unit,
                  std::vector<KernelMetrics>& block_metrics,
                  Checker* checker, std::vector<BlockCheckSink>* check_sinks,
                  BlockError& error);

  // The checker this launch runs under: the attached one, an internal
  // env/kOn-created one, or null (unchecked).
  Checker* resolve_checker(const LaunchConfig& config);

  const DeviceSpec* spec_;
  KernelMetrics metrics_;
  std::vector<TextureCache> texture_caches_;  // one per TPC unit
  Profiler* profiler_ = nullptr;
  FaultInjector* injector_ = nullptr;
  Checker* checker_ = nullptr;
  std::unique_ptr<Checker> owned_checker_;  // EXTNC_SIMGPU_CHECK / kOn
  std::string launch_label_;
  double elapsed_s_ = 0;
  double last_launch_s_ = 0;
};

}  // namespace extnc::simgpu
