// Functional CUDA-like executor with memory-system accounting.
//
// Kernels are written against a BlockCtx and executed bit-exactly on the
// host. The execution model is "barrier-segmented": BlockCtx::step runs a
// callable for every thread of the block in lane order, and the boundary
// between two steps is a __syncthreads(). This keeps kernels deterministic
// and single-threaded while preserving exactly the synchronization
// structure the paper's kernels have (per-block barriers only — CUDA has
// no global barrier, which is what forces the decoder's task-partitioning
// scheme in Sec. 4.2.2).
//
// Every memory access goes through ThreadCtx, which aggregates accesses at
// half-warp granularity (16 lanes, the GT200 coalescing/bank-conflict
// unit):
//  * global accesses are grouped by access sequence number and counted as
//    one transaction per distinct 64-byte segment the half-warp touches —
//    a broadcast (all lanes, same address) is one transaction, a fully
//    coalesced sweep is four;
//  * shared accesses are resolved into bank conflicts: an access step
//    costs max-over-banks(distinct 32-bit words addressed in that bank)
//    serialized cycles, so a layout change (e.g. the TB-5 replicated exp
//    tables) shows up in the metrics with no model changes;
//  * texture fetches run through a direct-mapped cache model.
//
// Aggregation by sequence number assumes lanes of a half-warp execute the
// same access sequence, which holds for all kernels in this library
// (divergent kernels would see slightly misattributed grouping, never
// wrong functional results).
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "simgpu/device_spec.h"
#include "simgpu/metrics.h"
#include "util/aligned_buffer.h"
#include "util/assert.h"

namespace extnc::simgpu {

struct LaunchConfig {
  std::size_t blocks = 1;
  std::size_t threads_per_block = 256;
};

// Per-block scratchpad (the 16 KB on-chip shared memory of one SM).
class SharedMemory {
 public:
  explicit SharedMemory(std::size_t size) : storage_(size) {}

  std::size_t size() const { return storage_.size(); }
  std::uint8_t* data() { return storage_.data(); }

  std::uint8_t read_u8(std::size_t offset) const {
    EXTNC_DASSERT(offset < storage_.size());
    return storage_[offset];
  }
  void write_u8(std::size_t offset, std::uint8_t value) {
    EXTNC_DASSERT(offset < storage_.size());
    storage_[offset] = value;
  }
  std::uint32_t read_u32(std::size_t offset) const {
    EXTNC_DASSERT(offset + 4 <= storage_.size());
    std::uint32_t v;
    std::memcpy(&v, storage_.data() + offset, 4);
    return v;
  }
  void write_u32(std::size_t offset, std::uint32_t value) {
    EXTNC_DASSERT(offset + 4 <= storage_.size());
    std::memcpy(storage_.data() + offset, &value, 4);
  }

 private:
  AlignedBuffer storage_;
};

// Direct-mapped read-only texture cache model.
class TextureCache {
 public:
  TextureCache(std::size_t cache_bytes, std::size_t line_bytes);

  // Returns true on hit; records the line on miss.
  bool access(std::uintptr_t address);
  void invalidate();

 private:
  std::size_t num_lines_;
  std::size_t line_bytes_;
  std::vector<std::uintptr_t> tags_;  // 0 == empty
};

class BlockCtx;

// Handle through which kernel code touches memory; one per logical thread.
class ThreadCtx {
 public:
  std::size_t lane() const { return lane_; }
  std::size_t block_index() const;
  std::size_t threads_per_block() const;
  std::size_t global_index() const;

  // --- global memory ----------------------------------------------------
  std::uint8_t gload_u8(const std::uint8_t* p);
  std::uint32_t gload_u32(const void* p);
  void gstore_u8(std::uint8_t* p, std::uint8_t v);
  void gstore_u32(void* p, std::uint32_t v);

  // --- shared memory ------------------------------------------------------
  std::uint8_t sload_u8(std::size_t offset);
  std::uint32_t sload_u32(std::size_t offset);
  void sstore_u8(std::size_t offset, std::uint8_t v);
  void sstore_u32(std::size_t offset, std::uint32_t v);
  // atomicMin on shared memory (GTX 280+, Sec. 5.4.2); returns old value.
  std::uint32_t atomic_min_shared(std::size_t offset, std::uint32_t v);

  // --- texture ------------------------------------------------------------
  std::uint32_t tex1d_u32(const std::uint32_t* base, std::size_t index);
  std::uint8_t tex1d_u8(const std::uint8_t* base, std::size_t index);

  // Charge scalar-instruction work (address math, tests, xors, loop
  // control). Memory instructions are charged automatically, one per
  // access.
  void count_alu(double ops);

  // A lane sitting out a predicated/branched-around access must still
  // advance its access sequence so that the remaining lanes' accesses stay
  // grouped with the same instruction site (on hardware, grouping is by
  // PC; here it is by per-thread sequence number). Call once per skipped
  // access.
  void skip_access() { ++seq_; }

 private:
  friend class BlockCtx;
  BlockCtx* block_ = nullptr;
  std::size_t lane_ = 0;
  std::uint32_t seq_ = 0;  // per-thread access sequence number
};

class Launcher;

// Context for one thread block; passed to the kernel callable.
class BlockCtx {
 public:
  std::size_t block_index() const { return block_index_; }
  std::size_t num_blocks() const { return config_.blocks; }
  std::size_t num_threads() const { return config_.threads_per_block; }
  SharedMemory& shared() { return *shared_; }
  const DeviceSpec& spec() const { return *spec_; }

  // Execute fn(thread) for every lane, then a barrier.
  void step(const std::function<void(ThreadCtx&)>& fn);
  // Execute fn for lanes [0, count) only (partial step, still a barrier) —
  // the "if (tid < count)" idiom.
  void step_partial(std::size_t count,
                    const std::function<void(ThreadCtx&)>& fn);

 private:
  friend class Launcher;
  friend class ThreadCtx;

  void flush_half_warp();
  void record_global(std::uint32_t seq, std::uintptr_t addr, std::size_t size);
  void record_shared(std::uint32_t seq, std::size_t offset, std::size_t size);
  void record_texture(std::uintptr_t addr, std::size_t size);

  const DeviceSpec* spec_ = nullptr;
  LaunchConfig config_;
  std::size_t block_index_ = 0;
  SharedMemory* shared_ = nullptr;
  TextureCache* texture_ = nullptr;
  KernelMetrics* metrics_ = nullptr;

  // Half-warp aggregation state.
  std::size_t current_half_warp_ = 0;
  struct GlobalGroup {
    std::vector<std::uint64_t> segments;  // distinct 64B segment ids
  };
  struct SharedGroup {
    // (bank, word-address) pairs seen this half-warp.
    std::vector<std::pair<std::uint32_t, std::uintptr_t>> accesses;
  };
  std::unordered_map<std::uint32_t, GlobalGroup> global_groups_;
  std::unordered_map<std::uint32_t, SharedGroup> shared_groups_;
};

class FaultInjector;
class Profiler;

// Owns metrics and the texture cache; launches kernels on a device spec.
class Launcher {
 public:
  explicit Launcher(const DeviceSpec& spec);

  const DeviceSpec& spec() const { return *spec_; }
  KernelMetrics& metrics() { return metrics_; }
  const KernelMetrics& metrics() const { return metrics_; }
  void reset_metrics() { metrics_ = KernelMetrics{}; }

  // Optional observability hook: with a profiler attached, every launch is
  // additionally recorded as one LaunchProfile (label, geometry, the
  // launch's own KernelMetrics delta, modeled time). The label is sticky —
  // set it before the launch(es) it should attribute; reset_metrics() does
  // not touch it. The profiler is borrowed, never owned.
  void set_profiler(Profiler* profiler) { profiler_ = profiler; }
  Profiler* profiler() const { return profiler_; }
  void set_launch_label(std::string label) {
    launch_label_ = std::move(label);
  }
  const std::string& launch_label() const { return launch_label_; }

  // Optional fault model (simgpu/fault_injector.h). With an injector
  // attached, every launch consults it first: a kLaunchFailure or
  // kDeviceLost verdict aborts the launch with a DeviceError (nothing
  // runs, no metrics accrue), a kHang verdict stalls the launch's modeled
  // time by the plan's stall factor, and kHang/kBitFlip verdicts damage
  // the injector's watched regions after the kernel completes. The
  // injector is borrowed, never owned; one injector shared by several
  // launchers models one device.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  // Run the kernel over every block (serially, deterministically). Shared
  // memory contents do NOT persist across blocks or launches, matching
  // CUDA semantics the paper leans on in Sec. 5.1.2 ("CUDA's shared memory
  // is not persistent across GPU kernel calls").
  void launch(const LaunchConfig& config,
              const std::function<void(BlockCtx&)>& kernel);

  // Modeled seconds this launcher's launches have consumed (timing model,
  // default calibration; includes injected hang stalls). This is the clock
  // watchdog supervisors compare against a per-attempt budget.
  double elapsed_seconds() const { return elapsed_s_; }
  double last_launch_seconds() const { return last_launch_s_; }

  // The texture cache persists across launches (it is a hardware cache);
  // tests can clear it.
  void invalidate_texture_cache();

 private:
  const DeviceSpec* spec_;
  KernelMetrics metrics_;
  TextureCache texture_cache_;
  Profiler* profiler_ = nullptr;
  FaultInjector* injector_ = nullptr;
  std::string launch_label_;
  double elapsed_s_ = 0;
  double last_launch_s_ = 0;
};

}  // namespace extnc::simgpu
