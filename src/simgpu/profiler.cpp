#include "simgpu/profiler.h"

#include <algorithm>
#include <utility>

namespace extnc::simgpu {

Profiler::Profiler(Profiler&& other) {
  std::lock_guard lock(other.mutex_);
  calibration_ = other.calibration_;
  launches_ = std::move(other.launches_);
  clock_s_ = other.clock_s_;
  next_ticket_ = other.next_ticket_;
  next_finalize_ = other.next_finalize_;
  pending_ = std::move(other.pending_);
}

Profiler& Profiler::operator=(Profiler&& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mutex_, other.mutex_);
  calibration_ = other.calibration_;
  launches_ = std::move(other.launches_);
  clock_s_ = other.clock_s_;
  next_ticket_ = other.next_ticket_;
  next_finalize_ = other.next_finalize_;
  pending_ = std::move(other.pending_);
  return *this;
}

void Profiler::record_launch(const DeviceSpec& spec, std::string_view label,
                             const KernelMetrics& launch_metrics) {
  record_launch_at(begin_ticket(), spec, label, launch_metrics);
}

std::uint64_t Profiler::begin_ticket() {
  std::lock_guard lock(mutex_);
  return next_ticket_++;
}

void Profiler::record_launch_at(std::uint64_t ticket, const DeviceSpec& spec,
                                std::string_view label,
                                const KernelMetrics& launch_metrics,
                                std::uint64_t check_findings) {
  Pending pending;
  pending.record.label =
      label.empty() ? std::string("kernel") : std::string(label);
  pending.record.device = spec.name;
  pending.record.blocks = launch_metrics.blocks;
  pending.record.threads_per_block = launch_metrics.threads_per_block;
  pending.record.metrics = launch_metrics;
  pending.record.time = estimate_time_cached(spec, launch_metrics, calibration_);
  pending.record.check_findings = check_findings;

  std::lock_guard lock(mutex_);
  pending_.emplace(ticket, std::move(pending));
  finalize_ready_locked();
}

void Profiler::abandon_ticket(std::uint64_t ticket) {
  std::lock_guard lock(mutex_);
  pending_[ticket].abandoned = true;
  finalize_ready_locked();
}

// Drain the contiguous run of finished tickets onto the timeline: a record
// is placed (start/end assigned, clock advanced) only once every earlier
// ticket is in, so the timeline order is the ticket (= launch-begin)
// order regardless of which launch completed first.
void Profiler::finalize_ready_locked() {
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == next_finalize_;
       it = pending_.erase(it), ++next_finalize_) {
    if (it->second.abandoned) continue;
    LaunchProfile& record = it->second.record;
    record.start_s = clock_s_;
    clock_s_ += record.time.total_s;
    record.end_s = clock_s_;
    launches_.push_back(std::move(record));
  }
}

std::size_t Profiler::launch_count() const {
  std::lock_guard lock(mutex_);
  return launches_.size();
}

double Profiler::total_seconds() const {
  std::lock_guard lock(mutex_);
  return clock_s_;
}

void Profiler::clear() {
  std::lock_guard lock(mutex_);
  launches_.clear();
  clock_s_ = 0;
  next_ticket_ = 0;
  next_finalize_ = 0;
  pending_.clear();
}

std::vector<Profiler::LabelSummary> Profiler::by_label() const {
  std::map<std::string, LabelSummary> grouped;
  {
    std::lock_guard lock(mutex_);
    for (const LaunchProfile& launch : launches_) {
      LabelSummary& s = grouped[launch.label];
      s.label = launch.label;
      s.launches += 1;
      s.metrics.merge(launch.metrics);
      s.total_s += launch.time.total_s;
      s.compute_s += launch.time.compute_s;
      s.memory_s += launch.time.memory_s;
      s.launch_s += launch.time.launch_s;
    }
  }
  std::vector<LabelSummary> out;
  out.reserve(grouped.size());
  for (auto& [label, summary] : grouped) out.push_back(std::move(summary));
  std::sort(out.begin(), out.end(),
            [](const LabelSummary& a, const LabelSummary& b) {
              if (a.total_s != b.total_s) return a.total_s > b.total_s;
              return a.label < b.label;
            });
  return out;
}

Profiler::LabelSummary Profiler::label_summary(std::string_view label) const {
  for (const LabelSummary& s : by_label()) {
    if (s.label == label) return s;
  }
  return LabelSummary{};
}

}  // namespace extnc::simgpu
