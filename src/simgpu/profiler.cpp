#include "simgpu/profiler.h"

#include <algorithm>
#include <map>

namespace extnc::simgpu {

void Profiler::record_launch(const DeviceSpec& spec, std::string_view label,
                             const KernelMetrics& launch_metrics) {
  LaunchProfile record;
  record.label = label.empty() ? std::string("kernel") : std::string(label);
  record.device = spec.name;
  record.blocks = launch_metrics.blocks;
  record.threads_per_block = launch_metrics.threads_per_block;
  record.metrics = launch_metrics;
  record.time = estimate_time(spec, launch_metrics, calibration_);
  record.start_s = clock_s_;
  clock_s_ += record.time.total_s;
  record.end_s = clock_s_;
  launches_.push_back(std::move(record));
}

void Profiler::clear() {
  launches_.clear();
  clock_s_ = 0;
}

std::vector<Profiler::LabelSummary> Profiler::by_label() const {
  std::map<std::string, LabelSummary> grouped;
  for (const LaunchProfile& launch : launches_) {
    LabelSummary& s = grouped[launch.label];
    s.label = launch.label;
    s.launches += 1;
    s.metrics.merge(launch.metrics);
    s.total_s += launch.time.total_s;
    s.compute_s += launch.time.compute_s;
    s.memory_s += launch.time.memory_s;
    s.launch_s += launch.time.launch_s;
  }
  std::vector<LabelSummary> out;
  out.reserve(grouped.size());
  for (auto& [label, summary] : grouped) out.push_back(std::move(summary));
  std::sort(out.begin(), out.end(),
            [](const LabelSummary& a, const LabelSummary& b) {
              if (a.total_s != b.total_s) return a.total_s > b.total_s;
              return a.label < b.label;
            });
  return out;
}

Profiler::LabelSummary Profiler::label_summary(std::string_view label) const {
  for (const LabelSummary& s : by_label()) {
    if (s.label == label) return s;
  }
  return LabelSummary{};
}

}  // namespace extnc::simgpu
