// Static kernel access-pattern models: closed forms for the executor's
// accounting rules, derived from geometry alone (no execution, no payload).
//
// The executor (executor.h) charges three structural costs per half-warp
// access step: shared-bank serialization (max distinct 32-bit words per
// bank), global coalescing transactions (distinct 64-byte segments), and
// texture-cache evolution. All three are functions of the *index pattern*
// of the step, not of when it runs — which is what makes a pre-launch
// model possible. This header exposes:
//
//  * the exact degree/transaction rules, shared with the executor so the
//    static models and the dynamic accounting can never disagree;
//  * `StaticKernelModel`: a per-barrier-segment description of one launch
//    (conflict-degree histogram per half-warp group class, transaction
//    counts, texture locality, exact footprints, barrier structure) whose
//    totals are asserted bit-equal to the interpreted engine's
//    KernelMetrics by the verification tests;
//  * `SegmentBuilder`: the accumulation helper the per-kernel model
//    providers (gpu/kernel_audit.h) use to mirror a kernel's access
//    structure over its index space.
//
// The audit path (gpu/kernel_audit.h, tools/extnc_audit) consumes these
// models to validate geometry, OOB-freedom and barrier divergence before
// any launch, and to emit static bank-conflict/uncoalesced lints — a
// superset of the dynamic Checker's advisories, since the model sees every
// group class, not just the ones a particular payload exercises.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "simgpu/device_spec.h"
#include "simgpu/metrics.h"

namespace extnc::simgpu {

// Serialized cycles for one half-warp shared access step: the worst bank
// must serve one cycle per *distinct word* addressed in it (lanes reading
// the same word are satisfied by one broadcast); minimum degree 1. This is
// THE rule — flush_half_warp, the fast-path bulk groups and every static
// model call it, so the three can never disagree.
std::uint64_t shared_group_degree(const std::uintptr_t* words,
                                  std::size_t count, std::uint32_t banks);

// Coalescing transactions for one half-warp global access step whose lanes
// touch exactly the contiguous byte range [addr, addr + span_bytes) — the
// closed form for contiguous sweeps and broadcasts (span_bytes = access
// size). Matches record_global's per-lane segment dedup exactly for such
// groups.
std::uint64_t span_transactions(std::uintptr_t addr, std::size_t span_bytes,
                                std::uint64_t segment_bytes);

// Coalescing transactions for one half-warp global access step at
// arbitrary per-lane addresses (access_bytes wide each): distinct segments
// across the group, the same dedup record_global performs.
std::uint64_t group_transactions(const std::uintptr_t* addrs,
                                 std::size_t count, std::size_t access_bytes,
                                 std::uint64_t segment_bytes);

// Locality class of a read-only table bound as a 1D texture, against a
// device's direct-mapped per-TPC cache.
enum class TextureLocality {
  // The table spans at most the cache's line count with no two table lines
  // aliasing the same set: once a line is fetched it can never be evicted
  // by another table access, so misses = first touches (order-free).
  kResident,
  // The table aliases itself in the cache; misses depend on access order.
  kStreaming,
};

struct TextureTableModel {
  std::uint64_t lines = 0;  // cache lines the table spans
  TextureLocality locality = TextureLocality::kResident;
};

TextureTableModel texture_table_model(std::uintptr_t base, std::size_t bytes,
                                      const DeviceSpec& spec);

// ------------------------------------------------------------------------
// One barrier-delimited segment of a kernel, aggregated over the launch.

// Degree histogram: degree_events[d] counts half-warp shared access steps
// whose serialization degree is exactly d (1 <= d <= kGroupLanes).
inline constexpr std::size_t kMaxConflictDegree = 16;

struct SegmentModel {
  std::string name;
  // Exact counter totals this segment contributes to the launch's
  // KernelMetrics (alu, bytes, transactions, shared, texture, atomics,
  // barriers). Geometry/launch fields stay zero; StaticKernelModel::totals
  // fills them in.
  KernelMetrics counters;
  // Shared access steps bucketed by serialization degree. Invariants:
  //   sum(degree_events) == counters.shared_access_events
  //   sum(d * degree_events[d]) == counters.shared_serialized_cycles
  std::array<std::uint64_t, kMaxConflictDegree + 1> degree_events{};
  // Worst global group: transactions of the most scattered half-warp step
  // (the static input to the uncoalesced lint).
  std::uint64_t max_group_transactions = 0;
  // Lane width of the step this barrier closes: threads_per_block for full
  // steps, the declared count for partial ones (the divergence audit
  // checks these against the kernel's declared LaunchShape).
  std::size_t step_width = 0;

  std::uint64_t max_conflict_degree() const {
    for (std::size_t d = kMaxConflictDegree; d >= 1; --d) {
      if (degree_events[d] != 0) return d;
    }
    return 1;
  }
};

// A named global region a kernel reads or writes, with the exact byte
// extent the model derives from the index space — the audit checks each
// against the registered buffer size (OOB-freedom without running).
struct FootprintRegion {
  std::string name;
  std::size_t bytes_needed = 0;     // max index + access width
  std::size_t bytes_registered = 0; // actual buffer size
  bool written = false;
};

struct StaticKernelModel {
  std::string kernel;  // e.g. "encode/tb5/exp_smem"
  std::size_t blocks = 0;
  std::size_t threads_per_block = 0;
  std::size_t shared_bytes = 0;  // scratchpad footprint (audit vs spec)
  std::vector<SegmentModel> segments;
  std::vector<FootprintRegion> footprint;

  // The exact KernelMetrics one launch of this kernel must produce — the
  // verification contract with the interpreted engine.
  KernelMetrics totals() const;

  std::uint64_t max_conflict_degree() const;
  std::uint64_t max_group_transactions() const;
};

// ------------------------------------------------------------------------
// Accumulator for building a SegmentModel by mirroring a kernel's access
// structure. Every add_* mirrors one executor charge; `times` repeats a
// structurally identical step (the amortization that makes the models
// cheap: one degree evaluation per group *class*, multiplied out).
class SegmentBuilder {
 public:
  SegmentBuilder(const DeviceSpec& spec, std::string name)
      : spec_(&spec) {
    model_.name = std::move(name);
  }

  // One half-warp shared access step with the given per-lane word indices.
  void add_shared_group(const std::uintptr_t* words, std::size_t count,
                        std::uint64_t times = 1);
  // Same, with a precomputed degree (closed-form callers).
  void add_shared_group_degree(std::uint64_t degree, std::size_t count,
                               std::uint64_t times = 1);
  // One contiguous/broadcast half-warp global step ([addr, addr+span)).
  void add_global_span(std::uintptr_t addr, std::size_t span_bytes,
                       std::uint64_t instrs, std::uint64_t load_bytes,
                       std::uint64_t store_bytes, std::uint64_t times = 1);
  // One scattered half-warp global step at per-lane addresses.
  void add_global_group(const std::uintptr_t* addrs, std::size_t count,
                        std::size_t access_bytes, std::uint64_t load_bytes,
                        std::uint64_t store_bytes, std::uint64_t times = 1);
  // Pre-deduplicated variant: `transactions` distinct segments.
  void add_global_transactions(std::uint64_t transactions,
                               std::uint64_t instrs,
                               std::uint64_t load_bytes,
                               std::uint64_t store_bytes,
                               std::uint64_t times = 1);
  // Texture fetches with a known hit/miss split (kResident tables).
  void add_texture_fetches(std::uint64_t fetches, std::uint64_t misses);
  void add_atomics(std::uint64_t ops);
  // Scalar work, pre-quantized (KernelMetrics::deciops per conceptual
  // count_alu call, times the number of calls).
  void add_alu_deciops(std::uint64_t deci) {
    model_.counters.alu_deciops += deci;
  }

  // Close the segment: one barrier per block, step_width lanes.
  SegmentModel finish(std::size_t step_width, std::uint64_t barriers);

 private:
  const DeviceSpec* spec_;
  SegmentModel model_;
};

}  // namespace extnc::simgpu
