// Human-readable bottleneck report over a profiled run.
//
// Aggregates the profiler's launches by label and prints, per kernel: how
// often it ran, its share of the modeled timeline, the compute/memory/
// launch-overhead split with the binding side called out, and the counters
// the paper's Sec. 5.1 ladder argues with (bank-conflict serialized cycles
// per launch, conflict degree, texture hit rate, occupancy). This is the
// report every "make a hot path measurably faster" PR should quote.
#pragma once

#include <cstdio>

#include "simgpu/profiler.h"

namespace extnc::simgpu {

// Which side of the max(compute, memory) + launch model dominates a
// kernel's modeled time: "compute", "memory", or "launch".
const char* bottleneck_bound(double compute_s, double memory_s,
                             double launch_s);

void print_bottleneck_report(const Profiler& profiler, std::FILE* out,
                             bool csv = false);

}  // namespace extnc::simgpu
