// Chrome-trace (chrome://tracing / Perfetto JSON) export of a profiled run.
//
// Each kernel launch becomes one complete ("ph":"X") event on the simulated
// GPU timeline: ts/dur in microseconds, name == the launch label, and the
// per-launch metrics (launch geometry, ALU ops, transactions, bank-conflict
// cycles, texture hit rate, occupancy, compute/memory split) attached as
// event args so they show up in the Perfetto side panel. Counter/gauge
// values from the process-wide registry (util/metrics_registry.h) can be
// appended as trace metadata. Output is deterministic: fixed field order,
// fixed float formatting, events in launch order.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "simgpu/profiler.h"

namespace extnc::simgpu {

struct TraceOptions {
  // Extra top-level metadata recorded under "otherData" (e.g. the
  // counter-registry snapshot, tool arguments). Keys and values are written
  // as JSON strings, in the order given.
  std::vector<std::pair<std::string, std::string>> metadata;
};

// Serialize the profiler's launches as a Chrome-trace JSON object.
std::string to_chrome_trace(const Profiler& profiler,
                            const TraceOptions& options = TraceOptions{});

// Write the trace to `path`. Returns false and fills `error` (if non-null)
// on failure — callers must treat that as fatal rather than continuing with
// a half-written profile.
bool write_chrome_trace(const Profiler& profiler, const std::string& path,
                        std::string* error = nullptr,
                        const TraceOptions& options = TraceOptions{});

}  // namespace extnc::simgpu
