// Per-launch kernel profiling for the simulated GPU.
//
// The aggregate KernelMetrics a Launcher accumulates answers "how much work
// did this run do"; the paper's Sec. 5.1 argument needs the finer question
// "which *launch* pays for what" — bank-conflict cycles in the TB-1 encode
// kernel vs the TB-5 one, the stage-1/stage-2 split of multi-segment
// decoding, preprocessing amortization. A Profiler attached to a Launcher
// records one LaunchProfile per kernel launch: the caller-assigned label
// (stable names like "encode/tb5/exp_smem"), the launch geometry, the
// KernelMetrics delta of exactly that launch, and the timing model's
// compute/memory/launch breakdown. Records sit on a simulated timeline
// (launches on one device execute back-to-back), which is what the
// Chrome-trace exporter (trace_export.h) serializes and the bottleneck
// report (profile_report.h) aggregates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "simgpu/device_spec.h"
#include "simgpu/metrics.h"
#include "simgpu/timing.h"

namespace extnc::simgpu {

// One kernel launch as the profiler saw it.
struct LaunchProfile {
  std::string label;
  std::string device;            // DeviceSpec::name
  std::size_t blocks = 0;
  std::size_t threads_per_block = 0;
  KernelMetrics metrics;         // this launch only, not cumulative
  TimeBreakdown time;            // modeled cost of this launch
  double start_s = 0;            // position on the simulated timeline
  double end_s = 0;
  // Sanitizer events (errors + advisories) this launch, when it ran under
  // simgpu::Checker; 0 for unchecked launches.
  std::uint64_t check_findings = 0;
};

// Thread safety: launches may be recorded concurrently (several Launchers
// sharing one profiler, each launching from its own host thread). Records
// are ordered by *ticket* — an index reserved when a launch begins — never
// by completion order, so the simulated timeline is deterministic: a
// record only becomes visible (and advances the simulated clock) once
// every earlier ticket has been recorded or abandoned. Readers (launches,
// by_label, total_seconds, …) must run with no launch in flight.
class Profiler {
 public:
  explicit Profiler(Calibration calibration = Calibration{})
      : calibration_(calibration) {}

  // Movable for by-value plumbing (ProfileSink and friends); moving is
  // setup-time only — never move a profiler with a launch in flight.
  Profiler(Profiler&& other);
  Profiler& operator=(Profiler&& other);
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Called by Launcher::launch (or directly by analytic models): appends a
  // record and advances the simulated clock by the launch's modeled time.
  // Equivalent to begin_ticket() + record_launch_at() back to back.
  void record_launch(const DeviceSpec& spec, std::string_view label,
                     const KernelMetrics& launch_metrics);

  // Reserve the next position on the simulated timeline. Every reserved
  // ticket must eventually be passed to record_launch_at or
  // abandon_ticket, else later records queue up invisibly forever.
  std::uint64_t begin_ticket();
  void record_launch_at(std::uint64_t ticket, const DeviceSpec& spec,
                        std::string_view label,
                        const KernelMetrics& launch_metrics,
                        std::uint64_t check_findings = 0);
  // Give up a reserved ticket (the launch failed before completing); the
  // timeline closes over the gap.
  void abandon_ticket(std::uint64_t ticket);

  const std::vector<LaunchProfile>& launches() const { return launches_; }
  std::size_t launch_count() const;
  double total_seconds() const;
  const Calibration& calibration() const { return calibration_; }
  void clear();

  // Aggregation of all launches sharing a label, for the bottleneck report
  // and for tests that assert per-kernel claims (e.g. TB-5's
  // shared_serialized_cycles per launch < TB-1's).
  struct LabelSummary {
    std::string label;
    std::size_t launches = 0;
    KernelMetrics metrics;  // summed over the label's launches
    double total_s = 0;
    double compute_s = 0;
    double memory_s = 0;
    double launch_s = 0;

    double serialized_cycles_per_launch() const {
      if (launches == 0) return 0;
      return static_cast<double>(metrics.shared_serialized_cycles) /
             static_cast<double>(launches);
    }
  };
  // Sorted by descending total modeled time.
  std::vector<LabelSummary> by_label() const;
  // Summary for one label; a zero LabelSummary if the label never ran.
  LabelSummary label_summary(std::string_view label) const;

 private:
  // A completed-but-not-yet-finalized record: its ticket is ahead of some
  // still-outstanding earlier ticket.
  struct Pending {
    bool abandoned = false;
    LaunchProfile record;  // timeline fields unset until finalized
  };

  void finalize_ready_locked();

  Calibration calibration_;
  mutable std::mutex mutex_;
  std::vector<LaunchProfile> launches_;
  double clock_s_ = 0;
  std::uint64_t next_ticket_ = 0;    // next ticket to hand out
  std::uint64_t next_finalize_ = 0;  // next ticket owed to the timeline
  std::map<std::uint64_t, Pending> pending_;
};

}  // namespace extnc::simgpu
