// Per-launch kernel profiling for the simulated GPU.
//
// The aggregate KernelMetrics a Launcher accumulates answers "how much work
// did this run do"; the paper's Sec. 5.1 argument needs the finer question
// "which *launch* pays for what" — bank-conflict cycles in the TB-1 encode
// kernel vs the TB-5 one, the stage-1/stage-2 split of multi-segment
// decoding, preprocessing amortization. A Profiler attached to a Launcher
// records one LaunchProfile per kernel launch: the caller-assigned label
// (stable names like "encode/tb5/exp_smem"), the launch geometry, the
// KernelMetrics delta of exactly that launch, and the timing model's
// compute/memory/launch breakdown. Records sit on a simulated timeline
// (launches on one device execute back-to-back), which is what the
// Chrome-trace exporter (trace_export.h) serializes and the bottleneck
// report (profile_report.h) aggregates.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "simgpu/device_spec.h"
#include "simgpu/metrics.h"
#include "simgpu/timing.h"

namespace extnc::simgpu {

// One kernel launch as the profiler saw it.
struct LaunchProfile {
  std::string label;
  std::string device;            // DeviceSpec::name
  std::size_t blocks = 0;
  std::size_t threads_per_block = 0;
  KernelMetrics metrics;         // this launch only, not cumulative
  TimeBreakdown time;            // modeled cost of this launch
  double start_s = 0;            // position on the simulated timeline
  double end_s = 0;
};

class Profiler {
 public:
  explicit Profiler(Calibration calibration = Calibration{})
      : calibration_(calibration) {}

  // Called by Launcher::launch (or directly by analytic models): appends a
  // record and advances the simulated clock by the launch's modeled time.
  void record_launch(const DeviceSpec& spec, std::string_view label,
                     const KernelMetrics& launch_metrics);

  const std::vector<LaunchProfile>& launches() const { return launches_; }
  std::size_t launch_count() const { return launches_.size(); }
  double total_seconds() const { return clock_s_; }
  const Calibration& calibration() const { return calibration_; }
  void clear();

  // Aggregation of all launches sharing a label, for the bottleneck report
  // and for tests that assert per-kernel claims (e.g. TB-5's
  // shared_serialized_cycles per launch < TB-1's).
  struct LabelSummary {
    std::string label;
    std::size_t launches = 0;
    KernelMetrics metrics;  // summed over the label's launches
    double total_s = 0;
    double compute_s = 0;
    double memory_s = 0;
    double launch_s = 0;

    double serialized_cycles_per_launch() const {
      if (launches == 0) return 0;
      return static_cast<double>(metrics.shared_serialized_cycles) /
             static_cast<double>(launches);
    }
  };
  // Sorted by descending total modeled time.
  std::vector<LabelSummary> by_label() const;
  // Summary for one label; a zero LabelSummary if the label never ran.
  LabelSummary label_summary(std::string_view label) const;

 private:
  Calibration calibration_;
  std::vector<LaunchProfile> launches_;
  double clock_s_ = 0;
};

}  // namespace extnc::simgpu
