#include "simgpu/static_model.h"

#include <algorithm>

#include "util/assert.h"

namespace extnc::simgpu {

std::uint64_t shared_group_degree(const std::uintptr_t* words,
                                  std::size_t count, std::uint32_t banks) {
  // At most kGroupLanes entries per group, so the quadratic dedup stays
  // allocation-free and cheap.
  std::array<std::uint32_t, 32> bank_words{};
  std::uint64_t degree = 1;
  for (std::size_t i = 0; i < count; ++i) {
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (words[j] == words[i]) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    const std::uint32_t in_bank = ++bank_words[(words[i] % banks) % 32];
    degree = std::max<std::uint64_t>(degree, in_bank);
  }
  return degree;
}

std::uint64_t span_transactions(std::uintptr_t addr, std::size_t span_bytes,
                                std::uint64_t segment_bytes) {
  return (addr % segment_bytes + span_bytes + segment_bytes - 1) /
         segment_bytes;
}

std::uint64_t group_transactions(const std::uintptr_t* addrs,
                                 std::size_t count, std::size_t access_bytes,
                                 std::uint64_t segment_bytes) {
  // Mirror record_global: dedup distinct segments across the group. Groups
  // hold at most 16 lanes x 2 segments, so flat dedup is cheap.
  std::array<std::uint64_t, 64> segments;
  std::size_t live = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t first = addrs[i] / segment_bytes;
    const std::uint64_t last = (addrs[i] + access_bytes - 1) / segment_bytes;
    for (std::uint64_t seg = first; seg <= last; ++seg) {
      bool seen = false;
      for (std::size_t j = 0; j < live; ++j) {
        if (segments[j] == seg) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        EXTNC_DASSERT(live < segments.size());
        segments[live++] = seg;
      }
    }
  }
  return live;
}

TextureTableModel texture_table_model(std::uintptr_t base, std::size_t bytes,
                                      const DeviceSpec& spec) {
  TextureTableModel model;
  const std::size_t line_bytes =
      std::max<std::size_t>(1, spec.texture_cache_line_bytes);
  const std::size_t num_lines = std::max<std::size_t>(
      1, spec.texture_cache_bytes / line_bytes);
  if (bytes == 0) return model;
  const std::uintptr_t first = base / line_bytes;
  const std::uintptr_t last = (base + bytes - 1) / line_bytes;
  model.lines = last - first + 1;
  // Consecutive lines map to consecutive sets (set = line % num_lines), so
  // the table is self-eviction-free exactly when it spans at most num_lines
  // lines — every touched line then owns a distinct set.
  model.locality = model.lines <= num_lines ? TextureLocality::kResident
                                            : TextureLocality::kStreaming;
  return model;
}

// ------------------------------------------------------------------------

KernelMetrics StaticKernelModel::totals() const {
  KernelMetrics m;
  for (const SegmentModel& segment : segments) m.merge(segment.counters);
  m.kernel_launches = 1;
  m.blocks = blocks;
  m.threads_per_block = threads_per_block;
  return m;
}

std::uint64_t StaticKernelModel::max_conflict_degree() const {
  std::uint64_t worst = 1;
  for (const SegmentModel& segment : segments) {
    worst = std::max(worst, segment.max_conflict_degree());
  }
  return worst;
}

std::uint64_t StaticKernelModel::max_group_transactions() const {
  std::uint64_t worst = 0;
  for (const SegmentModel& segment : segments) {
    worst = std::max(worst, segment.max_group_transactions);
  }
  return worst;
}

// ------------------------------------------------------------------------

void SegmentBuilder::add_shared_group(const std::uintptr_t* words,
                                      std::size_t count,
                                      std::uint64_t times) {
  add_shared_group_degree(
      shared_group_degree(words, count,
                          static_cast<std::uint32_t>(spec_->shared_banks)),
      count, times);
}

void SegmentBuilder::add_shared_group_degree(std::uint64_t degree,
                                             std::size_t count,
                                             std::uint64_t times) {
  EXTNC_DASSERT(degree >= 1 && degree <= kMaxConflictDegree);
  model_.counters.shared_accesses += count * times;
  model_.counters.shared_access_events += times;
  model_.counters.shared_serialized_cycles += degree * times;
  // One memory instruction per participating lane, 10 deci-ops each
  // (fast_shared_group / the interpreted pending_mem_instrs_ fold).
  model_.counters.alu_deciops +=
      static_cast<std::uint64_t>(count) * 10 * times;
  model_.degree_events[degree] += times;
}

void SegmentBuilder::add_global_span(std::uintptr_t addr,
                                     std::size_t span_bytes,
                                     std::uint64_t instrs,
                                     std::uint64_t load_bytes,
                                     std::uint64_t store_bytes,
                                     std::uint64_t times) {
  add_global_transactions(
      span_transactions(addr, span_bytes, spec_->coalesce_segment_bytes),
      instrs, load_bytes, store_bytes, times);
}

void SegmentBuilder::add_global_group(const std::uintptr_t* addrs,
                                      std::size_t count,
                                      std::size_t access_bytes,
                                      std::uint64_t load_bytes,
                                      std::uint64_t store_bytes,
                                      std::uint64_t times) {
  add_global_transactions(
      group_transactions(addrs, count, access_bytes,
                         spec_->coalesce_segment_bytes),
      count, load_bytes, store_bytes, times);
}

void SegmentBuilder::add_global_transactions(std::uint64_t transactions,
                                             std::uint64_t instrs,
                                             std::uint64_t load_bytes,
                                             std::uint64_t store_bytes,
                                             std::uint64_t times) {
  model_.counters.global_transactions += transactions * times;
  model_.counters.global_load_bytes += load_bytes * times;
  model_.counters.global_store_bytes += store_bytes * times;
  model_.counters.alu_deciops += instrs * 10 * times;
  model_.max_group_transactions =
      std::max(model_.max_group_transactions, transactions);
}

void SegmentBuilder::add_texture_fetches(std::uint64_t fetches,
                                         std::uint64_t misses) {
  model_.counters.texture_fetches += fetches;
  model_.counters.texture_misses += misses;
  model_.counters.alu_deciops += fetches * 10;
}

void SegmentBuilder::add_atomics(std::uint64_t ops) {
  model_.counters.atomic_ops += ops;
}

SegmentModel SegmentBuilder::finish(std::size_t step_width,
                                    std::uint64_t barriers) {
  model_.step_width = step_width;
  model_.counters.barriers += barriers;
  return std::move(model_);
}

}  // namespace extnc::simgpu
