// Deterministic device-fault model for the simulated GPU.
//
// PR 1 made the data plane survivable (wire CRC, pollution quarantine);
// this injector does the same for the compute plane: it lets tests and
// simulations script the ways a real accelerator fails so the supervision
// layer (gpu/resilient_launcher.h) can be proven to detect and recover
// from each of them. Four fault classes, mirroring the CUDA failure
// surface:
//
//   kHang          — the kernel never reaches completion within its time
//                    budget. Modeled as the launch consuming
//                    hang_stall_factor times its normal modeled time (so a
//                    watchdog comparing modeled seconds against a budget
//                    fires) and, like a watchdog-killed kernel on real
//                    hardware, leaving partial garbage in the output.
//   kBitFlip       — transient global-memory corruption: the launch
//                    completes "successfully" but flipped bits sit in the
//                    output (the ECC-less-GDDR failure mode). Only a
//                    post-condition check can catch this.
//   kLaunchFailure — the launch is rejected up front (out of resources,
//                    cudaErrorLaunchOutOfResources); transient, a retry
//                    may succeed.
//   kDeviceLost    — cudaErrorDevicesUnavailable: sticky. Every launch
//                    after the event fails until restore_device().
//
// Faults are scheduled deterministically: scripted per launch index
// ("exactly launch 7 hangs") and/or drawn per launch from seeded
// probabilities. One injector models one device; attach it to every
// Launcher that represents that device and the launch index, the sticky
// lost state and the observed modeled timeline are shared across them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace extnc::simgpu {

enum class FaultClass {
  kNone,
  kHang,
  kBitFlip,
  kLaunchFailure,
  kDeviceLost,
};

const char* fault_class_name(FaultClass fault);

// Thrown by Launcher::launch when an injected fault makes the launch fail
// outright (kLaunchFailure, kDeviceLost). Hang and bit-flip faults do NOT
// throw — those complete "normally" and only detection (watchdog, output
// verification) can tell; that asymmetry is the point of the model.
class DeviceError : public std::runtime_error {
 public:
  DeviceError(FaultClass fault, const std::string& what)
      : std::runtime_error(what), fault_(fault) {}

  FaultClass fault() const { return fault_; }

 private:
  FaultClass fault_;
};

// What faults to inject and when. Scripted entries key on the device-wide
// launch index (0-based, counted across every launcher the injector is
// attached to); probabilities are drawn per launch from the plan's seed,
// independently of every other RNG stream in the process.
struct FaultPlan {
  std::map<std::uint64_t, FaultClass> scripted;
  double p_hang = 0;
  double p_bit_flip = 0;
  double p_launch_failure = 0;
  double p_device_lost = 0;
  std::uint64_t seed = 1;

  // Hang launches consume this multiple of their normal modeled time.
  double hang_stall_factor = 1e6;
  // Bits flipped per bit-flip fault (spread over the watched regions).
  int flips_per_fault = 3;

  bool any() const {
    return !scripted.empty() || p_hang > 0 || p_bit_flip > 0 ||
           p_launch_failure > 0 || p_device_lost > 0;
  }
  void validate() const;

  // Parse a CLI spec: comma-separated tokens, each either a scripted fault
  // "<class>@<launch-index>" or a probability "p<class>=<value>", where
  // <class> is hang | flip | fail | lost. Example:
  //   "hang@3,flip@7,lost@12,pfail=0.01"
  // Returns nullopt (with no partial state) on any malformed token.
  static std::optional<FaultPlan> parse(std::string_view spec,
                                        std::uint64_t seed = 1);
};

// Tallies of what was actually injected (and observed), for reports and
// for tests asserting a scripted scenario played out exactly.
struct FaultCounters {
  std::uint64_t launches = 0;
  std::uint64_t hangs = 0;
  std::uint64_t bit_flips = 0;
  std::uint64_t launch_failures = 0;
  std::uint64_t device_losses = 0;  // transitions into the lost state

  std::uint64_t faults() const {
    return hangs + bit_flips + launch_failures + device_losses;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  const FaultCounters& counters() const { return counters_; }

  // --- device-memory surface for bit-flip / hang damage -----------------
  // Regions registered here play the role of the device global memory an
  // output-corrupting fault can damage. Supervisors watch the output
  // buffer of the operation in flight and clear afterwards. If a damaging
  // fault fires with no region watched, the damage is held pending and can
  // be applied later via apply_pending_damage (or simply observed).
  void watch_region(std::span<std::uint8_t> region);
  void clear_regions();
  std::size_t pending_damage() const { return pending_damage_; }
  void apply_pending_damage(std::span<std::uint8_t> region);

  // --- Launcher interface ------------------------------------------------
  // The injector operates at LAUNCH granularity, on the launching thread
  // only: begin_launch is called once before any block runs, finish_launch
  // (or cancel_launch) once after every block has finished. Blocks — which
  // the parallel engine spreads across worker threads — never touch the
  // injector; fault decisions, RNG draws and damage all key off the launch
  // index, so injected faults are identical on the serial and parallel
  // engines. One launch must be in flight at a time per injector; the
  // pairing is asserted (EXTNC_CHECK aborts on a violation).
  //
  // Decide this launch's fate; advances the launch index and draws
  // probabilistic faults. Returns the fault class. kLaunchFailure and
  // kDeviceLost mean the caller must abort the launch — such a launch is
  // already finished, so finish_launch must NOT be called for it.
  FaultClass begin_launch();
  // Called after the kernel ran functionally; applies hang/bit-flip damage
  // to the watched regions and accounts the launch's modeled seconds
  // (already scaled by time_multiplier) onto the device timeline.
  void finish_launch(FaultClass fault, double modeled_seconds);
  // Abandon the in-flight launch without damage or timeline accounting
  // (the kernel threw; nothing completed, nothing is observable).
  void cancel_launch();
  // Stall factor for a launch's modeled time (hang_stall_factor for kHang,
  // 1.0 otherwise).
  double time_multiplier(FaultClass fault) const;

  // --- device state ------------------------------------------------------
  bool device_lost() const { return device_lost_; }
  // Clear the sticky lost state (driver reset / device re-probe).
  void restore_device() { device_lost_ = false; }

  // Modeled seconds the device has spent in launches since construction —
  // the per-device clock watchdogs compare against. Includes hang stalls.
  double observed_seconds() const { return observed_s_; }

  std::uint64_t launch_index() const { return next_launch_; }

 private:
  void damage_regions(FaultClass fault);

  FaultPlan plan_;
  Rng rng_;
  FaultCounters counters_;
  std::vector<std::span<std::uint8_t>> regions_;
  std::uint64_t next_launch_ = 0;
  std::size_t pending_damage_ = 0;
  bool device_lost_ = false;
  bool launch_in_flight_ = false;  // enforces the begin/finish pairing
  double observed_s_ = 0;
};

}  // namespace extnc::simgpu
