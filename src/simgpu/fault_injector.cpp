#include "simgpu/fault_injector.h"

#include <charconv>

#include "util/assert.h"
#include "util/metrics_registry.h"

namespace extnc::simgpu {

const char* fault_class_name(FaultClass fault) {
  switch (fault) {
    case FaultClass::kNone: return "none";
    case FaultClass::kHang: return "hang";
    case FaultClass::kBitFlip: return "bit_flip";
    case FaultClass::kLaunchFailure: return "launch_failure";
    case FaultClass::kDeviceLost: return "device_lost";
  }
  return "?";
}

void FaultPlan::validate() const {
  for (double p : {p_hang, p_bit_flip, p_launch_failure, p_device_lost}) {
    EXTNC_CHECK(p >= 0.0 && p <= 1.0);
  }
  EXTNC_CHECK(hang_stall_factor >= 1.0);
  EXTNC_CHECK(flips_per_fault >= 1);
  for (const auto& [index, fault] : scripted) {
    (void)index;
    EXTNC_CHECK(fault != FaultClass::kNone);
  }
}

namespace {

std::optional<FaultClass> class_from_token(std::string_view token) {
  if (token == "hang") return FaultClass::kHang;
  if (token == "flip") return FaultClass::kBitFlip;
  if (token == "fail") return FaultClass::kLaunchFailure;
  if (token == "lost") return FaultClass::kDeviceLost;
  return std::nullopt;
}

}  // namespace

std::optional<FaultPlan> FaultPlan::parse(std::string_view spec,
                                          std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view token = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    if (token.empty()) return std::nullopt;
    if (const std::size_t at = token.find('@'); at != std::string_view::npos) {
      const auto fault = class_from_token(token.substr(0, at));
      const std::string_view index_text = token.substr(at + 1);
      std::uint64_t index = 0;
      const auto [ptr, ec] = std::from_chars(
          index_text.data(), index_text.data() + index_text.size(), index);
      if (!fault || ec != std::errc{} ||
          ptr != index_text.data() + index_text.size()) {
        return std::nullopt;
      }
      plan.scripted[index] = *fault;
      continue;
    }
    if (const std::size_t eq = token.find('='); eq != std::string_view::npos) {
      std::string_view name = token.substr(0, eq);
      if (name.size() < 2 || name[0] != 'p') return std::nullopt;
      const auto fault = class_from_token(name.substr(1));
      if (!fault) return std::nullopt;
      const std::string value(token.substr(eq + 1));
      char* end = nullptr;
      const double p = std::strtod(value.c_str(), &end);
      if (end != value.c_str() + value.size() || p < 0.0 || p > 1.0) {
        return std::nullopt;
      }
      switch (*fault) {
        case FaultClass::kHang: plan.p_hang = p; break;
        case FaultClass::kBitFlip: plan.p_bit_flip = p; break;
        case FaultClass::kLaunchFailure: plan.p_launch_failure = p; break;
        case FaultClass::kDeviceLost: plan.p_device_lost = p; break;
        default: return std::nullopt;
      }
      continue;
    }
    return std::nullopt;
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(SplitMix64(plan_.seed ^ 0xfa17ULL).next()) {
  plan_.validate();
}

void FaultInjector::watch_region(std::span<std::uint8_t> region) {
  if (!region.empty()) regions_.push_back(region);
}

void FaultInjector::clear_regions() { regions_.clear(); }

FaultClass FaultInjector::begin_launch() {
  // Launch-granularity contract: one launch in flight at a time, begun and
  // finished on the launching thread. Kernel blocks never call in here.
  EXTNC_CHECK(!launch_in_flight_);
  const std::uint64_t index = next_launch_++;
  ++counters_.launches;
  if (device_lost_) return FaultClass::kDeviceLost;

  FaultClass fault = FaultClass::kNone;
  if (const auto it = plan_.scripted.find(index); it != plan_.scripted.end()) {
    fault = it->second;
  } else if (plan_.p_device_lost > 0 &&
             rng_.next_double() < plan_.p_device_lost) {
    fault = FaultClass::kDeviceLost;
  } else if (plan_.p_launch_failure > 0 &&
             rng_.next_double() < plan_.p_launch_failure) {
    fault = FaultClass::kLaunchFailure;
  } else if (plan_.p_hang > 0 && rng_.next_double() < plan_.p_hang) {
    fault = FaultClass::kHang;
  } else if (plan_.p_bit_flip > 0 && rng_.next_double() < plan_.p_bit_flip) {
    fault = FaultClass::kBitFlip;
  }

  switch (fault) {
    case FaultClass::kDeviceLost:
      device_lost_ = true;
      ++counters_.device_losses;
      metrics::count("simgpu.faults.device_lost");
      break;
    case FaultClass::kLaunchFailure:
      ++counters_.launch_failures;
      metrics::count("simgpu.faults.launch_failure");
      break;
    case FaultClass::kHang:
      ++counters_.hangs;
      metrics::count("simgpu.faults.hang");
      break;
    case FaultClass::kBitFlip:
      ++counters_.bit_flips;
      metrics::count("simgpu.faults.bit_flip");
      break;
    case FaultClass::kNone:
      break;
  }
  // Aborted launches (rejected up front) are already over: the caller
  // throws instead of running blocks, and finish_launch is never called.
  if (fault != FaultClass::kDeviceLost && fault != FaultClass::kLaunchFailure) {
    launch_in_flight_ = true;
  }
  return fault;
}

void FaultInjector::finish_launch(FaultClass fault, double modeled_seconds) {
  EXTNC_CHECK(launch_in_flight_);
  launch_in_flight_ = false;
  observed_s_ += modeled_seconds;
  if (fault == FaultClass::kBitFlip || fault == FaultClass::kHang) {
    damage_regions(fault);
  }
}

void FaultInjector::cancel_launch() { launch_in_flight_ = false; }

double FaultInjector::time_multiplier(FaultClass fault) const {
  return fault == FaultClass::kHang ? plan_.hang_stall_factor : 1.0;
}

// A bit-flip fault flips plan_.flips_per_fault random bits; a hang fault
// (the watchdog killed the kernel mid-flight) scribbles over a random
// suffix of one region — partial output, as real aborted kernels leave.
void FaultInjector::damage_regions(FaultClass fault) {
  if (regions_.empty()) {
    ++pending_damage_;
    return;
  }
  if (fault == FaultClass::kBitFlip) {
    for (int f = 0; f < plan_.flips_per_fault; ++f) {
      auto& region = regions_[rng_.next_below(regions_.size())];
      region[rng_.next_below(region.size())] ^=
          static_cast<std::uint8_t>(1u << rng_.next_below(8));
    }
    return;
  }
  auto& region = regions_[rng_.next_below(regions_.size())];
  const std::size_t from = rng_.next_below(region.size());
  for (std::size_t i = from; i < region.size(); ++i) {
    region[i] = rng_.next_byte();
  }
}

void FaultInjector::apply_pending_damage(std::span<std::uint8_t> region) {
  if (pending_damage_ == 0 || region.empty()) return;
  for (; pending_damage_ > 0; --pending_damage_) {
    for (int f = 0; f < plan_.flips_per_fault; ++f) {
      region[rng_.next_below(region.size())] ^=
          static_cast<std::uint8_t>(1u << rng_.next_below(8));
    }
  }
}

}  // namespace extnc::simgpu
