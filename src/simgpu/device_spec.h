// Device descriptions for the simulated GPUs.
//
// The paper evaluates on an NVIDIA GeForce GTX 280 (GT200: 30 SMs x 8 SPs,
// 1458 MHz shader clock) and compares against the GeForce 8800 GT (G92:
// 14 SMs x 8 SPs, 1500 MHz) of the authors' prior work. Numbers below are
// the public specs for those parts; the timing model consumes them
// directly, so adding a new device is a matter of adding a spec.
#pragma once

#include <cstddef>

namespace extnc::simgpu {

struct DeviceSpec {
  const char* name;
  int num_sms;
  int cores_per_sm;
  double core_clock_hz;
  // Sustainable device memory bandwidth, bytes/second. (The paper quotes
  // "155 GB/s" for the GTX 280; the part's official figure is 141.7.)
  double mem_bandwidth_bytes_per_s;
  std::size_t shared_mem_per_sm;  // bytes
  int shared_banks;               // 16 on both parts
  // Shared memory services one bank access per bank every N cycles.
  int shared_cycles_per_access;   // 2 (Sec. 5.1.2)
  int warp_size;
  int half_warp;                  // bank-conflict granularity
  int max_threads_per_block;
  std::size_t global_mem_bytes;
  bool has_shared_atomics;        // atomicMin on shared: GTX 280 only
  int sms_per_texture_cache;      // 3 SMs share one L1 tex cache on GT200
  std::size_t texture_cache_bytes;
  std::size_t texture_cache_line_bytes;
  // Global memory coalescing segment size (bytes).
  std::size_t coalesce_segment_bytes;

  // Peak scalar-instruction issue rate, instructions/second: every SP
  // retires one instruction per shader cycle. For the GTX 280 this gives
  // ~350 GIPS, matching the paper's "theoretical limit ... translates to
  // 360 GIPS" discussion in Sec. 4.3.
  double peak_ips() const {
    return static_cast<double>(num_sms) * cores_per_sm * core_clock_hz;
  }
};

// The two parts used in the paper's evaluation.
const DeviceSpec& gtx280();
const DeviceSpec& geforce_8800gt();

// A forward-looking spec the paper speculates about in Sec. 5.1.2: a GPU
// with 64-bit integer ALUs would double loop-based throughput. Used by the
// ablation bench only.
const DeviceSpec& hypothetical_64bit();

}  // namespace extnc::simgpu
