// Analytic timing model: KernelMetrics + DeviceSpec -> seconds.
//
// The model follows the paper's own Sec. 4.3 accounting:
//   compute side  — every scalar instruction occupies one SP issue slot;
//                   the SM's shared-memory pipeline serializes conflicting
//                   half-warp accesses at 2 cycles per serialized access,
//                   and only the *excess* (conflict) cycles add to the
//                   critical path (a conflict-free access is covered by
//                   its own issue slot);
//   memory side   — coalesced transactions stream at device bandwidth with
//                   a 32-byte minimum granule; texture misses count as
//                   transactions, hits are free;
//   occupancy     — an SM hides latency only with enough resident warps;
//                   utilization ramps as w / (w + w50). This is what makes
//                   single-segment decoding of small blocks slow (Sec. 4.3)
//                   and multi-segment decoding fast (Sec. 5.2).
// Compute and memory overlap (the paper measures the overlap as nearly
// perfect for encoding — the dummy-input ablation), so total is
// max(compute, memory) plus a fixed per-launch overhead.
//
// Calibration constants live in Calibration with their derivations;
// EXPERIMENTS.md records the resulting paper-vs-model numbers.
#pragma once

#include "simgpu/device_spec.h"
#include "simgpu/metrics.h"

namespace extnc::simgpu {

struct Calibration {
  // Fraction of peak issue rate a tuned kernel sustains; the paper derives
  // 91% for the loop-based encoder ("effectively achieves 91% of the
  // advertised computing power", Sec. 4.3) and our model uses a slightly
  // higher raw efficiency so that the modeled end-to-end rate (which also
  // pays launch overhead) lands on the measured one.
  double compute_efficiency = 0.97;
  // Per-kernel-launch fixed cost (driver + dispatch), seconds.
  double launch_overhead_s = 10e-6;
  // Resident warps per SM at which latency hiding reaches 50% (squared
  // ramp; see occupancy_factor).
  double warps_at_half_utilization = 2.6;
  // Minimum global-memory transaction granule, bytes.
  double min_transaction_bytes = 32.0;
  // Cost of one block-wide __syncthreads() step (pipeline drain + refill).
  // Barrier chains are per-SM-resident-block: total sync time is the
  // longest chain, i.e. barriers / blocks. This k-independent serial cost
  // is what makes GPU decoding of small blocks launch/sync-bound — and why
  // the 8800 GT matches the GTX 280 there (Sec. 4.3: "virtually the same
  // performance ... up to a block size of 1024 bytes").
  double barrier_latency_s = 0.25e-6;
};

struct TimeBreakdown {
  double compute_s = 0;
  double memory_s = 0;
  double launch_s = 0;
  double occupancy = 1.0;  // utilization factor applied to compute
  double total_s = 0;
};

TimeBreakdown estimate_time(const DeviceSpec& spec, const KernelMetrics& m,
                            const Calibration& calib = Calibration{});

// Memoized front-end for estimate_time. The model is a pure function of
// (device spec, calibration, metrics incl. launch geometry); fleet runs
// re-evaluate it for thousands of identical launches, so results are
// cached process-wide keyed on exact equality of every input field the
// model reads (no digests — a key either matches bit-for-bit or misses).
// Hit/miss counts surface as simgpu.timing.memo_hit / memo_miss in the
// metrics registry. The cache is bounded; when full it is cleared.
TimeBreakdown estimate_time_cached(const DeviceSpec& spec,
                                   const KernelMetrics& m,
                                   const Calibration& calib = Calibration{});

// Drop every memoized entry (tests; also safe any time — the cache is an
// optimization only and never changes results).
void clear_timing_memo();

// Utilization factor for a given launch geometry (exposed for scheme-level
// analytic models in src/gpu).
double occupancy_factor(const DeviceSpec& spec, std::size_t blocks,
                        std::size_t threads_per_block,
                        const Calibration& calib = Calibration{});

}  // namespace extnc::simgpu
