// Kernel sanitizer for the simulated GPU (the simgpu analogue of CUDA's
// compute-sanitizer/racecheck).
//
// An opt-in instrumentation layer behind LaunchConfig::check (or the
// EXTNC_SIMGPU_CHECK environment variable) that hooks the existing
// ThreadCtx/BlockCtx access paths and reports, with kernel label + lane +
// barrier-segment attribution:
//
//  * intra-block shared-memory hazards — a write/write or read/write pair
//    touching the same byte from different lanes within one barrier
//    segment. The executor runs lanes serially so such a pair happens to
//    produce deterministic bytes here, but on the real device the lanes
//    run concurrently and the result is indeterminate; the only exemption
//    is a pair of *atomic* accesses (atomics serialize in hardware).
//  * shared/global out-of-bounds and misaligned u32 accesses. OOB accesses
//    are suppressed (loads read 0, stores are dropped) so a checked run
//    can finish and report everything it found. Global bounds come from
//    the regions registered with Checker::watch_global; with no regions
//    registered only alignment is checked.
//  * barrier divergence — a partial step whose lane participation differs
//    from the launch's declared shape (LaunchShape::partial_counts). On
//    hardware a barrier not reached by all threads hangs or corrupts the
//    block; kernels must declare every intended "if (tid < c)" width.
//  * reads of never-written shared memory — enforcing the paper's
//    "shared memory is not persistent across kernel calls" assumption
//    (Sec. 5.1.2): a block consuming bytes it never produced this launch
//    is relying on leftover state that does not exist on the device.
//
// plus advisory perf lints (never fatal, never affect exit codes):
//  * bank-conflict hotspots — a half-warp shared access whose serialized
//    degree meets CheckConfig::bank_conflict_threshold;
//  * uncoalesced sweeps — a half-warp global access touching at least
//    CheckConfig::uncoalesced_threshold distinct 64-byte segments.
//
// Findings are collected per block and merged in ascending block order,
// so serial and parallel engines produce bit-identical CheckReports (the
// same argument as for KernelMetrics; see DESIGN.md "Kernel sanitizer").
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace extnc::simgpu {

enum class CheckKind : std::uint8_t {
  kSharedWriteWrite = 0,  // two lanes wrote one byte in one segment
  kSharedReadWrite,       // read and write of one byte raced in one segment
  kSharedOob,             // shared access outside the scratchpad
  kSharedMisaligned,      // u32 shared access not 4-byte aligned
  kGlobalOob,             // global access outside every watched region
  kGlobalMisaligned,      // u32 global access not 4-byte aligned
  kBarrierDivergence,     // partial step with an undeclared lane count
  kStaleSharedRead,       // read of shared memory never written this block
  kBankConflictLint,      // advisory: serialized degree over threshold
  kUncoalescedLint,       // advisory: half-warp transactions over threshold
};
inline constexpr std::size_t kCheckKindCount = 10;

// Stable snake_case name, also used for metrics-registry keys
// ("simgpu.check.<name>").
const char* check_kind_name(CheckKind kind);
// Advisory kinds inform; they never make a report dirty or a launch throw.
bool check_kind_advisory(CheckKind kind);

// One finding. Field semantics by kind:
//  * shared hazards / stale reads: address = shared byte offset, lane =
//    the access that completed the hazard, other_lane = the earlier party
//    (writer for WW/RW), value unused;
//  * OOB / misaligned: address = shared offset or global address, size =
//    access width, lane = accessing lane;
//  * barrier divergence: value = the undeclared lane count;
//  * lints: lane = first lane of the half-warp, address = the access
//    sequence number (the instruction site), value = conflict degree or
//    transaction count.
struct CheckFinding {
  static constexpr std::size_t kNoLane = static_cast<std::size_t>(-1);

  CheckKind kind = CheckKind::kSharedWriteWrite;
  std::string label;  // Launcher launch label at the time of the launch
  std::size_t block = 0;
  std::uint64_t segment = 0;  // barrier-segment index within the block
  std::size_t lane = kNoLane;
  std::size_t other_lane = kNoLane;
  std::uint64_t address = 0;
  std::size_t size = 0;
  std::uint64_t value = 0;

  std::string to_string() const;
  friend bool operator==(const CheckFinding&, const CheckFinding&) = default;
};

// Aggregated result of one or more checked launches. `findings` holds the
// first deduplicated findings (per byte and segment for hazards, per byte
// for stale reads, per site for lints), capped by CheckConfig;
// `counts` totals every detected event, never capped.
struct CheckReport {
  std::vector<CheckFinding> findings;
  std::array<std::uint64_t, kCheckKindCount> counts{};
  std::uint64_t checked_launches = 0;

  std::uint64_t errors() const;      // non-advisory events
  std::uint64_t advisories() const;  // advisory events
  bool clean() const { return errors() == 0; }
  std::uint64_t total() const { return errors() + advisories(); }

  void merge(const CheckReport& other, std::size_t max_findings);
  std::string to_string(std::size_t max_findings = 20) const;
  friend bool operator==(const CheckReport&, const CheckReport&) = default;
};

struct CheckConfig {
  enum class Mode {
    kThrow,    // a launch with any error finding throws CheckError
    kCollect,  // accumulate across launches; caller inspects report()
  };
  Mode mode = Mode::kThrow;
  // Advisory perf lints on/off and their trigger thresholds.
  bool perf_lints = true;
  std::uint64_t bank_conflict_threshold = 8;
  std::uint64_t uncoalesced_threshold = 16;
  // Caps on stored findings (event *counts* are never capped).
  std::size_t max_findings_per_launch = 64;
  std::size_t max_findings_total = 256;
};

// Thrown by a checked launch in kThrow mode. The launch itself completed
// and was fully accounted (metrics, profiler record, injector contract)
// before the throw, so the device state stays consistent.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(CheckReport report);
  const CheckReport& report() const { return *report_; }

 private:
  std::shared_ptr<const CheckReport> report_;  // shared: exceptions copy
};

// The sanitizer itself: attach to one or more Launchers (set_checker) or
// let EXTNC_SIMGPU_CHECK create a per-launcher one. Region registration
// and config mutation must happen with no launch in flight; absorb() (the
// launcher-facing sink) is internally synchronized so several launchers
// can share one checker.
class Checker {
 public:
  explicit Checker(CheckConfig config = {}) : config_(config) {}

  const CheckConfig& config() const { return config_; }
  CheckConfig& config() { return config_; }

  // Register [base, base+size) as a valid global region named `name`.
  // Re-registering the same base replaces the previous entry, so
  // steady-state buffers can be registered idempotently per call site.
  void watch_global(const void* base, std::size_t size, std::string name);
  void unwatch_global(const void* base);
  void clear_globals();
  bool has_globals() const { return !regions_.empty(); }
  // True when [addr, addr+size) lies inside one watched region.
  bool contains_global(std::uintptr_t addr, std::size_t size) const;

  // RAII registration for per-call scratch buffers; unwatches on scope
  // exit so dead regions never accumulate. A null checker is a no-op.
  class ScopedWatch {
   public:
    ScopedWatch() = default;
    ScopedWatch(Checker* checker, const void* base, std::size_t size,
                std::string name);
    ScopedWatch(ScopedWatch&& other) noexcept;
    ScopedWatch& operator=(ScopedWatch&& other) noexcept;
    ScopedWatch(const ScopedWatch&) = delete;
    ScopedWatch& operator=(const ScopedWatch&) = delete;
    ~ScopedWatch();

   private:
    Checker* checker_ = nullptr;
    const void* base_ = nullptr;
  };

  // Cumulative report over every checked launch since the last reset().
  const CheckReport& report() const { return report_; }
  void reset();

  // Launcher-facing: fold one launch's report into the cumulative one and
  // feed the metrics registry. Returns true when the caller must throw
  // (kThrow mode and the launch had error findings). Thread-safe.
  bool absorb(const CheckReport& launch_report);

 private:
  struct GlobalRegion {
    std::uintptr_t base = 0;
    std::size_t size = 0;
    std::string name;
  };

  CheckConfig config_;
  std::vector<GlobalRegion> regions_;  // sorted by base
  CheckReport report_;
  mutable std::mutex mutex_;  // guards report_ (absorb vs. absorb)
};

// Parsed EXTNC_SIMGPU_CHECK: unset/"0"/"off" -> nullopt (checking off
// unless a checker is attached), "1"/"on"/"throw" -> kThrow, "collect" ->
// kCollect. Read per call so tests can toggle it.
std::optional<CheckConfig::Mode> env_check_mode();

// One launch's per-block finding sink; merged in ascending block order.
struct BlockCheckSink {
  std::vector<CheckFinding> findings;
  std::array<std::uint64_t, kCheckKindCount> counts{};
};

// Per-worker instrumentation scratch, reused across the blocks a worker
// runs (mirrors how BlockCtx reuses its accounting vectors). Owned by the
// executor; not part of the public API.
class BlockCheckState {
 public:
  void attach(const Checker& checker, std::size_t threads_per_block,
              std::vector<std::size_t> declared_partials,
              std::size_t half_warp, std::size_t shared_size,
              std::string_view label);
  void begin_block(std::size_t block, BlockCheckSink* sink);

  // Access hooks; the bool returns mean "perform the access" (false ==
  // suppressed OOB). `is_write` covers the write half of an atomic RMW;
  // the read half is implied by `is_atomic`.
  bool on_shared(std::size_t lane, std::size_t offset, std::size_t size,
                 bool is_write, bool is_atomic);
  bool on_global(std::size_t lane, std::uintptr_t addr, std::size_t size);
  void on_partial_step(std::size_t count);
  void on_barrier();
  // Half-warp aggregation hooks (advisory lints), fed by flush_half_warp.
  void on_shared_group(std::size_t half_warp, std::uint32_t seq,
                       std::uint64_t degree);
  void on_global_group(std::size_t half_warp, std::uint32_t seq,
                       std::uint32_t transactions);

 private:
  void record(CheckFinding finding);
  void count_only(CheckKind kind);

  const Checker* checker_ = nullptr;
  std::size_t threads_per_block_ = 0;
  std::vector<std::size_t> declared_partials_;
  std::size_t half_warp_ = 16;
  std::size_t shared_size_ = 0;
  std::string label_;

  BlockCheckSink* sink_ = nullptr;
  std::size_t block_ = 0;
  std::uint64_t segment_ = 0;  // barrier segment within the current block
  std::uint64_t stamp_ = 0;    // unique per (block, segment); never reset

  // Per-byte shared-memory tracking. The stamp makes segment state
  // self-invalidating (no per-barrier clears of 16 KB arrays); the
  // block-scoped flags are cleared once per block.
  std::vector<std::uint64_t> touch_stamp_;  // segment state valid marker
  std::vector<std::uint16_t> writer_;       // lane+1 of last writer
  std::vector<std::uint16_t> reader_;       // lane+1 of last reader
  std::vector<std::uint8_t> seg_flags_;     // kAtomicWriter | kHazardSeen
  std::vector<std::uint8_t> block_flags_;   // kWritten | kStaleSeen

  std::vector<std::size_t> reported_partials_;     // divergence dedup
  std::unordered_set<std::uint64_t> lint_seen_;    // (segment, seq) dedup

  static constexpr std::uint8_t kAtomicWriter = 1;
  static constexpr std::uint8_t kHazardSeen = 2;
  static constexpr std::uint8_t kWritten = 1;
  static constexpr std::uint8_t kStaleSeen = 2;
};

}  // namespace extnc::simgpu
