// Host execution-engine selection for the simulated GPU.
//
// A simgpu launch can run its thread blocks serially on the calling thread
// (the original engine, and the oracle in equivalence tests) or scheduled
// across a process-wide host worker pool (the parallel engine). Blocks are
// independent by construction — barriers only synchronize lanes within a
// block, exactly CUDA's contract — so the parallel engine is bit-identical
// to the serial one (see DESIGN.md, "Parallel block execution").
//
// Selection order, most specific wins:
//   1. LaunchConfig::engine (per launch)
//   2. set_default_engine()  (process-wide programmatic override)
//   3. EXTNC_SIMGPU_ENGINE   (environment: "serial" | "parallel" | "auto")
//   4. kAuto, which resolves to parallel when a launch has enough blocks
//      to span more than one texture-cache unit and the pool has more than
//      one worker.
// The worker-pool size comes from EXTNC_SIMGPU_THREADS (0/unset selects
// std::thread::hardware_concurrency()).
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

#include "util/thread_pool.h"

namespace extnc::simgpu {

enum class ExecEngine {
  kAuto,
  kSerial,
  kParallel,
};

const char* engine_name(ExecEngine engine);

// Parse "serial" | "parallel" | "auto"; nullopt on anything else.
std::optional<ExecEngine> parse_engine(std::string_view text);

// Process-wide default engine. First use initializes it from
// EXTNC_SIMGPU_ENGINE (kAuto when unset or unparsable).
ExecEngine default_engine();
// Programmatic override of the process default — the in-process equivalent
// of the environment variable, used by benches and the equivalence tests
// to pin an engine for whole operations whose internal launches use kAuto.
void set_default_engine(ExecEngine engine);

// The shared host worker pool the parallel engine schedules on. Created
// lazily on first use; sized from EXTNC_SIMGPU_THREADS.
ThreadPool& engine_pool();

// Process-wide toggle for the zero-instrumentation fast path: kernels that
// ship a bulk lowering (src/gpu) execute whole half-warps through the host
// SIMD GF(2^8) region ops with bulk accounting instead of interpreting
// lane-at-a-time, whenever the launch runs unchecked (no sanitizer). The
// fast path is bit-identical to the interpreted engines — outputs, every
// KernelMetrics field, modeled clocks, traces — so it defaults to ON; it
// exists as a toggle so equivalence tests and overhead measurements can
// pin the interpreted path. First use initializes from EXTNC_SIMGPU_FAST
// ("0" disables; anything else, or unset, enables).
bool fast_path_enabled();
void set_fast_path_enabled(bool enabled);

// Raw environment readers behind the lazy defaults above, exposed so the
// environment contract stays regression-testable: the defaults latch once
// per process, but these re-read the environment on every call.
//   engine_from_env  — EXTNC_SIMGPU_ENGINE, kAuto when unset/unparsable
//   threads_from_env — EXTNC_SIMGPU_THREADS, 0 (hardware concurrency)
//                      when unset/unparsable
//   fast_from_env    — EXTNC_SIMGPU_FAST, true unless exactly "0"
ExecEngine engine_from_env();
std::size_t threads_from_env();
bool fast_from_env();

}  // namespace extnc::simgpu
