// SWAR (SIMD-within-a-register) GF(2^8) multiplication: one coefficient
// byte times a packed word of 4 or 8 field elements.
//
// This is the exact operation the paper's loop-based GPU kernel performs
// per thread ("single byte by 4-byte word GF-multiplication", Sec. 4.1):
// CUDA cores have plain 32-bit ALUs, so each thread multiplies a
// coefficient into one 32-bit word of the source block per step. The
// 64-bit form is what a scalar CPU without vector units would use, and is
// also the building block of the SSE2 fallback region ops.
#pragma once

#include <cstdint>

#include "gf256/gf.h"

namespace extnc::gf256 {

// Per-byte xtime on 4 packed field elements.
constexpr std::uint32_t xtime_packed(std::uint32_t w) {
  const std::uint32_t high_bits = w & 0x80808080u;
  // (high_bits >> 7) has a 0/1 in each byte's LSB; multiplying by 0x1b
  // expands each 1 into the reduction constant without cross-byte carries.
  return ((w & 0x7f7f7f7fu) << 1) ^ ((high_bits >> 7) * kPolyLow);
}

constexpr std::uint64_t xtime_packed(std::uint64_t w) {
  const std::uint64_t high_bits = w & 0x8080808080808080ull;
  return ((w & 0x7f7f7f7f7f7f7f7full) << 1) ^ ((high_bits >> 7) * kPolyLow);
}

// coefficient * packed word, looping over the set bits of the coefficient
// (the paper's "loop-based" multiplication, average ~7 iterations for a
// random nonzero coefficient).
constexpr std::uint32_t mul_byte_word(std::uint8_t c, std::uint32_t w) {
  std::uint32_t result = 0;
  while (c != 0) {
    if (c & 1) result ^= w;
    w = xtime_packed(w);
    c = static_cast<std::uint8_t>(c >> 1);
  }
  return result;
}

constexpr std::uint64_t mul_byte_word(std::uint8_t c, std::uint64_t w) {
  std::uint64_t result = 0;
  while (c != 0) {
    if (c & 1) result ^= w;
    w = xtime_packed(w);
    c = static_cast<std::uint8_t>(c >> 1);
  }
  return result;
}

// Iterations the loop-based multiply executes for this coefficient: the
// position of its highest set bit (0 for c == 0). Used by the GPU timing
// model to charge the same per-coefficient cost the hardware would see.
constexpr int loop_iterations(std::uint8_t c) {
  int bits = 0;
  while (c != 0) {
    ++bits;
    c = static_cast<std::uint8_t>(c >> 1);
  }
  return bits;
}

}  // namespace extnc::gf256
