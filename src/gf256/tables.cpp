#include "gf256/gf.h"

#include "util/assert.h"

namespace extnc::gf256 {

namespace {

Tables build_tables() {
  Tables t{};

  // Generate exp/log from the group generator.
  std::uint8_t value = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[i] = value;
    t.log[value] = static_cast<std::uint8_t>(i);
    value = mul_loop(value, kGenerator);
  }
  EXTNC_CHECK(value == 1);  // kGenerator must have order 255
  for (int i = 255; i < 512; ++i) t.exp[i] = t.exp[i - 255];
  t.log[0] = kLogZero;

  // Shifted-log layout: log'(0) = 0, log'(x) = log(x) + 1, and
  // exp'[s] = exp[s - 2] so that exp'[log'(x) + log'(y)] == x*y for
  // nonzero x, y (sums range over [2, 510]).
  t.log_shifted[0] = 0;
  for (int x = 1; x < 256; ++x) {
    t.log_shifted[x] = static_cast<std::uint8_t>(t.log[x] + 1);
  }
  t.exp_shifted[0] = 0;
  t.exp_shifted[1] = 0;
  for (int s = 2; s < 512; ++s) t.exp_shifted[s] = t.exp[s - 2];

  // Full product table and inverses.
  for (int x = 0; x < 256; ++x) {
    for (int y = 0; y < 256; ++y) {
      t.mul[(x << 8) | y] =
          mul_loop(static_cast<std::uint8_t>(x), static_cast<std::uint8_t>(y));
    }
  }
  t.inv[0] = 0;
  for (int x = 1; x < 256; ++x) {
    t.inv[x] = t.exp[255 - t.log[x]];
    EXTNC_CHECK(t.mul[(x << 8) | t.inv[x]] == 1);
  }
  return t;
}

}  // namespace

const Tables& tables() {
  static const Tables t = build_tables();
  return t;
}

std::uint8_t pow(std::uint8_t x, unsigned e) {
  if (e == 0) return 1;
  if (x == 0) return 0;
  const Tables& t = tables();
  const unsigned log_result = (t.log[x] * static_cast<unsigned long long>(e)) % 255;
  return t.exp[log_result];
}

}  // namespace extnc::gf256
