// Bulk region operations over GF(2^8): the row operations of network
// coding (dst ^= c * src, dst = c * src, dst ^= src, dst *= c).
//
// One function-pointer dispatch table is selected at startup from the best
// instruction set the host supports (AVX2 > SSSE3 > SSE2-SWAR > scalar);
// tests can force any backend to cross-check them against the scalar
// reference. All backends accept arbitrary lengths and alignments; the
// vector paths peel unaligned heads/tails.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace extnc::gf256 {

struct Ops {
  const char* name;

  // dst[i] ^= src[i]
  void (*add_region)(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t len);
  // dst[i] = c * src[i]
  void (*mul_region)(std::uint8_t* dst, const std::uint8_t* src,
                     std::uint8_t c, std::size_t len);
  // dst[i] ^= c * src[i]   (the network-coding inner loop)
  void (*mul_add_region)(std::uint8_t* dst, const std::uint8_t* src,
                         std::uint8_t c, std::size_t len);
  // dst[i] = c * dst[i]    (row scaling during Gauss-Jordan)
  void (*scale_region)(std::uint8_t* dst, std::uint8_t c, std::size_t len);
};

// Best backend for this machine (resolved once).
const Ops& ops();

// All backends the current machine can run, best first. The scalar backend
// is always present and always last.
const std::vector<const Ops*>& available_backends();

// Look up a backend by name ("scalar", "swar64", "ssse3", "avx2");
// nullptr if unknown or unsupported on this host.
const Ops* find_backend(std::string_view name);

// Scalar reference backend (table-driven); used by tests as ground truth.
const Ops& scalar_ops();

// Portable 64-bit SWAR backend (loop-based multiplication, the CPU analog
// of the paper's GPU kernel inner loop).
const Ops& swar64_ops();

}  // namespace extnc::gf256
