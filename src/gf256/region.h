// Bulk region operations over GF(2^8): the row operations of network
// coding (dst ^= c * src, dst = c * src, dst ^= src, dst *= c) plus the
// fused multi-source kernel dst ^= sum_i c_i * src_i.
//
// One function-pointer dispatch table is selected at startup from the best
// instruction set the host supports. The ladder, best first:
//
//   x86-64:  gfni512 > gfni256 > avx2 > ssse3 > swar64 > scalar
//   arm64:   neon > swar64 > scalar
//
// The environment variable EXTNC_GF256_BACKEND forces a specific backend
// process-wide (CI loops the unit tests over every supported name); an
// unknown or unsupported name aborts with the supported set spelled out,
// so a forced run can never silently fall back to a different kernel.
// Tests can also force any backend in-process to cross-check it against
// the scalar reference. All backends accept arbitrary lengths and
// alignments; the vector paths peel unaligned heads/tails (or mask them,
// on AVX-512).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace extnc::gf256 {

struct Ops {
  const char* name;

  // dst[i] ^= src[i]
  void (*add_region)(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t len);
  // dst[i] = c * src[i]
  void (*mul_region)(std::uint8_t* dst, const std::uint8_t* src,
                     std::uint8_t c, std::size_t len);
  // dst[i] ^= c * src[i]   (the network-coding inner loop)
  void (*mul_add_region)(std::uint8_t* dst, const std::uint8_t* src,
                         std::uint8_t c, std::size_t len);
  // dst[i] = c * dst[i]    (row scaling during Gauss-Jordan)
  void (*scale_region)(std::uint8_t* dst, std::uint8_t c, std::size_t len);
  // dst[i] ^= sum_j coeffs[j] * srcs[j][i]  (the fused encoder/recoder
  // inner loop: all source rows accumulate into dst in one
  // destination-blocked pass, so dst is read once per cache block instead
  // of once per source row; zero coefficients are skipped). Every backend
  // computes the same bytes as `count` sequential mul_add_region calls —
  // XOR accumulation is exact and order-independent.
  void (*mul_add_regions)(std::uint8_t* dst,
                          const std::uint8_t* const* srcs,
                          const std::uint8_t* coeffs, std::size_t count,
                          std::size_t len);
};

// Backend for this process (resolved once): the best available backend,
// unless EXTNC_GF256_BACKEND forces another (see resolve_backend).
const Ops& ops();

// All backends the current machine can run, best first. The scalar backend
// is always present and always last.
const std::vector<const Ops*>& available_backends();

// Every backend name compiled into this build, best first, whether or not
// this host supports it. The single source of truth for tools, tests and
// error messages — new backends appear here automatically.
std::span<const std::string_view> registered_backend_names();

// Comma-separated names of available_backends() (for error messages).
std::string available_backend_list();

// Look up a backend by name (any entry of registered_backend_names());
// nullptr if unknown or unsupported on this host.
const Ops* find_backend(std::string_view name);

// Resolve a backend-forcing request (the EXTNC_GF256_BACKEND contract):
// an empty name selects the best available backend; otherwise the named
// one. Unknown or host-unsupported names return nullptr and, when `error`
// is non-null, fill it with a message enumerating the supported set.
const Ops* resolve_backend(std::string_view name, std::string* error);

// Scalar reference backend (table-driven); used by tests as ground truth.
const Ops& scalar_ops();

// Portable 64-bit SWAR backend (loop-based multiplication, the CPU analog
// of the paper's GPU kernel inner loop).
const Ops& swar64_ops();

}  // namespace extnc::gf256
