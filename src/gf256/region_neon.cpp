// NEON region backend for arm64 (vqtbl1q_u8 nibble-table multiplication,
// the arm analog of the SSSE3/AVX2 pshufb backends; sparsenc ships the
// same strategy in its galois_neon kernels).
//
// AArch64 guarantees AdvSIMD, so the backend is available whenever this
// translation unit compiles for arm64 — no runtime feature probe needed.
// On every other architecture this file contributes only the nullptr
// registry hook.
#include "gf256/region_backends.h"

#include <algorithm>
#include <cstring>

#include "gf256/gf.h"
#include "gf256/region.h"

#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace extnc::gf256 {

#if defined(__aarch64__)

namespace {

// Destination block the fused kernel keeps cache-resident (matches the
// x86 fused kernels; see region_simd.cpp).
constexpr std::size_t kFusedBlockBytes = 32 * 1024;

struct NeonNibbleTables {
  uint8x16_t lo;  // c * i for the low nibble i
  uint8x16_t hi;  // c * (i << 4) for the high nibble i
};

NeonNibbleTables make_neon_tables(std::uint8_t c) {
  alignas(16) std::uint8_t lo[16];
  alignas(16) std::uint8_t hi[16];
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (int i = 0; i < 16; ++i) {
    lo[i] = row[i];
    hi[i] = row[i << 4];
  }
  return {vld1q_u8(lo), vld1q_u8(hi)};
}

inline uint8x16_t mul_block_neon(uint8x16_t src, const NeonNibbleTables& t) {
  const uint8x16_t lo_nib = vandq_u8(src, vdupq_n_u8(0x0f));
  const uint8x16_t hi_nib = vshrq_n_u8(src, 4);
  return veorq_u8(vqtbl1q_u8(t.lo, lo_nib), vqtbl1q_u8(t.hi, hi_nib));
}

void neon_add(std::uint8_t* dst, const std::uint8_t* src, std::size_t len) {
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), vld1q_u8(src + i)));
  }
  for (; i < len; ++i) dst[i] ^= src[i];
}

void neon_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
              std::size_t len) {
  if (c == 0) {
    if (len != 0) std::memset(dst, 0, len);  // empty span may carry nullptr
    return;
  }
  const NeonNibbleTables t = make_neon_tables(c);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    vst1q_u8(dst + i, mul_block_neon(vld1q_u8(src + i), t));
  }
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (; i < len; ++i) dst[i] = row[src[i]];
}

void neon_mul_add(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                  std::size_t len) {
  if (c == 0) return;
  const NeonNibbleTables t = make_neon_tables(c);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const uint8x16_t d = vld1q_u8(dst + i);
    vst1q_u8(dst + i, veorq_u8(d, mul_block_neon(vld1q_u8(src + i), t)));
  }
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (; i < len; ++i) dst[i] ^= row[src[i]];
}

void neon_scale(std::uint8_t* dst, std::uint8_t c, std::size_t len) {
  neon_mul(dst, dst, c, len);
}

void neon_mul_add_regions(std::uint8_t* dst, const std::uint8_t* const* srcs,
                          const std::uint8_t* coeffs, std::size_t count,
                          std::size_t len) {
  constexpr std::size_t kGroup = 8;
  const std::uint8_t* group_src[kGroup];
  const std::uint8_t* group_row[kGroup];
  NeonNibbleTables group_tables[kGroup];
  for (std::size_t base = 0; base < len; base += kFusedBlockBytes) {
    const std::size_t blen = std::min(kFusedBlockBytes, len - base);
    std::size_t next = 0;
    while (next < count) {
      std::size_t m = 0;
      for (; next < count && m < kGroup; ++next) {
        const std::uint8_t c = coeffs[next];
        if (c == 0) continue;
        group_src[m] = srcs[next] + base;
        group_row[m] = &tables().mul[static_cast<std::size_t>(c) << 8];
        group_tables[m] = make_neon_tables(c);
        ++m;
      }
      if (m == 0) continue;  // trailing zero coefficients
      std::uint8_t* out = dst + base;
      std::size_t i = 0;
      for (; i + 16 <= blen; i += 16) {
        uint8x16_t d = vld1q_u8(out + i);
        for (std::size_t j = 0; j < m; ++j) {
          d = veorq_u8(
              d, mul_block_neon(vld1q_u8(group_src[j] + i), group_tables[j]));
        }
        vst1q_u8(out + i, d);
      }
      for (; i < blen; ++i) {
        std::uint8_t d = out[i];
        for (std::size_t j = 0; j < m; ++j) d ^= group_row[j][group_src[j][i]];
        out[i] = d;
      }
    }
  }
}

const Ops kNeonOps{"neon",     neon_add,
                   neon_mul,   neon_mul_add,
                   neon_scale, neon_mul_add_regions};

}  // namespace

const Ops* neon_backend() { return &kNeonOps; }

#else  // !defined(__aarch64__)

const Ops* neon_backend() { return nullptr; }

#endif

}  // namespace extnc::gf256
