// Internal cross-file hooks of the gf256 backend registry. Each
// platform-specific translation unit exposes its backend through one of
// these (returning nullptr when compiled out or unsupported), so the
// registry in region_simd.cpp stays the single place that orders the
// dispatch ladder.
#pragma once

namespace extnc::gf256 {

struct Ops;

// NEON backend (region_neon.cpp); nullptr on non-arm64 builds.
const Ops* neon_backend();

}  // namespace extnc::gf256
