// Scalar GF(2^8) arithmetic in Rijndael's field (x^8 + x^4 + x^3 + x + 1).
//
// The paper uses two multiplication strategies and we implement both:
//  * table-based: exp[log[x] + log[y]], three memory reads (Fig. 1), plus
//    the log-domain "preprocessed" variant of Fig. 5 and the shifted-log
//    variant of Sec. 5.1.3 whose zero sentinel is 0x00 instead of 0xff;
//  * loop-based: Russian-peasant multiplication with xtime reduction,
//    which vectorizes (SWAR / SIMD) because it needs no table lookups.
#pragma once

#include <cstdint>

namespace extnc::gf256 {

// Rijndael reduction polynomial x^8+x^4+x^3+x+1 (0x11b), low byte.
inline constexpr std::uint8_t kPolyLow = 0x1b;
// Generator used to build log/exp tables; 0x03 generates the full
// multiplicative group of Rijndael's field.
inline constexpr std::uint8_t kGenerator = 0x03;
// log(0) sentinel in the classic table layout (Fig. 1 of the paper).
inline constexpr std::uint8_t kLogZero = 0xff;

// Addition and subtraction in GF(2^8) are both XOR.
constexpr std::uint8_t add(std::uint8_t x, std::uint8_t y) {
  return static_cast<std::uint8_t>(x ^ y);
}

// xtime: multiply by the polynomial x (i.e. 0x02), reducing mod 0x11b.
constexpr std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>(
      static_cast<std::uint8_t>(x << 1) ^ ((x & 0x80) ? kPolyLow : 0));
}

// Loop-based ("Russian peasant") multiplication; the scalar form of the
// kernel inner loop in the paper's prior work and of all SIMD backends.
constexpr std::uint8_t mul_loop(std::uint8_t x, std::uint8_t y) {
  std::uint8_t r = 0;
  while (x != 0) {
    if (x & 1) r = add(r, y);
    y = xtime(y);
    x >>= 1;
  }
  return r;
}

struct Tables {
  // log[x] for x != 0 is the discrete log base kGenerator; log[0] = 0xff.
  std::uint8_t log[256];
  // exp[i] = kGenerator^i for i in [0, 255); doubled so that
  // exp[log[x] + log[y]] never needs a modulo (sums reach 508).
  std::uint8_t exp[512];
  // Shifted-log layout (paper Sec. 5.1.3, "Table-based-3"): zero maps to
  // 0x00 and every nonzero log is shifted up by one, so the zero test in
  // the multiply kernel becomes a compare-against-zero that GPUs fold into
  // predicated instructions. exp_shifted compensates: for sums s >= 2,
  // exp_shifted[s] == exp[s - 2].
  std::uint8_t log_shifted[256];
  std::uint8_t exp_shifted[512];
  // Full 256x256 product table; mul[x << 8 | y] == x*y. Used by the CPU
  // table baseline and to derive per-coefficient nibble tables for SIMD.
  std::uint8_t mul[256 * 256];
  // inv[x] for x != 0; inv[0] = 0.
  std::uint8_t inv[256];
};

// Immutable process-wide tables, built once on first use.
const Tables& tables();

// Table-based multiplication exactly as the paper's Fig. 1.
inline std::uint8_t mul(std::uint8_t x, std::uint8_t y) {
  const Tables& t = tables();
  if (x == 0 || y == 0) return 0;
  return t.exp[t.log[x] + t.log[y]];
}

// Fig. 5: inputs already transformed to the log domain (0xff == log(0)).
inline std::uint8_t mul_preprocessed(std::uint8_t log_x, std::uint8_t log_y) {
  if (log_x == kLogZero || log_y == kLogZero) return 0;
  return tables().exp[log_x + log_y];
}

// Sec. 5.1.3 shifted-log variant: zero sentinel is 0x00.
inline std::uint8_t mul_preprocessed_shifted(std::uint8_t slog_x,
                                             std::uint8_t slog_y) {
  if (slog_x == 0 || slog_y == 0) return 0;
  return tables().exp_shifted[slog_x + slog_y];
}

// Multiplicative inverse; inv(0) is defined as 0 for convenience.
inline std::uint8_t inv(std::uint8_t x) { return tables().inv[x]; }

// x / y with y != 0.
inline std::uint8_t div(std::uint8_t x, std::uint8_t y) {
  const Tables& t = tables();
  if (x == 0) return 0;
  return t.exp[t.log[x] + 255 - t.log[y]];
}

// x^e by log/exp; pow(0, 0) == 1 by convention.
std::uint8_t pow(std::uint8_t x, unsigned e);

}  // namespace extnc::gf256
