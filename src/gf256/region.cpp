#include "gf256/region.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "gf256/gf.h"
#include "gf256/swar.h"

namespace extnc::gf256 {

namespace {

// ---------------------------------------------------------------- scalar

void scalar_add(std::uint8_t* dst, const std::uint8_t* src, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) dst[i] ^= src[i];
}

void scalar_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                std::size_t len) {
  if (c == 0) {
    if (len != 0) std::memset(dst, 0, len);  // empty span may carry nullptr
    return;
  }
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (std::size_t i = 0; i < len; ++i) dst[i] = row[src[i]];
}

void scalar_mul_add(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                    std::size_t len) {
  if (c == 0) return;
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (std::size_t i = 0; i < len; ++i) dst[i] ^= row[src[i]];
}

void scalar_scale(std::uint8_t* dst, std::uint8_t c, std::size_t len) {
  if (c == 0) {
    if (len != 0) std::memset(dst, 0, len);  // empty span may carry nullptr
    return;
  }
  if (c == 1) return;
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (std::size_t i = 0; i < len; ++i) dst[i] = row[dst[i]];
}

// The reference for the fused kernel is literally the per-row loop; every
// vector backend must match it byte for byte.
void scalar_mul_add_regions(std::uint8_t* dst,
                            const std::uint8_t* const* srcs,
                            const std::uint8_t* coeffs, std::size_t count,
                            std::size_t len) {
  for (std::size_t j = 0; j < count; ++j) {
    scalar_mul_add(dst, srcs[j], coeffs[j], len);
  }
}

// ---------------------------------------------------------------- swar64
//
// Loop-based multiplication over 8 packed bytes per step. Head/tail bytes
// (to reach 8-byte alignment of dst) go through the scalar path.

void swar64_add(std::uint8_t* dst, const std::uint8_t* src, std::size_t len) {
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t d;
    std::uint64_t s;
    std::memcpy(&d, dst + i, 8);
    std::memcpy(&s, src + i, 8);
    d ^= s;
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < len; ++i) dst[i] ^= src[i];
}

void swar64_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                std::size_t len) {
  if (c == 0) {
    if (len != 0) std::memset(dst, 0, len);  // empty span may carry nullptr
    return;
  }
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t s;
    std::memcpy(&s, src + i, 8);
    const std::uint64_t d = mul_byte_word(c, s);
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < len; ++i) dst[i] = mul_loop(c, src[i]);
}

void swar64_mul_add(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                    std::size_t len) {
  if (c == 0) return;
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t d;
    std::uint64_t s;
    std::memcpy(&d, dst + i, 8);
    std::memcpy(&s, src + i, 8);
    d ^= mul_byte_word(c, s);
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < len; ++i) dst[i] ^= mul_loop(c, src[i]);
}

void swar64_scale(std::uint8_t* dst, std::uint8_t c, std::size_t len) {
  swar64_mul(dst, dst, c, len);
}

// SWAR multiplication is compute-bound, not load/store-bound: per-row
// calls let the compiler hoist the coefficient-dependent mask work out of
// the byte loop, which is worth more than the destination traffic a fused
// accumulator would save (a grouped variant measured 10-25% slower in
// bench/micro_gf256). The SIMD backends, whose multiplies are one
// instruction, fuse for real.
void swar64_mul_add_regions(std::uint8_t* dst,
                            const std::uint8_t* const* srcs,
                            const std::uint8_t* coeffs, std::size_t count,
                            std::size_t len) {
  for (std::size_t j = 0; j < count; ++j) {
    swar64_mul_add(dst, srcs[j], coeffs[j], len);
  }
}

}  // namespace

const Ops& scalar_ops() {
  static constexpr Ops ops{"scalar",     scalar_add,
                           scalar_mul,   scalar_mul_add,
                           scalar_scale, scalar_mul_add_regions};
  return ops;
}

const Ops& swar64_ops() {
  static constexpr Ops ops{"swar64",     swar64_add,
                           swar64_mul,   swar64_mul_add,
                           swar64_scale, swar64_mul_add_regions};
  return ops;
}

std::string available_backend_list() {
  std::string out;
  for (const Ops* backend : available_backends()) {
    if (!out.empty()) out += ", ";
    out += backend->name;
  }
  return out;
}

const Ops* resolve_backend(std::string_view name, std::string* error) {
  if (name.empty()) return available_backends().front();
  if (const Ops* backend = find_backend(name)) return backend;
  if (error != nullptr) {
    *error = "unknown or unsupported gf256 backend \"";
    *error += name;
    *error += "\"; supported on this host: ";
    *error += available_backend_list();
  }
  return nullptr;
}

const Ops& ops() {
  static const Ops& selected = []() -> const Ops& {
    const char* forced = std::getenv("EXTNC_GF256_BACKEND");
    std::string error;
    const Ops* backend = resolve_backend(forced ? forced : "", &error);
    if (backend == nullptr) {
      // Fail loud (but cleanly): a forced run that silently fell back to
      // another kernel would defeat the forced-backend CI matrix.
      std::fprintf(stderr, "extnc: EXTNC_GF256_BACKEND: %s\n", error.c_str());
      std::exit(1);
    }
    return *backend;
  }();
  return selected;
}

}  // namespace extnc::gf256
