#include "gf256/region.h"

#include <cstring>

#include "gf256/gf.h"
#include "gf256/swar.h"

namespace extnc::gf256 {

namespace {

// ---------------------------------------------------------------- scalar

void scalar_add(std::uint8_t* dst, const std::uint8_t* src, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) dst[i] ^= src[i];
}

void scalar_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                std::size_t len) {
  if (c == 0) {
    if (len != 0) std::memset(dst, 0, len);  // empty span may carry nullptr
    return;
  }
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (std::size_t i = 0; i < len; ++i) dst[i] = row[src[i]];
}

void scalar_mul_add(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                    std::size_t len) {
  if (c == 0) return;
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (std::size_t i = 0; i < len; ++i) dst[i] ^= row[src[i]];
}

void scalar_scale(std::uint8_t* dst, std::uint8_t c, std::size_t len) {
  if (c == 0) {
    if (len != 0) std::memset(dst, 0, len);  // empty span may carry nullptr
    return;
  }
  if (c == 1) return;
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (std::size_t i = 0; i < len; ++i) dst[i] = row[dst[i]];
}

// ---------------------------------------------------------------- swar64
//
// Loop-based multiplication over 8 packed bytes per step. Head/tail bytes
// (to reach 8-byte alignment of dst) go through the scalar path.

void swar64_add(std::uint8_t* dst, const std::uint8_t* src, std::size_t len) {
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t d;
    std::uint64_t s;
    std::memcpy(&d, dst + i, 8);
    std::memcpy(&s, src + i, 8);
    d ^= s;
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < len; ++i) dst[i] ^= src[i];
}

void swar64_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                std::size_t len) {
  if (c == 0) {
    if (len != 0) std::memset(dst, 0, len);  // empty span may carry nullptr
    return;
  }
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t s;
    std::memcpy(&s, src + i, 8);
    const std::uint64_t d = mul_byte_word(c, s);
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < len; ++i) dst[i] = mul_loop(c, src[i]);
}

void swar64_mul_add(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                    std::size_t len) {
  if (c == 0) return;
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t d;
    std::uint64_t s;
    std::memcpy(&d, dst + i, 8);
    std::memcpy(&s, src + i, 8);
    d ^= mul_byte_word(c, s);
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < len; ++i) dst[i] ^= mul_loop(c, src[i]);
}

void swar64_scale(std::uint8_t* dst, std::uint8_t c, std::size_t len) {
  swar64_mul(dst, dst, c, len);
}

}  // namespace

const Ops& scalar_ops() {
  static constexpr Ops ops{"scalar", scalar_add, scalar_mul, scalar_mul_add,
                           scalar_scale};
  return ops;
}

const Ops& swar64_ops() {
  static constexpr Ops ops{"swar64", swar64_add, swar64_mul, swar64_mul_add,
                           swar64_scale};
  return ops;
}

}  // namespace extnc::gf256
