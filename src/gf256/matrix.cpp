#include "gf256/matrix.h"

#include <cstring>
#include <vector>

#include "gf256/gf.h"
#include "gf256/region.h"
#include "util/assert.h"

namespace extnc::gf256 {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), storage_(rows * cols) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i, 1);
  return m;
}

Matrix Matrix::random_dense(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    m.storage_[i] = rng.next_nonzero_byte();
  }
  return m;
}

Matrix Matrix::random_invertible(std::size_t n, Rng& rng) {
  for (;;) {
    Matrix m = random_dense(n, n, rng);
    if (m.rank() == n) return m;
  }
}

std::uint8_t Matrix::at(std::size_t r, std::size_t c) const {
  EXTNC_DASSERT(r < rows_ && c < cols_);
  return storage_[r * cols_ + c];
}

void Matrix::set(std::size_t r, std::size_t c, std::uint8_t value) {
  EXTNC_DASSERT(r < rows_ && c < cols_);
  storage_[r * cols_ + c] = value;
}

std::span<std::uint8_t> Matrix::row(std::size_t r) {
  EXTNC_DASSERT(r < rows_);
  return storage_.subspan(r * cols_, cols_);
}

std::span<const std::uint8_t> Matrix::row(std::size_t r) const {
  EXTNC_DASSERT(r < rows_);
  return storage_.subspan(r * cols_, cols_);
}

Matrix Matrix::multiply(const Matrix& other) const {
  EXTNC_CHECK(cols_ == other.rows_);
  Matrix result(rows_, other.cols_);
  multiply_rows(other.data(), other.cols_, result.data());
  return result;
}

void Matrix::multiply_rows(const std::uint8_t* payload,
                           std::size_t payload_cols, std::uint8_t* out) const {
  const Ops& o = ops();
  std::vector<const std::uint8_t*> sources(cols_);
  for (std::size_t j = 0; j < cols_; ++j) {
    sources[j] = payload + j * payload_cols;
  }
  for (std::size_t i = 0; i < rows_; ++i) {
    std::uint8_t* out_row = out + i * payload_cols;
    std::memset(out_row, 0, payload_cols);
    o.mul_add_regions(out_row, sources.data(), storage_.data() + i * cols_,
                      cols_, payload_cols);
  }
}

std::optional<Matrix> Matrix::inverted() const {
  EXTNC_CHECK(rows_ == cols_);
  const std::size_t n = rows_;
  // Reduce the augmented [C | I] to [I | C^-1]; this mirrors the GPU
  // multi-segment decoder's first stage.
  Matrix work(*this);
  Matrix inverse = identity(n);
  const Ops& o = ops();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting over GF: any nonzero entry works.
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return std::nullopt;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work.row(col)[c], work.row(pivot)[c]);
        std::swap(inverse.row(col)[c], inverse.row(pivot)[c]);
      }
    }
    const std::uint8_t scale = inv(work.at(col, col));
    o.scale_region(work.row(col).data(), scale, n);
    o.scale_region(inverse.row(col).data(), scale, n);
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t factor = work.at(r, col);
      if (factor == 0) continue;
      o.mul_add_region(work.row(r).data(), work.row(col).data(), factor, n);
      o.mul_add_region(inverse.row(r).data(), inverse.row(col).data(), factor,
                       n);
    }
  }
  return inverse;
}

std::size_t Matrix::rank() const {
  Matrix work(*this);
  const Ops& o = ops();
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols_ && rank < rows_; ++col) {
    std::size_t pivot = rank;
    while (pivot < rows_ && work.at(pivot, col) == 0) ++pivot;
    if (pivot == rows_) continue;
    if (pivot != rank) {
      for (std::size_t c = 0; c < cols_; ++c) {
        std::swap(work.row(rank)[c], work.row(pivot)[c]);
      }
    }
    const std::uint8_t scale = inv(work.at(rank, col));
    o.scale_region(work.row(rank).data(), scale, cols_);
    for (std::size_t r = rank + 1; r < rows_; ++r) {
      const std::uint8_t factor = work.at(r, col);
      if (factor != 0) {
        o.mul_add_region(work.row(r).data(), work.row(rank).data(), factor,
                         cols_);
      }
    }
    ++rank;
  }
  return rank;
}

bool operator==(const Matrix& a, const Matrix& b) {
  return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.storage_ == b.storage_;
}

}  // namespace extnc::gf256
