// Dense matrices over GF(2^8) with the operations network coding needs:
// Gauss-Jordan inversion (via [C | I] reduction, as the paper's
// multi-segment decoder does), rank, and block multiplication built on the
// SIMD region ops.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "util/aligned_buffer.h"
#include "util/rng.h"

namespace extnc::gf256 {

class Matrix {
 public:
  Matrix() = default;
  // rows x cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols);

  static Matrix identity(std::size_t n);
  // Fully dense random matrix: every entry drawn from [1, 255], matching
  // the paper's "fully dense coding matrices with nonzero coefficients"
  // evaluation setup. Not guaranteed invertible.
  static Matrix random_dense(std::size_t rows, std::size_t cols, Rng& rng);
  // Random matrix guaranteed invertible (retry loop; a random dense GF(256)
  // matrix is invertible with probability ~0.996, so this converges fast).
  static Matrix random_invertible(std::size_t n, Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  std::uint8_t at(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, std::uint8_t value);

  std::span<std::uint8_t> row(std::size_t r);
  std::span<const std::uint8_t> row(std::size_t r) const;

  const std::uint8_t* data() const { return storage_.data(); }
  std::uint8_t* data() { return storage_.data(); }

  // Matrix product this * other (dimensions must agree), using region ops:
  // result.row(i) = sum_j this[i][j] * other.row(j).
  Matrix multiply(const Matrix& other) const;

  // Multiply into raw row-major payload data: rows of `payload` are
  // `payload_cols` bytes long and there must be cols() of them. This is the
  // decoder's b = C^-1 * x step.
  void multiply_rows(const std::uint8_t* payload, std::size_t payload_cols,
                     std::uint8_t* out) const;

  // Gauss-Jordan inverse; nullopt when singular. Square matrices only.
  std::optional<Matrix> inverted() const;

  std::size_t rank() const;

  friend bool operator==(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedBuffer storage_;
};

}  // namespace extnc::gf256
