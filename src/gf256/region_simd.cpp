// SSSE3 / AVX2 region backends (pshufb nibble-table multiplication) and
// the runtime backend registry.
//
// The nibble-table trick: for a fixed coefficient c, precompute
//   lo[i] = c * i          (i = low nibble)
//   hi[i] = c * (i << 4)   (i = high nibble)
// then c * b == lo[b & 0xf] ^ hi[b >> 4], which pshufb evaluates for 16
// (SSSE3) or 32 (AVX2) bytes per instruction. This is the modern
// equivalent of the paper's SSE2 loop-based vectorization, and strictly
// faster; the swar64 backend preserves the paper's original strategy for
// comparison (bench/micro_gf256 measures both).
#include <cstring>

#include "gf256/gf.h"
#include "gf256/region.h"

#if defined(__x86_64__) || defined(__i386__)
#define EXTNC_X86 1
#include <immintrin.h>
#else
#define EXTNC_X86 0
#endif

namespace extnc::gf256 {

namespace {

#if EXTNC_X86

struct NibbleTables {
  alignas(16) std::uint8_t lo[16];
  alignas(16) std::uint8_t hi[16];
};

NibbleTables make_nibble_tables(std::uint8_t c) {
  NibbleTables t;
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (int i = 0; i < 16; ++i) {
    t.lo[i] = row[i];
    t.hi[i] = row[i << 4];
  }
  return t;
}

// ----------------------------------------------------------------- SSSE3

__attribute__((target("ssse3"))) inline __m128i mul_block_ssse3(
    __m128i src, __m128i lo, __m128i hi, __m128i low_mask) {
  const __m128i lo_nib = _mm_and_si128(src, low_mask);
  const __m128i hi_nib = _mm_and_si128(_mm_srli_epi64(src, 4), low_mask);
  return _mm_xor_si128(_mm_shuffle_epi8(lo, lo_nib),
                       _mm_shuffle_epi8(hi, hi_nib));
}

__attribute__((target("ssse3"))) void ssse3_add(std::uint8_t* dst,
                                                const std::uint8_t* src,
                                                std::size_t len) {
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, s));
  }
  for (; i < len; ++i) dst[i] ^= src[i];
}

__attribute__((target("ssse3"))) void ssse3_mul(std::uint8_t* dst,
                                                const std::uint8_t* src,
                                                std::uint8_t c,
                                                std::size_t len) {
  if (c == 0) {
    if (len != 0) std::memset(dst, 0, len);  // empty span may carry nullptr
    return;
  }
  const NibbleTables t = make_nibble_tables(c);
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i low_mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     mul_block_ssse3(s, lo, hi, low_mask));
  }
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (; i < len; ++i) dst[i] = row[src[i]];
}

__attribute__((target("ssse3"))) void ssse3_mul_add(std::uint8_t* dst,
                                                    const std::uint8_t* src,
                                                    std::uint8_t c,
                                                    std::size_t len) {
  if (c == 0) return;
  const NibbleTables t = make_nibble_tables(c);
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i low_mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst + i),
        _mm_xor_si128(d, mul_block_ssse3(s, lo, hi, low_mask)));
  }
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (; i < len; ++i) dst[i] ^= row[src[i]];
}

__attribute__((target("ssse3"))) void ssse3_scale(std::uint8_t* dst,
                                                  std::uint8_t c,
                                                  std::size_t len) {
  ssse3_mul(dst, dst, c, len);
}

// ------------------------------------------------------------------ AVX2

__attribute__((target("avx2"))) inline __m256i mul_block_avx2(
    __m256i src, __m256i lo, __m256i hi, __m256i low_mask) {
  const __m256i lo_nib = _mm256_and_si256(src, low_mask);
  const __m256i hi_nib = _mm256_and_si256(_mm256_srli_epi64(src, 4), low_mask);
  return _mm256_xor_si256(_mm256_shuffle_epi8(lo, lo_nib),
                          _mm256_shuffle_epi8(hi, hi_nib));
}

__attribute__((target("avx2"))) void avx2_add(std::uint8_t* dst,
                                              const std::uint8_t* src,
                                              std::size_t len) {
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, s));
  }
  for (; i < len; ++i) dst[i] ^= src[i];
}

__attribute__((target("avx2"))) void avx2_mul(std::uint8_t* dst,
                                              const std::uint8_t* src,
                                              std::uint8_t c, std::size_t len) {
  if (c == 0) {
    if (len != 0) std::memset(dst, 0, len);  // empty span may carry nullptr
    return;
  }
  const NibbleTables t = make_nibble_tables(c);
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mul_block_avx2(s, lo, hi, low_mask));
  }
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (; i < len; ++i) dst[i] = row[src[i]];
}

__attribute__((target("avx2"))) void avx2_mul_add(std::uint8_t* dst,
                                                  const std::uint8_t* src,
                                                  std::uint8_t c,
                                                  std::size_t len) {
  if (c == 0) return;
  const NibbleTables t = make_nibble_tables(c);
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_xor_si256(d, mul_block_avx2(s, lo, hi, low_mask)));
  }
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (; i < len; ++i) dst[i] ^= row[src[i]];
}

__attribute__((target("avx2"))) void avx2_scale(std::uint8_t* dst,
                                                std::uint8_t c,
                                                std::size_t len) {
  avx2_mul(dst, dst, c, len);
}

// ------------------------------------------------------------------ GFNI
//
// Intel's Galois Field New Instructions multiply bytes directly in
// GF(2^8) with the Rijndael polynomial 0x11b — the very field this paper
// spends its Sec. 5.1 fighting to multiply in. One GF2P8MULB does 32
// multiplications per cycle with no tables at all; this backend is the
// 2020s answer to the problem the 2009 GPU ladder solves.

__attribute__((target("gfni,avx2"))) void gfni_mul(std::uint8_t* dst,
                                                   const std::uint8_t* src,
                                                   std::uint8_t c,
                                                   std::size_t len) {
  if (c == 0) {
    if (len != 0) std::memset(dst, 0, len);  // empty span may carry nullptr
    return;
  }
  const __m256i factor = _mm256_set1_epi8(static_cast<char>(c));
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_gf2p8mul_epi8(s, factor));
  }
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (; i < len; ++i) dst[i] = row[src[i]];
}

__attribute__((target("gfni,avx2"))) void gfni_mul_add(std::uint8_t* dst,
                                                       const std::uint8_t* src,
                                                       std::uint8_t c,
                                                       std::size_t len) {
  if (c == 0) return;
  const __m256i factor = _mm256_set1_epi8(static_cast<char>(c));
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_xor_si256(d, _mm256_gf2p8mul_epi8(s, factor)));
  }
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (; i < len; ++i) dst[i] ^= row[src[i]];
}

__attribute__((target("gfni,avx2"))) void gfni_scale(std::uint8_t* dst,
                                                     std::uint8_t c,
                                                     std::size_t len) {
  gfni_mul(dst, dst, c, len);
}

const Ops kSsse3Ops{"ssse3", ssse3_add, ssse3_mul, ssse3_mul_add, ssse3_scale};
const Ops kAvx2Ops{"avx2", avx2_add, avx2_mul, avx2_mul_add, avx2_scale};
const Ops kGfniOps{"gfni", avx2_add, gfni_mul, gfni_mul_add, gfni_scale};

#endif  // EXTNC_X86

std::vector<const Ops*> detect_backends() {
  std::vector<const Ops*> backends;
#if EXTNC_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("gfni") && __builtin_cpu_supports("avx2")) {
    backends.push_back(&kGfniOps);
  }
  if (__builtin_cpu_supports("avx2")) backends.push_back(&kAvx2Ops);
  if (__builtin_cpu_supports("ssse3")) backends.push_back(&kSsse3Ops);
#endif
  backends.push_back(&swar64_ops());
  backends.push_back(&scalar_ops());
  return backends;
}

}  // namespace

const std::vector<const Ops*>& available_backends() {
  static const std::vector<const Ops*> backends = detect_backends();
  return backends;
}

const Ops& ops() { return *available_backends().front(); }

const Ops* find_backend(std::string_view name) {
  for (const Ops* backend : available_backends()) {
    if (backend->name == name) return backend;
  }
  return nullptr;
}

}  // namespace extnc::gf256
