// SSSE3 / AVX2 region backends (pshufb nibble-table multiplication), the
// GFNI backends (native GF(2^8) multiply at 256- and 512-bit width) and
// the runtime backend registry.
//
// The nibble-table trick: for a fixed coefficient c, precompute
//   lo[i] = c * i          (i = low nibble)
//   hi[i] = c * (i << 4)   (i = high nibble)
// then c * b == lo[b & 0xf] ^ hi[b >> 4], which pshufb evaluates for 16
// (SSSE3) or 32 (AVX2) bytes per instruction. This is the modern
// equivalent of the paper's SSE2 loop-based vectorization, and strictly
// faster; the swar64 backend preserves the paper's original strategy for
// comparison (bench/micro_gf256 measures both).
//
// Every backend also ships a fused mul_add_regions kernel: sources are
// processed in register-resident groups against a destination block that
// stays cache-hot, so the encoder inner loop loads/stores each
// destination vector once per group of sources instead of once per source
// row.
#include <algorithm>
#include <array>
#include <cstring>

#include "gf256/gf.h"
#include "gf256/region.h"
#include "gf256/region_backends.h"

#if defined(__x86_64__) || defined(__i386__)
#define EXTNC_X86 1
#include <immintrin.h>
#else
#define EXTNC_X86 0
#endif

namespace extnc::gf256 {

namespace {

// Destination block that the fused kernels keep cache-resident while
// source groups stream over it (half a typical 64 KiB L1d half / well
// inside any L2, leaving room for one streaming source strip per group
// member).
constexpr std::size_t kFusedBlockBytes = 32 * 1024;

#if EXTNC_X86

struct NibbleTables {
  alignas(16) std::uint8_t lo[16];
  alignas(16) std::uint8_t hi[16];
};

NibbleTables make_nibble_tables(std::uint8_t c) {
  NibbleTables t;
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (int i = 0; i < 16; ++i) {
    t.lo[i] = row[i];
    t.hi[i] = row[i << 4];
  }
  return t;
}

// ----------------------------------------------------------------- SSSE3

__attribute__((target("ssse3"))) inline __m128i mul_block_ssse3(
    __m128i src, __m128i lo, __m128i hi, __m128i low_mask) {
  const __m128i lo_nib = _mm_and_si128(src, low_mask);
  const __m128i hi_nib = _mm_and_si128(_mm_srli_epi64(src, 4), low_mask);
  return _mm_xor_si128(_mm_shuffle_epi8(lo, lo_nib),
                       _mm_shuffle_epi8(hi, hi_nib));
}

__attribute__((target("ssse3"))) void ssse3_add(std::uint8_t* dst,
                                                const std::uint8_t* src,
                                                std::size_t len) {
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, s));
  }
  for (; i < len; ++i) dst[i] ^= src[i];
}

__attribute__((target("ssse3"))) void ssse3_mul(std::uint8_t* dst,
                                                const std::uint8_t* src,
                                                std::uint8_t c,
                                                std::size_t len) {
  if (c == 0) {
    if (len != 0) std::memset(dst, 0, len);  // empty span may carry nullptr
    return;
  }
  const NibbleTables t = make_nibble_tables(c);
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i low_mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     mul_block_ssse3(s, lo, hi, low_mask));
  }
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (; i < len; ++i) dst[i] = row[src[i]];
}

__attribute__((target("ssse3"))) void ssse3_mul_add(std::uint8_t* dst,
                                                    const std::uint8_t* src,
                                                    std::uint8_t c,
                                                    std::size_t len) {
  if (c == 0) return;
  const NibbleTables t = make_nibble_tables(c);
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i low_mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst + i),
        _mm_xor_si128(d, mul_block_ssse3(s, lo, hi, low_mask)));
  }
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (; i < len; ++i) dst[i] ^= row[src[i]];
}

__attribute__((target("ssse3"))) void ssse3_scale(std::uint8_t* dst,
                                                  std::uint8_t c,
                                                  std::size_t len) {
  ssse3_mul(dst, dst, c, len);
}

__attribute__((target("ssse3"))) void ssse3_mul_add_regions(
    std::uint8_t* dst, const std::uint8_t* const* srcs,
    const std::uint8_t* coeffs, std::size_t count, std::size_t len) {
  constexpr std::size_t kGroup = 8;
  const std::uint8_t* group_src[kGroup];
  const std::uint8_t* group_row[kGroup];
  __m128i group_lo[kGroup];
  __m128i group_hi[kGroup];
  const __m128i low_mask = _mm_set1_epi8(0x0f);
  for (std::size_t base = 0; base < len; base += kFusedBlockBytes) {
    const std::size_t blen = std::min(kFusedBlockBytes, len - base);
    std::size_t next = 0;
    while (next < count) {
      std::size_t m = 0;
      for (; next < count && m < kGroup; ++next) {
        const std::uint8_t c = coeffs[next];
        if (c == 0) continue;
        const NibbleTables t = make_nibble_tables(c);
        group_src[m] = srcs[next] + base;
        group_row[m] = &tables().mul[static_cast<std::size_t>(c) << 8];
        group_lo[m] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
        group_hi[m] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
        ++m;
      }
      if (m == 0) continue;  // trailing zero coefficients
      std::uint8_t* out = dst + base;
      std::size_t i = 0;
      for (; i + 16 <= blen; i += 16) {
        __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(out + i));
        for (std::size_t j = 0; j < m; ++j) {
          const __m128i s = _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(group_src[j] + i));
          d = _mm_xor_si128(
              d, mul_block_ssse3(s, group_lo[j], group_hi[j], low_mask));
        }
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), d);
      }
      for (; i < blen; ++i) {
        std::uint8_t d = out[i];
        for (std::size_t j = 0; j < m; ++j) d ^= group_row[j][group_src[j][i]];
        out[i] = d;
      }
    }
  }
}

// ------------------------------------------------------------------ AVX2

__attribute__((target("avx2"))) inline __m256i mul_block_avx2(
    __m256i src, __m256i lo, __m256i hi, __m256i low_mask) {
  const __m256i lo_nib = _mm256_and_si256(src, low_mask);
  const __m256i hi_nib = _mm256_and_si256(_mm256_srli_epi64(src, 4), low_mask);
  return _mm256_xor_si256(_mm256_shuffle_epi8(lo, lo_nib),
                          _mm256_shuffle_epi8(hi, hi_nib));
}

__attribute__((target("avx2"))) void avx2_add(std::uint8_t* dst,
                                              const std::uint8_t* src,
                                              std::size_t len) {
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, s));
  }
  for (; i < len; ++i) dst[i] ^= src[i];
}

__attribute__((target("avx2"))) void avx2_mul(std::uint8_t* dst,
                                              const std::uint8_t* src,
                                              std::uint8_t c, std::size_t len) {
  if (c == 0) {
    if (len != 0) std::memset(dst, 0, len);  // empty span may carry nullptr
    return;
  }
  const NibbleTables t = make_nibble_tables(c);
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mul_block_avx2(s, lo, hi, low_mask));
  }
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (; i < len; ++i) dst[i] = row[src[i]];
}

__attribute__((target("avx2"))) void avx2_mul_add(std::uint8_t* dst,
                                                  const std::uint8_t* src,
                                                  std::uint8_t c,
                                                  std::size_t len) {
  if (c == 0) return;
  const NibbleTables t = make_nibble_tables(c);
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_xor_si256(d, mul_block_avx2(s, lo, hi, low_mask)));
  }
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (; i < len; ++i) dst[i] ^= row[src[i]];
}

__attribute__((target("avx2"))) void avx2_scale(std::uint8_t* dst,
                                                std::uint8_t c,
                                                std::size_t len) {
  avx2_mul(dst, dst, c, len);
}

__attribute__((target("avx2"))) void avx2_mul_add_regions(
    std::uint8_t* dst, const std::uint8_t* const* srcs,
    const std::uint8_t* coeffs, std::size_t count, std::size_t len) {
  constexpr std::size_t kGroup = 8;
  const std::uint8_t* group_src[kGroup];
  const std::uint8_t* group_row[kGroup];
  __m256i group_lo[kGroup];
  __m256i group_hi[kGroup];
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  for (std::size_t base = 0; base < len; base += kFusedBlockBytes) {
    const std::size_t blen = std::min(kFusedBlockBytes, len - base);
    std::size_t next = 0;
    while (next < count) {
      std::size_t m = 0;
      for (; next < count && m < kGroup; ++next) {
        const std::uint8_t c = coeffs[next];
        if (c == 0) continue;
        const NibbleTables t = make_nibble_tables(c);
        group_src[m] = srcs[next] + base;
        group_row[m] = &tables().mul[static_cast<std::size_t>(c) << 8];
        group_lo[m] = _mm256_broadcastsi128_si256(
            _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo)));
        group_hi[m] = _mm256_broadcastsi128_si256(
            _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi)));
        ++m;
      }
      if (m == 0) continue;  // trailing zero coefficients
      std::uint8_t* out = dst + base;
      std::size_t i = 0;
      // Paired strips break the per-source XOR dependency chain (see the
      // gfni512 kernel for the reasoning).
      for (; i + 64 <= blen; i += 64) {
        __m256i d0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + i));
        __m256i d1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + i + 32));
        for (std::size_t j = 0; j < m; ++j) {
          const __m256i s0 = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(group_src[j] + i));
          const __m256i s1 = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(group_src[j] + i + 32));
          d0 = _mm256_xor_si256(
              d0, mul_block_avx2(s0, group_lo[j], group_hi[j], low_mask));
          d1 = _mm256_xor_si256(
              d1, mul_block_avx2(s1, group_lo[j], group_hi[j], low_mask));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), d0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 32), d1);
      }
      for (; i + 32 <= blen; i += 32) {
        __m256i d =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + i));
        for (std::size_t j = 0; j < m; ++j) {
          const __m256i s = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(group_src[j] + i));
          d = _mm256_xor_si256(
              d, mul_block_avx2(s, group_lo[j], group_hi[j], low_mask));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), d);
      }
      for (; i < blen; ++i) {
        std::uint8_t d = out[i];
        for (std::size_t j = 0; j < m; ++j) d ^= group_row[j][group_src[j][i]];
        out[i] = d;
      }
    }
  }
}

// -------------------------------------------------------------- GFNI-256
//
// Intel's Galois Field New Instructions multiply bytes directly in
// GF(2^8) with the Rijndael polynomial 0x11b — the very field this paper
// spends its Sec. 5.1 fighting to multiply in. One GF2P8MULB does 32
// multiplications per instruction with no tables at all; this backend is
// the 2020s answer to the problem the 2009 GPU ladder solves. The
// 256-bit variant serves GFNI parts without AVX-512 (and AVX-512 parts
// that downclock on 512-bit ops).

__attribute__((target("gfni,avx2"))) void gfni256_mul(std::uint8_t* dst,
                                                      const std::uint8_t* src,
                                                      std::uint8_t c,
                                                      std::size_t len) {
  if (c == 0) {
    if (len != 0) std::memset(dst, 0, len);  // empty span may carry nullptr
    return;
  }
  const __m256i factor = _mm256_set1_epi8(static_cast<char>(c));
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_gf2p8mul_epi8(s, factor));
  }
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (; i < len; ++i) dst[i] = row[src[i]];
}

__attribute__((target("gfni,avx2"))) void gfni256_mul_add(
    std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
    std::size_t len) {
  if (c == 0) return;
  const __m256i factor = _mm256_set1_epi8(static_cast<char>(c));
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_xor_si256(d, _mm256_gf2p8mul_epi8(s, factor)));
  }
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (; i < len; ++i) dst[i] ^= row[src[i]];
}

__attribute__((target("gfni,avx2"))) void gfni256_scale(std::uint8_t* dst,
                                                        std::uint8_t c,
                                                        std::size_t len) {
  gfni256_mul(dst, dst, c, len);
}

__attribute__((target("gfni,avx2"))) void gfni256_mul_add_regions(
    std::uint8_t* dst, const std::uint8_t* const* srcs,
    const std::uint8_t* coeffs, std::size_t count, std::size_t len) {
  constexpr std::size_t kGroup = 8;
  const std::uint8_t* group_src[kGroup];
  const std::uint8_t* group_row[kGroup];
  __m256i group_factor[kGroup];
  for (std::size_t base = 0; base < len; base += kFusedBlockBytes) {
    const std::size_t blen = std::min(kFusedBlockBytes, len - base);
    std::size_t next = 0;
    while (next < count) {
      std::size_t m = 0;
      for (; next < count && m < kGroup; ++next) {
        const std::uint8_t c = coeffs[next];
        if (c == 0) continue;
        group_src[m] = srcs[next] + base;
        group_row[m] = &tables().mul[static_cast<std::size_t>(c) << 8];
        group_factor[m] = _mm256_set1_epi8(static_cast<char>(c));
        ++m;
      }
      if (m == 0) continue;  // trailing zero coefficients
      std::uint8_t* out = dst + base;
      std::size_t i = 0;
      // Paired strips break the per-source XOR dependency chain (see the
      // gfni512 kernel for the reasoning).
      for (; i + 64 <= blen; i += 64) {
        __m256i d0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + i));
        __m256i d1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + i + 32));
        for (std::size_t j = 0; j < m; ++j) {
          const __m256i s0 = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(group_src[j] + i));
          const __m256i s1 = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(group_src[j] + i + 32));
          d0 = _mm256_xor_si256(d0, _mm256_gf2p8mul_epi8(s0, group_factor[j]));
          d1 = _mm256_xor_si256(d1, _mm256_gf2p8mul_epi8(s1, group_factor[j]));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), d0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 32), d1);
      }
      for (; i + 32 <= blen; i += 32) {
        __m256i d =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + i));
        for (std::size_t j = 0; j < m; ++j) {
          const __m256i s = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(group_src[j] + i));
          d = _mm256_xor_si256(d, _mm256_gf2p8mul_epi8(s, group_factor[j]));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), d);
      }
      for (; i < blen; ++i) {
        std::uint8_t d = out[i];
        for (std::size_t j = 0; j < m; ++j) d ^= group_row[j][group_src[j][i]];
        out[i] = d;
      }
    }
  }
}

// -------------------------------------------------------------- GFNI-512
//
// The widest host path: 64 GF(2^8) multiplications per instruction via
// VGF2P8MULB against a broadcast coefficient (measurably faster here than
// the equivalent VGF2P8AFFINEQB formulation); AVX-512BW byte masks replace
// the scalar tail loop entirely (arbitrary lengths, no peeling).

__attribute__((target("gfni,avx512f,avx512bw"))) void gfni512_add(
    std::uint8_t* dst, const std::uint8_t* src, std::size_t len) {
  std::size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(d, s));
  }
  if (i < len) {
    const __mmask64 tail = ~std::uint64_t{0} >> (64 - (len - i));
    const __m512i d = _mm512_maskz_loadu_epi8(tail, dst + i);
    const __m512i s = _mm512_maskz_loadu_epi8(tail, src + i);
    _mm512_mask_storeu_epi8(dst + i, tail, _mm512_xor_si512(d, s));
  }
}

__attribute__((target("gfni,avx512f,avx512bw"))) void gfni512_mul(
    std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
    std::size_t len) {
  if (c == 0) {
    if (len != 0) std::memset(dst, 0, len);  // empty span may carry nullptr
    return;
  }
  const __m512i factor = _mm512_set1_epi8(static_cast<char>(c));
  std::size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_gf2p8mul_epi8(s, factor));
  }
  if (i < len) {
    const __mmask64 tail = ~std::uint64_t{0} >> (64 - (len - i));
    const __m512i s = _mm512_maskz_loadu_epi8(tail, src + i);
    _mm512_mask_storeu_epi8(dst + i, tail, _mm512_gf2p8mul_epi8(s, factor));
  }
}

__attribute__((target("gfni,avx512f,avx512bw"))) void gfni512_mul_add(
    std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
    std::size_t len) {
  if (c == 0) return;
  const __m512i factor = _mm512_set1_epi8(static_cast<char>(c));
  std::size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    const __m512i s = _mm512_loadu_si512(src + i);
    const __m512i d = _mm512_loadu_si512(dst + i);
    _mm512_storeu_si512(dst + i,
                        _mm512_xor_si512(d, _mm512_gf2p8mul_epi8(s, factor)));
  }
  if (i < len) {
    const __mmask64 tail = ~std::uint64_t{0} >> (64 - (len - i));
    const __m512i s = _mm512_maskz_loadu_epi8(tail, src + i);
    const __m512i d = _mm512_maskz_loadu_epi8(tail, dst + i);
    _mm512_mask_storeu_epi8(
        dst + i, tail, _mm512_xor_si512(d, _mm512_gf2p8mul_epi8(s, factor)));
  }
}

__attribute__((target("gfni,avx512f,avx512bw"))) void gfni512_scale(
    std::uint8_t* dst, std::uint8_t c, std::size_t len) {
  gfni512_mul(dst, dst, c, len);
}

__attribute__((target("gfni,avx512f,avx512bw"))) void gfni512_mul_add_regions(
    std::uint8_t* dst, const std::uint8_t* const* srcs,
    const std::uint8_t* coeffs, std::size_t count, std::size_t len) {
  constexpr std::size_t kGroup = 8;
  const std::uint8_t* group_src[kGroup];
  __m512i group_factor[kGroup];
  for (std::size_t base = 0; base < len; base += kFusedBlockBytes) {
    const std::size_t blen = std::min(kFusedBlockBytes, len - base);
    std::size_t next = 0;
    while (next < count) {
      std::size_t m = 0;
      for (; next < count && m < kGroup; ++next) {
        const std::uint8_t c = coeffs[next];
        if (c == 0) continue;
        group_src[m] = srcs[next] + base;
        group_factor[m] = _mm512_set1_epi8(static_cast<char>(c));
        ++m;
      }
      if (m == 0) continue;  // trailing zero coefficients
      std::uint8_t* out = dst + base;
      std::size_t i = 0;
      // Two accumulators per iteration: the per-source XOR reduction is a
      // serial dependency chain, so a single accumulator leaves the GF
      // multiply ports idle waiting on it. Pairing strips restores ILP.
      for (; i + 128 <= blen; i += 128) {
        __m512i d0 = _mm512_loadu_si512(out + i);
        __m512i d1 = _mm512_loadu_si512(out + i + 64);
        for (std::size_t j = 0; j < m; ++j) {
          const __m512i s0 = _mm512_loadu_si512(group_src[j] + i);
          const __m512i s1 = _mm512_loadu_si512(group_src[j] + i + 64);
          d0 = _mm512_xor_si512(d0, _mm512_gf2p8mul_epi8(s0, group_factor[j]));
          d1 = _mm512_xor_si512(d1, _mm512_gf2p8mul_epi8(s1, group_factor[j]));
        }
        _mm512_storeu_si512(out + i, d0);
        _mm512_storeu_si512(out + i + 64, d1);
      }
      for (; i + 64 <= blen; i += 64) {
        __m512i d = _mm512_loadu_si512(out + i);
        for (std::size_t j = 0; j < m; ++j) {
          const __m512i s = _mm512_loadu_si512(group_src[j] + i);
          d = _mm512_xor_si512(d, _mm512_gf2p8mul_epi8(s, group_factor[j]));
        }
        _mm512_storeu_si512(out + i, d);
      }
      if (i < blen) {
        const __mmask64 tail = ~std::uint64_t{0} >> (64 - (blen - i));
        __m512i d = _mm512_maskz_loadu_epi8(tail, out + i);
        for (std::size_t j = 0; j < m; ++j) {
          const __m512i s = _mm512_maskz_loadu_epi8(tail, group_src[j] + i);
          d = _mm512_xor_si512(d, _mm512_gf2p8mul_epi8(s, group_factor[j]));
        }
        _mm512_mask_storeu_epi8(out + i, tail, d);
      }
    }
  }
}

const Ops kSsse3Ops{"ssse3",     ssse3_add,
                    ssse3_mul,   ssse3_mul_add,
                    ssse3_scale, ssse3_mul_add_regions};
const Ops kAvx2Ops{"avx2",     avx2_add,
                   avx2_mul,   avx2_mul_add,
                   avx2_scale, avx2_mul_add_regions};
const Ops kGfni256Ops{"gfni256",     avx2_add,
                      gfni256_mul,   gfni256_mul_add,
                      gfni256_scale, gfni256_mul_add_regions};
const Ops kGfni512Ops{"gfni512",     gfni512_add,
                      gfni512_mul,   gfni512_mul_add,
                      gfni512_scale, gfni512_mul_add_regions};

#endif  // EXTNC_X86

// Every name compiled into any build, in ladder order. find_backend and
// the error paths enumerate from here (and from available_backends()), so
// adding a backend updates every tool and message automatically.
constexpr std::array<std::string_view, 7> kRegisteredNames = {
    "gfni512", "gfni256", "avx2", "ssse3", "neon", "swar64", "scalar"};

std::vector<const Ops*> detect_backends() {
  std::vector<const Ops*> backends;
#if EXTNC_X86
  __builtin_cpu_init();
  const bool gfni = __builtin_cpu_supports("gfni");
  if (gfni && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512f")) {
    backends.push_back(&kGfni512Ops);
  }
  if (gfni && __builtin_cpu_supports("avx2")) {
    backends.push_back(&kGfni256Ops);
  }
  if (__builtin_cpu_supports("avx2")) backends.push_back(&kAvx2Ops);
  if (__builtin_cpu_supports("ssse3")) backends.push_back(&kSsse3Ops);
#endif
  if (const Ops* neon = neon_backend()) backends.push_back(neon);
  backends.push_back(&swar64_ops());
  backends.push_back(&scalar_ops());
  return backends;
}

}  // namespace

const std::vector<const Ops*>& available_backends() {
  static const std::vector<const Ops*> backends = detect_backends();
  return backends;
}

std::span<const std::string_view> registered_backend_names() {
  return kRegisteredNames;
}

const Ops* find_backend(std::string_view name) {
  for (const Ops* backend : available_backends()) {
    if (backend->name == name) return backend;
  }
  return nullptr;
}

}  // namespace extnc::gf256
