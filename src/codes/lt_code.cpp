#include "codes/lt_code.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/assert.h"

namespace extnc::codes {

SolitonDistribution::SolitonDistribution(const LtParams& params) {
  const std::size_t k = params.source_blocks;
  EXTNC_CHECK(k >= 1);
  // Ideal soliton: rho(1) = 1/k, rho(d) = 1/(d(d-1)).
  std::vector<double> mass(k + 1, 0.0);
  mass[1] = 1.0 / static_cast<double>(k);
  for (std::size_t d = 2; d <= k; ++d) {
    mass[d] = 1.0 / (static_cast<double>(d) * static_cast<double>(d - 1));
  }
  // Robust spike: tau(d) = R/(d k) for d < k/R, tau(k/R) = R ln(R/delta)/k,
  // with R = c ln(k/delta) sqrt(k).
  const double r = params.c *
                   std::log(static_cast<double>(k) / params.delta) *
                   std::sqrt(static_cast<double>(k));
  if (r > 1.0) {
    const auto spike = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(k), std::floor(k / r)));
    for (std::size_t d = 1; d < spike && d <= k; ++d) {
      mass[d] += r / (static_cast<double>(d) * static_cast<double>(k));
    }
    if (spike >= 1 && spike <= k) {
      mass[spike] += r * std::log(r / params.delta) / static_cast<double>(k);
    }
  }
  double total = 0;
  for (std::size_t d = 1; d <= k; ++d) total += mass[d];
  cdf_.resize(k);
  double acc = 0;
  for (std::size_t d = 1; d <= k; ++d) {
    acc += mass[d] / total;
    cdf_[d - 1] = acc;
  }
  cdf_.back() = 1.0;
}

std::size_t SolitonDistribution::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double SolitonDistribution::pmf(std::size_t degree) const {
  EXTNC_CHECK(degree >= 1 && degree <= cdf_.size());
  const double hi = cdf_[degree - 1];
  const double lo = degree >= 2 ? cdf_[degree - 2] : 0.0;
  return hi - lo;
}

LtEncoder::LtEncoder(LtParams params, std::vector<std::uint8_t> data)
    : params_(params), distribution_(params), data_(std::move(data)) {
  EXTNC_CHECK(data_.size() == params_.source_blocks * params_.block_bytes);
}

LtEncoder LtEncoder::random(LtParams params, Rng& rng) {
  std::vector<std::uint8_t> data(params.source_blocks * params.block_bytes);
  for (auto& b : data) b = rng.next_byte();
  return LtEncoder(params, std::move(data));
}

LtPacket LtEncoder::encode(Rng& rng) const {
  const std::size_t k = params_.source_blocks;
  const std::size_t degree = distribution_.sample(rng);
  LtPacket packet;
  packet.payload = AlignedBuffer(params_.block_bytes);
  packet.sources.reserve(degree);
  while (packet.sources.size() < degree) {
    const auto pick = static_cast<std::uint32_t>(rng.next_below(k));
    if (std::find(packet.sources.begin(), packet.sources.end(), pick) !=
        packet.sources.end()) {
      continue;
    }
    packet.sources.push_back(pick);
    const std::uint8_t* row = data_.data() + pick * params_.block_bytes;
    for (std::size_t i = 0; i < params_.block_bytes; ++i) {
      packet.payload[i] ^= row[i];
    }
  }
  return packet;
}

LtDecoder::LtDecoder(LtParams params)
    : params_(params),
      have_(params.source_blocks, false),
      data_(params.source_blocks * params.block_bytes, 0) {}

void LtDecoder::add(LtPacket packet) {
  if (is_complete()) return;
  ++packets_received_;
  pending_.push_back(std::move(packet));
  peel();
}

void LtDecoder::peel() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& packet : pending_) {
      // Strip already-decoded sources out of the packet.
      for (std::size_t s = 0; s < packet.sources.size();) {
        const std::uint32_t index = packet.sources[s];
        if (!have_[index]) {
          ++s;
          continue;
        }
        const std::uint8_t* row =
            data_.data() + index * params_.block_bytes;
        for (std::size_t i = 0; i < params_.block_bytes; ++i) {
          packet.payload[i] ^= row[i];
        }
        packet.sources[s] = packet.sources.back();
        packet.sources.pop_back();
      }
      // A degree-1 packet reveals a source block.
      if (packet.sources.size() == 1) {
        const std::uint32_t index = packet.sources.front();
        EXTNC_DASSERT(!have_[index]);
        std::memcpy(data_.data() + index * params_.block_bytes,
                    packet.payload.data(), params_.block_bytes);
        have_[index] = true;
        ++decoded_count_;
        packet.sources.clear();
        progress = true;
      }
    }
    // Drop fully consumed packets.
    std::erase_if(pending_,
                  [](const LtPacket& p) { return p.sources.empty(); });
  }
}

const std::vector<std::uint8_t>& LtDecoder::decoded() const {
  EXTNC_CHECK(is_complete());
  return data_;
}

}  // namespace extnc::codes
