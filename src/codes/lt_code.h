// LT fountain code (Luby transform) — the rateless comparator the paper's
// Sec. 2 cites via Luby et al. [8].
//
// Encoding: draw a degree d from the robust soliton distribution, XOR d
// uniformly chosen source blocks. Decoding: belief-propagation "peeling" —
// resolve degree-1 packets, substitute into the rest, repeat. Linear-time
// decoding, but with reception overhead (k + O(sqrt(k) ln^2(k/delta))
// packets needed) that random linear coding does not have, and — the
// property the paper's systems care about — XORing two LT packets does NOT
// yield a packet with the right degree distribution, so relays cannot
// recode without wrecking the decoder's performance model.
#pragma once

#include <cstdint>
#include <vector>

#include "util/aligned_buffer.h"
#include "util/rng.h"

namespace extnc::codes {

struct LtParams {
  std::size_t source_blocks = 64;  // k
  std::size_t block_bytes = 64;
  // Robust soliton parameters (Luby's c and delta).
  double c = 0.1;
  double delta = 0.5;
};

// Degree distribution: robust soliton (ideal soliton + spike), tabulated.
class SolitonDistribution {
 public:
  explicit SolitonDistribution(const LtParams& params);

  std::size_t sample(Rng& rng) const;
  // Probability mass of degree d (1-based; for tests).
  double pmf(std::size_t degree) const;

 private:
  std::vector<double> cdf_;  // cdf_[d-1] = P(degree <= d)
};

struct LtPacket {
  std::vector<std::uint32_t> sources;  // indices XORed into the payload
  AlignedBuffer payload;
};

class LtEncoder {
 public:
  // data: k rows of block_bytes, row-major, copied in.
  LtEncoder(LtParams params, std::vector<std::uint8_t> data);

  static LtEncoder random(LtParams params, Rng& rng);

  const LtParams& params() const { return params_; }
  const std::vector<std::uint8_t>& data() const { return data_; }

  LtPacket encode(Rng& rng) const;

 private:
  LtParams params_;
  SolitonDistribution distribution_;
  std::vector<std::uint8_t> data_;
};

class LtDecoder {
 public:
  explicit LtDecoder(LtParams params);

  // Returns true if the packet advanced decoding (was not redundant at the
  // time of arrival — peeling may later still discard it).
  void add(LtPacket packet);

  bool is_complete() const { return decoded_count_ == params_.source_blocks; }
  std::size_t decoded_count() const { return decoded_count_; }
  std::size_t packets_received() const { return packets_received_; }

  // Row-major k x block_bytes; valid when complete.
  const std::vector<std::uint8_t>& decoded() const;

 private:
  void peel();

  LtParams params_;
  std::vector<LtPacket> pending_;
  std::vector<bool> have_;
  std::vector<std::uint8_t> data_;
  std::size_t decoded_count_ = 0;
  std::size_t packets_received_ = 0;
};

}  // namespace extnc::codes
