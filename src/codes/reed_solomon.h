// Systematic Reed-Solomon erasure code over GF(2^8) (Cauchy construction)
// — the "traditional" comparator the paper's Sec. 2 cites.
//
// k data blocks generate m parity blocks; ANY k of the k+m blocks recover
// the data (MDS property) with zero decoding overhead — strictly better
// than random coding on that axis. What it cannot do is the thing the
// paper's systems need: an intermediate node holding RS blocks cannot
// generate new useful blocks without fully decoding first, and the code is
// fixed-rate (k and m chosen up front, no rateless stream of fresh
// blocks). bench/ablation_codes measures both sides of the trade.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "gf256/matrix.h"
#include "util/aligned_buffer.h"

namespace extnc::codes {

struct RsParams {
  std::size_t data_blocks = 8;    // k
  std::size_t parity_blocks = 4;  // m; k + m <= 256 (Cauchy over GF(2^8))
  std::size_t block_bytes = 64;
};

class ReedSolomon {
 public:
  explicit ReedSolomon(RsParams params);

  const RsParams& params() const { return params_; }

  // data: k rows of block_bytes, row-major. Returns m parity rows.
  std::vector<AlignedBuffer> encode(
      std::span<const std::uint8_t> data) const;

  // Shards indexed 0..k-1 (data) and k..k+m-1 (parity); a missing shard is
  // an empty span. Returns the reconstructed k data rows, or nullopt if
  // fewer than k shards survive.
  std::optional<std::vector<AlignedBuffer>> decode(
      const std::vector<std::span<const std::uint8_t>>& shards) const;

 private:
  RsParams params_;
  gf256::Matrix cauchy_;  // m x k parity-generator rows
};

}  // namespace extnc::codes
