#include "codes/reed_solomon.h"

#include <cstring>

#include "gf256/gf.h"
#include "gf256/region.h"
#include "util/assert.h"

namespace extnc::codes {

ReedSolomon::ReedSolomon(RsParams params)
    : params_(params),
      cauchy_(params.parity_blocks, params.data_blocks) {
  EXTNC_CHECK(params_.data_blocks >= 1);
  EXTNC_CHECK(params_.parity_blocks >= 1);
  EXTNC_CHECK(params_.block_bytes >= 1);
  // Cauchy matrix needs k + m distinct field points split into two sets.
  EXTNC_CHECK(params_.data_blocks + params_.parity_blocks <= 256);
  // cauchy[j][i] = 1 / (x_j ^ y_i) with x_j = j, y_i = m + i: all sums are
  // nonzero because the point sets are disjoint. Every square submatrix of
  // a Cauchy matrix is invertible, which is what makes the code MDS.
  for (std::size_t j = 0; j < params_.parity_blocks; ++j) {
    for (std::size_t i = 0; i < params_.data_blocks; ++i) {
      const auto x = static_cast<std::uint8_t>(j);
      const auto y = static_cast<std::uint8_t>(params_.parity_blocks + i);
      cauchy_.set(j, i, gf256::inv(x ^ y));
    }
  }
}

std::vector<AlignedBuffer> ReedSolomon::encode(
    std::span<const std::uint8_t> data) const {
  const std::size_t k = params_.data_blocks;
  const std::size_t bytes = params_.block_bytes;
  EXTNC_CHECK(data.size() == k * bytes);
  std::vector<AlignedBuffer> parity;
  parity.reserve(params_.parity_blocks);
  const gf256::Ops& ops = gf256::ops();
  for (std::size_t j = 0; j < params_.parity_blocks; ++j) {
    AlignedBuffer row(bytes);
    for (std::size_t i = 0; i < k; ++i) {
      ops.mul_add_region(row.data(), data.data() + i * bytes,
                         cauchy_.at(j, i), bytes);
    }
    parity.push_back(std::move(row));
  }
  return parity;
}

std::optional<std::vector<AlignedBuffer>> ReedSolomon::decode(
    const std::vector<std::span<const std::uint8_t>>& shards) const {
  const std::size_t k = params_.data_blocks;
  const std::size_t m = params_.parity_blocks;
  const std::size_t bytes = params_.block_bytes;
  EXTNC_CHECK(shards.size() == k + m);

  // Pick the first k surviving shards; build the matrix mapping data to
  // them (unit rows for data shards, Cauchy rows for parity shards).
  std::vector<std::size_t> chosen;
  for (std::size_t s = 0; s < shards.size() && chosen.size() < k; ++s) {
    if (shards[s].empty()) continue;
    EXTNC_CHECK(shards[s].size() == bytes);
    chosen.push_back(s);
  }
  if (chosen.size() < k) return std::nullopt;

  gf256::Matrix mapping(k, k);
  for (std::size_t r = 0; r < k; ++r) {
    const std::size_t s = chosen[r];
    if (s < k) {
      mapping.set(r, s, 1);
    } else {
      for (std::size_t i = 0; i < k; ++i) {
        mapping.set(r, i, cauchy_.at(s - k, i));
      }
    }
  }
  const auto inverse = mapping.inverted();
  // Any k x k submatrix of [I ; Cauchy] is invertible (MDS).
  EXTNC_CHECK(inverse.has_value());

  // data = inverse * survivors.
  AlignedBuffer survivors(k * bytes);
  for (std::size_t r = 0; r < k; ++r) {
    std::memcpy(survivors.data() + r * bytes, shards[chosen[r]].data(), bytes);
  }
  AlignedBuffer recovered(k * bytes);
  inverse->multiply_rows(survivors.data(), bytes, recovered.data());

  std::vector<AlignedBuffer> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    AlignedBuffer row(bytes);
    std::memcpy(row.data(), recovered.data() + i * bytes, bytes);
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace extnc::codes
