#include "gpu/gpu_model.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <string>
#include <tuple>

#include "gpu/gpu_encoder.h"
#include "gpu/kernel_cost.h"
#include "util/rng.h"
#include "util/timer.h"

namespace extnc::gpu {

using simgpu::KernelMetrics;

namespace {

constexpr double kMb = 1024.0 * 1024.0;
// Average loop iterations of a loop-based multiply with a uniform nonzero
// coefficient (Sec. 4.3's "average 7 iterations"):
// sum_{c=1}^{255} bit_length(c) / 255 = 1786 / 255 ~= 7.0.
constexpr double kAvgLoopIterations = 1786.0 / 255.0;

struct PerWordCosts {
  double alu = 0;
  double global_load_bytes = 0;
  double global_store_bytes = 0;
  double transactions = 0;
  double shared_accesses = 0;
  double shared_events = 0;
  double shared_cycles = 0;
  double texture_fetches = 0;
  double texture_misses = 0;
};

// One calibration run per (device, scheme, n): per-output-word costs.
PerWordCosts calibrate_encode(const simgpu::DeviceSpec& spec,
                              EncodeScheme scheme, std::size_t n,
                              const EncodeModelOptions& options) {
  using Key = std::tuple<const simgpu::DeviceSpec*, EncodeScheme, std::size_t>;
  static std::map<Key, PerWordCosts> cache;
  static std::mutex mutex;
  const Key key{&spec, scheme, n};
  {
    std::lock_guard lock(mutex);
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }

  Rng rng(options.seed);
  const coding::Params params{.n = n, .k = options.calibration_k};
  const coding::Segment segment = coding::Segment::random(params, rng);
  GpuEncoder encoder(spec, segment, scheme);
  encoder.reset_metrics();
  (void)encoder.encode_batch(options.calibration_blocks, rng);
  const KernelMetrics& m = encoder.encode_metrics();

  const double words = static_cast<double>(options.calibration_blocks) *
                       options.calibration_k / 4.0;
  PerWordCosts costs;
  costs.alu = m.alu_ops() / words;
  costs.global_load_bytes = static_cast<double>(m.global_load_bytes) / words;
  costs.global_store_bytes = static_cast<double>(m.global_store_bytes) / words;
  costs.transactions = static_cast<double>(m.global_transactions) / words;
  costs.shared_accesses = static_cast<double>(m.shared_accesses) / words;
  costs.shared_events = static_cast<double>(m.shared_access_events) / words;
  costs.shared_cycles =
      static_cast<double>(m.shared_serialized_cycles) / words;
  costs.texture_fetches = static_cast<double>(m.texture_fetches) / words;
  costs.texture_misses = static_cast<double>(m.texture_misses) / words;

  std::lock_guard lock(mutex);
  cache.emplace(key, costs);
  return costs;
}

}  // namespace

namespace {

// Scaled kernel metrics for encoding `coded_blocks` blocks with `scheme`,
// with preprocessing for `segments` source segments when requested. Also
// the stage-2 model of multi-segment decoding (which reuses the encode
// kernel).
KernelMetrics scaled_encode_metrics(const simgpu::DeviceSpec& spec,
                                    EncodeScheme scheme,
                                    const coding::Params& params,
                                    std::size_t coded_blocks,
                                    bool include_preprocessing,
                                    std::size_t segments,
                                    const EncodeModelOptions& options) {
  const PerWordCosts per_word =
      calibrate_encode(spec, scheme, params.n, options);
  const double words = static_cast<double>(coded_blocks) * params.k / 4.0;

  KernelMetrics m;
  m.set_alu_ops(per_word.alu * words);
  m.global_load_bytes =
      static_cast<std::uint64_t>(per_word.global_load_bytes * words);
  m.global_store_bytes =
      static_cast<std::uint64_t>(per_word.global_store_bytes * words);
  m.global_transactions =
      static_cast<std::uint64_t>(per_word.transactions * words);
  m.shared_accesses =
      static_cast<std::uint64_t>(per_word.shared_accesses * words);
  m.shared_access_events =
      static_cast<std::uint64_t>(per_word.shared_events * words);
  m.shared_serialized_cycles =
      static_cast<std::uint64_t>(per_word.shared_cycles * words);
  m.texture_fetches =
      static_cast<std::uint64_t>(per_word.texture_fetches * words);
  m.texture_misses =
      static_cast<std::uint64_t>(per_word.texture_misses * words);
  m.kernel_launches = 1;
  // Launch geometry of the target workload.
  if (scheme == EncodeScheme::kLoopBased) {
    m.threads_per_block = 256;
    m.blocks = static_cast<std::size_t>(words) / 256 + 1;
  } else {
    m.threads_per_block = 256;
    m.blocks = std::min<std::size_t>(
        spec.num_sms, static_cast<std::size_t>(words) / 256 + 1);
  }

  if (include_preprocessing && scheme_is_preprocessed(scheme)) {
    // Log-domain transforms: every source segment (n*k bytes each) once
    // plus the coefficient matrix (coded_blocks * n bytes), amortized over
    // this batch.
    const double pre_bytes =
        static_cast<double>(segments) * params.segment_bytes() +
        static_cast<double>(coded_blocks) * params.n;
    KernelMetrics pre;
    pre.set_alu_ops(pre_bytes * (kPreprocessPerByte + 0.5 /*amortized loads*/));
    pre.global_load_bytes = static_cast<std::uint64_t>(pre_bytes);
    pre.global_store_bytes = static_cast<std::uint64_t>(pre_bytes);
    pre.global_transactions = static_cast<std::uint64_t>(2 * pre_bytes / 64);
    pre.kernel_launches = 2;
    pre.blocks = spec.num_sms;
    pre.threads_per_block = 256;
    m.merge(pre);
    m.kernel_launches = 3;
    m.blocks = (scheme == EncodeScheme::kLoopBased)
                   ? static_cast<std::size_t>(words) / 256 + 1
                   : std::min<std::size_t>(
                         spec.num_sms,
                         static_cast<std::size_t>(words) / 256 + 1);
  }
  return m;
}

}  // namespace

BandwidthEstimate model_encode_bandwidth(const simgpu::DeviceSpec& spec,
                                         EncodeScheme scheme,
                                         const coding::Params& params,
                                         const EncodeModelOptions& options) {
  const KernelMetrics m = scaled_encode_metrics(
      spec, scheme, params, options.coded_blocks,
      options.include_preprocessing, /*segments=*/1, options);
  BandwidthEstimate estimate;
  estimate.time = simgpu::estimate_time(spec, m);
  const double payload_bytes =
      static_cast<double>(options.coded_blocks) * params.k;
  estimate.mb_per_s = payload_bytes / kMb / estimate.time.total_s;
  if (options.profiler != nullptr) {
    options.profiler->record_launch(
        spec, std::string("model/encode/") + scheme_label(scheme), m);
  }
  return estimate;
}

// ---------------------------------------------------------------- decode

KernelMetrics analytic_single_segment_decode_metrics(
    const simgpu::DeviceSpec& spec, const coding::Params& params,
    const DecodeOptions& options) {
  const double n = static_cast<double>(params.n);
  const double k = static_cast<double>(params.k);
  const double blocks = std::max(
      1.0, std::min<double>(spec.num_sms, k / 4.0));
  const double slice_words = k / 4.0 / blocks;
  const double coeff_words = n / 4.0;
  const double row_words_total =
      blocks * coeff_words + k / 4.0;  // replicated C + sliced payload

  // Over a full decode: per arrival r (rank before insert) there are
  // r forward eliminations, 1 normalize, r back-eliminations and 1 row
  // store: sum over n arrivals ~= n^2 + 2n row operations.
  const double row_ops = n * n + 2.0 * n;
  const double per_word_alu =
      kDecodeCost.per_word + kDecodeCost.per_iteration * kAvgLoopIterations +
      3.0;  // 2 loads + 1 store issue slots
  KernelMetrics m;
  m.set_alu_ops(row_ops * row_words_total * per_word_alu);
  // Pivot searches: n launches, each scanning the n-byte coefficient row
  // in every block.
  const double reduce = options.use_atomic_min
                            ? kDecodeCost.pivot_reduce_atomic
                            : kDecodeCost.pivot_reduce_per_thread;
  m.add_alu_ops(n * blocks *
                (n * kDecodeCost.pivot_search_per_byte + coeff_words * reduce));
  const double row_bytes_touched = row_ops * row_words_total * 4.0;
  m.global_load_bytes = static_cast<std::uint64_t>(2.0 * row_bytes_touched);
  m.global_store_bytes = static_cast<std::uint64_t>(row_bytes_touched);
  double transactions = 3.0 * row_bytes_touched / 64.0;
  if (options.cache_coefficients) {
    // The coefficient side of every row operation (stored-row read,
    // scratch read-modify-write) moves from global to shared memory.
    const double coeff_bytes = 3.0 * row_ops * blocks * coeff_words * 4.0;
    m.global_load_bytes -= static_cast<std::uint64_t>(coeff_bytes * 2 / 3);
    m.global_store_bytes -= static_cast<std::uint64_t>(coeff_bytes / 3);
    transactions -= coeff_bytes / 64.0;
    m.shared_accesses += static_cast<std::uint64_t>(coeff_bytes / 4.0);
    m.shared_access_events += static_cast<std::uint64_t>(coeff_bytes / 4.0 /
                                                         spec.half_warp);
    m.shared_serialized_cycles = m.shared_access_events;  // coalesced rows
    // Staging: each launch stages the rows it will touch (one coalesced
    // pass over ~rank rows).
    m.global_load_bytes +=
        static_cast<std::uint64_t>(n * n / 2.0 * n * blocks);
    transactions += n * n / 2.0 * n * blocks / 64.0;
  }
  m.global_transactions = static_cast<std::uint64_t>(transactions);
  m.atomic_ops = options.use_atomic_min
                     ? static_cast<std::uint64_t>(n * blocks * coeff_words)
                     : 0;
  m.kernel_launches = static_cast<std::uint64_t>(n);
  // Per arrival of rank r: r forward row ops, pivot search, normalize,
  // r back-eliminations and the row store are each one barrier-fenced
  // step; summed over the decode that is ~n^2 + 2n steps per block.
  // Caching the coefficient matrix in shared memory (Sec. 5.4.3) shortens
  // each step's dependency chain — the factor read no longer waits on a
  // global round-trip — modeled as a 20% cut of the per-step latency. The
  // atomicMin pivot reduction (Sec. 5.4.2) removes most of the serial
  // min-reduction from the pivot-search step, one of ~2.5 steps per
  // arrival.
  double steps = (n * n + 2.0 * n);
  if (options.cache_coefficients) steps *= 0.80;
  if (options.use_atomic_min) steps -= 0.4 * n;
  m.barriers = static_cast<std::uint64_t>(steps * blocks);
  m.blocks = static_cast<std::size_t>(blocks);
  m.threads_per_block = static_cast<std::size_t>(std::min(
      512.0, std::max(1.0, coeff_words + slice_words)));
  return m;
}

BandwidthEstimate model_single_segment_decode(const simgpu::DeviceSpec& spec,
                                              const coding::Params& params,
                                              const DecodeOptions& options,
                                              simgpu::Profiler* profiler) {
  const KernelMetrics m =
      analytic_single_segment_decode_metrics(spec, params, options);
  BandwidthEstimate estimate;
  estimate.time = simgpu::estimate_time(spec, m);
  estimate.mb_per_s = static_cast<double>(params.segment_bytes()) / kMb /
                      estimate.time.total_s;
  if (profiler != nullptr) {
    profiler->record_launch(spec, "model/decode/single", m);
  }
  return estimate;
}

KernelMetrics analytic_inversion_metrics(const simgpu::DeviceSpec& spec,
                                         const coding::Params& params,
                                         std::size_t segments) {
  const double n = static_cast<double>(params.n);
  const double s = static_cast<double>(segments);
  const double row_words = 2.0 * n / 4.0;
  // Per segment: n columns x (~n eliminations + 1 scale) row ops over the
  // augmented [C | I], plus the serial pivot scans. Within a column the
  // eliminations are row-parallel (the functional kernel's geometry), so
  // the block runs with a full thread complement; only the column loop is
  // serial.
  const double row_ops = s * n * n;
  const double per_word_alu =
      kDecodeCost.per_word + kDecodeCost.per_iteration * kAvgLoopIterations +
      3.0;
  KernelMetrics m;
  m.set_alu_ops(row_ops * row_words * per_word_alu);
  m.add_alu_ops(s * n * n / 2.0 * kDecodeCost.pivot_search_per_byte);
  const double bytes = row_ops * row_words * 4.0;
  m.global_load_bytes = static_cast<std::uint64_t>(2.0 * bytes);
  m.global_store_bytes = static_cast<std::uint64_t>(bytes);
  m.global_transactions = static_cast<std::uint64_t>(3.0 * bytes / 64.0);
  m.kernel_launches = 1;
  // Per column: pivot scan, occasional swap, scale, factor staging and the
  // row-parallel elimination — ~4.5 barrier-fenced steps.
  m.barriers = static_cast<std::uint64_t>(4.5 * n) * segments;
  m.blocks = segments;
  m.threads_per_block = static_cast<std::size_t>(std::min(
      static_cast<double>(spec.max_threads_per_block),
      std::max(1.0, n * row_words)));
  return m;
}

KernelMetrics analytic_multiply_metrics(const simgpu::DeviceSpec& spec,
                                        const coding::Params& params,
                                        std::size_t segments) {
  // Stage 2 reuses the table-based-5 encode kernel (see
  // GpuMultiSegmentDecoder::multiply_stage): per segment, n "coded blocks"
  // whose coefficients are the rows of C^-1, with the coded payloads
  // preprocessed to the log domain as pseudo-source blocks.
  return scaled_encode_metrics(spec, EncodeScheme::kTable5, params,
                               /*coded_blocks=*/segments * params.n,
                               /*include_preprocessing=*/true, segments,
                               EncodeModelOptions{});
}

MultiSegEstimate model_multi_segment_decode(const simgpu::DeviceSpec& spec,
                                            const coding::Params& params,
                                            std::size_t segments,
                                            simgpu::Profiler* profiler) {
  const KernelMetrics stage1_m =
      analytic_inversion_metrics(spec, params, segments);
  const KernelMetrics stage2_m =
      analytic_multiply_metrics(spec, params, segments);
  MultiSegEstimate estimate;
  estimate.stage1 = simgpu::estimate_time(spec, stage1_m);
  estimate.stage2 = simgpu::estimate_time(spec, stage2_m);
  if (profiler != nullptr) {
    profiler->record_launch(spec, "model/decode/multiseg/invert", stage1_m);
    profiler->record_launch(spec, "model/decode/multiseg/stage2", stage2_m);
  }
  const double total = estimate.stage1.total_s + estimate.stage2.total_s;
  estimate.stage1_share = estimate.stage1.total_s / total;
  estimate.mb_per_s =
      static_cast<double>(segments) * params.segment_bytes() / kMb / total;
  return estimate;
}

}  // namespace extnc::gpu
