// Bandwidth models for the paper's figures.
//
// Encoding: the functional kernels are fast enough to run a scaled-down
// calibration workload (per-output-word costs are independent of k and of
// the number of coded blocks), so model_encode_bandwidth() runs the real
// kernel on a small batch, extracts per-word metrics — including the
// *measured* shared-memory conflict degree and coalescing behaviour — and
// scales them to the requested workload before applying the timing model.
//
// Decoding: a full-size functional decode is O(n^2 k) work per segment
// (minutes at the figure sizes), so the decode models build the kernel
// metrics analytically from the same per-row-operation costs the
// functional decoders charge; tests cross-check the analytic metrics
// against functional runs at small sizes.
#pragma once

#include <cstddef>

#include "coding/params.h"
#include "gpu/encode_scheme.h"
#include "gpu/gpu_decoder.h"
#include "simgpu/device_spec.h"
#include "simgpu/profiler.h"
#include "simgpu/timing.h"

namespace extnc::gpu {

struct EncodeModelOptions {
  // Coded blocks generated per segment in the modeled workload. The
  // paper's streaming scenario generates thousands; n is the natural
  // batch for a VoD workload.
  std::size_t coded_blocks = 1024;
  // Include the log-domain preprocessing kernels, amortized over
  // coded_blocks (set false to model the steady-state encode rate only).
  bool include_preprocessing = true;
  // Calibration workload size (small; per-word costs are k-independent).
  std::size_t calibration_k = 512;
  std::size_t calibration_blocks = 96;
  std::uint64_t seed = 0x5eed;
  // Optional observability: the modeled workload is recorded as one
  // "model/encode/<scheme>" launch (scaled metrics, modeled time), so
  // benches can export a trace of what the figure numbers are made of.
  simgpu::Profiler* profiler = nullptr;
};

struct BandwidthEstimate {
  double mb_per_s = 0;
  simgpu::TimeBreakdown time;
};

// Modeled steady-state encoding bandwidth (MB/s of coded payload).
BandwidthEstimate model_encode_bandwidth(const simgpu::DeviceSpec& spec,
                                         EncodeScheme scheme,
                                         const coding::Params& params,
                                         const EncodeModelOptions& options = {});

// Modeled single-segment progressive decoding bandwidth (Sec. 4.2.2). With
// a profiler, the analytic workload records as "model/decode/single".
BandwidthEstimate model_single_segment_decode(
    const simgpu::DeviceSpec& spec, const coding::Params& params,
    const DecodeOptions& options = {}, simgpu::Profiler* profiler = nullptr);

struct MultiSegEstimate {
  double mb_per_s = 0;
  // Fraction of total decode time spent in stage 1 (matrix inversion) —
  // the Fig. 9 annotations.
  double stage1_share = 0;
  simgpu::TimeBreakdown stage1;
  simgpu::TimeBreakdown stage2;
};

// Modeled multi-segment decoding bandwidth with `segments` in flight
// (Sec. 5.2; the paper plots 3 and 6 on the GTX 280). With a profiler the
// two stages record as "model/decode/multiseg/{invert,stage2}".
MultiSegEstimate model_multi_segment_decode(const simgpu::DeviceSpec& spec,
                                            const coding::Params& params,
                                            std::size_t segments,
                                            simgpu::Profiler* profiler =
                                                nullptr);

// Analytic metric builders (exposed for tests, which cross-check them
// against the functional decoders' measured metrics).
simgpu::KernelMetrics analytic_single_segment_decode_metrics(
    const simgpu::DeviceSpec& spec, const coding::Params& params,
    const DecodeOptions& options);
simgpu::KernelMetrics analytic_inversion_metrics(const simgpu::DeviceSpec& spec,
                                                 const coding::Params& params,
                                                 std::size_t segments);
simgpu::KernelMetrics analytic_multiply_metrics(const simgpu::DeviceSpec& spec,
                                                const coding::Params& params,
                                                std::size_t segments);

}  // namespace extnc::gpu
