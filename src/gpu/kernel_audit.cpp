#include "gpu/kernel_audit.h"

#include <algorithm>
#include <array>
#include <set>
#include <sstream>

#include "gf256/gf.h"
#include "gf256/swar.h"
#include "gpu/kernel_cost.h"
#include "gpu/table_layout.h"
#include "util/assert.h"
#include "util/metrics_registry.h"

namespace extnc::gpu {

using simgpu::KernelMetrics;
using simgpu::SegmentBuilder;
using simgpu::SegmentModel;
using simgpu::StaticKernelModel;

namespace {

// ------------------------------------------------------------------------
// Payload classes.

// The uniform value must survive every scheme's accounting map; assert the
// documented [1, 254] envelope once per entry point.
void check_assumptions(const ModelAssumptions& a) {
  EXTNC_CHECK(a.payload_value >= 1 && a.payload_value <= 254);
  EXTNC_CHECK(a.coeff_value >= 1 && a.coeff_value <= 254);
}

}  // namespace

int payload_class_byte(PayloadClass cls, const ModelAssumptions& assume,
                       std::size_t pos) {
  switch (cls) {
    case PayloadClass::kUniform:
      return assume.payload_value;
    case PayloadClass::kStride64:
      // 1 + 64 * (word % 4): all four values in [1, 193], 64 apart.
      return 1 + 64 * static_cast<int>((pos / 4) % 4);
    case PayloadClass::kSparse:
      return pos % 3 == 0 ? -1 : assume.payload_value;
  }
  return -1;
}

int coeff_class_byte(const ModelAssumptions& assume, std::size_t i) {
  if (assume.coeff_zero_every != 0 &&
      i % assume.coeff_zero_every == assume.coeff_zero_every - 1) {
    return -1;
  }
  return assume.coeff_value;
}

namespace {

// Natural-domain byte whose accounting image under `scheme` is the class
// byte `v` (-1 = zero). Inverts the per-scheme preprocessing map.
std::uint8_t natural_from_class(EncodeScheme scheme, int v) {
  if (v < 0) return 0;
  const gf256::Tables& t = gf256::tables();
  if (!scheme_is_preprocessed(scheme)) {
    // loop / tb0: the kernel reads natural bytes directly.
    return static_cast<std::uint8_t>(v);
  }
  if (scheme_uses_shifted_log(scheme)) {
    // log_shifted[x] == v  =>  x == exp[v - 1]  (v in [1, 255]).
    EXTNC_CHECK(v >= 1);
    return t.exp[v - 1];
  }
  // log[x] == v  =>  x == exp[v]  (v in [0, 254]).
  EXTNC_CHECK(v <= 254);
  return t.exp[v];
}

// ------------------------------------------------------------------------
// Shared walker scaffolding.

struct EncodeGeometry {
  std::size_t wpb = 0;          // words per coded block (k / 4)
  std::size_t total_words = 0;  // count * wpb
  std::size_t threads = 0;
  std::size_t blocks = 0;
  std::size_t half = 0;
};

EncodeGeometry encode_geometry(const simgpu::DeviceSpec& spec,
                               EncodeScheme scheme, const coding::Params& p,
                               std::size_t count) {
  EXTNC_CHECK(p.k % 4 == 0);
  EXTNC_CHECK(count >= 1);
  EncodeGeometry g;
  g.wpb = p.k / 4;
  g.total_words = count * g.wpb;
  g.half = static_cast<std::size_t>(spec.half_warp);
  EXTNC_CHECK(g.half >= 1 && g.half <= 16);
  if (scheme == EncodeScheme::kLoopBased) {
    g.threads = std::min<std::size_t>(256, g.total_words);
    g.blocks = (g.total_words + g.threads - 1) / g.threads;
  } else {
    g.threads = 256;
    g.blocks = std::min<std::size_t>(
        static_cast<std::size_t>(spec.num_sms),
        (g.total_words + g.threads - 1) / g.threads);
  }
  return g;
}

// Tracks the modeled byte extent of each global region while the walker
// runs, so footprints are derived, never asserted.
struct Extent {
  std::size_t end = 0;
  void touch(std::uintptr_t addr, std::size_t bytes) {
    end = std::max(end, static_cast<std::size_t>(addr) + bytes);
  }
};

// The cooperative table-load step shared by tb0-tb3 and tb5 (tb4 binds the
// exp table as a texture instead). `lane_blocked` is the seeded
// conflict-regression variant: each lane sweeps a contiguous chunk instead
// of the interleaved walk, turning every store group into a single-bank
// pileup.
SegmentModel table_load_segment(const simgpu::DeviceSpec& spec,
                                EncodeScheme scheme,
                                const EncodeGeometry& g, Extent& exp_extent,
                                Extent& log_extent, bool lane_blocked) {
  SegmentBuilder load(spec, "table_load");
  const bool tb5 = scheme == EncodeScheme::kTable5;
  std::array<std::uintptr_t, 16> words{};
  // (table word count, shared base word, extent) per cooperative loop.
  struct TableSweep {
    std::size_t table_words;
    std::size_t base_word;
    Extent* extent;
  };
  std::vector<TableSweep> sweeps;
  if (tb5) {
    sweeps.push_back({kExpTableEntries * kReplicatedTables, 0, &exp_extent});
  } else {
    sweeps.push_back({kExpTableEntries / 4, kExpBytesOffset / 4,
                      &exp_extent});
    if (scheme == EncodeScheme::kTable0) {
      sweeps.push_back({256 / 4, kLogBytesOffset / 4, &log_extent});
    }
  }
  for (const TableSweep& sweep : sweeps) {
    if (lane_blocked && sweep.table_words >= g.threads) {
      // Seeded regression: lane l loads words [l * chunk, (l + 1) * chunk).
      const std::size_t chunk = sweep.table_words / g.threads;
      for (std::size_t it = 0; it < chunk; ++it) {
        for (std::size_t l0 = 0; l0 < g.threads; l0 += g.half) {
          const std::size_t cnt = std::min(g.half, g.threads - l0);
          for (std::size_t l = 0; l < cnt; ++l) {
            words[l] = sweep.base_word + (l0 + l) * chunk + it;
          }
          // One 4-byte load per lane, chunk * 4 bytes apart: still one
          // transaction dedup per distinct 64-byte segment.
          std::array<std::uintptr_t, 16> addrs{};
          for (std::size_t l = 0; l < cnt; ++l) {
            addrs[l] = ((l0 + l) * chunk + it) * 4;
          }
          load.add_global_group(addrs.data(), cnt, 4, cnt * 4, 0, g.blocks);
          load.add_shared_group(words.data(), cnt, g.blocks);
          sweep.extent->touch((sweep.table_words - 1) * 4, 4);
        }
      }
      continue;
    }
    for (std::size_t it = 0; it * g.threads < sweep.table_words; ++it) {
      const std::size_t base = it * g.threads;
      const std::size_t lanes_end =
          std::min(g.threads, sweep.table_words - base);
      for (std::size_t l0 = 0; l0 < lanes_end; l0 += g.half) {
        const std::size_t w0 = base + l0;
        const std::size_t cnt = std::min(g.half, sweep.table_words - w0);
        load.add_global_span(w0 * 4, cnt * 4, cnt, cnt * 4, 0, g.blocks);
        sweep.extent->touch(w0 * 4, cnt * 4);
        for (std::size_t l = 0; l < cnt; ++l) {
          words[l] = sweep.base_word + w0 + l;
        }
        load.add_shared_group(words.data(), cnt, g.blocks);
      }
    }
  }
  // One step per block.
  return load.finish(g.threads, g.blocks);
}

}  // namespace

coding::Segment synthesize_segment(EncodeScheme scheme,
                                   const coding::Params& params,
                                   const ModelAssumptions& assume) {
  check_assumptions(assume);
  coding::Segment segment(params);
  std::uint8_t* data = segment.data();
  const std::size_t bytes = params.segment_bytes();
  for (std::size_t pos = 0; pos < bytes; ++pos) {
    data[pos] = natural_from_class(
        scheme, payload_class_byte(assume.payload_class, assume, pos));
  }
  return segment;
}

coding::CodedBatch synthesize_batch(EncodeScheme scheme,
                                    const coding::Params& params,
                                    std::size_t count,
                                    const ModelAssumptions& assume) {
  check_assumptions(assume);
  coding::CodedBatch batch(params, count);
  for (std::size_t j = 0; j < count; ++j) {
    auto row = batch.coefficients(j);
    for (std::size_t i = 0; i < params.n; ++i) {
      row[i] = natural_from_class(scheme, coeff_class_byte(assume, i));
    }
  }
  return batch;
}

std::vector<std::uint8_t> synthesize_invertible_matrix(std::size_t n) {
  EXTNC_CHECK(n >= 1 && n <= 255);
  const gf256::Tables& t = gf256::tables();
  std::vector<std::uint8_t> m(n * n);
  for (std::size_t r = 0; r < n; ++r) {
    const std::uint8_t x = t.exp[r];  // distinct nonzero points
    std::uint8_t power = 1;
    for (std::size_t c = 0; c < n; ++c) {
      m[r * n + c] = power;
      power = gf256::mul(power, x);
    }
  }
  return m;
}

// ------------------------------------------------------------------------
// Encode model.

namespace {

StaticKernelModel encode_model_impl(const simgpu::DeviceSpec& spec,
                                    EncodeScheme scheme,
                                    const coding::Params& p,
                                    std::size_t count,
                                    const ModelAssumptions& assume,
                                    bool seed_oob_tail,
                                    bool seed_lane_blocked_load) {
  check_assumptions(assume);
  const EncodeGeometry g = encode_geometry(spec, scheme, p, count);
  const EncodeCost cost = encode_cost(scheme);
  const gf256::Tables& t = gf256::tables();
  const bool loop = scheme == EncodeScheme::kLoopBased;
  const bool tb0 = scheme == EncodeScheme::kTable0;
  const bool tb4 = scheme == EncodeScheme::kTable4;
  const bool tb5 = scheme == EncodeScheme::kTable5;
  const bool shifted = scheme_uses_shifted_log(scheme);
  const std::uint8_t sentinel = shifted ? 0x00 : gf256::kLogZero;

  StaticKernelModel model;
  model.kernel = std::string("encode/") + scheme_label(scheme) + "/" +
                 (loop ? "mul_loop" : tb4 ? "exp_tex" : "exp_smem");
  model.blocks = g.blocks;
  model.threads_per_block = g.threads;
  model.shared_bytes = loop || tb4 ? 0
                       : tb5       ? table_shared_bytes_tb5()
                                   : table_shared_bytes_byte(tb0);

  Extent src_extent;
  Extent coeff_extent;
  Extent out_extent;
  Extent exp_extent;
  Extent log_extent;

  if (!loop && !tb4) {
    model.segments.push_back(table_load_segment(spec, scheme, g, exp_extent,
                                                log_extent,
                                                seed_lane_blocked_load));
  }

  // Accounting-domain coefficient byte for row i as the kernel's sentinel
  // test sees it (for tb0 this is the value AFTER the shared log lookup).
  auto acct_coeff = [&](std::size_t i) -> std::uint8_t {
    const int v = coeff_class_byte(assume, i);
    if (tb0 || loop) {
      const std::uint8_t nat = v < 0 ? 0 : static_cast<std::uint8_t>(v);
      return tb0 ? t.log[nat] : nat;
    }
    return v < 0 ? sentinel : static_cast<std::uint8_t>(v);
  };
  // Same for payload byte at accounting position `pos`.
  auto acct_src = [&](std::size_t pos) -> std::uint8_t {
    const int v = payload_class_byte(assume.payload_class, assume, pos);
    if (tb0) {
      return t.log[v < 0 ? 0 : static_cast<std::uint8_t>(v)];
    }
    return v < 0 ? sentinel : static_cast<std::uint8_t>(v);
  };
  // Natural byte (tb0's shared log table is indexed by it).
  auto natural_src = [&](std::size_t pos) -> std::uint8_t {
    const int v = payload_class_byte(assume.payload_class, assume, pos);
    return v < 0 ? 0 : static_cast<std::uint8_t>(v);
  };

  const std::uint64_t word_deci = KernelMetrics::deciops(cost.per_word);
  const std::uint64_t byte_deci = KernelMetrics::deciops(cost.per_byte);

  SegmentBuilder enc(spec, "encode");
  std::array<std::uintptr_t, 16> jv{};
  std::array<std::uintptr_t, 16> wv{};
  std::array<std::uintptr_t, 16> addrs{};
  std::array<std::uintptr_t, 16> words{};
  const std::size_t stride = g.blocks * g.threads;
  // Per texture unit: distinct exp-table cache lines touched (tb4 only).
  const std::size_t line_bytes =
      std::max<std::size_t>(1, spec.texture_cache_line_bytes);
  const std::size_t unit_div =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::max(1, spec.sms_per_texture_cache)));
  std::vector<std::set<std::uintptr_t>> unit_lines(
      (static_cast<std::size_t>(spec.num_sms) + unit_div - 1) / unit_div);
  std::uint64_t tex_fetches = 0;

  for (std::size_t b = 0; b < g.blocks; ++b) {
    const std::size_t unit = (b % static_cast<std::size_t>(spec.num_sms)) /
                             unit_div;
    // The loop kernel makes one pass (blocks cover every word); the table
    // kernels stride. Both reduce to this strided loop since the loop
    // kernel's stride covers the index space exactly once.
    for (std::size_t base = b * g.threads; base < g.total_words;
         base += stride) {
      const std::size_t lanes_end =
          std::min(g.threads, g.total_words - base);
      const std::size_t guarded_end =
          seed_oob_tail && lanes_end < g.threads
              ? g.threads  // tail guard dropped: full thread count stores
              : lanes_end;
      for (std::size_t l0 = 0; l0 < lanes_end; l0 += g.half) {
        const std::size_t wb = base + l0;
        const std::size_t cnt = std::min(g.half, lanes_end - l0);
        for (std::size_t l = 0; l < cnt; ++l) {
          jv[l] = (wb + l) / g.wpb;
          wv[l] = (wb + l) % g.wpb;
        }
        for (std::size_t i = 0; i < p.n; ++i) {
          // Coefficient load: one byte per lane, scattered across rows
          // when the half-warp straddles coded blocks.
          for (std::size_t l = 0; l < cnt; ++l) {
            addrs[l] = jv[l] * p.n + i;
            coeff_extent.touch(addrs[l], 1);
          }
          enc.add_global_group(addrs.data(), cnt, 1, cnt, 0);
          const std::uint8_t log_c = acct_coeff(i);
          if (tb0) {
            // Broadcast log lookup: every lane hits the word holding the
            // (uniform) natural coefficient byte.
            const int v = coeff_class_byte(assume, i);
            const std::uintptr_t lw =
                (kLogBytesOffset +
                 (v < 0 ? 0 : static_cast<std::size_t>(v))) /
                4;
            for (std::size_t l = 0; l < cnt; ++l) words[l] = lw;
            enc.add_shared_group(words.data(), cnt);
          }
          // Source load: 4 bytes per lane; contiguous within a coded
          // block, discontinuous across the straddle.
          for (std::size_t l = 0; l < cnt; ++l) {
            addrs[l] = i * p.k + wv[l] * 4;
            src_extent.touch(addrs[l], 4);
          }
          enc.add_global_group(addrs.data(), cnt, 4, cnt * 4, 0);
          if (loop) {
            const int v = coeff_class_byte(assume, i);
            const std::uint8_t c = v < 0 ? 0 : static_cast<std::uint8_t>(v);
            enc.add_alu_deciops(cnt *
                                KernelMetrics::deciops(
                                    cost.per_iteration *
                                    gf256::loop_iterations(c)));
            continue;
          }
          enc.add_alu_deciops(cnt * word_deci);
          if (log_c == sentinel) continue;
          for (int bb = 0; bb < 4; ++bb) {
            if (tb0) {
              for (std::size_t l = 0; l < cnt; ++l) {
                const std::size_t pos = i * p.k + wv[l] * 4 + bb;
                words[l] = (kLogBytesOffset + natural_src(pos)) / 4;
              }
              enc.add_shared_group(words.data(), cnt);
            }
            enc.add_alu_deciops(cnt * byte_deci);
            std::size_t active = 0;
            for (std::size_t l = 0; l < cnt; ++l) {
              const std::size_t pos = i * p.k + wv[l] * 4 + bb;
              const std::uint8_t log_s = acct_src(pos);
              if (log_s == sentinel) continue;
              const std::size_t idx =
                  static_cast<std::size_t>(log_c) + log_s;
              if (tb4) {
                unit_lines[unit].insert(idx / line_bytes);
                ++tex_fetches;
                ++active;
                exp_extent.touch(idx, 1);
                continue;
              }
              words[active++] =
                  tb5 ? tb5_word_index(idx, l0 + l)
                      : kExpBytesOffset / 4 + idx / 4;
              exp_extent.touch(tb5 ? tb5_word_index(idx, l0 + l) * 4
                                   : idx,
                               tb5 ? 4 : 1);
            }
            if (!tb4 && active > 0) {
              enc.add_shared_group(words.data(), active);
            }
          }
        }
        if (loop) enc.add_alu_deciops(cnt * word_deci);
        // Output store.
        for (std::size_t l = 0; l < cnt; ++l) {
          addrs[l] = jv[l] * p.k + wv[l] * 4;
          out_extent.touch(addrs[l], 4);
        }
        enc.add_global_group(addrs.data(), cnt, 4, 0, cnt * 4);
      }
      for (std::size_t l = lanes_end; l < guarded_end; ++l) {
        // Seeded OOB: the unguarded store tail writes word indices past
        // total_words, landing beyond the registered payload buffer.
        const std::size_t w = base + l;
        out_extent.touch((w / g.wpb) * p.k + (w % g.wpb) * 4, 4);
      }
    }
  }
  if (tb4) {
    std::uint64_t misses = 0;
    if (assume.cold_texture) {
      for (const auto& lines : unit_lines) misses += lines.size();
    }
    enc.add_texture_fetches(tex_fetches, misses);
  }
  model.segments.push_back(enc.finish(g.threads, g.blocks));

  // Registered buffer sizes come from the geometry; needed extents from
  // the walk above.
  const bool preprocessed = scheme_is_preprocessed(scheme);
  model.footprint.push_back({preprocessed ? "log_segment" : "segment",
                             src_extent.end, p.segment_bytes(), false});
  model.footprint.push_back(
      {preprocessed ? "log_coefficients" : "batch.coefficients",
       coeff_extent.end, count * p.n, false});
  model.footprint.push_back(
      {"batch.payloads", out_extent.end, count * p.k, true});
  if (!loop) {
    if (tb5) {
      model.footprint.push_back({"exp_table_words", exp_extent.end,
                                 kExpTableEntries * kReplicatedTables * 4,
                                 false});
    } else {
      model.footprint.push_back(
          {"exp_table", exp_extent.end, kExpTableEntries, false});
    }
    if (tb0) {
      model.footprint.push_back({"log_table", log_extent.end, 256, false});
    }
  }
  return model;
}

}  // namespace

StaticKernelModel encode_kernel_model(const simgpu::DeviceSpec& spec,
                                      EncodeScheme scheme,
                                      const coding::Params& params,
                                      std::size_t count,
                                      const ModelAssumptions& assume) {
  return encode_model_impl(spec, scheme, params, count, assume, false,
                           false);
}

StaticKernelModel recode_kernel_model(const simgpu::DeviceSpec& spec,
                                      EncodeScheme scheme,
                                      const coding::Params& params,
                                      std::size_t received,
                                      std::size_t produced,
                                      const ModelAssumptions& assume) {
  EXTNC_CHECK((params.n + params.k) % 4 == 0);
  const coding::Params aggregate{.n = received, .k = params.n + params.k};
  StaticKernelModel model =
      encode_model_impl(spec, scheme, aggregate, produced, assume, false,
                        false);
  model.kernel = std::string("recode/") + scheme_label(scheme) + "/" +
                 (scheme == EncodeScheme::kLoopBased ? "mul_loop"
                  : scheme == EncodeScheme::kTable4 ? "exp_tex"
                                                    : "exp_smem");
  return model;
}

// ------------------------------------------------------------------------
// Preprocess models (payload-free: the access structure is a pure function
// of the element count).

namespace {

StaticKernelModel preprocess_model(const simgpu::DeviceSpec& spec,
                                   const char* kernel, std::size_t elements,
                                   std::size_t element_bytes,
                                   const char* src_name,
                                   const char* dst_name) {
  const std::size_t threads = 256;
  const std::size_t blocks = std::min<std::size_t>(
      static_cast<std::size_t>(spec.num_sms),
      (elements + threads - 1) / threads);
  const std::size_t half = static_cast<std::size_t>(spec.half_warp);
  const std::size_t stride = blocks * threads;
  const std::uint64_t byte_deci = KernelMetrics::deciops(kPreprocessPerByte);

  StaticKernelModel model;
  model.kernel = kernel;
  model.blocks = blocks;
  model.threads_per_block = threads;
  Extent extent;
  SegmentBuilder seg(spec, "transform");
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::size_t base = b * threads; base < elements; base += stride) {
      const std::size_t lanes_end = std::min(threads, elements - base);
      for (std::size_t l0 = 0; l0 < lanes_end; l0 += half) {
        const std::size_t e0 = base + l0;
        const std::size_t cnt = std::min(half, elements - e0);
        seg.add_global_span(e0 * element_bytes, cnt * element_bytes, cnt,
                            cnt * element_bytes, 0);
        seg.add_alu_deciops(cnt * (element_bytes)*byte_deci);
        seg.add_global_span(e0 * element_bytes, cnt * element_bytes, cnt, 0,
                            cnt * element_bytes);
        extent.touch(e0 * element_bytes, cnt * element_bytes);
      }
    }
  }
  model.segments.push_back(seg.finish(threads, blocks));
  const std::size_t bytes = elements * element_bytes;
  model.footprint.push_back({src_name, extent.end, bytes, false});
  model.footprint.push_back({dst_name, extent.end, bytes, true});
  return model;
}

}  // namespace

StaticKernelModel preprocess_segment_model(const simgpu::DeviceSpec& spec,
                                           const coding::Params& params) {
  EXTNC_CHECK(params.k % 4 == 0);
  return preprocess_model(spec, "encode/preprocess_segment",
                          params.segment_bytes() / 4, 4, "segment",
                          "log_segment");
}

StaticKernelModel preprocess_coefficients_model(
    const simgpu::DeviceSpec& spec, const coding::Params& params,
    std::size_t count) {
  return preprocess_model(spec, "encode/preprocess_coeffs",
                          count * params.n, 1, "batch.coefficients",
                          "log_coefficients");
}

// ------------------------------------------------------------------------
// Inverter model: simulate the Gauss-Jordan elimination on the coefficient
// matrix (n x 2n working copy — matrix work, never payload work) and
// charge the exact group structure of the invert kernel.

namespace {

// Multiply every counter of a one-block segment model by the block count.
void scale_segment(SegmentModel& seg, std::uint64_t times) {
  KernelMetrics& m = seg.counters;
  m.alu_deciops *= times;
  m.global_load_bytes *= times;
  m.global_store_bytes *= times;
  m.global_transactions *= times;
  m.shared_accesses *= times;
  m.shared_access_events *= times;
  m.shared_serialized_cycles *= times;
  m.texture_fetches *= times;
  m.texture_misses *= times;
  m.atomic_ops *= times;
  m.barriers *= times;
  for (auto& d : seg.degree_events) d *= times;
}

}  // namespace

StaticKernelModel invert_kernel_model(const simgpu::DeviceSpec& spec,
                                      const coding::Params& params,
                                      std::size_t segments,
                                      const std::vector<std::uint8_t>& matrix) {
  const std::size_t n = params.n;
  EXTNC_CHECK(segments >= 1);
  EXTNC_CHECK(matrix.size() == n * n);
  const std::size_t row_bytes = 2 * n;
  const std::size_t row_words = row_bytes / 4;
  const std::size_t threads = std::min<std::size_t>(
      n * row_words, static_cast<std::size_t>(spec.max_threads_per_block));
  const std::size_t half = static_cast<std::size_t>(spec.half_warp);

  // Augmented working copy [C | I], as invert_stage builds it.
  std::vector<std::uint8_t> aug(n * row_bytes, 0);
  for (std::size_t r = 0; r < n; ++r) {
    std::copy(matrix.begin() + r * n, matrix.begin() + (r + 1) * n,
              aug.begin() + r * row_bytes);
    aug[r * row_bytes + n + r] = 1;
  }
  auto row = [&](std::size_t r) { return aug.data() + r * row_bytes; };
  auto addr_of = [&](std::size_t r, std::size_t w) -> std::uintptr_t {
    return r * row_bytes + w * 4;
  };

  std::array<std::uint64_t, 256> mul_deci{};
  for (std::size_t c = 0; c < 256; ++c) {
    mul_deci[c] = KernelMetrics::deciops(
        kDecodeCost.per_iteration *
            gf256::loop_iterations(static_cast<std::uint8_t>(c)) +
        kDecodeCost.per_word);
  }
  const std::uint64_t scan_deci =
      KernelMetrics::deciops(kDecodeCost.pivot_search_per_byte);

  SegmentBuilder pivot_seg(spec, "pivot_search");
  SegmentBuilder rows_seg(spec, "row_ops");
  std::uint64_t row_barriers = 0;
  std::vector<std::uint8_t> factors(n);
  std::array<std::uintptr_t, 16> addrs{};
  std::array<std::uintptr_t, 16> col_addrs{};
  std::array<std::uintptr_t, 16> words{};

  for (std::size_t col = 0; col < n; ++col) {
    // Pivot scan, one lane.
    std::size_t pivot = n;
    std::uint64_t scanned = 0;
    for (std::size_t r = col; r < n; ++r) {
      ++scanned;
      if (row(r)[col] != 0) {
        pivot = r;
        break;
      }
    }
    EXTNC_CHECK(pivot != n);  // the matrix must be invertible
    pivot_seg.add_alu_deciops(scanned * scan_deci);

    if (pivot != col) {
      for (std::size_t w0 = 0; w0 < row_words; w0 += half) {
        const std::size_t cnt = std::min(half, row_words - w0);
        rows_seg.add_global_span(addr_of(col, w0), cnt * 4, cnt, cnt * 4, 0);
        rows_seg.add_global_span(addr_of(pivot, w0), cnt * 4, cnt, cnt * 4,
                                 0);
        rows_seg.add_global_span(addr_of(col, w0), cnt * 4, cnt, 0, cnt * 4);
        rows_seg.add_global_span(addr_of(pivot, w0), cnt * 4, cnt, 0,
                                 cnt * 4);
      }
      std::swap_ranges(row(col), row(col) + row_bytes, row(pivot));
      ++row_barriers;
    }

    const std::uint8_t scale = gf256::inv(row(col)[col]);
    for (std::size_t w0 = 0; w0 < row_words; w0 += half) {
      const std::size_t cnt = std::min(half, row_words - w0);
      rows_seg.add_global_span(addr_of(col, w0), cnt * 4, cnt, cnt * 4, 0);
      rows_seg.add_alu_deciops(cnt * mul_deci[scale]);
      rows_seg.add_global_span(addr_of(col, w0), cnt * 4, cnt, 0, cnt * 4);
    }
    for (std::size_t x = 0; x < row_bytes; ++x) {
      row(col)[x] = gf256::mul(scale, row(col)[x]);
    }
    ++row_barriers;

    // Factor snapshot: lane `col` skips its load without advancing its
    // sequence, so its shared store lands one sequence point early — a
    // separate single-access group (see invert_block_fast).
    for (std::size_t r0 = 0; r0 < n; r0 += half) {
      const std::size_t cnt = std::min(half, n - r0);
      std::size_t loads = 0;
      std::size_t stores = 0;
      for (std::size_t l = 0; l < cnt; ++l) {
        const std::size_t r = r0 + l;
        factors[r] = r == col ? 0 : row(r)[col];
        if (r == col) continue;
        addrs[loads++] = addr_of(r, 0) + col;
        words[stores++] = r / 4;
      }
      if (loads > 0) {
        rows_seg.add_global_group(addrs.data(), loads, 1, loads, 0);
      }
      if (cnt != stores) {
        const std::uintptr_t col_word = col / 4;
        rows_seg.add_shared_group(&col_word, 1);
      }
      if (stores > 0) rows_seg.add_shared_group(words.data(), stores);
    }
    ++row_barriers;

    // Eliminate.
    const std::size_t items = n * row_words;
    for (std::size_t base = 0; base < items; base += threads) {
      const std::size_t lanes_end = std::min(threads, items - base);
      for (std::size_t l0 = 0; l0 < lanes_end; l0 += half) {
        const std::size_t item0 = base + l0;
        const std::size_t cnt = std::min(half, items - item0);
        std::uint64_t alu = 0;
        std::size_t active = 0;
        for (std::size_t l = 0; l < cnt; ++l) {
          words[l] = ((item0 + l) / row_words) / 4;
        }
        rows_seg.add_shared_group(words.data(), cnt);
        for (std::size_t l = 0; l < cnt; ++l) {
          const std::size_t item = item0 + l;
          const std::size_t r = item / row_words;
          const std::size_t w = item % row_words;
          const std::uint8_t factor = factors[r];
          if (factor == 0) continue;
          addrs[active] = addr_of(r, w);
          col_addrs[active] = addr_of(col, w);
          ++active;
          alu += mul_deci[factor];
        }
        if (active > 0) {
          rows_seg.add_global_group(addrs.data(), active, 4, active * 4, 0);
          rows_seg.add_global_group(col_addrs.data(), active, 4, active * 4,
                                    0);
          rows_seg.add_global_group(addrs.data(), active, 4, 0, active * 4);
          rows_seg.add_alu_deciops(alu);
        }
      }
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (factors[r] == 0) continue;
      for (std::size_t x = 0; x < row_bytes; ++x) {
        row(r)[x] ^= gf256::mul(factors[r], row(col)[x]);
      }
    }
    ++row_barriers;
  }

  StaticKernelModel model;
  model.kernel = "decode/multiseg/invert";
  model.blocks = segments;
  model.threads_per_block = threads;
  model.shared_bytes = n;  // staged elimination factors
  SegmentModel pivot_model = pivot_seg.finish(1, n);
  SegmentModel rows_model = rows_seg.finish(threads, row_barriers);
  scale_segment(pivot_model, segments);
  scale_segment(rows_model, segments);
  model.segments.push_back(std::move(pivot_model));
  model.segments.push_back(std::move(rows_model));
  model.footprint.push_back(
      {"invert_work", n * row_bytes, n * row_bytes, true});
  return model;
}

// ------------------------------------------------------------------------
// Audit.

const char* audit_kind_name(AuditKind kind) {
  switch (kind) {
    case AuditKind::kGeometry: return "geometry";
    case AuditKind::kSharedFootprint: return "shared-footprint";
    case AuditKind::kGlobalFootprint: return "global-footprint";
    case AuditKind::kBarrierDivergence: return "barrier-divergence";
    case AuditKind::kBankConflictLint: return "bank-conflict-lint";
    case AuditKind::kUncoalescedLint: return "uncoalesced-lint";
  }
  return "?";
}

const char* audit_seed_bug_name(AuditSeedBug bug) {
  switch (bug) {
    case AuditSeedBug::kOobTail: return "oob-tail";
    case AuditSeedBug::kDivergentBarrier: return "divergent-barrier";
    case AuditSeedBug::kConflictRegression: return "conflict-regression";
  }
  return "?";
}

namespace {

void audit_model(const simgpu::DeviceSpec& spec, const AuditOptions& options,
                 const StaticKernelModel& model,
                 const std::vector<std::size_t>& declared_partial,
                 std::vector<AuditFinding>& findings) {
  auto add = [&](AuditKind kind, bool advisory, std::string detail) {
    findings.push_back(
        {kind, advisory, model.kernel, std::move(detail)});
  };
  std::ostringstream os;
  if (model.blocks < 1 || model.threads_per_block < 1 ||
      model.threads_per_block >
          static_cast<std::size_t>(spec.max_threads_per_block)) {
    os << model.blocks << " blocks x " << model.threads_per_block
       << " threads vs max " << spec.max_threads_per_block;
    add(AuditKind::kGeometry, false, os.str());
  }
  if (model.shared_bytes > spec.shared_mem_per_sm) {
    os.str("");
    os << model.shared_bytes << " shared bytes vs " << spec.shared_mem_per_sm
       << " per SM";
    add(AuditKind::kSharedFootprint, false, os.str());
  }
  for (const simgpu::FootprintRegion& region : model.footprint) {
    if (region.bytes_needed > region.bytes_registered) {
      os.str("");
      os << region.name << (region.written ? " written" : " read") << " to "
         << region.bytes_needed << " bytes, registered "
         << region.bytes_registered;
      add(AuditKind::kGlobalFootprint, false, os.str());
    }
  }
  for (const SegmentModel& seg : model.segments) {
    const bool full = seg.step_width == model.threads_per_block;
    const bool declared =
        std::find(declared_partial.begin(), declared_partial.end(),
                  seg.step_width) != declared_partial.end();
    if (!full && !declared) {
      os.str("");
      os << "segment '" << seg.name << "' steps " << seg.step_width
         << " lanes, declared shape allows full steps";
      for (const std::size_t c : declared_partial) os << " or " << c;
      add(AuditKind::kBarrierDivergence, false, os.str());
    }
    if (seg.max_conflict_degree() >= options.bank_conflict_threshold) {
      os.str("");
      os << "segment '" << seg.name << "' worst bank serialization degree "
         << seg.max_conflict_degree();
      add(AuditKind::kBankConflictLint, true, os.str());
    }
    if (seg.max_group_transactions >= options.uncoalesced_threshold) {
      os.str("");
      os << "segment '" << seg.name << "' worst half-warp spans "
         << seg.max_group_transactions << " transactions";
      add(AuditKind::kUncoalescedLint, true, os.str());
    }
  }
}

AuditReport finish_report(std::vector<AuditCase> cases) {
  AuditReport report;
  report.cases = std::move(cases);
  for (const AuditCase& c : report.cases) {
    metrics::count("simgpu.audit.cases");
    for (const AuditFinding& f : c.findings) {
      if (f.advisory) {
        ++report.advisory_count;
        metrics::count("simgpu.audit.advisories");
      } else {
        ++report.error_count;
        metrics::count("simgpu.audit.errors");
      }
    }
  }
  return report;
}

std::vector<AuditCase> build_clean_cases(const simgpu::DeviceSpec& spec,
                                         const AuditOptions& options) {
  const coding::Params& p = options.params;
  std::vector<AuditCase> cases;
  auto push = [&](StaticKernelModel model,
                  std::vector<std::size_t> declared = {}) {
    AuditCase c;
    c.kernel = model.kernel;
    c.model = std::move(model);
    audit_model(spec, options, c.model, declared, c.findings);
    cases.push_back(std::move(c));
  };
  const EncodeScheme schemes[] = {
      EncodeScheme::kLoopBased, EncodeScheme::kTable0, EncodeScheme::kTable1,
      EncodeScheme::kTable2,    EncodeScheme::kTable3, EncodeScheme::kTable4,
      EncodeScheme::kTable5};
  for (const EncodeScheme scheme : schemes) {
    push(encode_kernel_model(spec, scheme, p, options.batch_blocks,
                             options.assume));
  }
  push(preprocess_segment_model(spec, p));
  push(preprocess_coefficients_model(spec, p, options.batch_blocks));
  push(invert_kernel_model(spec, p, options.batch_blocks,
                           synthesize_invertible_matrix(p.n)),
       {1});
  push(recode_kernel_model(spec, EncodeScheme::kTable5, p, p.n,
                           options.batch_blocks, options.assume));
  return cases;
}

}  // namespace

AuditReport run_kernel_audit(const simgpu::DeviceSpec& spec,
                             const AuditOptions& options) {
  return finish_report(build_clean_cases(spec, options));
}

AuditReport run_seeded_audit(const simgpu::DeviceSpec& spec,
                             const AuditOptions& options, AuditSeedBug bug) {
  const coding::Params& p = options.params;
  std::vector<AuditCase> cases;
  AuditCase c;
  switch (bug) {
    case AuditSeedBug::kOobTail: {
      // Pick a batch size whose word count is not a thread multiple so the
      // dropped tail guard actually reaches past the buffer.
      std::size_t count = options.batch_blocks;
      while ((count * (p.k / 4)) % 256 == 0) ++count;
      c.model = encode_model_impl(spec, EncodeScheme::kTable3, p, count,
                                  options.assume, true, false);
      break;
    }
    case AuditSeedBug::kDivergentBarrier: {
      c.model = invert_kernel_model(spec, p, options.batch_blocks,
                                    synthesize_invertible_matrix(p.n));
      // The pivot scan modeled as "scan lane plus neighbor": width 2 is
      // outside the declared shape {1}.
      for (SegmentModel& seg : c.model.segments) {
        if (seg.step_width == 1) seg.step_width = 2;
      }
      break;
    }
    case AuditSeedBug::kConflictRegression: {
      c.model = encode_model_impl(spec, EncodeScheme::kTable5, p,
                                  options.batch_blocks, options.assume,
                                  false, true);
      break;
    }
  }
  c.kernel = c.model.kernel;
  const std::vector<std::size_t> declared =
      bug == AuditSeedBug::kDivergentBarrier ? std::vector<std::size_t>{1}
                                             : std::vector<std::size_t>{};
  audit_model(spec, options, c.model, declared, c.findings);
  cases.push_back(std::move(c));
  return finish_report(std::move(cases));
}

}  // namespace extnc::gpu
