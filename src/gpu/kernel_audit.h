// Static kernel models and the pre-launch audit for the shipped kernels.
//
// Each provider here derives a simgpu::StaticKernelModel for one kernel —
// the loop encoder, the table schemes tb0-tb5, both preprocessing kernels,
// the multi-segment inverter and the recoder — from DeviceSpec + geometry
// + scheme parameters alone, by abstract interpretation of the kernel's
// access structure: the model walks the same (half-warp, access-sequence)
// index space the kernel executes, but over a *payload class* (a synthetic
// accounting-domain byte function) instead of real data, charging a
// SegmentBuilder with the exact executor rules (static_model.h). The
// verification suite (tests/gpu/kernel_audit_test.cpp) holds every model
// bit-equal to the interpreted engine's KernelMetrics on inputs
// synthesized from the same class.
//
// On top of the models sits the pre-launch audit (run_kernel_audit /
// tools/extnc_audit): geometry validation, shared/global footprint checks
// (OOB-freedom without running), barrier-divergence checks against the
// kernel's declared LaunchShape, and advisory bank-conflict / uncoalesced
// lints — a static superset of the dynamic Checker's advisories, since the
// model sees every group class, not only those a particular payload
// happens to exercise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coding/batch.h"
#include "coding/segment.h"
#include "gpu/encode_scheme.h"
#include "simgpu/device_spec.h"
#include "simgpu/static_model.h"

namespace extnc::gpu {

// ------------------------------------------------------------------------
// Payload classes: structural byte functions over the kernel's accounting
// buffers (the log-domain segment/coefficients for preprocessed schemes,
// the natural-domain buffers for loop/tb0). A class fixes every
// data-dependent branch and shared-index pattern, which is what turns the
// access structure into a closed form while staying realizable: for every
// class there is a natural-domain input whose accounting image equals it
// (synthesize_segment / synthesize_batch), so the models remain testable
// against real runs.
enum class PayloadClass {
  // Every byte the same nonzero value: degree-1 table lookups everywhere,
  // all lanes active (the broadcast-friendly best case).
  kUniform,
  // Byte at word w has accounting value 1 + 64 * (w % 4): the four values
  // are 64 apart, so byte-table lookups of a half-warp land on four words
  // of one bank (degree 4) for every coefficient — the documented worst
  // repeating pattern — while tb5's parity-replicated layout still
  // resolves it conflict-free.
  kStride64,
  // kUniform with every third byte zero: exercises the sentinel skip
  // paths (predicated lanes, empty groups, texture fetch gaps).
  kSparse,
};

struct ModelAssumptions {
  PayloadClass payload_class = PayloadClass::kUniform;
  // Accounting-domain byte for the kUniform/kSparse payload and for every
  // coefficient row. Must be a value every scheme's accounting map can
  // produce: in [1, 254] (plain log covers [0, 254] with 0xff the zero
  // sentinel; shifted log covers [1, 255] with 0x00 the sentinel).
  std::uint8_t payload_value = 0x35;
  std::uint8_t coeff_value = 0x1d;
  // Every Nth coefficient row (i % N == N - 1) is zero, exercising the
  // per-word sentinel skip. 0 = all rows nonzero.
  std::size_t coeff_zero_every = 0;
  // Texture caches hold no table lines at launch (a freshly constructed
  // launcher). The tb4 miss closed form depends on this.
  bool cold_texture = true;
};

// The accounting-domain byte the class assigns to payload position `pos`
// (byte index within the accounting segment), or -1 for a zero natural
// byte (the scheme's sentinel). Exposed for tests.
int payload_class_byte(PayloadClass cls, const ModelAssumptions& assume,
                       std::size_t pos);
// The accounting-domain coefficient byte for row i (same for every coded
// block), or -1 for a zero row.
int coeff_class_byte(const ModelAssumptions& assume, std::size_t i);

// Natural-domain inputs whose accounting image under `scheme` equals the
// class: the segment's log (or shifted-log) transform reproduces the class
// bytes exactly, so an interpreted run over these inputs must produce the
// model's KernelMetrics bit for bit.
coding::Segment synthesize_segment(EncodeScheme scheme,
                                   const coding::Params& params,
                                   const ModelAssumptions& assume);
coding::CodedBatch synthesize_batch(EncodeScheme scheme,
                                    const coding::Params& params,
                                    std::size_t count,
                                    const ModelAssumptions& assume);

// A Vandermonde coefficient matrix over distinct nonzero points —
// invertible by construction, used by the inverter model and its
// verification test. Row r, column c = x_r^c with x_r = exp[r].
std::vector<std::uint8_t> synthesize_invertible_matrix(std::size_t n);

// ------------------------------------------------------------------------
// Model providers. All buffer addresses are modeled relative to 64-byte
// aligned bases (every device buffer is an AlignedBuffer), which fixes the
// coalescing segment phase without knowing runtime pointers.

// The encode kernel for `scheme` over `count` coded blocks: mul_loop for
// kLoopBased, exp_smem/exp_tex (table load + strided encode) otherwise.
simgpu::StaticKernelModel encode_kernel_model(
    const simgpu::DeviceSpec& spec, EncodeScheme scheme,
    const coding::Params& params, std::size_t count,
    const ModelAssumptions& assume = {});

// Sec. 5.1.1 step (1): segment to log domain (payload-free: the kernel's
// access structure does not depend on byte values).
simgpu::StaticKernelModel preprocess_segment_model(
    const simgpu::DeviceSpec& spec, const coding::Params& params);

// Sec. 5.1.1 step (2): coefficient matrix to log domain (payload-free).
simgpu::StaticKernelModel preprocess_coefficients_model(
    const simgpu::DeviceSpec& spec, const coding::Params& params,
    std::size_t count);

// Stage-1 Gauss-Jordan inverter over `segments` blocks, one per segment,
// for the given coefficient matrix (row-major n x n; all segments assumed
// to hold the same matrix). The provider simulates the elimination on its
// own n x 2n working copy — coefficient-matrix work, never payload work —
// because pivot positions and factor activity evolve with the matrix.
simgpu::StaticKernelModel invert_kernel_model(
    const simgpu::DeviceSpec& spec, const coding::Params& params,
    std::size_t segments, const std::vector<std::uint8_t>& matrix);

// The recoder's encode launch: gpu_recode wraps the encode kernel around a
// pseudo-segment of `received` blocks of n + k bytes each (coefficients
// prepended to payloads), producing `produced` recoded blocks. Forwards to
// encode_kernel_model over the aggregate geometry — which is exactly what
// exercises the straddling-group walker, since (n + k) / 4 is rarely a
// half-warp multiple.
simgpu::StaticKernelModel recode_kernel_model(
    const simgpu::DeviceSpec& spec, EncodeScheme scheme,
    const coding::Params& params, std::size_t received, std::size_t produced,
    const ModelAssumptions& assume = {});

// ------------------------------------------------------------------------
// Pre-launch audit.

enum class AuditKind {
  kGeometry,           // launch shape vs device limits (error)
  kSharedFootprint,    // scratchpad bytes vs shared_mem_per_sm (error)
  kGlobalFootprint,    // modeled extent vs registered buffer size (error)
  kBarrierDivergence,  // step width outside the declared LaunchShape (error)
  kBankConflictLint,   // max serialization degree >= threshold (advisory)
  kUncoalescedLint,    // max half-warp transactions >= threshold (advisory)
};

const char* audit_kind_name(AuditKind kind);

struct AuditFinding {
  AuditKind kind;
  bool advisory = false;
  std::string kernel;
  std::string detail;
};

struct AuditOptions {
  coding::Params params{.n = 16, .k = 256};
  std::size_t batch_blocks = 16;
  ModelAssumptions assume;
  // Advisory lint thresholds; defaults match the dynamic Checker's.
  std::uint64_t bank_conflict_threshold = 8;
  std::uint64_t uncoalesced_threshold = 16;
};

struct AuditCase {
  std::string kernel;
  simgpu::StaticKernelModel model;
  std::vector<AuditFinding> findings;
};

struct AuditReport {
  std::vector<AuditCase> cases;
  std::size_t error_count = 0;     // non-advisory findings
  std::size_t advisory_count = 0;  // lints

  bool clean() const { return error_count == 0; }
};

// Audit every shipped kernel's model against `spec`: the seven encode
// schemes, both preprocess kernels, the inverter and the recoder. Emits
// simgpu.audit.* metrics (cases, errors, advisories) via the process
// metrics registry.
AuditReport run_kernel_audit(const simgpu::DeviceSpec& spec,
                             const AuditOptions& options);

// Negative controls: re-run the audit with one deliberately broken model
// substituted, and expect the matching finding. Used by extnc_audit
// --seed-bug and the CI audit gate: a clean report here means the audit
// lost its teeth.
enum class AuditSeedBug {
  // The encode store step modeled without its tail guard: the last block
  // writes the strided range rounded up to a full thread count, past the
  // registered output buffer.
  kOobTail,
  // The inverter's pivot scan modeled at width 2 ("scan lane plus its
  // neighbor"), which is outside the kernel's declared LaunchShape {1}.
  kDivergentBarrier,
  // The tb5 table load modeled lane-blocked instead of lane-interleaved:
  // each lane sweeps a contiguous 16-word chunk, so a half-warp's stores
  // stride 16 words apart — 16 distinct words in one bank, degree 16.
  kConflictRegression,
};

const char* audit_seed_bug_name(AuditSeedBug bug);

// Returns the audit report with the seeded defect present; callers assert
// it is NOT clean (or that the expected advisory fired).
AuditReport run_seeded_audit(const simgpu::DeviceSpec& spec,
                             const AuditOptions& options, AuditSeedBug bug);

}  // namespace extnc::gpu
