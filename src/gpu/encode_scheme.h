// The encoding-scheme ladder of Sec. 5.1 (Fig. 7).
//
// All schemes compute identical coded blocks; they differ in where the
// GF(2^8) multiply's operands come from and how the zero tests are
// performed — which is the whole story of the paper's 2.2x encode speedup.
#pragma once

namespace extnc::gpu {

enum class EncodeScheme {
  // Loop-based (Russian peasant) byte-by-word multiply; no tables. The
  // baseline carried over from the authors' Nuclei work (Sec. 4.2.1).
  kLoopBased,
  // Table-based-0: log/exp tables cached in shared memory, inputs in the
  // natural domain (every multiply does two log lookups + one exp lookup).
  kTable0,
  // Table-based-1: sources and coefficients preprocessed into the log
  // domain once (Sec. 5.1.1), encode does one exp lookup per byte.
  kTable1,
  // Table-based-2: the four per-byte coefficient tests are folded into a
  // single per-word test (first optimization of Sec. 5.1.3).
  kTable2,
  // Table-based-3: shifted-log tables make the zero sentinel 0x00, so the
  // tests compile to predicated instructions (second optimization).
  kTable3,
  // Table-based-4: exp table moved to texture memory (third optimization).
  kTable4,
  // Table-based-5: eight word-width exp tables interleaved across shared
  // memory banks to cut bank conflicts (fourth optimization).
  kTable5,
};

constexpr const char* scheme_name(EncodeScheme scheme) {
  switch (scheme) {
    case EncodeScheme::kLoopBased: return "loop-based";
    case EncodeScheme::kTable0: return "table-based-0";
    case EncodeScheme::kTable1: return "table-based-1";
    case EncodeScheme::kTable2: return "table-based-2";
    case EncodeScheme::kTable3: return "table-based-3";
    case EncodeScheme::kTable4: return "table-based-4";
    case EncodeScheme::kTable5: return "table-based-5";
  }
  return "?";
}

// Short scheme tag for profiler labels ("encode/tb5/exp_smem").
constexpr const char* scheme_label(EncodeScheme scheme) {
  switch (scheme) {
    case EncodeScheme::kLoopBased: return "loop";
    case EncodeScheme::kTable0: return "tb0";
    case EncodeScheme::kTable1: return "tb1";
    case EncodeScheme::kTable2: return "tb2";
    case EncodeScheme::kTable3: return "tb3";
    case EncodeScheme::kTable4: return "tb4";
    case EncodeScheme::kTable5: return "tb5";
  }
  return "?";
}

constexpr bool scheme_is_preprocessed(EncodeScheme scheme) {
  return scheme != EncodeScheme::kLoopBased && scheme != EncodeScheme::kTable0;
}

// Shifted-log (0x00 sentinel) table layout, Sec. 5.1.3.
constexpr bool scheme_uses_shifted_log(EncodeScheme scheme) {
  return scheme == EncodeScheme::kTable3 || scheme == EncodeScheme::kTable4 ||
         scheme == EncodeScheme::kTable5;
}

}  // namespace extnc::gpu
