#include "gpu/gpu_multiseg_decoder.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "gf256/gf.h"
#include "gf256/region.h"
#include "gf256/swar.h"
#include "gpu/gpu_encoder.h"
#include "gpu/kernel_cost.h"
#include "util/assert.h"
#include "util/metrics_registry.h"

namespace extnc::gpu {

using simgpu::BlockCtx;
using simgpu::ThreadCtx;

namespace {

std::uint32_t mul_word_charged(ThreadCtx& thread, std::uint8_t c,
                               std::uint32_t w) {
  thread.count_alu(kDecodeCost.per_iteration * gf256::loop_iterations(c) +
                   kDecodeCost.per_word);
  return gf256::mul_byte_word(c, w);
}

// Deci-op cost of one charged word multiply, per coefficient value.
// mul_word_charged quantizes the *sum* in a single count_alu call, so the
// fast path must quantize the same sum (never the parts separately).
std::array<std::uint64_t, 256> mul_word_deciops() {
  std::array<std::uint64_t, 256> table;
  for (std::size_t c = 0; c < 256; ++c) {
    table[c] = simgpu::KernelMetrics::deciops(
        kDecodeCost.per_iteration *
            gf256::loop_iterations(static_cast<std::uint8_t>(c)) +
        kDecodeCost.per_word);
  }
  return table;
}

}  // namespace

GpuMultiSegmentDecoder::GpuMultiSegmentDecoder(const simgpu::DeviceSpec& spec,
                                               coding::Params params)
    : params_(params), launcher_(spec) {
  params_.validate();
  EXTNC_CHECK(params_.k % 4 == 0);
  EXTNC_CHECK(params_.n % 4 == 0);
}

void GpuMultiSegmentDecoder::reset_metrics() {
  stage1_ = simgpu::KernelMetrics{};
  stage2_ = simgpu::KernelMetrics{};
}

void GpuMultiSegmentDecoder::attach_profiler(simgpu::Profiler* profiler) {
  profiler_ = profiler;
  launcher_.set_profiler(profiler);
  launcher_.set_launch_label("decode/multiseg/invert");
}

std::vector<coding::Segment> GpuMultiSegmentDecoder::decode_all(
    const std::vector<coding::CodedBatch>& batches) {
  for (const auto& batch : batches) {
    EXTNC_CHECK(batch.params() == params_);
    EXTNC_CHECK(batch.count() == params_.n);
  }
  std::vector<coding::Segment> out(batches.size());
  if (batches.empty()) return out;

  std::vector<AlignedBuffer> inverses;
  invert_stage(batches, inverses);
  multiply_stage(batches, inverses, out);
  return out;
}

// Stage 1: one thread block per segment runs Gauss-Jordan on the
// augmented [C | I] (rows of 2n bytes). Row operations parallelize across
// the 2n/4 words of a row; the column loop and pivot selection are the
// serial backbone.
void GpuMultiSegmentDecoder::invert_stage(
    const std::vector<coding::CodedBatch>& batches,
    std::vector<AlignedBuffer>& inverses) {
  const std::size_t n = params_.n;
  const std::size_t s = batches.size();
  const std::size_t row_bytes = 2 * n;
  const std::size_t row_words = row_bytes / 4;
  // Only the column loop is serial: within a column, the eliminations of
  // all n-1 other rows are independent, so the block parallelizes over
  // (row, word) pairs and runs with a full complement of threads.
  const std::size_t threads = std::min<std::size_t>(
      n * row_words,
      static_cast<std::size_t>(launcher_.spec().max_threads_per_block));

  // Augmented working matrices, one per segment.
  std::vector<AlignedBuffer> work;
  work.reserve(s);
  for (const auto& batch : batches) {
    AlignedBuffer aug(n * row_bytes);
    for (std::size_t r = 0; r < n; ++r) {
      std::memcpy(aug.data() + r * row_bytes, batch.coefficients(r).data(), n);
      aug[r * row_bytes + n + r] = 1;
    }
    work.push_back(std::move(aug));
  }

  // Under the sanitizer: the working matrices are this stage's only
  // device buffers, and the per-column pivot search runs on one lane (a
  // declared partial step).
  std::vector<simgpu::Checker::ScopedWatch> work_watches;
  if (launcher_.checker() != nullptr) {
    work_watches.reserve(s);
    for (AlignedBuffer& aug : work) {
      work_watches.emplace_back(launcher_.checker(), aug.data(), aug.size(),
                                "invert_work");
    }
  }

  const std::array<std::uint64_t, 256> mul_deci = mul_word_deciops();
  launcher_.reset_metrics();
  launcher_.launch(
      {.blocks = s,
       .threads_per_block = threads,
       .shape = {.partial_counts = {1}}},
      [&](BlockCtx& block) {
        std::uint8_t* aug = work[block.block_index()].data();
        auto row = [&](std::size_t r) { return aug + r * row_bytes; };
        const std::size_t half = block.spec().half_warp;

        // Bulk lowering: Gauss-Jordan row operations via SIMD region ops
        // with per-group accounting that mirrors the interpreted steps
        // (see BlockCtx::fast_path). Requires every lane of steps 2-4 to
        // run a single strided iteration; the eliminate step handles
        // striding generically.
        if (block.fast_path() && threads >= row_words && threads >= n &&
            half <= 16) {
          invert_block_fast(block, aug, mul_deci);
          return;
        }

        for (std::size_t col = 0; col < n; ++col) {
          // Pivot search: scan rows >= col for a nonzero in this column
          // (serial on one thread, as the real kernel's thread 0 would).
          std::size_t pivot = n;
          block.step_partial(1, [&](ThreadCtx& thread) {
            for (std::size_t r = col; r < n; ++r) {
              thread.count_alu(kDecodeCost.pivot_search_per_byte);
              if (row(r)[col] != 0) {
                pivot = r;
                break;
              }
            }
          });
          EXTNC_CHECK(pivot != n);  // batches hold independent rows
          if (pivot != col) {
            block.step([&](ThreadCtx& thread) {
              for (std::size_t w = thread.lane(); w < row_words;
                   w += threads) {
                const std::uint32_t a = thread.gload_u32(row(col) + w * 4);
                const std::uint32_t b = thread.gload_u32(row(pivot) + w * 4);
                thread.gstore_u32(row(col) + w * 4, b);
                thread.gstore_u32(row(pivot) + w * 4, a);
              }
            });
          }
          const std::uint8_t scale = gf256::inv(row(col)[col]);
          block.step([&](ThreadCtx& thread) {
            for (std::size_t w = thread.lane(); w < row_words; w += threads) {
              const std::uint32_t v = thread.gload_u32(row(col) + w * 4);
              thread.gstore_u32(row(col) + w * 4,
                                mul_word_charged(thread, scale, v));
            }
          });
          // Stage each row's elimination factor into shared memory behind
          // a barrier: the elimination itself overwrites column `col`, so
          // factors must be snapshotted first.
          block.step([&](ThreadCtx& thread) {
            for (std::size_t r = thread.lane(); r < n; r += threads) {
              const std::uint8_t f =
                  r == col ? 0 : thread.gload_u8(&row(r)[col]);
              thread.sstore_u8(r, f);
            }
          });
          // Eliminate this column from every other row in one step: work
          // item (r, w) updates word w of row r against the pivot row.
          block.step([&](ThreadCtx& thread) {
            for (std::size_t item = thread.lane(); item < n * row_words;
                 item += threads) {
              const std::size_t r = item / row_words;
              const std::size_t w = item % row_words;
              const std::uint8_t factor = thread.sload_u8(r);
              if (factor == 0) {
                thread.skip_access();
                thread.skip_access();
                thread.skip_access();
                continue;
              }
              const std::uint32_t d = thread.gload_u32(row(r) + w * 4);
              const std::uint32_t p = thread.gload_u32(row(col) + w * 4);
              thread.gstore_u32(row(r) + w * 4,
                                d ^ mul_word_charged(thread, factor, p));
            }
          });
        }
      });
  stage1_.merge(launcher_.metrics());

  // Extract C^-1 (right halves).
  inverses.clear();
  inverses.reserve(s);
  for (std::size_t seg = 0; seg < s; ++seg) {
    AlignedBuffer inverse(n * n);
    for (std::size_t r = 0; r < n; ++r) {
      std::memcpy(inverse.data() + r * n,
                  work[seg].data() + r * row_bytes + n, n);
    }
    inverses.push_back(std::move(inverse));
  }
}

void GpuMultiSegmentDecoder::invert_block_fast(
    BlockCtx& block, std::uint8_t* aug,
    const std::array<std::uint64_t, 256>& mul_deci) {
  const std::size_t n = params_.n;
  const std::size_t row_bytes = 2 * n;
  const std::size_t row_words = row_bytes / 4;
  const std::size_t threads = block.num_threads();
  const std::size_t half = block.spec().half_warp;
  metrics::count("simgpu.fast.lowered_blocks");
  const gf256::Ops& gops = gf256::ops();
  auto row = [&](std::size_t r) { return aug + r * row_bytes; };
  auto uptr = [](const void* p) {
    return reinterpret_cast<std::uintptr_t>(p);
  };
  std::vector<std::uint8_t> factors(n);
  std::array<std::uintptr_t, 16> addrs;
  std::array<std::uintptr_t, 16> col_addrs;
  std::array<std::uintptr_t, 16> words_buf;

  for (std::size_t col = 0; col < n; ++col) {
    // Pivot search: one lane scans rows >= col, charging per scanned row
    // including the hit (host reads, no device accesses).
    std::size_t pivot = n;
    std::uint64_t scanned = 0;
    for (std::size_t r = col; r < n; ++r) {
      ++scanned;
      if (row(r)[col] != 0) {
        pivot = r;
        break;
      }
    }
    EXTNC_CHECK(pivot != n);  // batches hold independent rows
    block.fast_alu_deciops(scanned * simgpu::KernelMetrics::deciops(
                                         kDecodeCost.pivot_search_per_byte));
    block.fast_barriers(1);

    // Row swap: each lane handles one word (threads >= row_words), four
    // accesses in sequence order — load col, load pivot, store col, store
    // pivot — each a contiguous span per half-warp.
    if (pivot != col) {
      for (std::size_t w0 = 0; w0 < row_words; w0 += half) {
        const std::size_t cnt = std::min(half, row_words - w0);
        block.fast_global_span(uptr(row(col) + w0 * 4), cnt * 4, cnt,
                               cnt * 4, 0);
        block.fast_global_span(uptr(row(pivot) + w0 * 4), cnt * 4, cnt,
                               cnt * 4, 0);
        block.fast_global_span(uptr(row(col) + w0 * 4), cnt * 4, cnt, 0,
                               cnt * 4);
        block.fast_global_span(uptr(row(pivot) + w0 * 4), cnt * 4, cnt, 0,
                               cnt * 4);
      }
      std::swap_ranges(row(col), row(col) + row_bytes, row(pivot));
      block.fast_barriers(1);
    }

    // Scale the pivot row to make the pivot 1.
    const std::uint8_t scale = gf256::inv(row(col)[col]);
    for (std::size_t w0 = 0; w0 < row_words; w0 += half) {
      const std::size_t cnt = std::min(half, row_words - w0);
      block.fast_global_span(uptr(row(col) + w0 * 4), cnt * 4, cnt, cnt * 4,
                             0);
      block.fast_alu_deciops(cnt * mul_deci[scale]);
      block.fast_global_span(uptr(row(col) + w0 * 4), cnt * 4, cnt, 0,
                             cnt * 4);
    }
    gops.scale_region(row(col), scale, row_bytes);
    block.fast_barriers(1);

    // Factor snapshot: lane r loads its factor (lane `col` skips the load
    // WITHOUT advancing its sequence number, so its shared store lands one
    // sequence point early — a separate 1-access group) and stages it in
    // shared memory.
    for (std::size_t r0 = 0; r0 < n; r0 += half) {
      const std::size_t cnt = std::min(half, n - r0);
      std::size_t loads = 0;
      std::size_t stores = 0;
      for (std::size_t l = 0; l < cnt; ++l) {
        const std::size_t r = r0 + l;
        factors[r] = r == col ? 0 : row(r)[col];
        if (r == col) continue;
        addrs[loads++] = uptr(&row(r)[col]);
        words_buf[stores++] = r / 4;
      }
      if (loads > 0) {
        block.fast_global_group(addrs.data(), loads, 1, loads, 0);
      }
      if (cnt != stores) {  // this half-warp contains lane `col`
        const std::uintptr_t col_word = col / 4;
        block.fast_shared_group(&col_word, 1);
      }
      if (stores > 0) block.fast_shared_group(words_buf.data(), stores);
    }
    block.fast_barriers(1);

    // Eliminate: work item (r, w) reads its factor from shared memory and,
    // when nonzero, applies d ^= factor * p. Half-warps may straddle row
    // boundaries, so global groups take per-lane addresses.
    const std::size_t items = n * row_words;
    for (std::size_t base = 0; base < items; base += threads) {
      const std::size_t lanes_end = std::min(threads, items - base);
      for (std::size_t l0 = 0; l0 < lanes_end; l0 += half) {
        const std::size_t item0 = base + l0;
        const std::size_t cnt = std::min(half, items - item0);
        std::uint64_t alu = 0;
        std::size_t active = 0;
        for (std::size_t l = 0; l < cnt; ++l) {
          words_buf[l] = ((item0 + l) / row_words) / 4;
        }
        block.fast_shared_group(words_buf.data(), cnt);
        for (std::size_t l = 0; l < cnt; ++l) {
          const std::size_t item = item0 + l;
          const std::size_t r = item / row_words;
          const std::size_t w = item % row_words;
          const std::uint8_t factor = factors[r];
          if (factor == 0) continue;  // interpreted skip_access x3
          addrs[active] = uptr(row(r) + w * 4);
          col_addrs[active] = uptr(row(col) + w * 4);
          ++active;
          alu += mul_deci[factor];
        }
        if (active > 0) {
          block.fast_global_group(addrs.data(), active, 4, active * 4, 0);
          block.fast_global_group(col_addrs.data(), active, 4, active * 4,
                                  0);
          block.fast_global_group(addrs.data(), active, 4, 0, active * 4);
          block.fast_alu_deciops(alu);
        }
      }
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (factors[r] != 0) {
        gops.mul_add_region(row(r), row(col), factors[r], row_bytes);
      }
    }
    block.fast_barriers(1);
  }
}

// Stage 2: b = C^-1 * x — "a regular multiplication in Galois field,
// similar to the encoding process of Eq. 1" (Sec. 5.2), so it reuses the
// best encode kernel (table-based-5 with log-domain preprocessing): row r
// of C^-1 plays the role of a coefficient vector and the collected coded
// payloads x play the role of source blocks. This is what lets decoding
// approach the encoding rate at large block sizes (254 vs 294 MB/s at
// n = 128 in the paper).
void GpuMultiSegmentDecoder::multiply_stage(
    const std::vector<coding::CodedBatch>& batches,
    const std::vector<AlignedBuffer>& inverses,
    std::vector<coding::Segment>& out) {
  const std::size_t n = params_.n;
  const std::size_t k = params_.k;
  for (std::size_t seg = 0; seg < batches.size(); ++seg) {
    // The coded payload matrix x as a pseudo-segment of n blocks.
    coding::Segment payload_segment = coding::Segment::from_bytes(
        params_, std::span(batches[seg].payloads_data(), n * k));
    GpuEncoder multiplier(launcher_.spec(), payload_segment,
                          EncodeScheme::kTable5, profiler_,
                          "decode/multiseg/stage2",
                          launcher_.fault_injector(), launcher_.checker());
    coding::CodedBatch product(params_, n);
    for (std::size_t r = 0; r < n; ++r) {
      std::memcpy(product.coefficients(r).data(),
                  inverses[seg].data() + r * n, n);
    }
    multiplier.encode_into(product);
    out[seg] = coding::Segment(params_);
    for (std::size_t r = 0; r < n; ++r) {
      std::memcpy(out[seg].block(r).data(), product.payload(r).data(), k);
    }
    stage2_.merge(multiplier.encode_metrics());
    stage2_.merge(multiplier.preprocess_metrics());
  }
}

}  // namespace extnc::gpu
