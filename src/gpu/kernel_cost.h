// Per-scheme scalar-instruction cost templates.
//
// Memory instructions (global loads/stores, shared accesses, texture
// fetches) are charged automatically by the executor, one issue slot each,
// and shared bank conflicts are *measured* from the kernels' actual access
// patterns. These templates cover everything else: loop control, address
// arithmetic, byte extraction/insertion, zero tests or their predicated
// forms, and the PTX-level overhead the paper alludes to when it notes
// that observed gains are "not proportional to the reduction in
// instruction count".
//
// Values are calibrated once against the Fig. 7 ladder on the GTX 280
// (loop-based 133 MB/s -> table-based-5 294 MB/s at n = 128); the ladder
// ordering itself is structural (each optimization removes the
// instructions or conflicts its section describes), only the absolute
// scale is fitted. tests/gpu/gpu_model_test.cpp pins the resulting
// bandwidths to the paper's numbers.
#pragma once

#include "gpu/encode_scheme.h"

namespace extnc::gpu {

struct EncodeCost {
  // Charged once per 4-byte output word (loop setup, accumulator, store
  // address math).
  double per_word = 0;
  // Charged per payload byte processed (table schemes).
  double per_byte = 0;
  // Charged per loop iteration of the loop-based multiply (bit test,
  // conditional xor of a packed word, packed xtime, shift) — the paper's
  // Sec. 4.3 estimate of ~10.5 instructions per iteration.
  double per_iteration = 0;
};

constexpr EncodeCost encode_cost(EncodeScheme scheme) {
  switch (scheme) {
    case EncodeScheme::kLoopBased:
      return {.per_word = 2.0, .per_byte = 0.0, .per_iteration = 10.5};
    case EncodeScheme::kTable0:
      // log[src] + log[c] + range fold + two sentinel tests with branches.
      return {.per_word = 8.0, .per_byte = 14.3, .per_iteration = 0.0};
    case EncodeScheme::kTable1:
      // One exp lookup per byte; tests against 0xff still branchy.
      return {.per_word = 8.0, .per_byte = 8.5, .per_iteration = 0.0};
    case EncodeScheme::kTable2:
      // Coefficient test hoisted out of the byte loop: one per word.
      return {.per_word = 9.0, .per_byte = 6.8, .per_iteration = 0.0};
    case EncodeScheme::kTable3:
      // Shifted-log zero sentinel: tests fold into predication.
      return {.per_word = 9.0, .per_byte = 6.0, .per_iteration = 0.0};
    case EncodeScheme::kTable4:
      // Texture path: simpler effective-address computation than shared.
      return {.per_word = 8.0, .per_byte = 6.2, .per_iteration = 0.0};
    case EncodeScheme::kTable5:
      // Word tables: no byte insert on the lookup result, but one extra
      // address op for the table interleave.
      return {.per_word = 8.0, .per_byte = 3.4, .per_iteration = 0.0};
  }
  return {};
}

// Preprocessing kernels (Sec. 5.1.1 steps 1 and 2): natural -> log domain,
// one table lookup (auto-charged) plus this much arithmetic per byte.
inline constexpr double kPreprocessPerByte = 2.0;

// Decode kernels use the loop-based multiply (tables would have to be
// reloaded every launch, and decoding is launch-per-coded-block):
// Sec. 4.2.2 / 5.2.
struct DecodeCost {
  double per_word = 2.0;        // per 4-byte word of a row operation
  double per_iteration = 10.5;  // loop-based multiply iteration
  double pivot_search_per_byte = 3.0;   // scan for first nonzero
  double pivot_reduce_per_thread = 6.0; // serial min-reduction step
  double pivot_reduce_atomic = 2.0;     // with atomicMin (Sec. 5.4.2)
};

inline constexpr DecodeCost kDecodeCost{};

}  // namespace extnc::gpu
