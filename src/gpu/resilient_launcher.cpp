#include "gpu/resilient_launcher.h"

#include <algorithm>
#include <cstring>

#include "cpu/multi_segment_decoder.h"
#include "gpu/gpu_multiseg_decoder.h"
#include "simgpu/profiler.h"
#include "util/assert.h"
#include "util/checksum.h"
#include "util/metrics_registry.h"

namespace extnc::gpu {

namespace {

// Scoped registration of an operation's output buffer as the device memory
// an injected fault may damage. Cleared on scope exit so damage from one
// operation can never land in another's buffers.
class RegionWatch {
 public:
  RegionWatch(simgpu::FaultInjector* injector, std::span<std::uint8_t> region)
      : injector_(injector) {
    if (injector_ != nullptr) injector_->watch_region(region);
  }
  ~RegionWatch() {
    if (injector_ != nullptr) injector_->clear_regions();
  }
  RegionWatch(const RegionWatch&) = delete;
  RegionWatch& operator=(const RegionWatch&) = delete;

 private:
  simgpu::FaultInjector* injector_;
};

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

// --- ResilientLauncher -----------------------------------------------------

ResilientLauncher::ResilientLauncher(SupervisorConfig config,
                                     simgpu::FaultInjector* injector)
    : config_(std::move(config)), injector_(injector) {
  EXTNC_CHECK(config_.max_attempts >= 1);
  EXTNC_CHECK(config_.breaker_threshold >= 1);
  EXTNC_CHECK(config_.backoff_factor >= 1.0);
}

void ResilientLauncher::adopt(simgpu::Launcher& launcher) const {
  launcher.set_fault_injector(injector_);
}

std::function<double()> ResilientLauncher::device_clock(
    std::function<double()> fallback) const {
  if (injector_ != nullptr) {
    simgpu::FaultInjector* injector = injector_;
    return [injector] { return injector->observed_seconds(); };
  }
  return fallback;
}

void ResilientLauncher::set_trace(simgpu::Profiler* profiler,
                                  const simgpu::DeviceSpec* spec) {
  trace_profiler_ = profiler;
  trace_spec_ = spec;
}

void ResilientLauncher::trace(const char* label) {
  if (trace_profiler_ != nullptr && trace_spec_ != nullptr) {
    trace_profiler_->record_launch(*trace_spec_, label,
                                   simgpu::KernelMetrics{});
  }
}

void ResilientLauncher::count(const char* metric, double delta) {
  metrics::count(config_.metric_prefix + "." + metric, delta);
}

void ResilientLauncher::set_clock(std::function<double()> now) {
  clock_ = std::move(now);
}

void ResilientLauncher::open_breaker() {
  breaker_opened_at_s_ = clock_ ? clock_() : 0.0;
  if (breaker_open_) return;
  breaker_open_ = true;
  metrics::gauge(config_.metric_prefix + ".breaker_open", 1);
  trace("fault/breaker_open");
}

void ResilientLauncher::close_breaker() {
  breaker_open_ = false;
  consecutive_failed_ops_ = 0;
  metrics::gauge(config_.metric_prefix + ".breaker_open", 0);
}

bool ResilientLauncher::half_open_due() const {
  return breaker_open_ && config_.breaker_cooldown_s > 0 && clock_ &&
         clock_() - breaker_opened_at_s_ >= config_.breaker_cooldown_s;
}

void ResilientLauncher::trip_breaker() {
  open_breaker();
}

void ResilientLauncher::reset_breaker() {
  close_breaker();
  if (injector_ != nullptr) injector_->restore_device();
}

OperationReport ResilientLauncher::run(const SupervisedOp& op) {
  EXTNC_CHECK(op.gpu != nullptr);
  OperationReport report;
  ++totals_.operations;
  count("operations");

  // Half-open probe: the breaker has been open long enough (on the
  // supervisor clock) to try the GPU again — one attempt, no retries.
  const bool probing = half_open_due();
  if (probing) {
    count("breaker_half_open");
    trace("fault/breaker_half_open");
    // Clear sticky device loss so the probe exercises the real device
    // state rather than the remembered failure.
    if (injector_ != nullptr) injector_->restore_device();
  }

  if (!breaker_open_ || probing) {
    const int max_attempts = probing ? 1 : config_.max_attempts;
    double backoff = config_.backoff_initial_s;
    bool ok = false;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      report.attempts = attempt;
      if (attempt > 1) {
        ++totals_.retries;
        count("retries");
        report.backoff_s += backoff;
        totals_.backoff_seconds += backoff;
        count("backoff_seconds", backoff);
        backoff *= config_.backoff_factor;
        trace("fault/retry");
      }
      const double clock_before = op.gpu_clock ? op.gpu_clock() : 0.0;
      try {
        op.gpu();
        const double attempt_s =
            (op.gpu_clock ? op.gpu_clock() : 0.0) - clock_before;
        if (op.gpu_clock && attempt_s > config_.watchdog_budget_s) {
          ++report.watchdog_trips;
          ++totals_.watchdog_trips;
          count("watchdog_trips");
          trace("fault/watchdog_trip");
        } else if (op.verify && !op.verify()) {
          ++report.corrupted_outputs;
          ++totals_.corrupted_outputs;
          count("corrupted_outputs");
          trace("fault/corrupted_output");
        } else {
          ok = true;
        }
      } catch (const simgpu::DeviceError& error) {
        if (error.fault() == simgpu::FaultClass::kDeviceLost) {
          report.device_lost = true;
          ++totals_.device_losses;
          count("device_lost");
          trace("fault/device_lost");
          open_breaker();
          break;
        }
        ++report.launch_failures;
        ++totals_.launch_failures;
        count("launch_failures");
        trace("fault/launch_failure");
      }
      if (ok) break;
    }
    if (ok) {
      if (probing) {
        close_breaker();
        count("breaker_reclosed");
        trace("fault/breaker_close");
      }
      consecutive_failed_ops_ = 0;
      ++totals_.gpu_ok;
      count("gpu_ok");
      report.path = ComputePath::kGpu;
      return report;
    }
    if (probing) {
      // Failed probe: breaker stays open and the cool-down restarts from
      // now (open_breaker refreshes the timestamp even when already open).
      open_breaker();
      count("breaker_probe_failed");
    } else if (!report.device_lost) {
      ++consecutive_failed_ops_;
      if (consecutive_failed_ops_ >= config_.breaker_threshold) open_breaker();
    }
  }

  if (!op.cpu) {
    report.path = ComputePath::kFailed;
    return report;
  }
  op.cpu();
  report.path = ComputePath::kCpuFallback;
  ++totals_.fallbacks;
  count("fallbacks");
  trace("fault/cpu_fallback");
  return report;
}

// --- ResilientEncoder ------------------------------------------------------

ResilientEncoder::ResilientEncoder(const simgpu::DeviceSpec& spec,
                                   const coding::Segment& segment,
                                   EncodeScheme scheme, ThreadPool& pool,
                                   ResilientLauncher& supervisor,
                                   simgpu::Profiler* profiler)
    : segment_(&segment),
      reference_(segment),
      // The injector is attached *after* construction (via adopt): segment
      // preprocessing is bring-up, not the supervised serving path, and a
      // supervisor can only retry operations it initiated.
      gpu_encoder_(spec, segment, scheme, profiler, "resilient/encode"),
      cpu_encoder_(segment, pool),
      supervisor_(&supervisor),
      sample_rng_(0xc0dedULL) {
  supervisor_->adopt(gpu_encoder_.launcher());
}

void ResilientEncoder::encode_into(coding::CodedBatch& batch) {
  if (batch.count() == 0) return;
  EXTNC_CHECK(batch.params() == params());

  SupervisedOp op;
  op.label = "encode";
  simgpu::FaultInjector* injector = supervisor_->injector();
  op.gpu = [this, injector, &batch] {
    RegionWatch watch(injector,
                      std::span(batch.payloads_data(), batch.payload_bytes()));
    gpu_encoder_.encode_into(batch);
  };
  op.gpu_clock = supervisor_->device_clock(
      [this] { return gpu_encoder_.launcher().elapsed_seconds(); });
  op.verify = [this, &batch] { return verify_batch(batch); };
  op.cpu = [this, &batch] { cpu_encoder_.encode_into(batch); };
  last_ = supervisor_->run(op);
}

coding::CodedBatch ResilientEncoder::encode_batch(std::size_t count,
                                                  Rng& rng) {
  coding::CodedBatch batch(params(), count);
  // Coefficients are drawn up front, outside the supervised attempt, so
  // retries and the CPU fallback reproduce the exact same coded blocks.
  for (std::size_t j = 0; j < count; ++j) {
    reference_.draw_coefficients(rng, batch.coefficients(j));
  }
  encode_into(batch);
  return batch;
}

bool ResilientEncoder::verify_batch(const coding::CodedBatch& batch) {
  const std::size_t count = batch.count();
  if (count == 0) return true;
  const std::size_t samples =
      std::min(supervisor_->config().verify_sample, count);
  std::vector<std::uint8_t> scratch(params().k);
  for (std::size_t s = 0; s < samples; ++s) {
    // With enough budget to cover the batch, check every row; otherwise
    // spot-check random rows.
    const std::size_t j = samples == count ? s : sample_rng_.next_below(count);
    reference_.encode_with_coefficients(batch.coefficients(j), scratch);
    if (crc32c(scratch) != crc32c(batch.payload(j))) return false;
  }
  return true;
}

// --- DecodeCheckpoint ------------------------------------------------------

namespace {
constexpr std::uint8_t kCheckpointMagic[4] = {'X', 'N', 'C', 'K'};
constexpr std::uint32_t kCheckpointVersion = 1;
constexpr std::size_t kCheckpointHeader = 4 + 4 * 4;  // magic + 4 u32 fields
}  // namespace

std::size_t DecodeCheckpoint::completed() const {
  return static_cast<std::size_t>(
      std::count(done.begin(), done.end(), std::uint8_t{1}));
}

bool DecodeCheckpoint::complete() const {
  return !done.empty() && completed() == done.size();
}

std::vector<std::uint8_t> DecodeCheckpoint::serialize() const {
  EXTNC_CHECK(done.size() == decoded.size());
  const std::size_t total = kCheckpointHeader + done.size() +
                            completed() * params.segment_bytes() + 4;
  std::vector<std::uint8_t> out(total);
  std::uint8_t* cursor = out.data();
  auto write = [&cursor](const std::uint8_t* data, std::size_t size) {
    if (size > 0) std::memcpy(cursor, data, size);
    cursor += size;
  };
  auto write_u32 = [&write](std::uint32_t v) {
    const std::uint8_t le[4] = {
        static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
        static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
    write(le, 4);
  };
  write(kCheckpointMagic, 4);
  write_u32(kCheckpointVersion);
  write_u32(static_cast<std::uint32_t>(params.n));
  write_u32(static_cast<std::uint32_t>(params.k));
  write_u32(static_cast<std::uint32_t>(done.size()));
  write(done.data(), done.size());
  for (std::size_t i = 0; i < done.size(); ++i) {
    if (done[i] == 0) continue;
    EXTNC_CHECK(decoded[i].params() == params);
    write(decoded[i].bytes().data(), decoded[i].bytes().size());
  }
  EXTNC_CHECK(cursor == out.data() + total - 4);
  write_u32(crc32c(std::span(out.data(), total - 4)));
  return out;
}

std::optional<DecodeCheckpoint> DecodeCheckpoint::deserialize(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kCheckpointHeader + 4) return std::nullopt;
  if (std::memcmp(bytes.data(), kCheckpointMagic, 4) != 0) return std::nullopt;
  if (crc32c(bytes.first(bytes.size() - 4)) !=
      get_u32(bytes.data() + bytes.size() - 4)) {
    return std::nullopt;
  }
  if (get_u32(bytes.data() + 4) != kCheckpointVersion) return std::nullopt;

  DecodeCheckpoint ck;
  ck.params.n = get_u32(bytes.data() + 8);
  ck.params.k = get_u32(bytes.data() + 12);
  const std::size_t segments = get_u32(bytes.data() + 16);
  if (ck.params.n == 0 || ck.params.k == 0) return std::nullopt;
  if (bytes.size() < kCheckpointHeader + segments + 4) return std::nullopt;

  const std::uint8_t* flags = bytes.data() + kCheckpointHeader;
  std::size_t completed = 0;
  for (std::size_t i = 0; i < segments; ++i) {
    if (flags[i] > 1) return std::nullopt;
    completed += flags[i];
  }
  const std::size_t expected = kCheckpointHeader + segments +
                               completed * ck.params.segment_bytes() + 4;
  if (bytes.size() != expected) return std::nullopt;

  ck.done.assign(flags, flags + segments);
  ck.decoded.assign(segments, coding::Segment{});
  const std::uint8_t* payload = flags + segments;
  for (std::size_t i = 0; i < segments; ++i) {
    if (ck.done[i] == 0) continue;
    ck.decoded[i] = coding::Segment::from_bytes(
        ck.params, std::span(payload, ck.params.segment_bytes()));
    payload += ck.params.segment_bytes();
  }
  return ck;
}

// --- ResilientMultiSegDecoder ----------------------------------------------

ResilientMultiSegDecoder::ResilientMultiSegDecoder(
    const simgpu::DeviceSpec& spec, coding::Params params, ThreadPool& pool,
    ResilientLauncher& supervisor, simgpu::Profiler* profiler)
    : params_(params),
      spec_(&spec),
      pool_(&pool),
      supervisor_(&supervisor),
      profiler_(profiler),
      sample_rng_(0xdec0deULL) {
  params_.validate();
}

std::vector<coding::Segment> ResilientMultiSegDecoder::decode_all(
    const std::vector<coding::CodedBatch>& batches,
    DecodeCheckpoint* checkpoint, bool stop_on_device_loss) {
  for (const auto& batch : batches) {
    EXTNC_CHECK(batch.params() == params_);
    EXTNC_CHECK(batch.count() == params_.n);
  }
  last_ = MultiSegReport{};
  last_.segments = batches.size();
  std::vector<coding::Segment> out(batches.size());
  if (batches.empty()) {
    last_.complete = true;
    return out;
  }

  DecodeCheckpoint local;
  DecodeCheckpoint& ck = checkpoint != nullptr ? *checkpoint : local;
  if (ck.done.empty()) {
    ck.params = params_;
    ck.done.assign(batches.size(), 0);
    ck.decoded.assign(batches.size(), coding::Segment{});
  } else {
    EXTNC_CHECK(ck.params == params_);
    EXTNC_CHECK(ck.done.size() == batches.size());
  }

  simgpu::FaultInjector* injector = supervisor_->injector();
  // Monotonic per-decode attempt clock: each GPU attempt adds its own
  // modeled duration, so the supervisor's before/after delta is exactly
  // that attempt's device time (the outer launcher and the stage-2
  // multiplier encoders' launchers all share the injector's device
  // timeline when one is attached).
  double clock_accum = 0;

  for (std::size_t i = 0; i < batches.size(); ++i) {
    if (ck.done[i] != 0) {
      out[i] = ck.decoded[i];
      ++last_.from_checkpoint;
      continue;
    }
    if (stop_on_device_loss && injector != nullptr &&
        injector->device_lost()) {
      last_.stopped_on_device_loss = true;
      return out;
    }

    const coding::CodedBatch& batch = batches[i];
    auto cpu_decode = [this, &batch, &out, i] {
      cpu::MultiSegmentDecoder cpu_decoder(params_, *pool_);
      auto segments =
          cpu_decoder.decode_all(std::vector<coding::CodedBatch>{batch});
      out[i] = std::move(segments[0]);
    };

    SupervisedOp op;
    op.label = "multiseg_decode";
    op.gpu = [this, injector, &batch, &out, &clock_accum, i] {
      // A fresh decoder per attempt: decode state cannot be poisoned by a
      // previous faulted attempt. Device identity (fault plan, modeled
      // clock, sticky lost state) lives in the injector, not the decoder.
      GpuMultiSegmentDecoder decoder(*spec_, params_);
      if (profiler_ != nullptr) decoder.attach_profiler(profiler_);
      supervisor_->adopt(decoder.launcher());
      const double start_s =
          injector != nullptr ? injector->observed_seconds() : 0.0;
      auto segments =
          decoder.decode_all(std::vector<coding::CodedBatch>{batch});
      clock_accum += injector != nullptr
                         ? injector->observed_seconds() - start_s
                         : decoder.launcher().elapsed_seconds();
      out[i] = std::move(segments[0]);
      if (injector != nullptr && injector->pending_damage() > 0) {
        // Damaging faults fired inside the decode (the supervisor cannot
        // watch the decoder's internal buffers); land the damage on the
        // decoded output, where the verifier can catch it.
        injector->apply_pending_damage(out[i].bytes());
      }
    };
    op.gpu_clock = [&clock_accum] { return clock_accum; };
    op.verify = [this, &batch, &out, i] {
      return verify_segment(batch, out[i]);
    };
    if (!stop_on_device_loss) op.cpu = cpu_decode;

    const OperationReport report = supervisor_->run(op);
    if (report.path == ComputePath::kGpu) {
      ++last_.gpu_segments;
    } else if (report.path == ComputePath::kCpuFallback) {
      ++last_.cpu_segments;
    } else {
      // kFailed: fallback was left unwired for stop_on_device_loss mode.
      if (report.device_lost) {
        last_.stopped_on_device_loss = true;
        return out;  // progress up to segment i is in the checkpoint
      }
      // Transient faults exhausted the retry budget; stop mode only stops
      // for device loss, so decode this segment on the CPU.
      cpu_decode();
      ++last_.cpu_segments;
    }
    ck.done[i] = 1;
    ck.decoded[i] = out[i];
  }
  last_.complete = true;
  return out;
}

bool ResilientMultiSegDecoder::verify_segment(const coding::CodedBatch& batch,
                                              const coding::Segment& segment) {
  // Identity check: the decoded segment, re-encoded with a received row's
  // coefficients, must reproduce that row's payload byte-for-byte. Dense
  // rows mix every source block, so corruption anywhere in the segment is
  // visible from any sampled row.
  coding::Encoder reference(segment);
  const std::size_t n = params_.n;
  const std::size_t samples = std::min(supervisor_->config().verify_sample, n);
  std::vector<std::uint8_t> scratch(params_.k);
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t j = samples == n ? s : sample_rng_.next_below(n);
    reference.encode_with_coefficients(batch.coefficients(j), scratch);
    if (crc32c(scratch) != crc32c(batch.payload(j))) return false;
  }
  return true;
}

// --- ResilientSeed ---------------------------------------------------------

struct ResilientSeed::BoundSegment {
  coding::Segment segment;
  std::unique_ptr<ResilientEncoder> encoder;
  coding::CodedBatch buffer;
  std::size_t next = 0;
};

struct ResilientSeed::BoundContent {
  coding::Params params{};
  std::vector<std::uint8_t> content;
  std::vector<BoundSegment*> generations;  // created lazily, owned by seed
};

ResilientSeed::ResilientSeed(const simgpu::DeviceSpec& spec,
                             EncodeScheme scheme, SupervisorConfig config,
                             simgpu::FaultPlan fault_plan, std::size_t threads,
                             std::size_t blocks_per_launch)
    : spec_(&spec),
      scheme_(scheme),
      blocks_per_launch_(blocks_per_launch),
      pool_(threads),
      injector_(fault_plan.any()
                    ? std::make_unique<simgpu::FaultInjector>(fault_plan)
                    : nullptr),
      supervisor_(std::move(config), injector_.get()) {
  EXTNC_CHECK(blocks_per_launch_ > 0);
}

ResilientSeed::~ResilientSeed() = default;

ResilientSeed::BoundSegment* ResilientSeed::make_bound(
    coding::Segment segment) {
  auto bound = std::make_unique<BoundSegment>();
  bound->segment = std::move(segment);
  bound->encoder = std::make_unique<ResilientEncoder>(
      *spec_, bound->segment, scheme_, pool_, supervisor_);
  segments_.push_back(std::move(bound));
  return segments_.back().get();
}

std::function<coding::CodedBlock(Rng&)> ResilientSeed::bind_segment(
    const coding::Segment& segment) {
  BoundSegment* bound = make_bound(segment);
  const std::size_t batch_size = blocks_per_launch_;
  return [bound, batch_size](Rng& rng) {
    if (bound->next >= bound->buffer.count()) {
      bound->buffer = bound->encoder->encode_batch(batch_size, rng);
      bound->next = 0;
    }
    return bound->buffer.block(bound->next++);
  };
}

std::function<coding::CodedBlock(std::uint32_t, Rng&)>
ResilientSeed::bind_content(const coding::Params& params,
                            std::span<const std::uint8_t> content) {
  params.validate();
  auto owned = std::make_unique<BoundContent>();
  owned->params = params;
  owned->content.assign(content.begin(), content.end());
  const std::size_t generation_bytes = params.segment_bytes();
  const std::size_t generations =
      std::max<std::size_t>(1, (owned->content.size() + generation_bytes - 1) /
                                   generation_bytes);
  owned->generations.assign(generations, nullptr);
  contents_.push_back(std::move(owned));
  BoundContent* bc = contents_.back().get();

  return [this, bc, generation_bytes](std::uint32_t g, Rng& rng) {
    EXTNC_CHECK(g < bc->generations.size());
    BoundSegment*& bound = bc->generations[g];
    if (bound == nullptr) {
      const std::size_t offset = g * generation_bytes;
      const std::size_t len =
          std::min(generation_bytes, bc->content.size() - offset);
      bound = make_bound(coding::Segment::from_bytes(
          bc->params, std::span(bc->content.data() + offset, len)));
    }
    if (bound->next >= bound->buffer.count()) {
      bound->buffer = bound->encoder->encode_batch(blocks_per_launch_, rng);
      bound->next = 0;
    }
    return bound->buffer.block(bound->next++);
  };
}

}  // namespace extnc::gpu
