// Single-segment GPU decoder (Sec. 4.2.2, Fig. 3).
//
// Progressive Gauss-Jordan with the paper's task partitioning: CUDA has no
// global barrier, so the payload is split column-wise across one thread
// block per SM and every block keeps its own private copy of the
// coefficient matrix, paying redundant coefficient work to avoid global
// synchronization. Each arriving coded block costs one kernel launch whose
// internal structure is: forward-eliminate (one barrier per stored row),
// search the first nonzero coefficient (one barrier; optionally via
// atomicMin on shared memory, Sec. 5.4.2), normalize, back-eliminate.
//
// Options map to the paper's Sec. 5.4 micro-optimizations.
#pragma once

#include <cstdint>
#include <vector>

#include "coding/coded_block.h"
#include "coding/segment.h"
#include "simgpu/executor.h"
#include "util/aligned_buffer.h"

namespace extnc::gpu {

struct DecodeOptions {
  // Report each thread's leading nonzero via atomicMin instead of a serial
  // reduction (Sec. 5.4.2; requires device support, ~0.6% gain).
  bool use_atomic_min = false;
  // Cache the private coefficient matrix in shared memory (Sec. 5.4.3;
  // needs n*n <= 16 KB, i.e. n <= 128; 0.5%-3.4% gain).
  bool cache_coefficients = false;
};

class GpuSingleSegmentDecoder {
 public:
  enum class Result { kAccepted, kLinearlyDependent, kAlreadyComplete };

  GpuSingleSegmentDecoder(const simgpu::DeviceSpec& spec,
                          coding::Params params,
                          DecodeOptions options = {});

  Result add(const coding::CodedBlock& block);
  Result add(std::span<const std::uint8_t> coefficients,
             std::span<const std::uint8_t> payload);

  const coding::Params& params() const { return params_; }
  std::size_t rank() const { return rank_; }
  bool is_complete() const { return rank_ == params_.n; }
  coding::Segment decoded_segment() const;

  const simgpu::KernelMetrics& metrics() const { return launcher_.metrics(); }
  const simgpu::DeviceSpec& spec() const { return launcher_.spec(); }

  // Record every add() launch as "decode/single/add_block".
  void attach_profiler(simgpu::Profiler* profiler) {
    launcher_.set_profiler(profiler);
    launcher_.set_launch_label("decode/single/add_block");
  }

  // Run every add() launch under the kernel sanitizer (simgpu/checker.h)
  // with the decoder's device buffers registered as watched regions.
  void attach_checker(simgpu::Checker* checker);

 private:
  coding::Params params_;
  DecodeOptions options_;
  simgpu::Launcher launcher_;

  std::size_t data_blocks_;   // thread blocks (== SMs used)
  std::size_t slice_bytes_;   // payload bytes owned by one block

  // Stored RREF state. Payload rows are canonical (each block owns a
  // column slice); coefficient rows are replicated per block, as on the
  // real device — copy b lives at coeff_copies_[b].
  std::vector<AlignedBuffer> coeff_copies_;  // data_blocks_ x (n*n)
  AlignedBuffer payloads_;                   // n*k
  std::vector<bool> present_;
  std::size_t rank_ = 0;
};

}  // namespace extnc::gpu
