#include "gpu/gpu_encoder.h"

#include <algorithm>
#include <cstring>

#include "gf256/gf.h"
#include "gf256/region.h"
#include "gf256/swar.h"
#include "gpu/kernel_cost.h"
#include "gpu/table_layout.h"
#include "simgpu/static_model.h"
#include "util/assert.h"
#include "util/metrics_registry.h"

namespace extnc::gpu {

using simgpu::BlockCtx;
using simgpu::LaunchConfig;
using simgpu::ThreadCtx;

GpuEncoder::GpuEncoder(const simgpu::DeviceSpec& spec,
                       const coding::Segment& segment, EncodeScheme scheme,
                       simgpu::Profiler* profiler, std::string label_prefix,
                       simgpu::FaultInjector* injector,
                       simgpu::Checker* checker)
    : segment_(&segment),
      scheme_(scheme),
      launcher_(spec),
      label_prefix_(std::move(label_prefix)) {
  launcher_.set_profiler(profiler);
  launcher_.set_fault_injector(injector);
  const coding::Params& p = segment.params();
  EXTNC_CHECK(p.k % 4 == 0);  // GPU kernels operate on 32-bit words
  const gf256::Tables& t = gf256::tables();

  // Host-side table construction ("created on the CPU side once and then
  // transferred to the GPU memory", Sec. 5.1).
  const bool shifted = scheme_uses_shifted_log(scheme_);
  exp_table_bytes_ = AlignedBuffer(kExpTableEntries);
  for (std::size_t i = 0; i < kExpTableEntries; ++i) {
    exp_table_bytes_[i] = shifted ? t.exp_shifted[i] : t.exp[i];
  }
  if (scheme_ == EncodeScheme::kTable0) {
    log_table_bytes_ = AlignedBuffer(256);
    for (std::size_t i = 0; i < 256; ++i) log_table_bytes_[i] = t.log[i];
  }
  if (scheme_ == EncodeScheme::kTable5) {
    // Eight word-width copies, interleaved so that copy c of entry i lives
    // at word index i * 8 + c: a thread using copy (lane % 8) then only
    // ever touches two banks, halving the expected conflict degree.
    exp_table_words_ = AlignedBuffer(kExpTableEntries * kReplicatedTables * 4);
    for (std::size_t i = 0; i < kExpTableEntries; ++i) {
      for (std::size_t c = 0; c < kReplicatedTables; ++c) {
        const std::size_t word = i * kReplicatedTables + c;
        const std::uint32_t value = t.exp_shifted[i];
        std::memcpy(exp_table_words_.data() + word * 4, &value, 4);
      }
    }
  }
  // Attach before the construction-time preprocessing launch so it runs
  // checked too.
  attach_checker(checker);
  if (scheme_is_preprocessed(scheme_)) {
    preprocess_segment();
  }
}

void GpuEncoder::attach_profiler(simgpu::Profiler* profiler,
                                 std::string label_prefix) {
  launcher_.set_profiler(profiler);
  label_prefix_ = std::move(label_prefix);
}

GpuEncoder::~GpuEncoder() { unwatch_all(); }

void GpuEncoder::unwatch_all() {
  if (checker_ == nullptr) return;
  checker_->unwatch_global(segment_->data());
  checker_->unwatch_global(exp_table_bytes_.data());
  if (!log_table_bytes_.empty()) {
    checker_->unwatch_global(log_table_bytes_.data());
  }
  if (!exp_table_words_.empty()) {
    checker_->unwatch_global(exp_table_words_.data());
  }
  if (!log_segment_.empty()) {
    checker_->unwatch_global(log_segment_.data());
  }
  if (!log_coefficients_.empty()) {
    checker_->unwatch_global(log_coefficients_.data());
  }
}

void GpuEncoder::attach_checker(simgpu::Checker* checker) {
  if (checker_ != nullptr && checker != checker_) unwatch_all();
  checker_ = checker;
  launcher_.set_checker(checker);
  if (checker == nullptr) return;
  // Steady-state device buffers; per-batch buffers are registered by the
  // call that allocates or receives them.
  const coding::Params& p = params();
  checker->watch_global(segment_->data(), p.segment_bytes(), "segment");
  checker->watch_global(exp_table_bytes_.data(), exp_table_bytes_.size(),
                        "exp_table");
  if (!log_table_bytes_.empty()) {
    checker->watch_global(log_table_bytes_.data(), log_table_bytes_.size(),
                          "log_table");
  }
  if (!exp_table_words_.empty()) {
    checker->watch_global(exp_table_words_.data(), exp_table_words_.size(),
                          "exp_table_words");
  }
  if (!log_segment_.empty()) {
    checker->watch_global(log_segment_.data(), log_segment_.size(),
                          "log_segment");
  }
}

void GpuEncoder::set_launch_label(const char* kernel) {
  launcher_.set_launch_label(label_prefix_ + "/" + scheme_label(scheme_) +
                             "/" + kernel);
}

void GpuEncoder::reset_metrics() {
  encode_metrics_ = simgpu::KernelMetrics{};
  preprocess_metrics_ = simgpu::KernelMetrics{};
}

coding::CodedBatch GpuEncoder::encode_batch(std::size_t count, Rng& rng) {
  coding::CodedBatch batch(params(), count);
  for (std::size_t j = 0; j < count; ++j) {
    for (auto& c : batch.coefficients(j)) c = rng.next_nonzero_byte();
  }
  encode_into(batch);
  return batch;
}

void GpuEncoder::encode_into(coding::CodedBatch& batch) {
  EXTNC_CHECK(batch.params() == params());
  if (batch.count() == 0) return;
  // The batch's buffers live only for this call; scoped registration keeps
  // the checker's region table free of dead entries.
  const coding::Params& p = params();
  simgpu::Checker::ScopedWatch watch_coeffs(
      checker_, batch.coefficients_data(), batch.count() * p.n,
      "batch.coefficients");
  simgpu::Checker::ScopedWatch watch_payloads(
      checker_, batch.payloads_data(), batch.count() * p.k, "batch.payloads");
  if (scheme_is_preprocessed(scheme_)) {
    preprocess_coefficients(batch);
  }
  launcher_.reset_metrics();
  if (scheme_ == EncodeScheme::kLoopBased) {
    run_loop_based(batch);
  } else {
    run_table_based(batch);
  }
  encode_metrics_.merge(launcher_.metrics());
}

// Sec. 5.1.1 step (1): transform the segment to the log domain, one thread
// per 32-bit word, reading through the shared log table.
void GpuEncoder::preprocess_segment() {
  const coding::Params& p = params();
  log_segment_ = AlignedBuffer(p.segment_bytes());
  if (checker_ != nullptr) {
    checker_->watch_global(log_segment_.data(), log_segment_.size(),
                           "log_segment");
  }
  const gf256::Tables& t = gf256::tables();
  const bool shifted = scheme_uses_shifted_log(scheme_);
  const std::uint8_t* log_table = shifted ? t.log_shifted : t.log;

  const std::size_t words = p.segment_bytes() / 4;
  const std::size_t threads = 256;
  const std::size_t blocks = std::min<std::size_t>(
      launcher_.spec().num_sms, (words + threads - 1) / threads);
  const std::uint8_t* src = segment_->data();
  std::uint8_t* dst = log_segment_.data();

  set_launch_label("preprocess_segment");
  launcher_.reset_metrics();
  launcher_.launch(
      {.blocks = blocks, .threads_per_block = threads},
      [&](BlockCtx& block) {
        const std::size_t stride = blocks * threads;
        if (block.fast_path()) {
          metrics::count("simgpu.fast.lowered_blocks");
          // Bulk lowering; partial half-warps (tail of the word range) are
          // contiguous low lanes, so each group is one span.
          const std::size_t half = block.spec().half_warp;
          const std::uint64_t byte_deci =
              simgpu::KernelMetrics::deciops(kPreprocessPerByte);
          std::uint64_t alu = 0;
          for (std::size_t base = block.block_index() * threads;
               base < words; base += stride) {
            const std::size_t lanes_end = std::min(threads, words - base);
            for (std::size_t l0 = 0; l0 < lanes_end; l0 += half) {
              const std::size_t w0 = base + l0;
              const std::size_t cnt = std::min(half, words - w0);
              block.fast_global_span(
                  reinterpret_cast<std::uintptr_t>(src + w0 * 4), cnt * 4,
                  cnt, cnt * 4, 0);
              for (std::size_t x = w0 * 4; x < (w0 + cnt) * 4; ++x) {
                dst[x] = log_table[src[x]];
              }
              alu += cnt * 4 * byte_deci;
              block.fast_global_span(
                  reinterpret_cast<std::uintptr_t>(dst + w0 * 4), cnt * 4,
                  cnt, 0, cnt * 4);
            }
          }
          block.fast_alu_deciops(alu);
          block.fast_barriers(1);
          return;
        }
        block.step([&](ThreadCtx& thread) {
          for (std::size_t w = block.block_index() * threads + thread.lane();
               w < words; w += stride) {
            std::uint32_t in = thread.gload_u32(src + w * 4);
            std::uint32_t out = 0;
            for (int b = 0; b < 4; ++b) {
              const auto byte = static_cast<std::uint8_t>(in >> (8 * b));
              out |= static_cast<std::uint32_t>(log_table[byte]) << (8 * b);
              thread.count_alu(kPreprocessPerByte);
            }
            thread.gstore_u32(dst + w * 4, out);
          }
        });
      });
  preprocess_metrics_.merge(launcher_.metrics());
}

// Sec. 5.1.1 step (2): coefficient matrix to the log domain.
void GpuEncoder::preprocess_coefficients(const coding::CodedBatch& batch) {
  const coding::Params& p = params();
  const std::size_t bytes = batch.count() * p.n;
  if (checker_ != nullptr && !log_coefficients_.empty()) {
    checker_->unwatch_global(log_coefficients_.data());  // being reallocated
  }
  log_coefficients_ = AlignedBuffer(bytes);
  if (checker_ != nullptr) {
    checker_->watch_global(log_coefficients_.data(), log_coefficients_.size(),
                           "log_coefficients");
  }
  const gf256::Tables& t = gf256::tables();
  const bool shifted = scheme_uses_shifted_log(scheme_);
  const std::uint8_t* log_table = shifted ? t.log_shifted : t.log;
  const std::uint8_t* src = batch.coefficients_data();
  std::uint8_t* dst = log_coefficients_.data();

  const std::size_t threads = 256;
  const std::size_t blocks = std::min<std::size_t>(
      launcher_.spec().num_sms, (bytes + threads - 1) / threads);
  set_launch_label("preprocess_coeffs");
  launcher_.reset_metrics();
  launcher_.launch(
      {.blocks = blocks, .threads_per_block = threads},
      [&](BlockCtx& block) {
        const std::size_t stride = blocks * threads;
        if (block.fast_path()) {
          metrics::count("simgpu.fast.lowered_blocks");
          const std::size_t half = block.spec().half_warp;
          const std::uint64_t byte_deci =
              simgpu::KernelMetrics::deciops(kPreprocessPerByte);
          std::uint64_t alu = 0;
          for (std::size_t base = block.block_index() * threads;
               base < bytes; base += stride) {
            const std::size_t lanes_end = std::min(threads, bytes - base);
            for (std::size_t l0 = 0; l0 < lanes_end; l0 += half) {
              const std::size_t i0 = base + l0;
              const std::size_t cnt = std::min(half, bytes - i0);
              block.fast_global_span(
                  reinterpret_cast<std::uintptr_t>(src + i0), cnt, cnt, cnt,
                  0);
              for (std::size_t x = 0; x < cnt; ++x) {
                dst[i0 + x] = log_table[src[i0 + x]];
              }
              alu += cnt * byte_deci;
              block.fast_global_span(
                  reinterpret_cast<std::uintptr_t>(dst + i0), cnt, cnt, 0,
                  cnt);
            }
          }
          block.fast_alu_deciops(alu);
          block.fast_barriers(1);
          return;
        }
        block.step([&](ThreadCtx& thread) {
          for (std::size_t i = block.block_index() * threads + thread.lane();
               i < bytes; i += stride) {
            const std::uint8_t c = thread.gload_u8(src + i);
            thread.count_alu(kPreprocessPerByte);
            thread.gstore_u8(dst + i, log_table[c]);
          }
        });
      });
  preprocess_metrics_.merge(launcher_.metrics());
}

// Fig. 2 partitioning: thread blocks of 256, one thread per output word.
void GpuEncoder::run_loop_based(coding::CodedBatch& batch) {
  const coding::Params p = params();
  const std::size_t words_per_block = p.k / 4;
  const std::size_t total_words = batch.count() * words_per_block;
  const std::size_t threads = std::min<std::size_t>(256, total_words);
  const std::size_t blocks = (total_words + threads - 1) / threads;
  const EncodeCost cost = encode_cost(scheme_);

  const std::uint8_t* src = segment_->data();
  const std::uint8_t* coeffs = batch.coefficients_data();
  std::uint8_t* out = batch.payloads_data();

  set_launch_label("mul_loop");
  launcher_.launch(
      {.blocks = blocks, .threads_per_block = threads}, [&](BlockCtx& block) {
        // Bulk lowering: one SIMD region op per (half-warp, coded-block-i)
        // pair instead of 16 interpreted lanes, with group accounting that
        // mirrors the lane-at-a-time groups exactly (BlockCtx::fast_path).
        // When half-warps straddle coded blocks (or the block is not whole
        // half-warps) the generic per-lane-group walker lowers instead.
        const std::size_t half = block.spec().half_warp;
        if (block.fast_path() &&
            (words_per_block % half != 0 || threads % half != 0)) {
          metrics::count("simgpu.fast.lowered_blocks");
          metrics::count("simgpu.fast.straddle_blocks");
          run_loop_based_fast_straddle(block, cost, total_words, threads,
                                       coeffs, out);
          return;
        }
        if (block.fast_path()) {
          metrics::count("simgpu.fast.lowered_blocks");
          const gf256::Ops& gops = gf256::ops();
          const std::size_t span = half * 4;
          const std::uint64_t word_deci =
              half * simgpu::KernelMetrics::deciops(cost.per_word);
          std::uint64_t alu_deci = 0;
          const std::size_t begin = block.block_index() * threads;
          const std::size_t end = std::min(begin + threads, total_words);
          for (std::size_t w0 = begin; w0 < end; w0 += half) {
            const std::size_t j = w0 / words_per_block;
            const std::size_t word = w0 % words_per_block;
            const std::uint8_t* coeff_row = coeffs + j * p.n;
            std::uint8_t* dst = out + j * p.k + word * 4;
            std::memset(dst, 0, span);
            for (std::size_t i = 0; i < p.n; ++i) {
              const std::uint8_t c = coeff_row[i];
              block.fast_global_span(
                  reinterpret_cast<std::uintptr_t>(coeff_row + i), 1, half,
                  half, 0);
              const std::uint8_t* s = src + i * p.k + word * 4;
              block.fast_global_span(reinterpret_cast<std::uintptr_t>(s),
                                     span, half, span, 0);
              gops.mul_add_region(dst, s, c, span);
              alu_deci += half * simgpu::KernelMetrics::deciops(
                                     cost.per_iteration *
                                     gf256::loop_iterations(c));
            }
            alu_deci += word_deci;
            block.fast_global_span(reinterpret_cast<std::uintptr_t>(dst),
                                   span, half, 0, span);
          }
          block.fast_alu_deciops(alu_deci);
          block.fast_barriers(1);
          return;
        }
        block.step([&](ThreadCtx& thread) {
          const std::size_t w =
              block.block_index() * threads + thread.lane();
          if (w >= total_words) return;
          const std::size_t j = w / words_per_block;       // coded block
          const std::size_t word = w % words_per_block;    // word within it
          const std::uint8_t* coeff_row = coeffs + j * p.n;
          std::uint32_t acc = 0;
          for (std::size_t i = 0; i < p.n; ++i) {
            const std::uint8_t c = thread.gload_u8(coeff_row + i);
            const std::uint32_t s =
                thread.gload_u32(src + i * p.k + word * 4);
            acc ^= gf256::mul_byte_word(c, s);
            thread.count_alu(cost.per_iteration *
                             gf256::loop_iterations(c));
          }
          thread.count_alu(cost.per_word);
          thread.gstore_u32(out + j * p.k + word * 4, acc);
        });
      });
}

// Sec. 5.1.2 partitioning: one resident block per SM striding over words,
// tables loaded into shared memory once per block.
void GpuEncoder::run_table_based(coding::CodedBatch& batch) {
  const coding::Params p = params();
  const std::size_t words_per_block = p.k / 4;
  const std::size_t total_words = batch.count() * words_per_block;
  const std::size_t threads = 256;
  const std::size_t blocks =
      std::min<std::size_t>(launcher_.spec().num_sms,
                            (total_words + threads - 1) / threads);
  const EncodeCost cost = encode_cost(scheme_);
  const bool preprocessed = scheme_is_preprocessed(scheme_);
  const std::uint8_t* src = preprocessed ? log_segment_.data()
                                         : segment_->data();
  const std::uint8_t* coeffs = preprocessed ? log_coefficients_.data()
                                            : batch.coefficients_data();
  std::uint8_t* out = batch.payloads_data();
  const bool shifted = scheme_uses_shifted_log(scheme_);
  const std::uint8_t sentinel = shifted ? 0x00 : gf256::kLogZero;

  // The exp lookup's home names the kernel: texture for TB-4, shared
  // memory (replicated for TB-5) otherwise.
  set_launch_label(scheme_ == EncodeScheme::kTable4 ? "exp_tex" : "exp_smem");
  launcher_.launch(
      {.blocks = blocks, .threads_per_block = threads}, [&](BlockCtx& block) {
        const std::size_t half = block.spec().half_warp;
        if (block.fast_path() && half <= 16) {
          metrics::count("simgpu.fast.lowered_blocks");
          // The profiled lowering needs half-warps that never straddle
          // coded blocks (and, for kTable5, a lane-position-independent
          // table interleave); anything else takes the generic walker.
          if (words_per_block % half == 0 && threads % half == 0 &&
              (scheme_ != EncodeScheme::kTable5 ||
               half % kReplicatedTables == 0)) {
            run_table_based_fast(block, batch, cost, total_words, threads,
                                 blocks, src, coeffs, out, sentinel);
          } else {
            metrics::count("simgpu.fast.straddle_blocks");
            run_table_based_fast_straddle(block, batch, cost, total_words,
                                          threads, blocks, src, coeffs, out,
                                          sentinel);
          }
          return;
        }
        // --- cooperative table load (coalesced, Sec. 5.1) ---------------
        if (scheme_ == EncodeScheme::kTable5) {
          const std::size_t table_words =
              kExpTableEntries * kReplicatedTables;
          block.step([&](ThreadCtx& thread) {
            for (std::size_t w = thread.lane(); w < table_words;
                 w += threads) {
              thread.sstore_u32(
                  w * 4, thread.gload_u32(exp_table_words_.data() + w * 4));
            }
          });
        } else if (scheme_ != EncodeScheme::kTable4) {
          block.step([&](ThreadCtx& thread) {
            for (std::size_t w = thread.lane(); w < kExpTableEntries / 4;
                 w += threads) {
              thread.sstore_u32(
                  kExpBytesOffset + w * 4,
                  thread.gload_u32(exp_table_bytes_.data() + w * 4));
            }
            if (scheme_ == EncodeScheme::kTable0) {
              for (std::size_t w = thread.lane(); w < 256 / 4; w += threads) {
                thread.sstore_u32(
                    kLogBytesOffset + w * 4,
                    thread.gload_u32(log_table_bytes_.data() + w * 4));
              }
            }
          });
        }

        // --- encode words, strided ---------------------------------------
        const std::size_t stride = blocks * threads;
        block.step([&](ThreadCtx& thread) {
          for (std::size_t w =
                   block.block_index() * threads + thread.lane();
               w < total_words; w += stride) {
            const std::size_t j = w / words_per_block;
            const std::size_t word = w % words_per_block;
            const std::uint8_t* coeff_row = coeffs + j * p.n;
            std::uint32_t acc = 0;
            for (std::size_t i = 0; i < p.n; ++i) {
              // Coefficient: log domain for preprocessed schemes; kTable0
              // looks it up in the shared log table.
              std::uint8_t log_c = thread.gload_u8(coeff_row + i);
              if (scheme_ == EncodeScheme::kTable0) {
                log_c = thread.sload_u8(kLogBytesOffset + log_c);
              }
              const std::uint32_t s =
                  thread.gload_u32(src + i * p.k + word * 4);
              thread.count_alu(cost.per_word);
              if (log_c == sentinel) {
                // kTable2+ fold the four per-byte coefficient tests into
                // this single per-word test; earlier schemes still pay for
                // per-byte tests via their per_byte cost. Skipped lanes
                // keep their access sequence aligned with active ones.
                const int skipped =
                    scheme_ == EncodeScheme::kTable0 ? 8 : 4;
                for (int a = 0; a < skipped; ++a) thread.skip_access();
                continue;
              }
              for (int b = 0; b < 4; ++b) {
                std::uint8_t log_s = static_cast<std::uint8_t>(s >> (8 * b));
                if (scheme_ == EncodeScheme::kTable0) {
                  log_s = thread.sload_u8(kLogBytesOffset + log_s);
                }
                thread.count_alu(cost.per_byte);
                if (log_s == sentinel) {
                  thread.skip_access();  // the exp lookup this lane skips
                  continue;
                }
                const std::size_t idx =
                    static_cast<std::size_t>(log_c) + log_s;
                std::uint8_t product;
                if (scheme_ == EncodeScheme::kTable4) {
                  product = thread.tex1d_u8(exp_table_bytes_.data(), idx);
                } else if (scheme_ == EncodeScheme::kTable5) {
                  const std::size_t word_index =
                      idx * kReplicatedTables +
                      (thread.lane() % kReplicatedTables);
                  product = static_cast<std::uint8_t>(
                      thread.sload_u32(word_index * 4));
                } else {
                  product = thread.sload_u8(kExpBytesOffset + idx);
                }
                acc ^= static_cast<std::uint32_t>(product) << (8 * b);
              }
            }
            thread.gstore_u32(out + j * p.k + word * 4, acc);
          }
        });
      });
}

// Walk the cooperative table-load step once into local accumulators. The
// step's accounting is a pure function of the table addresses and the
// thread count — identical for every block of every launch — so this runs
// once per encoder and fast_load_tables bulk-charges the result.
void GpuEncoder::build_table_load_profile(std::size_t threads) {
  const simgpu::DeviceSpec& spec = launcher_.spec();
  const std::size_t half = spec.half_warp;
  const auto banks = static_cast<std::uint32_t>(spec.shared_banks);
  const std::uint64_t seg_bytes = spec.coalesce_segment_bytes;
  std::array<std::uintptr_t, 16> words_buf;
  TableLoadProfile prof;
  prof.threads = threads;
  auto charge = [&](std::uintptr_t addr, std::size_t cnt) {
    prof.transactions += simgpu::span_transactions(addr, cnt * 4, seg_bytes);
    prof.instrs += cnt;
    prof.load_bytes += cnt * 4;
    prof.shared_accesses += cnt;
    prof.shared_events += 1;
    prof.shared_cycles +=
        simgpu::shared_group_degree(words_buf.data(), cnt, banks);
  };
  if (scheme_ == EncodeScheme::kTable5) {
    const std::size_t table_words = kExpTableEntries * kReplicatedTables;
    for (std::size_t it = 0; it * threads < table_words; ++it) {
      for (std::size_t l0 = 0;
           l0 < threads && it * threads + l0 < table_words; l0 += half) {
        const std::size_t w0 = it * threads + l0;
        const std::size_t cnt = std::min(half, table_words - w0);
        for (std::size_t l = 0; l < cnt; ++l) words_buf[l] = w0 + l;
        charge(reinterpret_cast<std::uintptr_t>(exp_table_words_.data() +
                                                w0 * 4),
               cnt);
      }
    }
  } else {
    const std::size_t exp_words = kExpTableEntries / 4;
    for (std::size_t l0 = 0; l0 < threads && l0 < exp_words; l0 += half) {
      const std::size_t cnt = std::min(half, exp_words - l0);
      for (std::size_t l = 0; l < cnt; ++l) {
        words_buf[l] = kExpBytesOffset / 4 + l0 + l;
      }
      charge(reinterpret_cast<std::uintptr_t>(exp_table_bytes_.data() +
                                              l0 * 4),
             cnt);
    }
    if (scheme_ == EncodeScheme::kTable0) {
      const std::size_t log_words = 256 / 4;
      for (std::size_t l0 = 0; l0 < threads && l0 < log_words; l0 += half) {
        const std::size_t cnt = std::min(half, log_words - l0);
        for (std::size_t l = 0; l < cnt; ++l) {
          words_buf[l] = kLogBytesOffset / 4 + l0 + l;
        }
        charge(reinterpret_cast<std::uintptr_t>(log_table_bytes_.data() +
                                                l0 * 4),
               cnt);
      }
    }
  }
  prof.built = true;
  load_profile_ = prof;
}

// Cooperative table-load accounting shared by both table-based lowerings
// (one barrier, like the interpreted load step).
void GpuEncoder::fast_load_tables(BlockCtx& block, std::size_t threads) {
  if (scheme_ == EncodeScheme::kTable4) return;  // texture-bound, no load
  if (!load_profile_.built || load_profile_.threads != threads) {
    build_table_load_profile(threads);
  }
  block.fast_global_bulk(load_profile_.transactions, load_profile_.instrs,
                         load_profile_.load_bytes, 0);
  block.fast_shared_bulk(load_profile_.shared_accesses,
                         load_profile_.shared_events,
                         load_profile_.shared_cycles);
  block.fast_barriers(1);
}

// Evaluate the per-(group, row) access profile once for the encoder's
// immutable accounting-domain segment. Degrees for the exp lookups are
// evaluated at the four log_c residues mod 4: adding 4t to log_c shifts
// every lookup word by t (byte tables) or 8t (kTable5's interleave),
// which preserves word distinctness and rotates banks uniformly — the
// serialization degree is invariant (simgpu::shared_group_degree over
// shifted word sets).
void GpuEncoder::build_table_fast_profile(const std::uint8_t* src) {
  const coding::Params& p = params();
  const simgpu::DeviceSpec& spec = launcher_.spec();
  const std::size_t half = spec.half_warp;
  const auto banks = static_cast<std::uint32_t>(spec.shared_banks);
  const std::size_t groups = (p.k / 4) / half;
  const bool tb0 = scheme_ == EncodeScheme::kTable0;
  const bool tb4 = scheme_ == EncodeScheme::kTable4;
  const bool tb5 = scheme_ == EncodeScheme::kTable5;
  const bool shifted = scheme_uses_shifted_log(scheme_);
  const std::uint8_t sentinel = shifted ? 0x00 : gf256::kLogZero;
  const std::uint8_t* log_table = tb0 ? log_table_bytes_.data() : nullptr;

  TableFastProfile& prof = table_profile_;
  prof.groups = groups;
  const std::size_t len = p.n * (groups + 1);
  prof.src_tx.assign(len, 0);
  prof.exp_events.assign(len, 0);
  prof.exp_accesses.assign(len, 0);
  for (auto& v : prof.exp_cycles) v.assign(len, 0);
  prof.log_cycles.assign(tb0 ? len : 0, 0);
  prof.active.assign(tb4 ? len : 0, 0);

  std::array<std::uintptr_t, 16> words;
  std::array<std::uint8_t, 16> log_s;
  std::array<std::size_t, 16> lane_of;
  for (std::size_t i = 0; i < p.n; ++i) {
    const std::size_t row = i * (groups + 1);
    for (std::size_t g = 0; g < groups; ++g) {
      const std::uint8_t* s = src + i * p.k + g * half * 4;
      std::uint32_t src_tx = static_cast<std::uint32_t>(
          simgpu::span_transactions(reinterpret_cast<std::uintptr_t>(s),
                                    half * 4, spec.coalesce_segment_bytes));
      std::uint32_t events = 0;
      std::uint32_t accesses = 0;
      std::uint32_t cycles[4] = {0, 0, 0, 0};
      std::uint32_t log_cycles = 0;
      for (int b = 0; b < 4; ++b) {
        if (tb0) {
          for (std::size_t l = 0; l < half; ++l) {
            words[l] = (kLogBytesOffset + s[l * 4 + b]) / 4;
          }
          log_cycles += static_cast<std::uint32_t>(
              simgpu::shared_group_degree(words.data(), half, banks));
        }
        std::size_t cnt = 0;
        for (std::size_t l = 0; l < half; ++l) {
          std::uint8_t v = s[l * 4 + b];
          if (tb0) v = log_table[v];
          if (v == sentinel) continue;
          log_s[cnt] = v;
          lane_of[cnt] = l;
          ++cnt;
        }
        if (cnt == 0) continue;
        events += 1;
        accesses += static_cast<std::uint32_t>(cnt);
        if (tb4) continue;  // fetch counts only; no shared lookup
        for (std::uint32_t cc = 0; cc < 4; ++cc) {
          for (std::size_t t = 0; t < cnt; ++t) {
            const std::size_t idx = cc + log_s[t];
            words[t] = tb5 ? tb5_word_index(idx, lane_of[t])
                           : (kExpBytesOffset + idx) / 4;
          }
          cycles[cc] += static_cast<std::uint32_t>(
              simgpu::shared_group_degree(words.data(), cnt, banks));
        }
      }
      prof.src_tx[row + g + 1] = prof.src_tx[row + g] + src_tx;
      prof.exp_events[row + g + 1] = prof.exp_events[row + g] + events;
      prof.exp_accesses[row + g + 1] = prof.exp_accesses[row + g] + accesses;
      for (std::uint32_t cc = 0; cc < 4; ++cc) {
        prof.exp_cycles[cc][row + g + 1] =
            prof.exp_cycles[cc][row + g] + cycles[cc];
      }
      if (tb0) {
        prof.log_cycles[row + g + 1] = prof.log_cycles[row + g] + log_cycles;
      }
      if (tb4) prof.active[row + g + 1] = prof.active[row + g] + accesses;
    }
  }
  prof.built = true;
}

// Fast-path body for one aligned table-based block. Outputs come from SIMD
// region multiplies over the natural-domain segment/coefficients (the
// log-domain round trip is exact GF(2^8) arithmetic, so the bytes are
// identical); accounting charges whole same-coded-block runs from the
// cached profile — a handful of prefix-sum subtractions per (run, i) —
// instead of re-walking every payload byte.
void GpuEncoder::run_table_based_fast(BlockCtx& block,
                                      coding::CodedBatch& batch,
                                      const EncodeCost& cost,
                                      std::size_t total_words,
                                      std::size_t threads, std::size_t blocks,
                                      const std::uint8_t* src,
                                      const std::uint8_t* coeffs,
                                      std::uint8_t* out,
                                      std::uint8_t sentinel) {
  const coding::Params p = params();
  const std::size_t words_per_block = p.k / 4;
  const std::size_t half = block.spec().half_warp;
  const std::size_t stride = blocks * threads;
  const gf256::Ops& gops = gf256::ops();
  const std::uint8_t* raw_src = segment_->data();
  const std::uint8_t* raw_coeffs = batch.coefficients_data();
  const bool tb0 = scheme_ == EncodeScheme::kTable0;
  const bool tb4 = scheme_ == EncodeScheme::kTable4;
  const std::uint8_t* log_table = tb0 ? log_table_bytes_.data() : nullptr;

  fast_load_tables(block, threads);
  if (!table_profile_.built) build_table_fast_profile(src);
  const TableFastProfile& prof = table_profile_;
  const std::size_t g1 = prof.groups + 1;

  const std::uint64_t word_deci =
      simgpu::KernelMetrics::deciops(cost.per_word);
  const std::uint64_t byte_deci =
      simgpu::KernelMetrics::deciops(cost.per_byte);
  const std::uint64_t seg_bytes = block.spec().coalesce_segment_bytes;
  std::uint64_t tx = 0, instrs = 0, load = 0, store = 0;
  std::uint64_t sacc = 0, sev = 0, scyc = 0, alu = 0, fetches = 0;

  for (std::size_t bb = block.block_index() * threads; bb < total_words;
       bb += stride) {
    // total_words and threads are half-warp multiples here, so every group
    // is full and runs split only at coded-block boundaries.
    const std::size_t wend = bb + std::min(threads, total_words - bb);
    std::size_t w = bb;
    while (w < wend) {
      const std::size_t j = w / words_per_block;
      const std::size_t word0 = w % words_per_block;
      const std::size_t run = std::min(words_per_block - word0, wend - w);
      const std::size_t g0 = word0 / half;
      const std::uint64_t gc = run / half;
      const std::uint8_t* coeff_row = coeffs + j * p.n;
      const std::uint8_t* raw_row = raw_coeffs + j * p.n;
      std::uint8_t* dst = out + j * p.k + word0 * 4;
      std::memset(dst, 0, run * 4);
      // Every store group in the run shares one 64-byte phase (groups step
      // by half * 4 = a whole number of segments when half >= 16).
      tx += gc * simgpu::span_transactions(
                     reinterpret_cast<std::uintptr_t>(dst), half * 4,
                     seg_bytes);
      instrs += gc * half;
      store += run * 4;
      for (std::size_t i = 0; i < p.n; ++i) {
        std::uint8_t log_c = coeff_row[i];
        tx += gc;  // coefficient broadcast: 1-byte span, one segment
        instrs += 2 * gc * half;  // coeff + src loads
        load += gc * half * 5;    // 1 coeff byte + 4 src bytes per lane
        const std::size_t row = i * g1;
        tx += prof.src_tx[row + g0 + gc] - prof.src_tx[row + g0];
        alu += gc * half * word_deci;
        if (tb0) {
          // Broadcast log lookup: all lanes hit one word, degree 1.
          sacc += gc * half;
          sev += gc;
          scyc += gc;
          log_c = log_table[log_c];
        }
        gops.mul_add_region(dst, raw_src + i * p.k + word0 * 4, raw_row[i],
                            run * 4);
        if (log_c == sentinel) continue;
        alu += gc * half * 4 * byte_deci;
        if (tb0) {
          scyc += prof.log_cycles[row + g0 + gc] - prof.log_cycles[row + g0];
          sev += gc * 4;
          sacc += gc * half * 4;
        }
        if (tb4) {
          fetches += prof.active[row + g0 + gc] - prof.active[row + g0];
        } else {
          const auto& cyc = prof.exp_cycles[log_c % 4];
          scyc += cyc[row + g0 + gc] - cyc[row + g0];
          sev += prof.exp_events[row + g0 + gc] - prof.exp_events[row + g0];
          sacc +=
              prof.exp_accesses[row + g0 + gc] - prof.exp_accesses[row + g0];
        }
      }
      w += run;
    }
  }
  block.fast_global_bulk(tx, instrs, load, store);
  block.fast_shared_bulk(sacc, sev, scyc);
  block.fast_alu_deciops(alu);
  block.fast_barriers(1);

  // --- kTable4: the table is cache-resident (16 lines, distinct sets), so
  // once every table line is tagged no later fetch can miss. Replay the
  // interpreted lane-major order only through that residency window, then
  // charge the remaining fetches in closed form.
  if (tb4) {
    simgpu::TextureCache& cache = block.texture_cache();
    const auto base =
        reinterpret_cast<std::uintptr_t>(exp_table_bytes_.data());
    const std::size_t line_bytes = cache.line_bytes();
    const std::uintptr_t first_line = base / line_bytes;
    const std::uintptr_t last_line =
        (base + kExpTableEntries - 1) / line_bytes;
    std::size_t missing = 0;
    for (std::uintptr_t line = first_line; line <= last_line; ++line) {
      if (!cache.resident(line * line_bytes)) ++missing;
    }
    std::uint64_t replayed = 0;
    for (std::size_t lane = 0; lane < threads && missing > 0; ++lane) {
      for (std::size_t w = block.block_index() * threads + lane;
           w < total_words && missing > 0; w += stride) {
        const std::size_t j = w / words_per_block;
        const std::size_t word = w % words_per_block;
        const std::uint8_t* coeff_row = coeffs + j * p.n;
        for (std::size_t i = 0; i < p.n && missing > 0; ++i) {
          const std::uint8_t log_c = coeff_row[i];
          if (log_c == sentinel) continue;
          const std::uint8_t* s = src + i * p.k + word * 4;
          for (int b = 0; b < 4 && missing > 0; ++b) {
            const std::uint8_t log_s = s[b];
            if (log_s == sentinel) continue;
            const std::uintptr_t addr = base + log_c + log_s;
            if (!cache.resident(addr)) --missing;
            block.fast_texture_fetch(addr);
            ++replayed;
          }
        }
      }
    }
    block.fast_texture_bulk(fetches - replayed, 0);
  }
}

// Generic fast-path body: half-warps may straddle coded blocks (the
// recoder's aggregate geometry, partial tails), so addresses, sentinel
// tests and region runs are evaluated per lane. Accounting still goes
// through the bulk group calls — no interpreted lane stepping.
void GpuEncoder::run_table_based_fast_straddle(
    BlockCtx& block, coding::CodedBatch& batch, const EncodeCost& cost,
    std::size_t total_words, std::size_t threads, std::size_t blocks,
    const std::uint8_t* src, const std::uint8_t* coeffs, std::uint8_t* out,
    std::uint8_t sentinel) {
  const coding::Params p = params();
  const std::size_t words_per_block = p.k / 4;
  const std::size_t half = block.spec().half_warp;
  const std::size_t stride = blocks * threads;
  const gf256::Ops& gops = gf256::ops();
  const std::uint8_t* raw_src = segment_->data();
  const std::uint8_t* raw_coeffs = batch.coefficients_data();
  const bool tb0 = scheme_ == EncodeScheme::kTable0;
  const bool tb4 = scheme_ == EncodeScheme::kTable4;
  const bool tb5 = scheme_ == EncodeScheme::kTable5;
  const std::uint8_t* log_table = tb0 ? log_table_bytes_.data() : nullptr;

  fast_load_tables(block, threads);

  const std::uint64_t word_deci =
      simgpu::KernelMetrics::deciops(cost.per_word);
  const std::uint64_t byte_deci =
      simgpu::KernelMetrics::deciops(cost.per_byte);
  std::array<std::uintptr_t, 16> addrs;
  std::array<std::uintptr_t, 16> words;
  std::array<std::uint8_t, 16> log_c;
  std::array<std::size_t, 16> jv;
  std::array<std::size_t, 16> wv;
  std::uint64_t alu = 0;
  std::uint64_t fetches = 0;

  for (std::size_t bb = block.block_index() * threads; bb < total_words;
       bb += stride) {
    const std::size_t lanes_end = std::min(threads, total_words - bb);
    for (std::size_t l0 = 0; l0 < lanes_end; l0 += half) {
      const std::size_t cnt = std::min(half, lanes_end - l0);
      for (std::size_t l = 0; l < cnt; ++l) {
        const std::size_t w = bb + l0 + l;
        jv[l] = w / words_per_block;
        wv[l] = w % words_per_block;
      }
      // Zero the output words, one run per coded block touched.
      for (std::size_t r0 = 0; r0 < cnt;) {
        std::size_t r1 = r0 + 1;
        while (r1 < cnt && jv[r1] == jv[r0]) ++r1;
        std::memset(out + jv[r0] * p.k + wv[r0] * 4, 0, (r1 - r0) * 4);
        r0 = r1;
      }
      for (std::size_t i = 0; i < p.n; ++i) {
        for (std::size_t l = 0; l < cnt; ++l) {
          addrs[l] =
              reinterpret_cast<std::uintptr_t>(coeffs + jv[l] * p.n + i);
          log_c[l] = coeffs[jv[l] * p.n + i];
        }
        block.fast_global_group(addrs.data(), cnt, 1, cnt, 0);
        if (tb0) {
          // Per-lane log lookup of the (possibly different) raw bytes.
          for (std::size_t l = 0; l < cnt; ++l) {
            words[l] = (kLogBytesOffset + log_c[l]) / 4;
          }
          block.fast_shared_group(words.data(), cnt);
          for (std::size_t l = 0; l < cnt; ++l) log_c[l] = log_table[log_c[l]];
        }
        for (std::size_t l = 0; l < cnt; ++l) {
          addrs[l] =
              reinterpret_cast<std::uintptr_t>(src + i * p.k + wv[l] * 4);
        }
        block.fast_global_group(addrs.data(), cnt, 4, cnt * 4, 0);
        alu += cnt * word_deci;
        for (std::size_t r0 = 0; r0 < cnt;) {
          std::size_t r1 = r0 + 1;
          while (r1 < cnt && jv[r1] == jv[r0]) ++r1;
          gops.mul_add_region(out + jv[r0] * p.k + wv[r0] * 4,
                              raw_src + i * p.k + wv[r0] * 4,
                              raw_coeffs[jv[r0] * p.n + i], (r1 - r0) * 4);
          r0 = r1;
        }
        std::size_t c_active = 0;
        for (std::size_t l = 0; l < cnt; ++l) {
          if (log_c[l] != sentinel) ++c_active;
        }
        if (c_active == 0) continue;
        for (int b = 0; b < 4; ++b) {
          if (tb0) {
            std::size_t k2 = 0;
            for (std::size_t l = 0; l < cnt; ++l) {
              if (log_c[l] == sentinel) continue;  // skip_access
              words[k2++] =
                  (kLogBytesOffset + src[i * p.k + wv[l] * 4 + b]) / 4;
            }
            block.fast_shared_group(words.data(), k2);
          }
          alu += c_active * byte_deci;
          std::size_t k2 = 0;
          for (std::size_t l = 0; l < cnt; ++l) {
            if (log_c[l] == sentinel) continue;
            std::uint8_t log_s = src[i * p.k + wv[l] * 4 + b];
            if (tb0) log_s = log_table[log_s];
            if (log_s == sentinel) continue;  // skip_access
            if (tb4) {
              ++fetches;
              continue;  // replayed below
            }
            const std::size_t idx =
                static_cast<std::size_t>(log_c[l]) + log_s;
            words[k2++] = tb5 ? tb5_word_index(idx, l0 + l)
                              : (kExpBytesOffset + idx) / 4;
          }
          if (k2 > 0) block.fast_shared_group(words.data(), k2);
        }
      }
      for (std::size_t l = 0; l < cnt; ++l) {
        addrs[l] =
            reinterpret_cast<std::uintptr_t>(out + jv[l] * p.k + wv[l] * 4);
      }
      block.fast_global_group(addrs.data(), cnt, 4, 0, cnt * 4);
    }
  }
  block.fast_barriers(1);
  block.fast_alu_deciops(alu);

  // kTable4: residency-window replay, as in the aligned lowering.
  if (tb4) {
    simgpu::TextureCache& cache = block.texture_cache();
    const auto base =
        reinterpret_cast<std::uintptr_t>(exp_table_bytes_.data());
    const std::size_t line_bytes = cache.line_bytes();
    const std::uintptr_t first_line = base / line_bytes;
    const std::uintptr_t last_line =
        (base + kExpTableEntries - 1) / line_bytes;
    std::size_t missing = 0;
    for (std::uintptr_t line = first_line; line <= last_line; ++line) {
      if (!cache.resident(line * line_bytes)) ++missing;
    }
    std::uint64_t replayed = 0;
    for (std::size_t lane = 0; lane < threads && missing > 0; ++lane) {
      for (std::size_t w = block.block_index() * threads + lane;
           w < total_words && missing > 0; w += stride) {
        const std::size_t j = w / words_per_block;
        const std::size_t word = w % words_per_block;
        const std::uint8_t* coeff_row = coeffs + j * p.n;
        for (std::size_t i = 0; i < p.n && missing > 0; ++i) {
          const std::uint8_t c = coeff_row[i];
          if (c == sentinel) continue;
          const std::uint8_t* s = src + i * p.k + word * 4;
          for (int b = 0; b < 4 && missing > 0; ++b) {
            const std::uint8_t log_s = s[b];
            if (log_s == sentinel) continue;
            const std::uintptr_t addr = base + c + log_s;
            if (!cache.resident(addr)) --missing;
            block.fast_texture_fetch(addr);
            ++replayed;
          }
        }
      }
    }
    block.fast_texture_bulk(fetches - replayed, 0);
  }
}

// Generic loop-based lowering for geometries the aligned branch cannot
// take: per-lane groups, per-lane loop-iteration costs, region runs split
// at coded-block boundaries.
void GpuEncoder::run_loop_based_fast_straddle(
    BlockCtx& block, const EncodeCost& cost, std::size_t total_words,
    std::size_t threads, const std::uint8_t* coeffs, std::uint8_t* out) {
  const coding::Params p = params();
  const std::size_t words_per_block = p.k / 4;
  const std::size_t half = block.spec().half_warp;
  const gf256::Ops& gops = gf256::ops();
  const std::uint8_t* src = segment_->data();
  const std::uint64_t word_deci =
      simgpu::KernelMetrics::deciops(cost.per_word);
  std::array<std::uintptr_t, 16> addrs;
  std::array<std::size_t, 16> jv;
  std::array<std::size_t, 16> wv;
  std::uint64_t alu = 0;

  const std::size_t begin = block.block_index() * threads;
  const std::size_t end = std::min(begin + threads, total_words);
  for (std::size_t l0 = begin; l0 < end; l0 += half) {
    const std::size_t cnt = std::min(half, end - l0);
    for (std::size_t l = 0; l < cnt; ++l) {
      jv[l] = (l0 + l) / words_per_block;
      wv[l] = (l0 + l) % words_per_block;
    }
    for (std::size_t r0 = 0; r0 < cnt;) {
      std::size_t r1 = r0 + 1;
      while (r1 < cnt && jv[r1] == jv[r0]) ++r1;
      std::memset(out + jv[r0] * p.k + wv[r0] * 4, 0, (r1 - r0) * 4);
      r0 = r1;
    }
    for (std::size_t i = 0; i < p.n; ++i) {
      for (std::size_t l = 0; l < cnt; ++l) {
        addrs[l] =
            reinterpret_cast<std::uintptr_t>(coeffs + jv[l] * p.n + i);
        alu += simgpu::KernelMetrics::deciops(
            cost.per_iteration *
            gf256::loop_iterations(coeffs[jv[l] * p.n + i]));
      }
      block.fast_global_group(addrs.data(), cnt, 1, cnt, 0);
      for (std::size_t l = 0; l < cnt; ++l) {
        addrs[l] =
            reinterpret_cast<std::uintptr_t>(src + i * p.k + wv[l] * 4);
      }
      block.fast_global_group(addrs.data(), cnt, 4, cnt * 4, 0);
      for (std::size_t r0 = 0; r0 < cnt;) {
        std::size_t r1 = r0 + 1;
        while (r1 < cnt && jv[r1] == jv[r0]) ++r1;
        gops.mul_add_region(out + jv[r0] * p.k + wv[r0] * 4,
                            src + i * p.k + wv[r0] * 4,
                            coeffs[jv[r0] * p.n + i], (r1 - r0) * 4);
        r0 = r1;
      }
    }
    alu += cnt * word_deci;
    for (std::size_t l = 0; l < cnt; ++l) {
      addrs[l] =
          reinterpret_cast<std::uintptr_t>(out + jv[l] * p.k + wv[l] * 4);
    }
    block.fast_global_group(addrs.data(), cnt, 4, 0, cnt * 4);
  }
  block.fast_barriers(1);
  block.fast_alu_deciops(alu);
}

}  // namespace extnc::gpu
