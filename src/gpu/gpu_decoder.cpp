#include "gpu/gpu_decoder.h"

#include <algorithm>
#include <cstring>

#include "gf256/gf.h"
#include "gf256/swar.h"
#include "gpu/kernel_cost.h"
#include "util/assert.h"

namespace extnc::gpu {

using simgpu::BlockCtx;
using simgpu::ThreadCtx;

namespace {

// Loop-based multiply of a 4-byte word, charging the same instruction cost
// the encode kernel charges.
std::uint32_t mul_word_charged(ThreadCtx& thread, std::uint8_t c,
                               std::uint32_t w) {
  thread.count_alu(kDecodeCost.per_iteration * gf256::loop_iterations(c) +
                   kDecodeCost.per_word);
  return gf256::mul_byte_word(c, w);
}

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}


}  // namespace

GpuSingleSegmentDecoder::GpuSingleSegmentDecoder(
    const simgpu::DeviceSpec& spec, coding::Params params,
    DecodeOptions options)
    : params_(params),
      options_(options),
      launcher_(spec),
      payloads_(params.n * params.k),
      present_(params.n, false) {
  params_.validate();
  // Kernels operate on 32-bit words across both the coefficient and the
  // payload sides of the aggregate row.
  EXTNC_CHECK(params_.k % 4 == 0);
  EXTNC_CHECK(params_.n % 4 == 0);
  if (options_.use_atomic_min) EXTNC_CHECK(spec.has_shared_atomics);
  if (options_.cache_coefficients) {
    // The atomic pivot word lives just past the cached matrix (see add()).
    const std::size_t scratch = options_.use_atomic_min ? 4 : 0;
    EXTNC_CHECK(params_.n * params_.n + scratch <= spec.shared_mem_per_sm);
  }
  // One thread block per SM; the payload is divided evenly among them
  // (Fig. 3), in whole words.
  data_blocks_ = std::min<std::size_t>(spec.num_sms, params_.k / 4);
  data_blocks_ = std::max<std::size_t>(data_blocks_, 1);
  slice_bytes_ = (params_.k / 4 + data_blocks_ - 1) / data_blocks_ * 4;
  coeff_copies_.reserve(data_blocks_);
  for (std::size_t b = 0; b < data_blocks_; ++b) {
    coeff_copies_.emplace_back(params_.n * params_.n);
  }
}

GpuSingleSegmentDecoder::Result GpuSingleSegmentDecoder::add(
    const coding::CodedBlock& block) {
  EXTNC_CHECK(block.params() == params_);
  return add(block.coefficients(), block.payload());
}

GpuSingleSegmentDecoder::Result GpuSingleSegmentDecoder::add(
    std::span<const std::uint8_t> coefficients,
    std::span<const std::uint8_t> payload) {
  EXTNC_CHECK(coefficients.size() == params_.n);
  EXTNC_CHECK(payload.size() == params_.k);
  if (is_complete()) return Result::kAlreadyComplete;

  const std::size_t n = params_.n;
  const std::size_t k = params_.k;

  // Per-block private scratch coefficient rows (the arrival is DMA'd into
  // device memory; the copy itself is not kernel work).
  std::vector<AlignedBuffer> scratch_c(data_blocks_, AlignedBuffer(n));
  for (auto& copy : scratch_c) {
    std::memcpy(copy.data(), coefficients.data(), n);
  }
  AlignedBuffer scratch_p(k);
  std::memcpy(scratch_p.data(), payload.data(), k);

  // Under the sanitizer, the per-call scratch buffers are valid regions
  // only for the duration of this add().
  simgpu::Checker* checker = launcher_.checker();
  std::vector<simgpu::Checker::ScopedWatch> scratch_watches;
  if (checker != nullptr) {
    scratch_watches.reserve(data_blocks_ + 1);
    for (AlignedBuffer& copy : scratch_c) {
      scratch_watches.emplace_back(checker, copy.data(), copy.size(),
                                   "scratch_coeffs");
    }
    scratch_watches.emplace_back(checker, scratch_p.data(), scratch_p.size(),
                                 "scratch_payload");
  }

  // Thread geometry: threads cover the widest aggregate row [C_row | x_b].
  const std::size_t aggregate_words = (n + slice_bytes_) / 4 + 1;
  const std::size_t threads = std::min<std::size_t>(
      aggregate_words,
      static_cast<std::size_t>(launcher_.spec().max_threads_per_block));
  const std::size_t coeff_words = (n + 3) / 4;

  // Every block replicates the coefficient-side decisions, so each lands
  // on the same pivot; blocks report theirs into a disjoint slot and the
  // host applies the bookkeeping (present_/rank_) after the launch. The
  // kernel itself must not mutate present_ — blocks still reading it may
  // run on other worker threads under the parallel engine.
  std::vector<std::size_t> pivots(data_blocks_, n);

  // Shared word receiving the atomicMin pivot reports; placed after the
  // cached coefficient matrix when both Sec. 5.4 options are on. It must
  // be seeded before the search (a lane whose words are all zero
  // contributes n, and the minimum over lanes must start from n, not from
  // whatever the scratchpad held) — a single-lane partial step, declared
  // in the launch shape so the sanitizer knows it is intentional.
  const std::size_t pivot_scratch =
      options_.cache_coefficients ? n * n : 0;
  simgpu::LaunchConfig config{.blocks = data_blocks_,
                              .threads_per_block = threads};
  if (options_.use_atomic_min) config.shape.partial_counts = {1};

  launcher_.launch(
      config,
      [&](BlockCtx& block) {
        const std::size_t b = block.block_index();
        std::uint8_t* my_coeffs = coeff_copies_[b].data();
        std::uint8_t* my_scratch_c = scratch_c[b].data();
        const std::size_t slice_begin = std::min(k, b * slice_bytes_);
        const std::size_t slice_end = std::min(k, slice_begin + slice_bytes_);
        const std::size_t slice_words = (slice_end - slice_begin) / 4;
        const std::size_t row_words = coeff_words + slice_words;

        // Optional Sec. 5.4.3: stage the private coefficient matrix in
        // shared memory for the duration of this launch.
        if (options_.cache_coefficients) {
          block.step([&](ThreadCtx& thread) {
            for (std::size_t w = thread.lane(); w < n * n / 4 + 1;
                 w += threads) {
              if (w * 4 + 4 <= n * n) {
                thread.sstore_u32(w * 4,
                                  thread.gload_u32(my_coeffs + w * 4));
              }
            }
          });
        }

        // One aggregate row operation: dst ^= factor * stored_row, where
        // word index < coeff_words addresses the coefficient side and the
        // rest addresses this block's payload slice.
        auto row_op = [&](std::uint8_t factor, std::size_t stored_row,
                          bool scale_only, std::uint8_t scale) {
          block.step([&](ThreadCtx& thread) {
            for (std::size_t w = thread.lane(); w < row_words; w += threads) {
              std::uint8_t* dst;
              const std::uint8_t* stored;
              bool coeff_side = w < coeff_words;
              if (coeff_side) {
                dst = my_scratch_c + w * 4;
                stored = my_coeffs + stored_row * n + w * 4;
              } else {
                const std::size_t off =
                    slice_begin + (w - coeff_words) * 4;
                dst = scratch_p.data() + off;
                stored = payloads_.data() + stored_row * k + off;
              }
              if (scale_only) {
                const std::uint32_t v = thread.gload_u32(dst);
                thread.gstore_u32(dst,
                                  mul_word_charged(thread, scale, v));
              } else {
                std::uint32_t s;
                if (coeff_side && options_.cache_coefficients) {
                  s = thread.sload_u32(stored_row * n + w * 4);
                } else {
                  s = thread.gload_u32(stored);
                }
                const std::uint32_t d = thread.gload_u32(dst);
                thread.gstore_u32(dst,
                                  d ^ mul_word_charged(thread, factor, s));
              }
            }
          });
        };

        // Forward elimination. All blocks replicate the coefficient-side
        // decisions; the factor is read from this block's own scratch.
        for (std::size_t col = 0; col < n; ++col) {
          if (!present_[col]) continue;
          const std::uint8_t factor = my_scratch_c[col];
          if (factor == 0) continue;
          row_op(factor, col, /*scale_only=*/false, 0);
        }

        // Pivot search (the per-block synchronization point the paper
        // calls the obstacle to deep parallelization).
        std::size_t pivot = n;
        if (options_.use_atomic_min) {
          block.step_partial(1, [&](ThreadCtx& thread) {
            thread.sstore_u32(pivot_scratch, static_cast<std::uint32_t>(n));
          });
        }
        block.step([&](ThreadCtx& thread) {
          // Threads covering the coefficient side scan their words.
          if (thread.lane() >= coeff_words) return;
          const std::size_t begin = thread.lane() * 4;
          const std::size_t end = std::min(n, begin + 4);
          std::size_t local = n;
          for (std::size_t c = begin; c < end; ++c) {
            thread.count_alu(kDecodeCost.pivot_search_per_byte);
            if (my_scratch_c[c] != 0 && c < local) local = c;
          }
          if (options_.use_atomic_min) {
            thread.count_alu(kDecodeCost.pivot_reduce_atomic);
            thread.atomic_min_shared(pivot_scratch,
                                     static_cast<std::uint32_t>(local));
          } else {
            thread.count_alu(kDecodeCost.pivot_reduce_per_thread);
          }
          if (local < pivot) pivot = local;
        });
        if (pivot == n) return;  // dependent; all blocks agree

        // Normalize the pivot to 1.
        const std::uint8_t scale = gf256::inv(my_scratch_c[pivot]);
        row_op(0, 0, /*scale_only=*/true, scale);

        // Back-eliminate the new pivot column from stored rows.
        for (std::size_t p = 0; p < n; ++p) {
          if (!present_[p]) continue;
          const std::uint8_t factor = my_coeffs[p * n + pivot];
          if (factor == 0) continue;
          block.step([&](ThreadCtx& thread) {
            for (std::size_t w = thread.lane(); w < row_words; w += threads) {
              std::uint8_t* dst;
              const std::uint8_t* src;
              if (w < coeff_words) {
                dst = my_coeffs + p * n + w * 4;
                src = my_scratch_c + w * 4;
              } else {
                const std::size_t off = slice_begin + (w - coeff_words) * 4;
                dst = payloads_.data() + p * k + off;
                src = scratch_p.data() + off;
              }
              const std::uint32_t d = thread.gload_u32(dst);
              const std::uint32_t s = thread.gload_u32(src);
              thread.gstore_u32(dst, d ^ mul_word_charged(thread, factor, s));
            }
          });
        }

        // Store the new row (coefficients into this block's copy, payload
        // slice into the canonical matrix).
        block.step([&](ThreadCtx& thread) {
          for (std::size_t w = thread.lane(); w < row_words; w += threads) {
            if (w < coeff_words) {
              thread.gstore_u32(my_coeffs + pivot * n + w * 4,
                                load_u32(my_scratch_c + w * 4));
            } else {
              const std::size_t off = slice_begin + (w - coeff_words) * 4;
              thread.gstore_u32(payloads_.data() + pivot * k + off,
                                load_u32(scratch_p.data() + off));
            }
          }
        });

        pivots[b] = pivot;
      });

  const std::size_t pivot = pivots.front();
  for (std::size_t b = 1; b < data_blocks_; ++b) {
    EXTNC_CHECK(pivots[b] == pivot);  // replicated decisions must agree
  }
  if (pivot == n) return Result::kLinearlyDependent;
  present_[pivot] = true;
  ++rank_;
  return Result::kAccepted;
}

void GpuSingleSegmentDecoder::attach_checker(simgpu::Checker* checker) {
  launcher_.set_checker(checker);
  if (checker == nullptr) return;
  for (AlignedBuffer& copy : coeff_copies_) {
    checker->watch_global(copy.data(), copy.size(), "coeff_copy");
  }
  checker->watch_global(payloads_.data(), payloads_.size(), "payloads");
}

coding::Segment GpuSingleSegmentDecoder::decoded_segment() const {
  EXTNC_CHECK(is_complete());
  coding::Segment segment(params_);
  std::memcpy(segment.data(), payloads_.data(), params_.segment_bytes());
  return segment;
}

}  // namespace extnc::gpu
