// GPU network encoder: the paper's encode kernels on the simulated device.
//
// Task partitioning follows the paper:
//  * loop-based (Fig. 2): one thread per 4-byte output word, 256-thread
//    blocks, each block producing 1 KB of coded data;
//  * table-based (Sec. 5.1.2): one resident block per SM, threads striding
//    over output words, so the log/exp tables are loaded into shared
//    memory (or bound as a texture) once per SM instead of once per block.
//
// Preprocessing (Sec. 5.1.1): for the preprocessed schemes the segment is
// transformed to the log domain once at construction, and each batch's
// coefficient matrix is transformed before the encode kernel runs; both
// transforms are themselves simulated kernels whose costs are kept in a
// separate metrics bucket so benches can amortize them the way the
// streaming-server scenario does.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "coding/batch.h"
#include "coding/segment.h"
#include "gpu/encode_scheme.h"
#include "gpu/kernel_cost.h"
#include "simgpu/executor.h"
#include "util/aligned_buffer.h"
#include "util/rng.h"

namespace extnc::gpu {

class GpuEncoder {
 public:
  // With a profiler attached every kernel launch (including the
  // construction-time segment preprocessing) is recorded under stable
  // "<prefix>/<scheme>/<kernel>" labels, e.g. "encode/tb5/exp_smem".
  // With a fault injector attached (simgpu/fault_injector.h) every launch
  // — including the construction-time preprocessing — is subject to the
  // injector's fault plan, so construction can throw simgpu::DeviceError.
  // With a checker attached (simgpu/checker.h) every launch runs under the
  // kernel sanitizer with the encoder's device buffers registered as
  // watched global regions, so OOB accesses become findings instead of
  // silent reads; in throw mode launches can throw simgpu::CheckError.
  GpuEncoder(const simgpu::DeviceSpec& spec, const coding::Segment& segment,
             EncodeScheme scheme, simgpu::Profiler* profiler = nullptr,
             std::string label_prefix = "encode",
             simgpu::FaultInjector* injector = nullptr,
             simgpu::Checker* checker = nullptr);

  // Unregisters this encoder's watched regions from an attached checker,
  // so short-lived encoders (the multi-segment decoder's stage-2
  // multipliers) leave a shared checker's region table clean.
  ~GpuEncoder();

  // Attach after construction (misses the segment-preprocess launches that
  // already ran; prefer the constructor argument when those matter).
  void attach_profiler(simgpu::Profiler* profiler,
                       std::string label_prefix = "encode");
  void attach_checker(simgpu::Checker* checker);

  const coding::Params& params() const { return segment_->params(); }
  EncodeScheme scheme() const { return scheme_; }
  const simgpu::DeviceSpec& spec() const { return launcher_.spec(); }

  // The simulated-device context this encoder launches on. Exposed so a
  // supervisor (gpu/resilient_launcher.h) can attach a fault injector and
  // read the modeled elapsed-time clock; the encoder remains the owner.
  simgpu::Launcher& launcher() { return launcher_; }

  // Fill the payloads of `batch` from its (natural-domain) coefficient
  // rows by running the scheme's kernels functionally.
  void encode_into(coding::CodedBatch& batch);

  coding::CodedBatch encode_batch(std::size_t count, Rng& rng);

  // Kernel-work metrics for the encode kernels proper.
  const simgpu::KernelMetrics& encode_metrics() const {
    return encode_metrics_;
  }
  // One-time (per segment / per batch) preprocessing kernel work.
  const simgpu::KernelMetrics& preprocess_metrics() const {
    return preprocess_metrics_;
  }
  void reset_metrics();

 private:
  // Cached access-pattern profile for the aligned table-scheme fast path.
  // The per-byte costs of a table block — shared-bank serialization degrees
  // of the exp/log lookups, source-span coalescing — are functions of
  // (word-group g within a coded block, coefficient row i) and, for the
  // lookup degrees, of log_c mod 4 only (shifting log_c by a word multiple
  // shifts every lookup word uniformly, preserving distinctness and bank
  // spread; see static_model.h). The segment is immutable for the encoder's
  // lifetime, so these are evaluated once and stored as prefix sums over g
  // (index [i * (groups + 1) + g]), letting the steady-state encode loop
  // charge a whole j-run with a handful of subtractions instead of
  // re-deduplicating every byte.
  struct TableFastProfile {
    std::size_t groups = 0;  // words_per_block / half_warp
    bool built = false;
    std::vector<std::uint32_t> src_tx;        // source-load span transactions
    std::array<std::vector<std::uint32_t>, 4> exp_cycles;  // by log_c % 4
    std::vector<std::uint32_t> exp_events;    // byte positions with a lookup
    std::vector<std::uint32_t> exp_accesses;  // active lanes over 4 bytes
    std::vector<std::uint32_t> log_cycles;    // kTable0 log-group degrees
    std::vector<std::uint32_t> active;        // kTable4 texture fetches
  };

  // Bulk accounting for the cooperative shared-table load step, which is
  // identical for every block of every launch (table addresses and the
  // thread count never change): walked once, then charged with three bulk
  // calls per block. kTable5's 4096-word interleaved load is the reason —
  // re-walking it per block would dominate the fast-path encode.
  struct TableLoadProfile {
    bool built = false;
    std::size_t threads = 0;
    std::uint64_t transactions = 0;
    std::uint64_t instrs = 0;
    std::uint64_t load_bytes = 0;
    std::uint64_t shared_accesses = 0;
    std::uint64_t shared_events = 0;
    std::uint64_t shared_cycles = 0;
  };

  void preprocess_segment();
  void preprocess_coefficients(const coding::CodedBatch& batch);
  void run_loop_based(coding::CodedBatch& batch);
  void run_table_based(coding::CodedBatch& batch);
  // Bulk lowering of the table-based kernel body for one block (taken when
  // BlockCtx::fast_path() holds and the geometry preconditions are met):
  // SIMD region math over the natural-domain buffers plus group accounting
  // that is bit-identical to the interpreted lane stepping. `src`/`coeffs`
  // are the accounting-domain pointers (log domain for preprocessed
  // schemes); kTable4 replays its exp fetches lane-major through the
  // texture-cache model only until every table line is resident, then
  // charges the rest in closed form (fast_texture_bulk).
  void run_table_based_fast(simgpu::BlockCtx& block, coding::CodedBatch& batch,
                            const EncodeCost& cost, std::size_t total_words,
                            std::size_t threads, std::size_t blocks,
                            const std::uint8_t* src,
                            const std::uint8_t* coeffs, std::uint8_t* out,
                            std::uint8_t sentinel);
  // Generic lowering for geometries where half-warps straddle coded blocks
  // (words_per_block not a half-warp multiple — the recoder's aggregate
  // pseudo-segment, odd tails): per-lane group accounting, region math
  // split into same-j runs. No profile; still no interpreted lane stepping.
  void run_table_based_fast_straddle(
      simgpu::BlockCtx& block, coding::CodedBatch& batch,
      const EncodeCost& cost, std::size_t total_words, std::size_t threads,
      std::size_t blocks, const std::uint8_t* src, const std::uint8_t* coeffs,
      std::uint8_t* out, std::uint8_t sentinel);
  void run_loop_based_fast_straddle(simgpu::BlockCtx& block,
                                    const EncodeCost& cost,
                                    std::size_t total_words,
                                    std::size_t threads,
                                    const std::uint8_t* coeffs,
                                    std::uint8_t* out);
  // Cooperative shared-table load accounting shared by both table-based
  // lowerings (one barrier, like the interpreted load step).
  void fast_load_tables(simgpu::BlockCtx& block, std::size_t threads);
  void build_table_load_profile(std::size_t threads);
  void build_table_fast_profile(const std::uint8_t* src);
  void set_launch_label(const char* kernel);
  void unwatch_all();

  const coding::Segment* segment_;
  EncodeScheme scheme_;
  simgpu::Launcher launcher_;
  simgpu::Checker* checker_ = nullptr;
  std::string label_prefix_;
  simgpu::KernelMetrics encode_metrics_;
  simgpu::KernelMetrics preprocess_metrics_;

  // Device-resident data.
  AlignedBuffer log_segment_;      // segment in log domain (preprocessed)
  AlignedBuffer log_coefficients_; // batch coefficients in log domain
  AlignedBuffer exp_table_bytes_;  // 512-entry exp (plain or shifted)
  AlignedBuffer log_table_bytes_;  // 256-entry log (kTable0 only)
  AlignedBuffer exp_table_words_;  // 8 interleaved word tables (kTable5)

  // Lazily built at the first aligned fast-path encode; valid for the
  // encoder's lifetime (the accounting-domain segment never changes).
  TableFastProfile table_profile_;
  TableLoadProfile load_profile_;
};

}  // namespace extnc::gpu
