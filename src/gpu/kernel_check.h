// Sanitizer sweep over every shipped kernel.
//
// run_kernel_checks drives each GPU code path the library ships — all
// seven encode schemes, the single-segment decoder in each Sec. 5.4 option
// combination, the multi-segment decoder, the recoder, and the hybrid
// encoder's GPU half — under a collect-mode simgpu::Checker with every
// device buffer registered, on a caller-chosen exec engine. One fresh
// checker per case, so each report attributes to exactly one kernel
// family. The extnc_check CLI and the clean-suite tests are thin wrappers
// over this: "zero error findings on every case" is the CI gate, and
// "identical reports from the serial and parallel engines" is the engine-
// invariance check.
#pragma once

#include <string>
#include <vector>

#include "coding/params.h"
#include "simgpu/checker.h"
#include "simgpu/device_spec.h"
#include "simgpu/exec_engine.h"

namespace extnc::gpu {

struct KernelCheckCase {
  std::string name;  // e.g. "encode/tb5", "decode/single+atomic+cache"
  simgpu::CheckReport report;
};

struct KernelCheckOptions {
  // Small enough to sweep in well under a second, large enough that every
  // kernel takes its strided/multi-block paths; both dimensions must be
  // multiples of 4 (GPU kernels operate on words).
  coding::Params params{.n = 16, .k = 256};
  std::size_t batch_blocks = 16;  // coded blocks per encode batch
  std::uint64_t seed = 1;
  bool perf_lints = true;  // advisory lints on (they never dirty a report)
};

// Runs every case on `engine` (kSerial / kParallel / kAuto pinned for the
// sweep's duration) and returns the per-case reports, in a fixed order.
std::vector<KernelCheckCase> run_kernel_checks(
    const simgpu::DeviceSpec& spec, simgpu::ExecEngine engine,
    const KernelCheckOptions& options = {});

}  // namespace extnc::gpu
