#include "gpu/hybrid_encoder.h"

#include <algorithm>
#include <cstring>

#include "cpu/xeon_model.h"
#include "gpu/gpu_model.h"
#include "simgpu/fault_injector.h"
#include "util/assert.h"
#include "util/metrics_registry.h"

namespace extnc::gpu {

HybridEncoder::HybridEncoder(const simgpu::DeviceSpec& spec,
                             const coding::Segment& segment, ThreadPool& pool,
                             EncodeScheme gpu_scheme, double gpu_share)
    : segment_(&segment),
      gpu_encoder_(spec, segment, gpu_scheme),
      cpu_encoder_(segment, pool, cpu::EncodePartitioning::kFullBlock),
      gpu_share_(gpu_share) {
  if (gpu_share_ < 0) {
    const double gpu_rate =
        model_encode_bandwidth(spec, gpu_scheme, segment.params()).mb_per_s;
    const double cpu_rate = cpu::XeonModel{}.encode_mb_per_s(
        segment.params(), cpu::EncodePartitioning::kFullBlock);
    gpu_share_ = gpu_rate / (gpu_rate + cpu_rate);
  }
  EXTNC_CHECK(gpu_share_ > 0.0 && gpu_share_ <= 1.0);
}

std::size_t HybridEncoder::gpu_blocks(std::size_t batch_size) const {
  if (gpu_disabled_) return 0;
  return std::min(batch_size,
                  static_cast<std::size_t>(
                      static_cast<double>(batch_size) * gpu_share_ + 0.5));
}

void HybridEncoder::encode_into(coding::CodedBatch& batch) {
  EXTNC_CHECK(batch.params() == params());
  if (batch.count() == 0) return;
  const std::size_t gpu_count = gpu_blocks(batch.count());
  const std::size_t cpu_count = batch.count() - gpu_count;

  if (gpu_count > 0) {
    coding::CodedBatch gpu_part(params(), gpu_count);
    for (std::size_t j = 0; j < gpu_count; ++j) {
      std::copy(batch.coefficients(j).begin(), batch.coefficients(j).end(),
                gpu_part.coefficients(j).begin());
    }
    try {
      gpu_encoder_.encode_into(gpu_part);
    } catch (const simgpu::DeviceError& error) {
      // The GPU half failed mid-batch. Re-encode the *whole* batch on the
      // CPU — same coefficients, bit-exact output — and on a sticky device
      // loss rebalance the split to CPU-only so later batches don't keep
      // hitting the dead device.
      if (error.fault() == simgpu::FaultClass::kDeviceLost) {
        gpu_disabled_ = true;
        metrics::count("gpu.hybrid.rebalances");
      }
      metrics::count("gpu.hybrid.device_faults");
      cpu_encoder_.encode_into(batch);
      return;
    }
    for (std::size_t j = 0; j < gpu_count; ++j) {
      std::copy(gpu_part.payload(j).begin(), gpu_part.payload(j).end(),
                batch.payload(j).begin());
    }
  }
  if (cpu_count > 0) {
    coding::CodedBatch cpu_part(params(), cpu_count);
    for (std::size_t j = 0; j < cpu_count; ++j) {
      std::copy(batch.coefficients(gpu_count + j).begin(),
                batch.coefficients(gpu_count + j).end(),
                cpu_part.coefficients(j).begin());
    }
    cpu_encoder_.encode_into(cpu_part);
    for (std::size_t j = 0; j < cpu_count; ++j) {
      std::copy(cpu_part.payload(j).begin(), cpu_part.payload(j).end(),
                batch.payload(gpu_count + j).begin());
    }
  }
}

coding::CodedBatch HybridEncoder::encode_batch(std::size_t count, Rng& rng) {
  coding::CodedBatch batch(params(), count);
  for (std::size_t j = 0; j < count; ++j) {
    for (auto& c : batch.coefficients(j)) c = rng.next_nonzero_byte();
  }
  encode_into(batch);
  return batch;
}

}  // namespace extnc::gpu
