#include "gpu/kernel_check.h"

#include <algorithm>
#include <utility>

#include "coding/block_decoder.h"
#include "coding/encoder.h"
#include "gpu/gpu_decoder.h"
#include "gpu/gpu_encoder.h"
#include "gpu/gpu_multiseg_decoder.h"
#include "gpu/gpu_recoder.h"
#include "gpu/hybrid_encoder.h"
#include "util/assert.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace extnc::gpu {

namespace {

using simgpu::Checker;
using simgpu::CheckConfig;

// Pin the process-default engine for the sweep so every kAuto launch
// resolves the same way, restoring the previous default on exit.
class EngineGuard {
 public:
  explicit EngineGuard(simgpu::ExecEngine engine)
      : saved_(simgpu::default_engine()) {
    simgpu::set_default_engine(engine);
  }
  ~EngineGuard() { simgpu::set_default_engine(saved_); }
  EngineGuard(const EngineGuard&) = delete;
  EngineGuard& operator=(const EngineGuard&) = delete;

 private:
  simgpu::ExecEngine saved_;
};

Checker make_checker(const KernelCheckOptions& options) {
  CheckConfig config;
  config.mode = CheckConfig::Mode::kCollect;  // sweep everything, throw never
  config.perf_lints = options.perf_lints;
  return Checker(config);
}

// n linearly independent coded blocks of `segment` (decoders require
// independence by construction for a deterministic sweep).
coding::CodedBatch independent_batch(const coding::Segment& segment,
                                     Rng& rng) {
  const coding::Params& params = segment.params();
  const coding::Encoder encoder(segment);
  coding::BlockDecoder probe(params);
  coding::CodedBatch batch(params, params.n);
  std::size_t stored = 0;
  while (stored < params.n) {
    coding::CodedBlock block = encoder.encode(rng);
    if (!probe.add(block)) continue;
    std::copy(block.coefficients().begin(), block.coefficients().end(),
              batch.coefficients(stored).begin());
    std::copy(block.payload().begin(), block.payload().end(),
              batch.payload(stored).begin());
    ++stored;
  }
  return batch;
}

KernelCheckCase check_encode(const simgpu::DeviceSpec& spec,
                             const KernelCheckOptions& options,
                             EncodeScheme scheme) {
  Checker checker = make_checker(options);
  Rng rng(options.seed);
  const coding::Segment segment =
      coding::Segment::random(options.params, rng);
  GpuEncoder encoder(spec, segment, scheme, /*profiler=*/nullptr, "encode",
                     /*injector=*/nullptr, &checker);
  encoder.encode_batch(options.batch_blocks, rng);
  return {std::string("encode/") + scheme_label(scheme), checker.report()};
}

KernelCheckCase check_decode_single(const simgpu::DeviceSpec& spec,
                                    const KernelCheckOptions& options,
                                    DecodeOptions decode_options,
                                    std::string name) {
  Checker checker = make_checker(options);
  Rng rng(options.seed);
  const coding::Segment segment =
      coding::Segment::random(options.params, rng);
  const coding::CodedBatch batch = independent_batch(segment, rng);
  GpuSingleSegmentDecoder decoder(spec, options.params, decode_options);
  decoder.attach_checker(&checker);
  for (std::size_t j = 0; j < batch.count() && !decoder.is_complete(); ++j) {
    decoder.add(batch.coefficients(j), batch.payload(j));
  }
  EXTNC_CHECK(decoder.is_complete());
  return {std::move(name), checker.report()};
}

KernelCheckCase check_decode_multiseg(const simgpu::DeviceSpec& spec,
                                      const KernelCheckOptions& options) {
  Checker checker = make_checker(options);
  Rng rng(options.seed);
  std::vector<coding::CodedBatch> batches;
  for (int s = 0; s < 2; ++s) {
    batches.push_back(independent_batch(
        coding::Segment::random(options.params, rng), rng));
  }
  GpuMultiSegmentDecoder decoder(spec, options.params);
  decoder.launcher().set_checker(&checker);
  decoder.decode_all(batches);
  return {"decode/multiseg", checker.report()};
}

KernelCheckCase check_recode(const simgpu::DeviceSpec& spec,
                             const KernelCheckOptions& options) {
  Checker checker = make_checker(options);
  Rng rng(options.seed);
  const coding::Segment segment =
      coding::Segment::random(options.params, rng);
  const coding::CodedBatch received = independent_batch(segment, rng);
  gpu_recode(spec, received, options.batch_blocks, rng,
             EncodeScheme::kTable5, /*profiler=*/nullptr, &checker);
  return {"recode", checker.report()};
}

KernelCheckCase check_hybrid(const simgpu::DeviceSpec& spec,
                             const KernelCheckOptions& options) {
  Checker checker = make_checker(options);
  Rng rng(options.seed);
  const coding::Segment segment =
      coding::Segment::random(options.params, rng);
  ThreadPool pool(2);
  HybridEncoder hybrid(spec, segment, pool);
  hybrid.attach_checker(&checker);
  hybrid.encode_batch(options.batch_blocks, rng);
  return {"hybrid", checker.report()};
}

}  // namespace

std::vector<KernelCheckCase> run_kernel_checks(
    const simgpu::DeviceSpec& spec, simgpu::ExecEngine engine,
    const KernelCheckOptions& options) {
  EXTNC_CHECK(options.params.n % 4 == 0);
  EXTNC_CHECK(options.params.k % 4 == 0);
  EngineGuard guard(engine);

  std::vector<KernelCheckCase> cases;
  for (EncodeScheme scheme :
       {EncodeScheme::kLoopBased, EncodeScheme::kTable0, EncodeScheme::kTable1,
        EncodeScheme::kTable2, EncodeScheme::kTable3, EncodeScheme::kTable4,
        EncodeScheme::kTable5}) {
    cases.push_back(check_encode(spec, options, scheme));
  }
  cases.push_back(check_decode_single(spec, options, DecodeOptions{},
                                      "decode/single"));
  cases.push_back(check_decode_single(
      spec, options, DecodeOptions{.cache_coefficients = true},
      "decode/single+cache"));
  if (spec.has_shared_atomics) {
    cases.push_back(check_decode_single(
        spec, options, DecodeOptions{.use_atomic_min = true},
        "decode/single+atomic"));
    cases.push_back(check_decode_single(
        spec, options,
        DecodeOptions{.use_atomic_min = true, .cache_coefficients = true},
        "decode/single+atomic+cache"));
  }
  cases.push_back(check_decode_multiseg(spec, options));
  cases.push_back(check_recode(spec, options));
  cases.push_back(check_hybrid(spec, options));
  return cases;
}

}  // namespace extnc::gpu
