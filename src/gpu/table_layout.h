// Shared-memory layout of the table-based encode kernels (Sec. 5.1), in
// one place so the kernels (gpu_encoder.cpp), the static kernel models
// (kernel_audit.cpp) and the fast-path conflict profiles all index the
// same bytes. A layout change here changes every consumer together — the
// static-vs-dynamic equivalence tests then hold them to the same numbers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace extnc::gpu {

// Byte-table layout (tb0-tb4): the 512-entry exp table at offset 0; tb0
// additionally keeps the 256-entry log table behind it.
inline constexpr std::size_t kExpBytesOffset = 0;    // 512 bytes
inline constexpr std::size_t kLogBytesOffset = 512;  // 256 bytes (kTable0)
inline constexpr std::size_t kExpTableEntries = 512;

// tb5: eight word-width copies of the exp table, interleaved so copy c of
// entry i lives at word index i * 8 + c — a thread using copy (lane % 8)
// then only ever touches two banks.
inline constexpr std::size_t kReplicatedTables = 8;

// Word index a lane reads for exp entry `idx` under the tb5 layout.
inline constexpr std::size_t tb5_word_index(std::size_t idx,
                                            std::size_t lane) {
  return idx * kReplicatedTables + lane % kReplicatedTables;
}

// Shared scratchpad bytes each scheme's block actually uses.
inline constexpr std::size_t table_shared_bytes_tb5() {
  return kExpTableEntries * kReplicatedTables * 4;
}
inline constexpr std::size_t table_shared_bytes_byte(bool with_log_table) {
  return with_log_table ? kLogBytesOffset + 256 : kExpTableEntries;
}

}  // namespace extnc::gpu
