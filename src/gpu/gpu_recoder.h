// GPU recoding: fresh random combinations of *coded* blocks, computed with
// the encode kernels.
//
// A relay holding m coded blocks [C | X] (coefficient rows next to
// payloads) produces outputs [W*C | W*X] for random weight rows W — which
// is exactly an encode over a pseudo-segment whose "source blocks" are the
// aggregate rows of n + k bytes. The paper only encodes at sources, but
// recoding-at-rate is the operation that makes *network* coding a network
// primitive, and on a relay with a GPU it reuses the same kernels
// unchanged.
#pragma once

#include <cstddef>

#include "coding/batch.h"
#include "gpu/gpu_encoder.h"
#include "simgpu/device_spec.h"
#include "util/rng.h"

namespace extnc::gpu {

// Produce `count` recoded blocks from `received` (which holds m >= 1 coded
// blocks of one generation). Requires n % 4 == 0 and k % 4 == 0. With a
// profiler the internal encode launches record under "recode/..." labels;
// with a checker they run under the kernel sanitizer.
coding::CodedBatch gpu_recode(const simgpu::DeviceSpec& spec,
                              const coding::CodedBatch& received,
                              std::size_t count, Rng& rng,
                              EncodeScheme scheme = EncodeScheme::kTable5,
                              simgpu::Profiler* profiler = nullptr,
                              simgpu::Checker* checker = nullptr);

}  // namespace extnc::gpu
