// Multi-segment GPU decoder (Sec. 5.2) — the paper's headline decoding
// contribution.
//
// When S segments' worth of coded blocks are available, decoding becomes
// two stages:
//   stage 1 — per segment, invert the n x n coefficient matrix by
//             Gauss-Jordan on [C | I]. One thread block (one SM) per
//             inversion: this stage is serial in nature and underutilizes
//             the device, which is why its share of total time (annotated
//             on Fig. 9) is what limits small-block performance.
//   stage 2 — recover sources with b = C^-1 * x, a dense GF matrix
//             product with the same embarrassing parallelism as encoding;
//             it saturates the whole device.
// Running more segments in flight (the paper's 3-segment vs 6-segment
// curves) amortizes stage 1 across more SMs without changing stage 2's
// throughput.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "coding/batch.h"
#include "coding/segment.h"
#include "simgpu/executor.h"

namespace extnc::gpu {

class GpuMultiSegmentDecoder {
 public:
  GpuMultiSegmentDecoder(const simgpu::DeviceSpec& spec,
                         coding::Params params);

  // Each batch holds exactly n linearly independent coded blocks of one
  // segment. Decodes all of them; aborts on rank deficiency (offline
  // decoding collects independent blocks by construction).
  std::vector<coding::Segment> decode_all(
      const std::vector<coding::CodedBatch>& batches);

  const coding::Params& params() const { return params_; }
  const simgpu::KernelMetrics& stage1_metrics() const { return stage1_; }
  const simgpu::KernelMetrics& stage2_metrics() const { return stage2_; }
  const simgpu::DeviceSpec& spec() const { return launcher_.spec(); }
  void reset_metrics();

  // Simulated-device context (fault-injector attachment, modeled clock).
  // A fault injector attached here is propagated to the stage-2 multiplier
  // encoders, so every launch of a decode is subject to the fault plan and
  // decode_all can throw simgpu::DeviceError.
  simgpu::Launcher& launcher() { return launcher_; }

  // Stage 1 launches record as "decode/multiseg/invert"; stage 2 reuses the
  // encode kernels under the "decode/multiseg/stage2" prefix.
  void attach_profiler(simgpu::Profiler* profiler);

 private:
  void invert_stage(const std::vector<coding::CodedBatch>& batches,
                    std::vector<AlignedBuffer>& inverses);
  // Fast-path Gauss-Jordan for one block's augmented matrix: SIMD region
  // row operations plus bulk accounting bit-identical to the interpreted
  // steps. `mul_deci` is the quantized cost of one charged word multiply
  // per coefficient value.
  void invert_block_fast(simgpu::BlockCtx& block, std::uint8_t* aug,
                         const std::array<std::uint64_t, 256>& mul_deci);
  void multiply_stage(const std::vector<coding::CodedBatch>& batches,
                      const std::vector<AlignedBuffer>& inverses,
                      std::vector<coding::Segment>& out);

  coding::Params params_;
  simgpu::Launcher launcher_;
  simgpu::KernelMetrics stage1_;
  simgpu::KernelMetrics stage2_;
  simgpu::Profiler* profiler_ = nullptr;
};

}  // namespace extnc::gpu
