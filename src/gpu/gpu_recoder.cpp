#include "gpu/gpu_recoder.h"

#include <cstring>

#include "util/assert.h"

namespace extnc::gpu {

coding::CodedBatch gpu_recode(const simgpu::DeviceSpec& spec,
                              const coding::CodedBatch& received,
                              std::size_t count, Rng& rng,
                              EncodeScheme scheme,
                              simgpu::Profiler* profiler,
                              simgpu::Checker* checker) {
  const coding::Params& p = received.params();
  EXTNC_CHECK(received.count() >= 1);
  EXTNC_CHECK(p.n % 4 == 0);
  EXTNC_CHECK(p.k % 4 == 0);

  // Pseudo-segment: m aggregate rows of n + k bytes.
  const std::size_t m = received.count();
  const coding::Params aggregate{.n = m, .k = p.n + p.k};
  coding::Segment pseudo(aggregate);
  for (std::size_t j = 0; j < m; ++j) {
    std::memcpy(pseudo.block(j).data(), received.coefficients(j).data(), p.n);
    std::memcpy(pseudo.block(j).data() + p.n, received.payload(j).data(),
                p.k);
  }

  GpuEncoder encoder(spec, pseudo, scheme, profiler, "recode",
                     /*injector=*/nullptr, checker);
  const coding::CodedBatch mixed = encoder.encode_batch(count, rng);

  // Split the aggregate outputs back into coefficient/payload halves.
  coding::CodedBatch out(p, count);
  for (std::size_t j = 0; j < count; ++j) {
    std::memcpy(out.coefficients(j).data(), mixed.payload(j).data(), p.n);
    std::memcpy(out.payload(j).data(), mixed.payload(j).data() + p.n, p.k);
  }
  return out;
}

}  // namespace extnc::gpu
