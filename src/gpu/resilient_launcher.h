// Device-fault supervision for the GPU pipelines.
//
// The simulator's fault injector (simgpu/fault_injector.h) models how a
// real accelerator fails; this layer is the answer: every GPU operation
// runs under a supervisor that
//
//   detects  — a watchdog compares the modeled device clock against a
//              per-operation budget (catches hangs); a cheap post-condition
//              re-encodes a few sampled rows on the CPU reference coder and
//              compares CRC32C (catches silent bit flips); launch failures
//              and device loss arrive as simgpu::DeviceError.
//   retries  — bounded attempts with exponential backoff (in simulated
//              seconds; nothing sleeps for real).
//   degrades — a per-device circuit breaker opens after repeated failures
//              or on device loss, after which operations go straight to
//              the CPU implementations (cpu::CpuTableEncoder,
//              cpu::MultiSegmentDecoder) and the run completes bit-exact,
//              just slower — the graceful-degradation contract.
//
// Everything is counted in the metrics registry under "gpu.resilient.*"
// and, when a profiler is attached, marked on the trace timeline under
// "fault/*" labels so a trace shows where the retries went.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "coding/batch.h"
#include "coding/encoder.h"
#include "coding/segment.h"
#include "cpu/cpu_table_encoder.h"
#include "gpu/gpu_encoder.h"
#include "simgpu/fault_injector.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace extnc::gpu {

// Tunables of the supervision loop. Times are modeled (simulated) seconds.
struct SupervisorConfig {
  // An attempt whose modeled device time exceeds this is a watchdog trip.
  double watchdog_budget_s = 1.0;
  // Total tries per operation (first attempt + retries) before giving up
  // on the GPU for that operation.
  int max_attempts = 4;
  // Backoff before retry i is backoff_initial_s * backoff_factor^(i-1),
  // accumulated onto the operation's modeled latency.
  double backoff_initial_s = 1e-3;
  double backoff_factor = 2.0;
  // Consecutive operations that exhausted their attempts before the
  // circuit breaker opens (device loss opens it immediately).
  int breaker_threshold = 3;
  // Half-open probing: once the breaker has been open for this many
  // seconds on the supervisor clock (set_clock — the service's simulated
  // wall clock, NOT the per-op device clock, which freezes while no
  // launches run), the next operation runs ONE GPU probe attempt. Probe
  // success closes the breaker; probe failure re-opens it and restarts
  // the cool-down. 0 keeps the PR 3 behavior: open stays open until
  // reset_breaker(). Requires a clock; with none attached the breaker
  // never half-opens.
  double breaker_cooldown_s = 0;
  // Rows sampled by the CRC spot-check verifiers.
  std::size_t verify_sample = 2;
  // Metric name prefix.
  std::string metric_prefix = "gpu.resilient";
};

// kFailed only occurs when an op has no CPU fallback wired (the
// stop-on-device-loss decode mode); supervised ops with a fallback always
// end in kGpu or kCpuFallback.
enum class ComputePath { kGpu, kCpuFallback, kFailed };

// What happened to one supervised operation.
struct OperationReport {
  ComputePath path = ComputePath::kGpu;
  int attempts = 0;
  int watchdog_trips = 0;
  int corrupted_outputs = 0;
  int launch_failures = 0;
  bool device_lost = false;
  double backoff_s = 0;  // modeled seconds spent backing off
};

// Running totals across all operations of one supervisor.
struct SupervisorTotals {
  std::uint64_t operations = 0;
  std::uint64_t gpu_ok = 0;
  std::uint64_t retries = 0;
  std::uint64_t watchdog_trips = 0;
  std::uint64_t corrupted_outputs = 0;
  std::uint64_t launch_failures = 0;
  std::uint64_t device_losses = 0;
  std::uint64_t fallbacks = 0;
  double backoff_seconds = 0;
};

// One supervised operation, expressed as closures so the supervisor stays
// agnostic of what is being computed.
struct SupervisedOp {
  std::string label;
  // One GPU attempt. May throw simgpu::DeviceError; may be called up to
  // max_attempts times and must be restartable (each call fully rewrites
  // its outputs).
  std::function<void()> gpu;
  // Monotonic modeled device clock; the watchdog charges an attempt the
  // clock delta across its gpu() call. Null disables the watchdog.
  std::function<double()> gpu_clock;
  // Post-condition on the outputs; false means corrupted (retry). Null
  // means trust the result.
  std::function<bool()> verify;
  // CPU fallback; must succeed and produce bit-identical outputs.
  std::function<void()> cpu;
};

// Per-device supervisor. Shared (by reference) between the pipelines that
// run on the same device so the circuit breaker state is device-wide.
class ResilientLauncher {
 public:
  explicit ResilientLauncher(SupervisorConfig config = {},
                             simgpu::FaultInjector* injector = nullptr);

  const SupervisorConfig& config() const { return config_; }
  simgpu::FaultInjector* injector() const { return injector_; }

  // Attach this device's fault injector to a pipeline's launcher so its
  // kernel launches share the device's fault plan and modeled clock.
  void adopt(simgpu::Launcher& launcher) const;

  // Default modeled clock for SupervisedOp::gpu_clock: the injector's
  // device timeline when there is one, else `fallback` (may be null).
  std::function<double()> device_clock(
      std::function<double()> fallback = {}) const;

  // Trace markers: fault events are recorded as zero-work launches with
  // "fault/<event>" labels on this profiler.
  void set_trace(simgpu::Profiler* profiler, const simgpu::DeviceSpec* spec);

  // The supervisor's notion of "now" (modeled seconds), used for the
  // breaker cool-down bookkeeping. Distinct from SupervisedOp::gpu_clock:
  // the device clock only advances while launches run, so an open breaker
  // would freeze it and the cool-down could never elapse. A service wires
  // this to its discrete-event clock; tests wire a manual counter.
  void set_clock(std::function<double()> now);

  // Run one operation to completion: GPU with watchdog/verify/retry, then
  // CPU fallback if the GPU path cannot produce a verified result.
  OperationReport run(const SupervisedOp& op);

  bool breaker_open() const { return breaker_open_; }
  // Open the breaker from outside the retry loop — the fleet scheduler's
  // "this device is dead" signal (a scripted kill, a failed health
  // probe). Subsequent operations skip the GPU until reset_breaker() or a
  // successful half-open probe.
  void trip_breaker();
  // Close the breaker after the device recovered (also clears the
  // injector's sticky lost state when one is attached).
  void reset_breaker();

  const SupervisorTotals& totals() const { return totals_; }

 private:
  void trace(const char* label);
  void count(const char* metric, double delta = 1.0);
  void open_breaker();
  void close_breaker();
  // True when an open breaker should grant this operation one half-open
  // probe attempt (cool-down elapsed on the supervisor clock).
  bool half_open_due() const;

  SupervisorConfig config_;
  simgpu::FaultInjector* injector_;
  simgpu::Profiler* trace_profiler_ = nullptr;
  const simgpu::DeviceSpec* trace_spec_ = nullptr;
  std::function<double()> clock_;
  SupervisorTotals totals_;
  int consecutive_failed_ops_ = 0;
  bool breaker_open_ = false;
  double breaker_opened_at_s_ = 0;  // clock_ value when last opened
};

// GPU encoder under supervision: same interface shape as GpuEncoder, but
// every batch is watchdog-timed, CRC-spot-checked against the reference
// coding::Encoder, retried on transient faults and re-encoded on the CPU
// (cpu::CpuTableEncoder — bit-exact by construction) when the GPU path is
// unavailable. Coefficients are drawn once per batch, so the output bytes
// are identical whichever path computed them.
class ResilientEncoder {
 public:
  ResilientEncoder(const simgpu::DeviceSpec& spec,
                   const coding::Segment& segment, EncodeScheme scheme,
                   ThreadPool& pool, ResilientLauncher& supervisor,
                   simgpu::Profiler* profiler = nullptr);

  const coding::Params& params() const { return gpu_encoder_.params(); }

  // Coefficient rows of `batch` must already be filled (natural domain).
  void encode_into(coding::CodedBatch& batch);
  coding::CodedBatch encode_batch(std::size_t count, Rng& rng);

  const OperationReport& last_report() const { return last_; }
  GpuEncoder& gpu_encoder() { return gpu_encoder_; }

 private:
  bool verify_batch(const coding::CodedBatch& batch);

  const coding::Segment* segment_;
  coding::Encoder reference_;
  GpuEncoder gpu_encoder_;
  cpu::CpuTableEncoder cpu_encoder_;
  ResilientLauncher* supervisor_;
  Rng sample_rng_;
  OperationReport last_;
};

// Serializable snapshot of a multi-segment decode in progress: which
// segments are already decoded and their recovered bytes. Lets a decode
// that lost its device resume — on the CPU or on a recovered device —
// without redoing completed segments.
//
// Wire format (all integers little-endian):
//   "XNCK" | u32 version=1 | u32 n | u32 k | u32 segments |
//   segments x u8 done flags | n*k raw bytes per done segment (in index
//   order) | u32 CRC32C over everything before it.
struct DecodeCheckpoint {
  coding::Params params{};
  std::vector<std::uint8_t> done;        // 1 = segment decoded
  std::vector<coding::Segment> decoded;  // decoded[i] valid iff done[i]

  std::size_t segments() const { return done.size(); }
  std::size_t completed() const;
  bool complete() const;

  std::vector<std::uint8_t> serialize() const;
  // nullopt on bad magic/version/size or CRC mismatch.
  static std::optional<DecodeCheckpoint> deserialize(
      std::span<const std::uint8_t> bytes);
};

// Multi-segment decode report (per decode_all call).
struct MultiSegReport {
  std::size_t segments = 0;
  std::size_t from_checkpoint = 0;  // restored, not recomputed
  std::size_t gpu_segments = 0;
  std::size_t cpu_segments = 0;
  bool stopped_on_device_loss = false;
  bool complete = false;
};

// Supervised multi-segment decoder. Decodes segment-by-segment (rather
// than one batched GpuMultiSegmentDecoder call) so progress is
// checkpointable: after every segment the checkpoint is updated, and a
// device loss can either stop the decode (caller persists the checkpoint
// and resumes later) or degrade the remaining segments to
// cpu::MultiSegmentDecoder on the spot. Each decoded segment is verified
// by re-encoding sampled rows and comparing CRC32C against the input
// coded payloads.
class ResilientMultiSegDecoder {
 public:
  ResilientMultiSegDecoder(const simgpu::DeviceSpec& spec,
                           coding::Params params, ThreadPool& pool,
                           ResilientLauncher& supervisor,
                           simgpu::Profiler* profiler = nullptr);

  // Each batch: exactly n independent coded blocks of one segment. With a
  // checkpoint, segments already marked done are restored (never
  // recomputed) and newly completed segments are recorded into it. With
  // stop_on_device_loss, a device loss returns partial results (the
  // checkpoint holds the progress); otherwise remaining segments fall back
  // to the CPU and the decode completes.
  std::vector<coding::Segment> decode_all(
      const std::vector<coding::CodedBatch>& batches,
      DecodeCheckpoint* checkpoint = nullptr,
      bool stop_on_device_loss = false);

  const MultiSegReport& last_report() const { return last_; }
  const coding::Params& params() const { return params_; }

 private:
  bool verify_segment(const coding::CodedBatch& batch,
                      const coding::Segment& segment);

  coding::Params params_;
  const simgpu::DeviceSpec* spec_;
  ThreadPool* pool_;
  ResilientLauncher* supervisor_;
  simgpu::Profiler* profiler_;
  Rng sample_rng_;
  MultiSegReport last_;
};

// Bridge between the supervision layer and the net simulations, which do
// not link against gpu: owns the device (fault injector + supervisor +
// thread pool) and hands out plain std::function seed-encoder closures
// matching the net configs' factory hooks. The returned closures borrow
// this object — it must outlive the simulation run.
class ResilientSeed {
 public:
  // blocks_per_launch: coded blocks buffered per supervised GPU batch (the
  // per-block closures drain the buffer; paper-style servers batch far
  // more, but swarm ticks want low latency).
  ResilientSeed(const simgpu::DeviceSpec& spec, EncodeScheme scheme,
                SupervisorConfig config = {},
                simgpu::FaultPlan fault_plan = {},
                std::size_t threads = 2, std::size_t blocks_per_launch = 4);
  ~ResilientSeed();

  ResilientSeed(const ResilientSeed&) = delete;
  ResilientSeed& operator=(const ResilientSeed&) = delete;

  // Null when the fault plan injects nothing.
  simgpu::FaultInjector* injector() { return injector_.get(); }
  ResilientLauncher& supervisor() { return supervisor_; }

  // For net::SwarmConfig::make_seed_encoder.
  std::function<coding::CodedBlock(Rng&)> bind_segment(
      const coding::Segment& segment);
  // For the generation-addressed hooks (multigen swarm, file transfer):
  // content is split into ceil(size / (n*k)) generations, each encoded by
  // its own supervised encoder, created lazily on first use.
  std::function<coding::CodedBlock(std::uint32_t, Rng&)> bind_content(
      const coding::Params& params, std::span<const std::uint8_t> content);

 private:
  struct BoundSegment;
  struct BoundContent;

  BoundSegment* make_bound(coding::Segment segment);

  const simgpu::DeviceSpec* spec_;
  EncodeScheme scheme_;
  std::size_t blocks_per_launch_;
  ThreadPool pool_;
  std::unique_ptr<simgpu::FaultInjector> injector_;
  ResilientLauncher supervisor_;
  std::vector<std::unique_ptr<BoundSegment>> segments_;
  std::vector<std::unique_ptr<BoundContent>> contents_;
};

}  // namespace extnc::gpu
