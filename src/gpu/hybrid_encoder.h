// Hybrid GPU+CPU encoding (Sec. 5.4.1): "encoding can be employed by GPU
// and CPU in parallel, achieving encoding rates in proximity to the sum of
// the individual bandwidths".
//
// Encoding is embarrassingly parallel across coded blocks, so the batch is
// simply split: the leading share goes to the GPU kernel (simulated,
// bit-exact), the tail to the real multi-threaded CPU encoder. The split
// ratio defaults to the modeled GPU:CPU bandwidth ratio so both sides
// finish together; any ratio produces identical bytes.
#pragma once

#include <cstddef>

#include "coding/batch.h"
#include "coding/segment.h"
#include "cpu/cpu_encoder.h"
#include "gpu/gpu_encoder.h"
#include "simgpu/device_spec.h"
#include "util/thread_pool.h"

namespace extnc::gpu {

class HybridEncoder {
 public:
  // gpu_share in (0, 1]: fraction of each batch encoded on the GPU. A
  // negative value (the default) selects the modeled bandwidth ratio.
  HybridEncoder(const simgpu::DeviceSpec& spec,
                const coding::Segment& segment, ThreadPool& pool,
                EncodeScheme gpu_scheme = EncodeScheme::kTable5,
                double gpu_share = -1.0);

  const coding::Params& params() const { return segment_->params(); }
  double gpu_share() const { return gpu_share_; }

  // Fill payloads for already-drawn coefficient rows.
  void encode_into(coding::CodedBatch& batch);
  coding::CodedBatch encode_batch(std::size_t count, Rng& rng);

  // How many blocks of an m-block batch land on the GPU (0 once the GPU
  // half has been disabled by a device fault).
  std::size_t gpu_blocks(std::size_t batch_size) const;

  // Subject the GPU half to a fault plan. If the GPU fails mid-batch
  // (simgpu::DeviceError), encode_into re-encodes the whole batch on the
  // CPU — output stays bit-exact — and, for a sticky device loss,
  // rebalances permanently to a CPU-only split.
  void attach_fault_injector(simgpu::FaultInjector* injector) {
    gpu_encoder_.launcher().set_fault_injector(injector);
  }
  // True once a device loss has rebalanced the split to CPU-only.
  bool gpu_disabled() const { return gpu_disabled_; }
  // Re-enable the GPU half (after the injector's device was restored).
  void restore_gpu() { gpu_disabled_ = false; }

  const GpuEncoder& gpu() const { return gpu_encoder_; }
  const cpu::CpuEncoder& cpu() const { return cpu_encoder_; }

  // Record the GPU half's kernel launches under "hybrid/gpu/..." labels
  // (the CPU half runs real host code and has no simulated launches).
  void attach_profiler(simgpu::Profiler* profiler) {
    gpu_encoder_.attach_profiler(profiler, "hybrid/gpu");
  }

  // Run the GPU half under the kernel sanitizer (the CPU half is real
  // host code with nothing to instrument).
  void attach_checker(simgpu::Checker* checker) {
    gpu_encoder_.attach_checker(checker);
  }

 private:
  const coding::Segment* segment_;
  GpuEncoder gpu_encoder_;
  cpu::CpuEncoder cpu_encoder_;
  double gpu_share_;
  bool gpu_disabled_ = false;
};

}  // namespace extnc::gpu
