// Streaming-server capacity math and simulation (Sec. 5.1.1 / 5.1.2).
//
// The paper's scenario: 512 KB media segments (128 blocks of 4 KB), a
// 768 kbps stream (5.33 s of content per segment), and a server whose
// encoder produces coded blocks for downstream peers. The number of peers
// a server sustains is coding_bandwidth / stream_rate — 1385 peers at the
// loop-based 133 MB/s, ~1844 at the first table-based scheme, and 3000+ at
// the final 294 MB/s (Sec. 5.1.3). Note the paper computes these with
// decimal megabytes (133e6 * 8 / 768e3 = 1385), which we follow here.
#pragma once

#include <cstddef>

#include "coding/params.h"

namespace extnc::net {

struct StreamConfig {
  coding::Params segment{.n = 128, .k = 4096};  // 512 KB media segment
  double stream_kbps = 768.0;                   // high-quality video rate
  double nic_gbps = 1.0;                        // per gigabit interface
};

// Seconds of content per segment (the client-side buffering delay).
double segment_duration_s(const StreamConfig& config);

// Peers sustainable by coding bandwidth alone (MB/s, decimal MB as the
// paper computes).
std::size_t peers_by_coding_rate(double coding_mb_per_s,
                                 const StreamConfig& config);

// Peers sustainable by `nics` gigabit interfaces.
std::size_t peers_by_nic(const StreamConfig& config, std::size_t nics = 1);

// Gigabit interfaces the coding bandwidth can saturate.
double nics_saturated(double coding_mb_per_s, const StreamConfig& config);

// Coded blocks the server must generate per segment duration to feed
// `peers` (each peer needs n blocks per segment; the paper's "at least
// 177,333 coded blocks from every video segment" at 1385 peers).
std::size_t coded_blocks_per_segment(std::size_t peers,
                                     const StreamConfig& config);

// Segments that fit in a given GPU memory (the paper: hundreds of
// segments fit the GTX 280's 1 GB).
std::size_t segments_in_memory(std::size_t memory_bytes,
                               const StreamConfig& config);

}  // namespace extnc::net
