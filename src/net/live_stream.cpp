#include "net/live_stream.h"

#include <functional>
#include <memory>

#include "coding/encoder.h"
#include "coding/progressive_decoder.h"
#include "net/event_sim.h"
#include "util/assert.h"
#include "util/rng.h"

namespace extnc::net {

namespace {

struct Viewer {
  explicit Viewer(const coding::Params& params)
      : decoder(std::make_unique<coding::ProgressiveDecoder>(params)) {}

  std::size_t current_segment = 0;
  std::unique_ptr<coding::ProgressiveDecoder> decoder;
  std::size_t stalls = 0;
  std::size_t decoded_ok = 0;
};

}  // namespace

std::size_t stall_free_capacity(const LiveStreamConfig& config) {
  const double blocks_needed_per_second =
      static_cast<double>(config.params.n) / config.segment_duration_s;
  return static_cast<std::size_t>(config.server_blocks_per_second /
                                  blocks_needed_per_second);
}

LiveStreamResult run_live_stream(const LiveStreamConfig& config) {
  EXTNC_CHECK(config.viewers >= 1);
  EXTNC_CHECK(config.stream_segments >= 1);
  EXTNC_CHECK(config.server_blocks_per_second > 0);
  Rng rng(config.seed);
  const coding::Params& params = config.params;

  // The live content, one segment ahead of playback.
  std::vector<coding::Segment> segments;
  std::vector<coding::Encoder> encoders;
  segments.reserve(config.stream_segments);
  for (std::size_t s = 0; s < config.stream_segments; ++s) {
    segments.push_back(coding::Segment::random(params, rng));
  }
  encoders.reserve(config.stream_segments);
  for (const auto& segment : segments) encoders.emplace_back(segment);

  std::vector<Viewer> viewers;
  viewers.reserve(config.viewers);
  for (std::size_t v = 0; v < config.viewers; ++v) viewers.emplace_back(params);

  LiveStreamResult result;
  EventSim sim;

  auto advance_viewer = [&](Viewer& viewer) {
    if (viewer.decoder->is_complete() &&
        viewer.decoder->decoded_segment() ==
            segments[viewer.current_segment]) {
      ++viewer.decoded_ok;
    }
    ++viewer.current_segment;
    if (viewer.current_segment < config.stream_segments) {
      viewer.decoder =
          std::make_unique<coding::ProgressiveDecoder>(params);
    }
  };

  // Playback deadlines: segment s must be decoded by (s + 2) * duration
  // (one segment of startup delay).
  for (std::size_t s = 0; s < config.stream_segments; ++s) {
    sim.schedule_at(
        (static_cast<double>(s) + 2.0) * config.segment_duration_s, [&, s] {
          for (Viewer& viewer : viewers) {
            if (viewer.current_segment != s) continue;
            if (!viewer.decoder->is_complete()) ++viewer.stalls;
            // Live stream: the broadcast moves on regardless (the stall is
            // the quality penalty; the viewer skips ahead).
            advance_viewer(viewer);
          }
        });
  }

  // Server send loop: round-robin over viewers missing their segment.
  std::size_t cursor = 0;
  std::function<void()> send_tick = [&] {
    if (sim.now() >=
        (static_cast<double>(config.stream_segments) + 2.0) *
            config.segment_duration_s) {
      return;  // broadcast over
    }
    for (std::size_t probe = 0; probe < viewers.size(); ++probe) {
      Viewer& viewer = viewers[cursor];
      cursor = (cursor + 1) % viewers.size();
      if (viewer.current_segment >= config.stream_segments) continue;
      if (viewer.decoder->is_complete()) continue;
      ++result.blocks_sent;
      if (rng.next_double() >= config.loss_probability) {
        viewer.decoder->add(
            encoders[viewer.current_segment].encode(rng));
      }
      break;
    }
    sim.schedule_in(1.0 / config.server_blocks_per_second, send_tick);
  };
  sim.schedule_in(1.0 / config.server_blocks_per_second, send_tick);

  sim.run_until((static_cast<double>(config.stream_segments) + 2.5) *
                config.segment_duration_s);

  result.all_content_decoded_correctly = true;
  for (const Viewer& viewer : viewers) {
    result.rebuffer_events += viewer.stalls;
    result.segments_played += viewer.current_segment;
    if (viewer.stalls == 0) ++result.smooth_viewers;
    if (viewer.decoded_ok + viewer.stalls < viewer.current_segment) {
      result.all_content_decoded_correctly = false;
    }
  }
  return result;
}

}  // namespace extnc::net
