// Avalanche-style P2P bulk content distribution over random linear network
// coding (Gkantsidis & Rodriguez [3], the application the paper's
// multi-segment decoder targets: gather coded blocks, decode offline).
//
// A server holds one segment and continuously emits fresh coded blocks to
// random peers; peers gossip to random neighbors. With recoding enabled
// (true network coding) every peer transmission is a fresh random
// combination of everything the peer holds; with it disabled, peers can
// only forward verbatim copies of received blocks — the store-and-forward
// baseline whose redundant duplicates network coding exists to avoid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "coding/coded_block.h"
#include "coding/params.h"
#include "coding/segment.h"
#include "net/faulty_channel.h"
#include "util/rng.h"

namespace extnc::net {

struct SwarmConfig {
  coding::Params params{.n = 16, .k = 64};
  std::size_t peers = 20;
  std::size_t neighbors = 4;              // gossip out-degree per peer
  double server_blocks_per_second = 8.0;  // server upload capacity
  double peer_blocks_per_second = 2.0;    // per-peer upload capacity
  double loss_probability = 0.0;          // i.i.d. per transmission
  bool use_recoding = true;
  std::uint64_t seed = 1;
  double max_seconds = 10000.0;
  // Byte-level fault injection applied to every transmission (loss,
  // corruption, truncation, duplication, reordering). When enabled, all
  // traffic travels as checksummed wire packets and peers CRC-check
  // before decoding or relaying, so corruption never pollutes the swarm.
  FaultSpec faults{};
  // Optional seed-encoder factory, invoked once with the run's source
  // segment; the returned closure then produces every server-emitted
  // coded block in place of the built-in reference encoder. This is how
  // an accelerated (and fault-supervised) seed plugs in without net
  // linking against gpu — see gpu::ResilientSeed::bind_segment.
  using SeedEncoderFn = std::function<coding::CodedBlock(Rng&)>;
  std::function<SeedEncoderFn(const coding::Segment&)> make_seed_encoder;
};

struct SwarmResult {
  bool all_completed = false;
  double completion_seconds = 0;                // last peer done
  std::vector<double> peer_completion_seconds;  // per peer (0 if never)
  std::size_t blocks_sent = 0;
  std::size_t blocks_lost = 0;
  // Deliveries to peers still decoding, split into innovative and
  // linearly dependent; deliveries to already-complete peers are tallied
  // separately (they say nothing about the code, only about the gossip
  // schedule).
  std::size_t blocks_innovative = 0;
  std::size_t blocks_dependent = 0;
  std::size_t blocks_after_completion = 0;
  bool all_decoded_correctly = false;
  // Aggregate fault-injection counters across all transmissions, and the
  // number of damaged packets peers rejected at parse (CRC/shape). With
  // the checksummed wire format, channel.damaged() == blocks_rejected in
  // every run — nothing damaged gets through, nothing intact is dropped.
  ChannelStats channel;
  std::size_t blocks_rejected = 0;

  // Fraction of deliveries to still-decoding peers that carried no new
  // information — the "overhead" Avalanche measures; near zero with
  // recoding, substantial with verbatim forwarding.
  double dependent_overhead() const {
    const double useful_window =
        static_cast<double>(blocks_innovative + blocks_dependent);
    if (useful_window == 0) return 0;
    return static_cast<double>(blocks_dependent) / useful_window;
  }
};

SwarmResult run_swarm(const SwarmConfig& config);

}  // namespace extnc::net
