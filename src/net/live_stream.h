// Live-streaming simulation: the dynamic counterpart of the Sec. 5.1.1
// capacity arithmetic.
//
// A server plays out a live stream of segments, each one generation of
// coded content worth `segment_duration` seconds of video. Every viewer
// must decode segment s before its playback deadline (a startup delay of
// one segment duration, then one deadline per segment); a missed deadline
// is a rebuffering stall. The server's encoder produces coded blocks at a
// fixed aggregate rate — the coding bandwidths the paper measures — and
// round-robins them across viewers still missing their current segment.
// Since any n independent blocks decode a segment, the server needs no
// per-viewer bookkeeping beyond "which segment are you on" — the property
// that makes network coding attractive for streaming in the first place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "coding/params.h"

namespace extnc::net {

struct LiveStreamConfig {
  coding::Params params{.n = 8, .k = 64};
  std::size_t viewers = 8;
  std::size_t stream_segments = 4;   // length of the broadcast
  double segment_duration_s = 1.0;   // playout time per segment
  // Aggregate server encoding+send rate, coded blocks per second (the
  // coding bandwidth divided by block size).
  double server_blocks_per_second = 200.0;
  double loss_probability = 0.0;
  std::uint64_t seed = 1;
};

struct LiveStreamResult {
  // Stalls across all viewers (a viewer can stall once per segment).
  std::size_t rebuffer_events = 0;
  std::size_t segments_played = 0;   // across all viewers
  std::size_t blocks_sent = 0;
  bool all_content_decoded_correctly = false;
  // Viewers that played the whole stream without a single stall.
  std::size_t smooth_viewers = 0;
};

LiveStreamResult run_live_stream(const LiveStreamConfig& config);

// Viewers the configured block rate can serve without stalls on a
// loss-free link: each needs n blocks per segment duration.
std::size_t stall_free_capacity(const LiveStreamConfig& config);

}  // namespace extnc::net
