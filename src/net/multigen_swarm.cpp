#include "net/multigen_swarm.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "coding/generation_stream.h"
#include "coding/recoder.h"
#include "net/event_sim.h"
#include "util/assert.h"
#include "util/rng.h"

namespace extnc::net {

namespace {

struct Peer {
  Peer(const coding::Params& params, std::size_t generations)
      : decoder(std::make_unique<coding::GenerationDecoder>(params,
                                                            generations)) {
    for (std::size_t g = 0; g < generations; ++g) {
      buffers.emplace_back(params);
    }
  }

  std::unique_ptr<coding::GenerationDecoder> decoder;
  std::vector<coding::Recoder> buffers;  // received blocks per generation
  std::vector<std::size_t> neighbors;
  double completed_at = -1;
};

}  // namespace

MultiGenSwarmResult run_multigen_swarm(const MultiGenSwarmConfig& config) {
  EXTNC_CHECK(config.peers >= 1);
  EXTNC_CHECK(config.generations >= 1);
  Rng rng(config.rng_seed);
  const coding::Params& params = config.params;

  // The file being distributed.
  std::vector<std::uint8_t> content(params.segment_bytes() *
                                    config.generations);
  for (auto& b : content) b = rng.next_byte();
  coding::GenerationEncoder seed_encoder(params, content);
  EXTNC_CHECK(seed_encoder.generations() == config.generations);
  MultiGenSwarmConfig::SeedBlockFn seed_block;
  if (config.make_seed_encoder) {
    seed_block = config.make_seed_encoder(params, content);
  }

  std::vector<Peer> peers;
  peers.reserve(config.peers);
  for (std::size_t p = 0; p < config.peers; ++p) {
    peers.emplace_back(params, config.generations);
  }
  const std::size_t degree =
      std::min(config.neighbors, config.peers > 1 ? config.peers - 1 : 0);
  for (std::size_t p = 0; p < config.peers; ++p) {
    while (peers[p].neighbors.size() < degree) {
      const std::size_t q = rng.next_below(config.peers);
      if (q == p || std::find(peers[p].neighbors.begin(),
                              peers[p].neighbors.end(),
                              q) != peers[p].neighbors.end()) {
        continue;
      }
      peers[p].neighbors.push_back(q);
    }
  }

  MultiGenSwarmResult result;
  std::size_t completed = 0;
  EventSim sim;
  // Per-generation completion times across peers (for half-completion).
  std::vector<std::vector<double>> generation_completions(config.generations);

  // Per-receiving-peer fault injectors with independent RNG streams, so
  // fault-free runs keep the exact legacy trajectory.
  config.faults.validate();
  std::vector<FaultyChannel> channels;
  if (config.faults.any()) {
    channels.reserve(config.peers);
    for (std::size_t p = 0; p < config.peers; ++p) {
      channels.emplace_back(
          config.faults, SplitMix64(config.rng_seed ^ (0x369dULL + p)).next());
    }
  }

  // One post-channel arrival: the decoder's wire parse is the CRC check —
  // a damaged packet is rejected and counted here, never buffered for
  // recoding, so corruption stops at the first honest peer.
  auto receive = [&](std::size_t target,
                     std::span<const std::uint8_t> packet) {
    Peer& peer = peers[target];
    const auto outcome = peer.decoder->add_packet(packet);
    if (outcome == coding::GenerationDecoder::Accept::kRejected) {
      ++result.packets_rejected;
      return;
    }
    // Re-view the frame for the relay buffer; cannot fail after the decoder
    // accepted, and costs nothing — the buffer makes the single retention
    // copy straight from the frame.
    const auto parsed = coding::parse_view(packet);
    EXTNC_CHECK(parsed.ok());
    const std::uint32_t generation = parsed.packet().generation;
    peer.buffers[generation].add(parsed.packet().block);
    if (outcome == coding::GenerationDecoder::Accept::kGenerationComplete) {
      generation_completions[generation].push_back(sim.now());
    }
    if (peer.completed_at < 0 && peer.decoder->is_complete()) {
      peer.completed_at = sim.now();
      ++completed;
    }
  };

  auto deliver = [&](std::size_t target,
                     const std::vector<std::uint8_t>& packet,
                     std::uint32_t generation) {
    (void)generation;  // authoritative id travels inside the packet
    ++result.packets_sent;
    if (rng.next_double() < config.loss_probability) {
      ++result.packets_lost;
      return;
    }
    if (config.faults.any()) {
      for (auto& arrival : channels[target].transmit(packet)) {
        receive(target, arrival);
      }
    } else {
      receive(target, packet);
    }
  };

  // Generation choice for a (sender-capability, receiver-need) pair.
  auto choose_generation = [&](const std::vector<bool>& sender_has,
                               const Peer& receiver) -> std::ptrdiff_t {
    std::vector<std::size_t> candidates;
    for (std::size_t g = 0; g < config.generations; ++g) {
      if (sender_has[g] && !receiver.decoder->generation_complete(g)) {
        candidates.push_back(g);
      }
    }
    if (candidates.empty()) return -1;
    switch (config.schedule) {
      case GenerationSchedule::kSequential:
        return static_cast<std::ptrdiff_t>(candidates.front());
      case GenerationSchedule::kRarestFirst: {
        std::size_t best = candidates.front();
        for (std::size_t g : candidates) {
          if (receiver.decoder->generation_rank(g) <
              receiver.decoder->generation_rank(best)) {
            best = g;
          }
        }
        return static_cast<std::ptrdiff_t>(best);
      }
      case GenerationSchedule::kRandom:
        return static_cast<std::ptrdiff_t>(
            candidates[rng.next_below(candidates.size())]);
    }
    return -1;
  };

  // Seed loop: can serve every generation.
  const std::vector<bool> seed_has(config.generations, true);
  std::function<void()> seed_tick = [&] {
    if (completed == config.peers) return;
    const std::size_t target = rng.next_below(config.peers);
    const auto g = choose_generation(seed_has, peers[target]);
    if (g >= 0) {
      const auto generation = static_cast<std::uint32_t>(g);
      if (seed_block) {
        deliver(target,
                coding::serialize(generation, seed_block(generation, rng)),
                generation);
      } else {
        deliver(target, seed_encoder.encode_packet(generation, rng),
                generation);
      }
    }
    sim.schedule_in(1.0 / config.seed_blocks_per_second, seed_tick);
  };
  sim.schedule_in(1.0 / config.seed_blocks_per_second, seed_tick);

  // Peer gossip loops.
  std::vector<std::function<void()>> peer_ticks(config.peers);
  for (std::size_t p = 0; p < config.peers; ++p) {
    peer_ticks[p] = [&, p] {
      if (completed == config.peers) return;
      Peer& peer = peers[p];
      if (!peer.neighbors.empty()) {
        const std::size_t target =
            peer.neighbors[rng.next_below(peer.neighbors.size())];
        std::vector<bool> has(config.generations);
        for (std::size_t g = 0; g < config.generations; ++g) {
          has[g] = peer.buffers[g].buffered() > 0;
        }
        const auto g = choose_generation(has, peers[target]);
        if (g >= 0) {
          const coding::CodedBlock mixed =
              peer.buffers[static_cast<std::size_t>(g)].recode(rng);
          deliver(target,
                  coding::serialize(static_cast<std::uint32_t>(g), mixed),
                  static_cast<std::uint32_t>(g));
        }
      }
      sim.schedule_in(1.0 / config.peer_blocks_per_second, peer_ticks[p]);
    };
    sim.schedule_in(1.0 / config.peer_blocks_per_second, peer_ticks[p]);
  }

  sim.run_until(config.max_seconds);

  // Drain reorder buffers and collect per-channel fault counters.
  for (std::size_t p = 0; p < channels.size(); ++p) {
    for (auto& arrival : channels[p].flush()) {
      receive(p, arrival);
    }
    result.channel += channels[p].stats();
  }

  result.all_completed = completed == config.peers;
  result.content_verified = result.all_completed;
  for (Peer& peer : peers) {
    result.completion_seconds =
        std::max(result.completion_seconds, peer.completed_at);
    if (peer.decoder->is_complete()) {
      if (peer.decoder->reassemble() != content) {
        result.content_verified = false;
      }
    }
  }
  result.generation_half_completion.assign(config.generations, 0);
  for (std::size_t g = 0; g < config.generations; ++g) {
    auto& times = generation_completions[g];
    std::sort(times.begin(), times.end());
    const std::size_t half = (config.peers + 1) / 2;
    if (times.size() >= half && half > 0) {
      result.generation_half_completion[g] = times[half - 1];
    }
  }
  return result;
}

}  // namespace extnc::net
