// FaultyChannel: a link that does to packets what real networks do.
//
// Every wire packet offered to the channel is subjected to one of five
// fault classes — loss, corruption (a flipped bit), truncation,
// duplication, reordering — each with its own probability, evaluated in
// that priority order so every packet suffers at most one fault and the
// per-reason counters account exactly for what happened (sent ==
// delivered_intact + lost + corrupted + truncated + duplicated + reordered
// up to the reorder buffer still in flight; see ChannelStats).
//
// The channel operates on raw wire bytes, not CodedBlocks: corruption and
// truncation are byte-level faults that only the wire layer (XNC2 CRC,
// shape checks) can catch, which is exactly what the fault injector
// exists to exercise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/rng.h"

namespace extnc::net {

struct FaultSpec {
  double loss = 0;       // packet vanishes
  double corrupt = 0;    // one random bit flipped
  double truncate = 0;   // cut to a random shorter length (possibly 0)
  double duplicate = 0;  // delivered twice
  double reorder = 0;    // held back, delivered after the next packet

  bool any() const {
    return loss > 0 || corrupt > 0 || truncate > 0 || duplicate > 0 ||
           reorder > 0;
  }
  void validate() const;
};

struct ChannelStats {
  std::size_t sent = 0;        // packets offered to the channel
  std::size_t delivered = 0;   // packets handed out (duplicates count twice)
  std::size_t lost = 0;
  std::size_t corrupted = 0;
  std::size_t truncated = 0;
  std::size_t duplicated = 0;
  std::size_t reordered = 0;

  // Total injected faults of any kind.
  std::size_t faults() const {
    return lost + corrupted + truncated + duplicated + reordered;
  }
  // Faults that damage packet *content* — the ones the wire layer must
  // reject (loss never arrives; duplicates/reorders arrive intact).
  std::size_t damaged() const { return corrupted + truncated; }

  ChannelStats& operator+=(const ChannelStats& other) {
    sent += other.sent;
    delivered += other.delivered;
    lost += other.lost;
    corrupted += other.corrupted;
    truncated += other.truncated;
    duplicated += other.duplicated;
    reordered += other.reordered;
    return *this;
  }
};

class FaultyChannel {
 public:
  // The channel owns its RNG stream so fault draws don't perturb the
  // simulation's main trajectory (a fault-free channel is a pure pass-
  // through, bit-for-bit and draw-for-draw).
  FaultyChannel(FaultSpec spec, std::uint64_t seed);

  // Offer one packet; returns what actually arrives (0, 1 or 2 packets),
  // in arrival order.
  std::vector<std::vector<std::uint8_t>> transmit(
      std::vector<std::uint8_t> packet);

  // Release a held-back (reordered) packet with no successor to ride
  // behind; call when the simulation drains.
  std::vector<std::vector<std::uint8_t>> flush();

  // Packets currently held in the reorder buffer (0 or 1).
  std::size_t in_flight() const { return held_.has_value() ? 1 : 0; }

  const ChannelStats& stats() const { return stats_; }

 private:
  FaultSpec spec_;
  Rng rng_;
  ChannelStats stats_;
  std::optional<std::vector<std::uint8_t>> held_;
};

}  // namespace extnc::net
