#include "net/butterfly.h"

#include "coding/encoder.h"
#include "coding/progressive_decoder.h"
#include "coding/recoder.h"
#include "util/assert.h"
#include "util/rng.h"

namespace extnc::net {

namespace {

// A sink decoder plus bookkeeping.
struct Sink {
  explicit Sink(const coding::Params& params) : decoder(params) {}

  std::size_t redundant = 0;

  void receive(const coding::CodedBlock& block) {
    if (decoder.add(block) != coding::ProgressiveDecoder::Result::kAccepted) {
      ++redundant;
    }
  }

  coding::ProgressiveDecoder decoder;
};

// An uncoded source block as a unit-coefficient coded block (what routing
// forwards).
coding::CodedBlock unit_block(const coding::Segment& source, std::size_t i) {
  coding::CodedBlock block(source.params());
  block.coefficients()[i] = 1;
  std::copy(source.block(i).begin(), source.block(i).end(),
            block.payload().begin());
  return block;
}

ButterflyResult finish(const coding::Segment& source, const Sink& t1,
                       const Sink& t2, std::size_t rounds) {
  ButterflyResult result;
  result.rounds = rounds;
  result.redundant_blocks = t1.redundant + t2.redundant;
  result.decoded_correctly =
      t1.decoder.is_complete() && t2.decoder.is_complete() &&
      t1.decoder.decoded_segment() == source &&
      t2.decoder.decoded_segment() == source;
  return result;
}

}  // namespace

ButterflyResult run_butterfly_coded(const coding::Params& params,
                                    std::uint64_t seed) {
  Rng rng(seed);
  const coding::Segment source = coding::Segment::random(params, rng);
  const coding::Encoder encoder(source);
  Sink t1(params);
  Sink t2(params);
  // The relay recodes over everything it has seen, as a real network-coded
  // node would.
  coding::Recoder relay(params);

  std::size_t rounds = 0;
  const std::size_t round_limit = params.n * 4 + 16;
  while (!(t1.decoder.is_complete() && t2.decoder.is_complete())) {
    ++rounds;
    EXTNC_CHECK(rounds <= round_limit);  // coding must not stall
    // S emits one fresh coded block down each side.
    const coding::CodedBlock left = encoder.encode(rng);
    const coding::CodedBlock right = encoder.encode(rng);
    // A -> T1 and relay; B -> T2 and relay.
    t1.receive(left);
    t2.receive(right);
    relay.add(left);
    relay.add(right);
    // The bottleneck carries ONE recoded block, duplicated to both sinks.
    const coding::CodedBlock mixed = relay.recode(rng);
    t1.receive(mixed);
    t2.receive(mixed);
  }
  return finish(source, t1, t2, rounds);
}

ButterflyResult run_butterfly_routed(const coding::Params& params,
                                     std::uint64_t seed) {
  Rng rng(seed);
  const coding::Segment source = coding::Segment::random(params, rng);
  Sink t1(params);
  Sink t2(params);

  // Optimal fractional routing: three Steiner trees packed over a 2-round
  // cycle deliver 3 distinct blocks to both sinks (rate 1.5/sink), the
  // butterfly's routing capacity. x1 rides the left side + bottleneck, x2
  // the right side + bottleneck, x3 the two direct edges across the two
  // rounds. Every edge is used at most once per round.
  std::size_t next = 0;
  auto take = [&]() {
    const std::size_t i = next % params.n;
    ++next;
    return unit_block(source, i);
  };

  std::size_t rounds = 0;
  const std::size_t round_limit = params.n * 4 + 16;
  while (!(t1.decoder.is_complete() && t2.decoder.is_complete())) {
    EXTNC_CHECK(rounds + 2 <= round_limit);
    const coding::CodedBlock x1 = take();
    const coding::CodedBlock x2 = take();
    const coding::CodedBlock x3 = take();
    // Round 1: tree 1 (S->A->{T1, relay->T2}) plus x3's right half.
    ++rounds;
    t1.receive(x1);
    t2.receive(x1);  // via the bottleneck
    t2.receive(x3);  // S->B->T2
    if (t1.decoder.is_complete() && t2.decoder.is_complete()) break;
    // Round 2: tree 2 (S->B->{T2, relay->T1}) plus x3's left half.
    ++rounds;
    t2.receive(x2);
    t1.receive(x2);  // via the bottleneck
    t1.receive(x3);  // S->A->T1
  }
  return finish(source, t1, t2, rounds);
}

}  // namespace extnc::net
