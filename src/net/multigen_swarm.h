// Multi-generation swarm: Avalanche-shaped bulk distribution of a whole
// file.
//
// The content is split into G generations (coding/generation_stream.h);
// the seed and all peers exchange *wire packets* (coding/wire.h), exactly
// the bytes a UDP socket would carry. Peers run one GenerationDecoder
// each and gossip recoded packets for a generation chosen by the
// configured scheduling policy — the piece-selection question of
// BitTorrent-era systems, transplanted to generations:
//
//  * kRandom       — uniform among generations the sender can contribute to;
//  * kSequential   — lowest-index incomplete generation first (streaming
//                    order; prone to end-game stalls on the last pieces);
//  * kRarestFirst  — the generation the *receiver* has made the least
//                    progress on (needs receiver state; modeled as the
//                    gossip metadata exchange real systems do).
//
// Network coding removes the block-level rarest-piece problem entirely
// (any n independent packets do), but generation selection still matters —
// this simulation measures how much.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "coding/coded_block.h"
#include "coding/params.h"
#include "net/faulty_channel.h"
#include "util/rng.h"

namespace extnc::net {

enum class GenerationSchedule { kRandom, kSequential, kRarestFirst };

constexpr const char* schedule_name(GenerationSchedule schedule) {
  switch (schedule) {
    case GenerationSchedule::kRandom: return "random";
    case GenerationSchedule::kSequential: return "sequential";
    case GenerationSchedule::kRarestFirst: return "rarest-first";
  }
  return "?";
}

struct MultiGenSwarmConfig {
  coding::Params params{.n = 8, .k = 32};
  std::size_t generations = 4;
  std::size_t peers = 10;
  std::size_t neighbors = 3;
  double seed_blocks_per_second = 8.0;
  double peer_blocks_per_second = 4.0;
  double loss_probability = 0.0;
  GenerationSchedule schedule = GenerationSchedule::kRandom;
  std::uint64_t rng_seed = 1;
  double max_seconds = 20000.0;
  // Byte-level fault injection on every transmission. Damaged packets are
  // caught by the wire CRC at the receiving peer (counted in
  // packets_rejected) and never buffered for recoding.
  FaultSpec faults{};
  // Optional seed-encoder factory: invoked once with (params, content);
  // the returned closure then produces the seed's coded block for a
  // requested generation in place of the built-in GenerationEncoder
  // (blocks are wrapped in the standard wire format before transmission).
  // This is how an accelerated, fault-supervised seed plugs in without
  // net linking against gpu — see gpu::ResilientSeed::bind_content.
  using SeedBlockFn = std::function<coding::CodedBlock(std::uint32_t, Rng&)>;
  std::function<SeedBlockFn(const coding::Params&,
                            std::span<const std::uint8_t>)>
      make_seed_encoder;
};

struct MultiGenSwarmResult {
  bool all_completed = false;
  double completion_seconds = 0;
  std::size_t packets_sent = 0;
  std::size_t packets_lost = 0;
  std::size_t packets_rejected = 0;   // malformed/damaged, dropped at parse
                                      // (0 unless faults are injected)
  bool content_verified = false;      // every peer reassembled the file
  // Aggregate fault-injection counters across all transmissions.
  ChannelStats channel;
  // Mean time by which HALF the peers finished each generation — low for
  // sequential (earlier generations land sooner), useful for streaming.
  std::vector<double> generation_half_completion;
};

MultiGenSwarmResult run_multigen_swarm(const MultiGenSwarmConfig& config);

}  // namespace extnc::net
