#include "net/streaming.h"

#include <cmath>

namespace extnc::net {

double segment_duration_s(const StreamConfig& config) {
  const double bits = static_cast<double>(config.segment.segment_bytes()) * 8;
  return bits / (config.stream_kbps * 1000.0);
}

std::size_t peers_by_coding_rate(double coding_mb_per_s,
                                 const StreamConfig& config) {
  const double bits_per_s = coding_mb_per_s * 1e6 * 8;
  return static_cast<std::size_t>(bits_per_s / (config.stream_kbps * 1000.0));
}

std::size_t peers_by_nic(const StreamConfig& config, std::size_t nics) {
  const double bits_per_s = config.nic_gbps * 1e9 * static_cast<double>(nics);
  return static_cast<std::size_t>(bits_per_s / (config.stream_kbps * 1000.0));
}

double nics_saturated(double coding_mb_per_s, const StreamConfig& config) {
  return coding_mb_per_s * 1e6 * 8 / (config.nic_gbps * 1e9);
}

std::size_t coded_blocks_per_segment(std::size_t peers,
                                     const StreamConfig& config) {
  return peers * config.segment.n;
}

std::size_t segments_in_memory(std::size_t memory_bytes,
                               const StreamConfig& config) {
  return memory_bytes / config.segment.segment_bytes();
}

}  // namespace extnc::net
