#include "net/faulty_channel.h"

#include <utility>

#include "util/assert.h"
#include "util/metrics_registry.h"

namespace extnc::net {

void FaultSpec::validate() const {
  for (const double p : {loss, corrupt, truncate, duplicate, reorder}) {
    EXTNC_CHECK(p >= 0.0 && p <= 1.0);
  }
}

FaultyChannel::FaultyChannel(FaultSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {
  spec_.validate();
}

std::vector<std::vector<std::uint8_t>> FaultyChannel::transmit(
    std::vector<std::uint8_t> packet) {
  ++stats_.sent;
  std::vector<std::vector<std::uint8_t>> arrivals;

  // At most one fault per packet, drawn in priority order, so the
  // counters partition `sent` and accounting stays exact.
  if (rng_.next_double() < spec_.loss) {
    ++stats_.lost;
    metrics::count("net.channel.lost");
  } else if (rng_.next_double() < spec_.corrupt) {
    ++stats_.corrupted;
    metrics::count("net.channel.corrupted");
    if (!packet.empty()) {
      const std::size_t byte = rng_.next_below(packet.size());
      packet[byte] ^= static_cast<std::uint8_t>(1u << rng_.next_below(8));
    }
    arrivals.push_back(std::move(packet));
  } else if (rng_.next_double() < spec_.truncate) {
    ++stats_.truncated;
    metrics::count("net.channel.truncated");
    if (!packet.empty()) packet.resize(rng_.next_below(packet.size()));
    arrivals.push_back(std::move(packet));
  } else if (rng_.next_double() < spec_.duplicate) {
    ++stats_.duplicated;
    metrics::count("net.channel.duplicated");
    arrivals.push_back(packet);
    arrivals.push_back(std::move(packet));
  } else if (!held_.has_value() && rng_.next_double() < spec_.reorder) {
    ++stats_.reordered;
    metrics::count("net.channel.reordered");
    held_ = std::move(packet);
  } else {
    arrivals.push_back(std::move(packet));
  }

  // A held packet rides out behind whatever was delivered this round.
  if (held_.has_value() && !arrivals.empty()) {
    arrivals.push_back(std::move(*held_));
    held_.reset();
  }
  stats_.delivered += arrivals.size();
  metrics::count("net.channel.sent");
  metrics::count("net.channel.delivered",
                 static_cast<double>(arrivals.size()));
  return arrivals;
}

std::vector<std::vector<std::uint8_t>> FaultyChannel::flush() {
  std::vector<std::vector<std::uint8_t>> arrivals;
  if (held_.has_value()) {
    arrivals.push_back(std::move(*held_));
    held_.reset();
    ++stats_.delivered;
  }
  return arrivals;
}

}  // namespace extnc::net
