#include "net/swarm.h"

#include <algorithm>

#include "coding/encoder.h"
#include "coding/progressive_decoder.h"
#include "coding/recoder.h"
#include "coding/wire.h"
#include "net/event_sim.h"
#include "util/assert.h"
#include "util/metrics_registry.h"
#include "util/rng.h"

namespace extnc::net {

namespace {

struct Peer {
  explicit Peer(const coding::Params& params) : decoder(params) {}

  coding::ProgressiveDecoder decoder;
  // Everything received, for relaying (recoded or verbatim).
  std::vector<coding::CodedBlock> received;
  double completed_at = 0;
  std::vector<std::size_t> neighbors;
};

}  // namespace

SwarmResult run_swarm(const SwarmConfig& config) {
  EXTNC_CHECK(config.peers >= 1);
  EXTNC_CHECK(config.server_blocks_per_second > 0);
  Rng rng(config.seed);
  const coding::Params& params = config.params;
  const coding::Segment source = coding::Segment::random(params, rng);
  const coding::Encoder encoder(source);
  SwarmConfig::SeedEncoderFn seed_encode;
  if (config.make_seed_encoder) seed_encode = config.make_seed_encoder(source);
  if (!seed_encode) {
    seed_encode = [&encoder](Rng& r) { return encoder.encode(r); };
  }

  std::vector<Peer> peers(config.peers, Peer(params));
  const std::size_t degree =
      std::min(config.neighbors, config.peers > 1 ? config.peers - 1 : 0);
  for (std::size_t p = 0; p < config.peers; ++p) {
    while (peers[p].neighbors.size() < degree) {
      const std::size_t q = rng.next_below(config.peers);
      if (q == p) continue;
      if (std::find(peers[p].neighbors.begin(), peers[p].neighbors.end(), q) !=
          peers[p].neighbors.end()) {
        continue;
      }
      peers[p].neighbors.push_back(q);
    }
  }

  SwarmResult result;
  result.peer_completion_seconds.assign(config.peers, 0);
  std::size_t completed = 0;
  EventSim sim;

  // Per-receiving-peer fault injectors, each with an independent RNG
  // stream so fault-free runs keep the exact legacy trajectory.
  config.faults.validate();
  std::vector<FaultyChannel> channels;
  if (config.faults.any()) {
    channels.reserve(config.peers);
    for (std::size_t p = 0; p < config.peers; ++p) {
      channels.emplace_back(config.faults,
                            SplitMix64(config.seed ^ (0x5a14fULL + p)).next());
    }
  }

  auto accept = [&](std::size_t target, const coding::CodedBlockView& block) {
    Peer& peer = peers[target];
    peer.received.push_back(block.materialize());
    const bool was_complete = peer.decoder.is_complete();
    const auto outcome =
        peer.decoder.add(block.coefficients(), block.payload());
    if (was_complete) {
      ++result.blocks_after_completion;
    } else if (outcome == coding::ProgressiveDecoder::Result::kAccepted) {
      ++result.blocks_innovative;
    } else {
      ++result.blocks_dependent;
    }
    if (!was_complete && peer.decoder.is_complete()) {
      peer.completed_at = sim.now();
      result.peer_completion_seconds[target] = sim.now();
      ++completed;
    }
  };

  // Arrivals are CRC-checked (coding/wire.h) before the decoder or the
  // relay buffer sees them: a damaged block is rejected here, at the first
  // honest hop, never recoded onward.
  auto receive = [&](std::size_t target, std::span<const std::uint8_t> bytes) {
    const auto parsed = coding::parse_view(bytes);
    if (!parsed.ok() || !(parsed.packet().block.params() == params)) {
      ++result.blocks_rejected;
      return;
    }
    accept(target, parsed.packet().block);
  };

  auto deliver = [&](std::size_t target, const coding::CodedBlock& block) {
    ++result.blocks_sent;
    if (rng.next_double() < config.loss_probability) {
      ++result.blocks_lost;
      return;
    }
    if (config.faults.any()) {
      for (auto& arrival :
           channels[target].transmit(coding::serialize(0, block))) {
        receive(target, arrival);
      }
    } else {
      accept(target, coding::CodedBlockView(block));
    }
  };

  // Server upload loop: a fresh coded block to a uniformly random peer.
  std::function<void()> server_tick = [&] {
    if (completed == config.peers) return;
    deliver(rng.next_below(config.peers), seed_encode(rng));
    sim.schedule_in(1.0 / config.server_blocks_per_second, server_tick);
  };
  sim.schedule_in(1.0 / config.server_blocks_per_second, server_tick);

  // Peer gossip loops.
  std::vector<std::function<void()>> peer_ticks(config.peers);
  for (std::size_t p = 0; p < config.peers; ++p) {
    peer_ticks[p] = [&, p] {
      if (completed == config.peers) return;
      Peer& peer = peers[p];
      if (!peer.received.empty() && !peer.neighbors.empty()) {
        const std::size_t target =
            peer.neighbors[rng.next_below(peer.neighbors.size())];
        if (config.use_recoding) {
          coding::Recoder recoder(params);
          for (const auto& block : peer.received) recoder.add(block);
          deliver(target, recoder.recode(rng));
        } else {
          deliver(target,
                  peer.received[rng.next_below(peer.received.size())]);
        }
      }
      sim.schedule_in(1.0 / config.peer_blocks_per_second, peer_ticks[p]);
    };
    sim.schedule_in(1.0 / config.peer_blocks_per_second, peer_ticks[p]);
  }

  sim.run_until(config.max_seconds);

  // Drain reorder buffers and collect per-channel fault counters.
  for (std::size_t p = 0; p < channels.size(); ++p) {
    for (auto& arrival : channels[p].flush()) {
      receive(p, arrival);
    }
    result.channel += channels[p].stats();
  }

  result.all_completed = completed == config.peers;
  result.completion_seconds = 0;
  result.all_decoded_correctly = result.all_completed;
  for (std::size_t p = 0; p < config.peers; ++p) {
    result.completion_seconds =
        std::max(result.completion_seconds, result.peer_completion_seconds[p]);
    if (peers[p].decoder.is_complete()) {
      if (!(peers[p].decoder.decoded_segment() == source)) {
        result.all_decoded_correctly = false;
      }
    }
  }
  metrics::count("net.swarm.runs");
  metrics::count("net.swarm.blocks_sent",
                 static_cast<double>(result.blocks_sent));
  metrics::count("net.swarm.blocks_lost",
                 static_cast<double>(result.blocks_lost));
  metrics::count("net.swarm.blocks_dependent",
                 static_cast<double>(result.blocks_dependent));
  metrics::gauge("net.swarm.last_completion_seconds",
                 result.completion_seconds);
  return result;
}

}  // namespace extnc::net
