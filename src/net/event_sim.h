// Minimal discrete-event simulator used by the networking layer.
//
// Deliberately small: a time-ordered queue of callbacks plus a clock. The
// swarm and streaming simulations schedule transmission-complete events;
// nothing here knows about networking.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace extnc::net {

class EventSim {
 public:
  using Callback = std::function<void()>;

  double now() const { return now_; }

  // Schedule `fn` at absolute time `at` (>= now; an earlier `at` — e.g.
  // floating-point backsliding in a caller's delay arithmetic — is clamped
  // to now, so the event fires on the next step rather than aborting).
  // Events at equal times fire in scheduling order (stable).
  void schedule_at(double at, Callback fn);
  void schedule_in(double delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  // Run a single event; returns false if none remain.
  bool step();
  // Run until the queue drains or the clock passes `deadline`.
  void run_until(double deadline);
  void run_all();

 private:
  struct Event {
    double time;
    std::uint64_t sequence;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  double now_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace extnc::net
