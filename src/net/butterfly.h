// The butterfly network — the canonical example (Ahlswede et al. [1]) of
// network coding beating routing, run here with real coded blocks.
//
//        S
//       / \ .
//      A   B        every edge carries one block per round
//      |\ /|  .
//      | X |        X = relay R1 -> R2 (the bottleneck edge)
//      |/ \|  .
//     T1   T2
//
// S sends one block per round to each of A and B. A forwards to T1 and to
// the relay; B forwards to T2 and to the relay. The relay's single
// outgoing edge reaches both sinks (via R2 duplicating to T1 and T2).
// Multicast capacity is 2 blocks/round per sink; routing through the
// bottleneck can only ever serve one sink a *new* block per round, giving
// 1.5/round on average — network coding closes exactly that gap, and this
// module measures it with real RLNC traffic.
#pragma once

#include <cstddef>
#include <cstdint>

#include "coding/params.h"

namespace extnc::net {

struct ButterflyResult {
  // Rounds until BOTH sinks decoded the full generation.
  std::size_t rounds = 0;
  bool decoded_correctly = false;
  // Delivered blocks that carried no new information at the sinks.
  std::size_t redundant_blocks = 0;
  // Effective per-sink goodput in blocks per round.
  double blocks_per_round(const coding::Params& params) const {
    return rounds == 0 ? 0
                       : static_cast<double>(params.n) /
                             static_cast<double>(rounds);
  }
};

// strategy: coded relays recode at the bottleneck; routed relays forward
// verbatim (alternating sides, the best routing can do).
ButterflyResult run_butterfly_coded(const coding::Params& params,
                                    std::uint64_t seed);
ButterflyResult run_butterfly_routed(const coding::Params& params,
                                     std::uint64_t seed);

}  // namespace extnc::net
