#include "net/file_transfer.h"

#include <cstring>

#include "coding/generation_stream.h"
#include "util/assert.h"

namespace extnc::net {

namespace {

constexpr std::uint32_t kFileMagic = 0x46434e58;  // "XNCF"
constexpr std::size_t kFileHeaderBytes = 32;
constexpr std::uint32_t kFlagWireV2 = 1u << 0;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

}  // namespace

std::vector<std::uint8_t> encode_file(std::span<const std::uint8_t> content,
                                      const FileEncodeOptions& options) {
  EXTNC_CHECK(options.redundancy >= 0.0);
  EXTNC_CHECK(options.loss >= 0.0 && options.loss < 1.0);
  EXTNC_CHECK(options.corruption >= 0.0 && options.corruption <= 1.0);
  Rng rng(options.seed);
  coding::GenerationEncoder encoder(options.params, content,
                                    options.systematic, options.wire_format);
  FileEncodeOptions::SeedBlockFn seed_block;
  if (options.make_seed_encoder) {
    // The hook emits coded blocks only; systematic rounds need the
    // built-in encoder's pass-through packets.
    EXTNC_CHECK(!options.systematic);
    seed_block = options.make_seed_encoder(options.params, content);
  }

  const std::size_t per_generation = static_cast<std::size_t>(
      static_cast<double>(options.params.n) * (1.0 + options.redundancy) +
      0.999);
  std::vector<std::vector<std::uint8_t>> packets;
  for (std::uint32_t g = 0; g < encoder.generations(); ++g) {
    for (std::size_t i = 0; i < per_generation; ++i) {
      auto packet = seed_block
                        ? coding::serialize(g, seed_block(g, rng),
                                            options.wire_format)
                        : encoder.encode_packet(g, rng);
      if (rng.next_double() < options.loss) continue;  // dropped in transit
      // Guarded so corruption-free runs keep the seeded rng trajectory of
      // the original (corruption-less) encoder, draw for draw.
      if (options.corruption > 0.0 &&
          rng.next_double() < options.corruption) {  // damaged in transit
        const std::size_t byte = rng.next_below(packet.size());
        packet[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
      }
      packets.push_back(std::move(packet));
    }
  }

  std::vector<std::uint8_t> out;
  out.reserve(kFileHeaderBytes +
              packets.size() *
                  coding::wire_size(options.params, options.wire_format));
  put_u32(out, kFileMagic);
  put_u32(out, static_cast<std::uint32_t>(options.params.n));
  put_u32(out, static_cast<std::uint32_t>(options.params.k));
  put_u64(out, content.size());
  put_u32(out, static_cast<std::uint32_t>(encoder.generations()));
  put_u32(out, static_cast<std::uint32_t>(packets.size()));
  put_u32(out, options.wire_format == coding::WireFormat::kV2 ? kFlagWireV2
                                                              : 0u);
  for (const auto& packet : packets) {
    out.insert(out.end(), packet.begin(), packet.end());
  }
  return out;
}

std::optional<FileInfo> describe_file(
    std::span<const std::uint8_t> container) {
  if (container.size() < kFileHeaderBytes) return std::nullopt;
  if (get_u32(container.data()) != kFileMagic) return std::nullopt;
  FileInfo info;
  info.params.n = get_u32(container.data() + 4);
  info.params.k = get_u32(container.data() + 8);
  info.content_bytes = get_u64(container.data() + 12);
  info.generations = get_u32(container.data() + 20);
  info.packets = get_u32(container.data() + 24);
  const std::uint32_t flags = get_u32(container.data() + 28);
  info.wire_format = (flags & kFlagWireV2) ? coding::WireFormat::kV2
                                           : coding::WireFormat::kV1;
  if (info.params.n == 0 || info.params.k == 0 || info.generations == 0) {
    return std::nullopt;
  }
  return info;
}

FileDecodeResult decode_file(std::span<const std::uint8_t> container) {
  FileDecodeResult result;
  const auto info = describe_file(container);
  if (!info.has_value()) {
    result.error = "not a coded file container";
    return result;
  }
  const std::size_t packet_bytes =
      coding::wire_size(info->params, info->wire_format);
  coding::GenerationDecoder decoder(info->params, info->generations);
  std::size_t offset = kFileHeaderBytes;
  for (std::uint32_t i = 0; i < info->packets; ++i) {
    if (offset + packet_bytes > container.size()) {
      result.error = "container truncated";
      return result;
    }
    const auto outcome =
        decoder.add_packet(container.subspan(offset, packet_bytes));
    offset += packet_bytes;
    switch (outcome) {
      case coding::GenerationDecoder::Accept::kInnovative:
      case coding::GenerationDecoder::Accept::kGenerationComplete:
        ++result.packets_used;
        break;
      case coding::GenerationDecoder::Accept::kDependent:
        ++result.packets_dependent;
        break;
      case coding::GenerationDecoder::Accept::kRejected:
        ++result.packets_rejected;
        break;
    }
  }
  if (!decoder.is_complete()) {
    result.error = "insufficient independent packets (" +
                   std::to_string(decoder.generations_complete()) + "/" +
                   std::to_string(info->generations) +
                   " generations complete)";
    return result;
  }
  result.content = decoder.reassemble();
  if (result.content.size() < info->content_bytes) {
    result.error = "reassembled size inconsistent";
    return result;
  }
  result.content.resize(info->content_bytes);
  result.ok = true;
  return result;
}

}  // namespace extnc::net
