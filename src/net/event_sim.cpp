#include "net/event_sim.h"

#include "util/assert.h"
#include "util/metrics_registry.h"

namespace extnc::net {

void EventSim::schedule_at(double at, Callback fn) {
  EXTNC_CHECK(fn != nullptr);
  EXTNC_CHECK(at == at);  // NaN would sink below every comparison
  if (at < now_) at = now_;  // clamp, as the header promises
  queue_.push(Event{at, next_sequence_++, std::move(fn)});
}

bool EventSim::step() {
  if (queue_.empty()) return false;
  // Move the event out before running it: the callback may schedule.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.time;
  event.fn();
  metrics::count("net.event_sim.events");
  return true;
}

void EventSim::run_until(double deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void EventSim::run_all() {
  while (step()) {
  }
}

}  // namespace extnc::net
