// Lossy line (multi-hop relay chain): source -> R1 -> ... -> R_{h-1} ->
// sink, every link dropping packets i.i.d. with probability epsilon, no
// feedback anywhere.
//
// The textbook result this measures: with recoding at every relay, the
// chain sustains the min-cut rate (1 - eps) regardless of hop count —
// every relay regenerates redundancy from whatever it holds. With plain
// store-and-forward, a packet must survive every link, so the end-to-end
// rate collapses to (1 - eps)^hops. This is the second pillar (after the
// butterfly) of why coding *inside* the network matters, and why Sec. 2 of
// the paper emphasizes that random linear codes "can be recoded without
// affecting the guarantee to decode".
#pragma once

#include <cstddef>
#include <cstdint>

#include "coding/params.h"

namespace extnc::net {

struct LineNetworkConfig {
  coding::Params params{.n = 16, .k = 32};
  std::size_t hops = 3;          // number of links (>= 1)
  double loss_probability = 0.2;
  bool recode_at_relays = true;
  std::uint64_t seed = 1;
  std::size_t max_rounds = 100000;
};

struct LineNetworkResult {
  bool completed = false;
  std::size_t rounds = 0;           // source transmissions (1 per round)
  bool decoded_correctly = false;
  // Effective end-to-end goodput, blocks per round.
  double goodput(const coding::Params& params) const {
    return rounds == 0 ? 0
                       : static_cast<double>(params.n) /
                             static_cast<double>(rounds);
  }
};

LineNetworkResult run_line_network(const LineNetworkConfig& config);

}  // namespace extnc::net
