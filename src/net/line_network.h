// Lossy line (multi-hop relay chain): source -> R1 -> ... -> R_{h-1} ->
// sink, every link dropping packets i.i.d. with probability epsilon, no
// feedback anywhere.
//
// The textbook result this measures: with recoding at every relay, the
// chain sustains the min-cut rate (1 - eps) regardless of hop count —
// every relay regenerates redundancy from whatever it holds. With plain
// store-and-forward, a packet must survive every link, so the end-to-end
// rate collapses to (1 - eps)^hops. This is the second pillar (after the
// butterfly) of why coding *inside* the network matters, and why Sec. 2 of
// the paper emphasizes that random linear codes "can be recoded without
// affecting the guarantee to decode".
//
// Integrity model: traffic travels as wire packets (coding/wire.h, XNC2
// CRC trailer). Each link can additionally inject faults (FaultSpec:
// corruption, truncation, duplication, reordering, loss). Relays verify
// the CRC before recoding, so a corrupted packet is dropped at the first
// honest hop instead of polluting every downstream combination; the sink
// decodes through a VerifyingDecoder against the source's SegmentDigest
// manifest, so even pollution that slips past the wire layer cannot
// surface as silently wrong data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "coding/params.h"
#include "net/faulty_channel.h"

namespace extnc::net {

struct LineNetworkConfig {
  coding::Params params{.n = 16, .k = 32};
  std::size_t hops = 3;          // number of links (>= 1)
  double loss_probability = 0.2;
  bool recode_at_relays = true;
  std::uint64_t seed = 1;
  std::size_t max_rounds = 100000;
  // Fault injection applied independently on every link (in addition to
  // loss_probability, which models the classic erasure channel and keeps
  // its own RNG stream for reproducibility of fault-free runs).
  FaultSpec faults{};
};

struct LineNetworkResult {
  bool completed = false;
  std::size_t rounds = 0;           // source transmissions (1 per round)
  bool decoded_correctly = false;
  // Digest verification outcome at the sink (equals completed for this
  // sim — the sink only reports completion once verification passes).
  bool digest_verified = false;
  // Per-link fault-injection counters (size hops).
  std::vector<ChannelStats> link_stats;
  // Damaged packets rejected at the receiving node of each link (CRC or
  // shape failure at parse — pollution stopped before recoding).
  std::size_t packets_rejected = 0;
  // Blocks the sink's verifying decoder ejected after a failed digest
  // check (pollution that somehow passed the wire layer).
  std::size_t blocks_quarantined = 0;

  // Effective end-to-end goodput, blocks per round.
  double goodput(const coding::Params& params) const {
    return rounds == 0 ? 0
                       : static_cast<double>(params.n) /
                             static_cast<double>(rounds);
  }
};

LineNetworkResult run_line_network(const LineNetworkConfig& config);

}  // namespace extnc::net
