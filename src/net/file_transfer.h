// Coded file container: a byte stream holding everything a receiver needs
// to reconstruct a file from RLNC packets.
//
//   offset  size  field
//   0       4     magic "XNCF"
//   4       4     n
//   8       4     k
//   12      8     original content length (little-endian u64)
//   20      4     generation count
//   24      4     packet count
//   28      4     flags (bit 0: packets use the checksummed XNC2 wire
//                 format; see coding/wire.h)
//   32      ...   packets, back to back (coding/wire.h format)
//
// The container is loss- and corruption-tolerant by construction:
// encode_file can emit redundant packets, drop a simulated loss fraction
// and damage a simulated corruption fraction in transit; decode_file
// rejects damaged packets at the wire layer (CRC) and succeeds whenever
// every generation still has n independent clean packets — the property
// the Avalanche line of work builds on.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "coding/coded_block.h"
#include "coding/params.h"
#include "coding/wire.h"
#include "util/rng.h"

namespace extnc::net {

struct FileEncodeOptions {
  coding::Params params{.n = 32, .k = 1024};
  // Extra coded packets per generation beyond n, as a fraction (0.25 = 25%
  // overhead). Protects against loss and corruption.
  double redundancy = 0.0;
  // Fraction of packets dropped before writing (loss simulation).
  double loss = 0.0;
  // Fraction of surviving packets damaged before writing (corruption
  // simulation: one random bit flipped somewhere in the packet). Damaged
  // packets stay in the container — detecting them is the decoder's job.
  double corruption = 0.0;
  bool systematic = false;
  std::uint64_t seed = 1;
  // XNC2 (checksummed) by default; kV1 shaves 4 bytes/packet but makes
  // corruption undetectable — bench/compat use only.
  coding::WireFormat wire_format = coding::WireFormat::kV2;
  // Optional seed-encoder factory (same shape as the swarm hooks): invoked
  // once with (params, content); the returned closure produces each coded
  // block in place of the built-in GenerationEncoder. Incompatible with
  // `systematic` (the hook only emits coded blocks). See
  // gpu::ResilientSeed::bind_content.
  using SeedBlockFn =
      std::function<coding::CodedBlock(std::uint32_t, Rng&)>;
  std::function<SeedBlockFn(const coding::Params&,
                            std::span<const std::uint8_t>)>
      make_seed_encoder;
};

struct FileInfo {
  coding::Params params;
  std::uint64_t content_bytes = 0;
  std::uint32_t generations = 0;
  std::uint32_t packets = 0;
  coding::WireFormat wire_format = coding::WireFormat::kV2;
};

// Encode `content` into a coded container.
std::vector<std::uint8_t> encode_file(std::span<const std::uint8_t> content,
                                      const FileEncodeOptions& options);

// Parse just the container header; nullopt if malformed.
std::optional<FileInfo> describe_file(std::span<const std::uint8_t> container);

struct FileDecodeResult {
  bool ok = false;
  std::string error;  // human-readable reason when !ok
  std::vector<std::uint8_t> content;
  std::size_t packets_used = 0;
  std::size_t packets_dependent = 0;
  std::size_t packets_rejected = 0;
};

FileDecodeResult decode_file(std::span<const std::uint8_t> container);

}  // namespace extnc::net
