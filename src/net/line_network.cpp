#include "net/line_network.h"

#include <deque>
#include <utility>
#include <vector>

#include "coding/encoder.h"
#include "coding/recoder.h"
#include "coding/segment_digest.h"
#include "coding/verifying_decoder.h"
#include "coding/wire.h"
#include "util/assert.h"
#include "util/rng.h"

namespace extnc::net {

namespace {

// A relay either recodes (network coding) or forwards each received packet
// exactly once (store-and-forward; without feedback it cannot know what
// was lost downstream, so re-sending would just duplicate). Either way it
// only touches packets that passed the wire-layer CRC/shape check.
struct Relay {
  explicit Relay(const coding::Params& params) : recoder(params) {}

  coding::Recoder recoder;                  // recoding mode buffer
  std::deque<coding::CodedBlock> queue;     // forwarding mode queue
};

}  // namespace

LineNetworkResult run_line_network(const LineNetworkConfig& config) {
  EXTNC_CHECK(config.hops >= 1);
  EXTNC_CHECK(config.loss_probability >= 0 && config.loss_probability < 1);
  config.faults.validate();
  Rng rng(config.seed);
  const coding::Params& params = config.params;
  const coding::Segment source_data = coding::Segment::random(params, rng);
  const coding::Encoder encoder(source_data);
  const coding::SegmentDigest manifest =
      coding::SegmentDigest::compute(source_data);

  std::vector<Relay> relays(config.hops - 1, Relay(params));
  coding::VerifyingDecoder sink(manifest);

  // One fault injector per link, each with its own RNG stream so the main
  // trajectory (coefficients + loss draws) is identical whether or not
  // faults are enabled.
  std::vector<FaultyChannel> channels;
  channels.reserve(config.hops);
  for (std::size_t link = 0; link < config.hops; ++link) {
    channels.emplace_back(config.faults,
                          SplitMix64(config.seed ^ (0xfa017ULL + link)).next());
  }

  LineNetworkResult result;
  auto survives = [&] { return rng.next_double() >= config.loss_probability; };

  // Hand one post-channel arrival to the node at the receiving end of
  // `link`: parse (CRC/shape check), drop + count on failure, else feed
  // the relay or the sink.
  auto receive = [&](std::size_t link, std::span<const std::uint8_t> bytes) {
    const auto parsed = coding::parse_view(bytes);
    if (!parsed.ok()) {
      ++result.packets_rejected;
      return;
    }
    const coding::CodedBlockView& block = parsed.packet().block;
    if (!(block.params() == params)) {
      ++result.packets_rejected;
      return;
    }
    if (link == config.hops - 1) {
      sink.add(block);
    } else {
      Relay& next = relays[link];
      if (config.recode_at_relays) {
        next.recoder.add(block);
      } else {
        next.queue.push_back(block.materialize());
      }
    }
  };

  auto transmit = [&](std::size_t link, std::vector<std::uint8_t> packet) {
    if (!survives()) return;  // classic erasure channel, main RNG stream
    if (config.faults.any()) {
      for (auto& arrival : channels[link].transmit(std::move(packet))) {
        receive(link, arrival);
      }
    } else {
      receive(link, packet);
    }
  };

  while (!sink.is_verified() && result.rounds < config.max_rounds) {
    ++result.rounds;
    // All links fire "simultaneously": collect this round's emissions
    // first, deliver after, so a packet advances one hop per round.
    std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> in_flight;

    // Source emits one fresh coded block onto link 0.
    in_flight.emplace_back(0, coding::serialize(0, encoder.encode(rng)));

    // Each relay emits onto its outgoing link (link index r + 1).
    for (std::size_t r = 0; r < relays.size(); ++r) {
      Relay& relay = relays[r];
      if (config.recode_at_relays) {
        if (relay.recoder.buffered() > 0) {
          in_flight.emplace_back(r + 1,
                                 coding::serialize(0, relay.recoder.recode(rng)));
        }
      } else if (!relay.queue.empty()) {
        in_flight.emplace_back(r + 1,
                               coding::serialize(0, relay.queue.front()));
        relay.queue.pop_front();
      }
    }

    for (auto& [link, packet] : in_flight) {
      transmit(link, std::move(packet));
    }
  }

  // Drain reorder buffers so the per-link counters account for every
  // packet ever sent (held packets are delivered, late but intact).
  if (config.faults.any()) {
    for (std::size_t link = 0; link < channels.size(); ++link) {
      for (auto& arrival : channels[link].flush()) {
        receive(link, arrival);
      }
    }
  }

  result.completed = sink.is_verified();
  result.digest_verified = sink.is_verified();
  result.decoded_correctly =
      result.completed && sink.decoded_segment() == source_data;
  result.blocks_quarantined = sink.blocks_quarantined();
  result.link_stats.reserve(channels.size());
  for (const auto& channel : channels) {
    result.link_stats.push_back(channel.stats());
  }
  return result;
}

}  // namespace extnc::net
