#include "net/line_network.h"

#include <deque>
#include <vector>

#include "coding/encoder.h"
#include "coding/progressive_decoder.h"
#include "coding/recoder.h"
#include "util/assert.h"
#include "util/rng.h"

namespace extnc::net {

namespace {

// A relay either recodes (network coding) or forwards each received packet
// exactly once (store-and-forward; without feedback it cannot know what
// was lost downstream, so re-sending would just duplicate).
struct Relay {
  explicit Relay(const coding::Params& params) : recoder(params) {}

  coding::Recoder recoder;                  // recoding mode buffer
  std::deque<coding::CodedBlock> queue;     // forwarding mode queue
};

}  // namespace

LineNetworkResult run_line_network(const LineNetworkConfig& config) {
  EXTNC_CHECK(config.hops >= 1);
  EXTNC_CHECK(config.loss_probability >= 0 && config.loss_probability < 1);
  Rng rng(config.seed);
  const coding::Params& params = config.params;
  const coding::Segment source_data = coding::Segment::random(params, rng);
  const coding::Encoder encoder(source_data);

  std::vector<Relay> relays(config.hops - 1, Relay(params));
  coding::ProgressiveDecoder sink(params);

  LineNetworkResult result;
  auto survives = [&] { return rng.next_double() >= config.loss_probability; };

  while (!sink.is_complete() && result.rounds < config.max_rounds) {
    ++result.rounds;
    // All links fire "simultaneously": collect this round's emissions
    // first, deliver after, so a packet advances one hop per round.
    std::vector<std::pair<std::size_t, coding::CodedBlock>> in_flight;

    // Source emits one fresh coded block onto link 0.
    in_flight.emplace_back(0, encoder.encode(rng));

    // Each relay emits onto its outgoing link (link index r + 1).
    for (std::size_t r = 0; r < relays.size(); ++r) {
      Relay& relay = relays[r];
      if (config.recode_at_relays) {
        if (relay.recoder.buffered() > 0) {
          in_flight.emplace_back(r + 1, relay.recoder.recode(rng));
        }
      } else if (!relay.queue.empty()) {
        in_flight.emplace_back(r + 1, std::move(relay.queue.front()));
        relay.queue.pop_front();
      }
    }

    // Deliver (or drop).
    for (auto& [link, block] : in_flight) {
      if (!survives()) continue;
      if (link == config.hops - 1) {
        sink.add(block);
      } else {
        Relay& next = relays[link];
        if (config.recode_at_relays) {
          next.recoder.add(block);
        } else {
          next.queue.push_back(std::move(block));
        }
      }
    }
  }

  result.completed = sink.is_complete();
  result.decoded_correctly =
      result.completed && sink.decoded_segment() == source_data;
  return result;
}

}  // namespace extnc::net
