// Calibrated throughput model of the paper's CPU testbed: a dual
// quad-core 2.8 GHz Intel Xeon "Mac Pro" (8 cores, SSE2 SIMD, 24 MB
// aggregate L2), running the authors' 8-threaded loop-based coder.
//
// The host this library runs on is not that machine, so benches print two
// CPU series: (a) real measurements of our SIMD implementation on the
// host, and (b) this model, which reproduces the paper's Mac Pro curves so
// that GPU-vs-CPU comparisons can be read in the paper's own units. The
// model is analytic (work-bytes / effective-bandwidth + dispatch
// overheads) with constants calibrated once against the figures; every
// constant is documented at its definition and the calibration targets are
// recorded in EXPERIMENTS.md.
#pragma once

#include <cstddef>

#include "coding/params.h"
#include "cpu/cpu_encoder.h"

namespace extnc::cpu {

struct XeonModel {
  // --- calibration constants -------------------------------------------
  // Aggregate mul_add row-op throughput of 8 SSE2 threads (MB of source
  // bytes processed per second). Calibrated so full-block encoding at
  // n=128 yields the paper's 67.2 MB/s (Fig. 10): 67.2 * 128 = 8601.6.
  double encode_row_throughput_mb = 8601.6;
  // Aggregate throughput of *cooperative* (8 threads on one row op)
  // decoding. Lower than the encode figure: row ops read-modify-write two
  // matrices and the per-op barrier limits scaling. Calibrated against the
  // Fig. 4(b) Mac Pro curve (~35 MB/s at n=128, k=16 KB).
  double decode_row_throughput_mb = 4600.0;
  // Throughput of one core decoding a whole segment serially (no barriers,
  // private working set). 8 such cores beat the cooperative aggregate —
  // that asymmetry is the entire multi-segment win on the CPU (Fig. 9's
  // ~1.3x at n=128, k=16 KB).
  double decode_per_core_mb = 800.0;
  // Cost of dispatching one cooperative (all-threads) row operation,
  // seconds; dominates decoding of small blocks (Fig. 4(b) left side).
  double row_dispatch_seconds = 0.2e-6;
  // Per-coded-block dispatch cost of the partitioned encode scheme,
  // expressed as equivalent payload bytes (Fig. 10's small-k gap).
  double partitioned_overhead_bytes = 384.0;
  // Aggregate L2 budget and the cache-cliff slope for multi-segment
  // decoding (Fig. 9's Mac Pro drop at large block sizes).
  double l2_bytes = 24.0 * 1024 * 1024;
  double cache_cliff_alpha = 0.35;
  // Table-based encoding on the CPU cannot vectorize its lookups; the
  // paper measures "up to 43%" loss vs the SIMD loop-based scheme.
  double table_encode_factor = 0.57;

  // --- modeled bandwidths, MB/s (paper convention: MB of coded/decoded
  // --- payload per second) ----------------------------------------------
  double encode_mb_per_s(const coding::Params& p,
                         EncodePartitioning partitioning) const;
  double encode_table_mb_per_s(const coding::Params& p) const;
  double decode_single_segment_mb_per_s(const coding::Params& p) const;
  // segments in flight == worker threads (8 on the Mac Pro).
  double decode_multi_segment_mb_per_s(const coding::Params& p,
                                       std::size_t segments = 8) const;
};

}  // namespace extnc::cpu
