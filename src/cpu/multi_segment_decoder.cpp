#include "cpu/multi_segment_decoder.h"

#include "coding/progressive_decoder.h"
#include "util/assert.h"

namespace extnc::cpu {

MultiSegmentDecoder::MultiSegmentDecoder(coding::Params params,
                                         ThreadPool& pool)
    : params_(params), pool_(&pool) {
  params_.validate();
}

std::vector<coding::Segment> MultiSegmentDecoder::decode_all(
    const std::vector<coding::CodedBatch>& segments) const {
  for (const auto& batch : segments) {
    EXTNC_CHECK(batch.params() == params_);
    EXTNC_CHECK(batch.count() == params_.n);
  }
  std::vector<coding::Segment> decoded(segments.size());
  pool_->parallel_for(segments.size(), [this, &segments,
                                        &decoded](std::size_t s) {
    coding::ProgressiveDecoder decoder(params_);
    const coding::CodedBatch& batch = segments[s];
    for (std::size_t j = 0; j < batch.count(); ++j) {
      const auto result = decoder.add(batch.coefficients(j), batch.payload(j));
      EXTNC_CHECK(result == coding::ProgressiveDecoder::Result::kAccepted);
    }
    decoded[s] = decoder.decoded_segment();
  });
  return decoded;
}

}  // namespace extnc::cpu
