#include "cpu/cpu_encoder.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "gf256/region.h"
#include "util/assert.h"

namespace extnc::cpu {

namespace {

// Source-block pointer table shared by every coded block of a batch; the
// fused mul_add_regions kernel consumes it directly.
std::vector<const std::uint8_t*> block_pointers(const coding::Segment& segment,
                                                std::size_t n) {
  std::vector<const std::uint8_t*> sources(n);
  for (std::size_t i = 0; i < n; ++i) sources[i] = segment.block(i).data();
  return sources;
}

}  // namespace

CpuEncoder::CpuEncoder(const coding::Segment& segment, ThreadPool& pool,
                       EncodePartitioning partitioning)
    : segment_(&segment), pool_(&pool), partitioning_(partitioning) {}

coding::CodedBatch CpuEncoder::encode_batch(std::size_t count, Rng& rng) const {
  coding::CodedBatch batch(params(), count);
  for (std::size_t j = 0; j < count; ++j) {
    for (auto& c : batch.coefficients(j)) c = rng.next_nonzero_byte();
  }
  encode_into(batch);
  return batch;
}

void CpuEncoder::encode_into(coding::CodedBatch& batch) const {
  EXTNC_CHECK(batch.params() == params());
  if (batch.count() == 0) return;
  if (partitioning_ == EncodePartitioning::kFullBlock) {
    encode_full_block(batch);
  } else {
    encode_partitioned(batch);
  }
}

void CpuEncoder::encode_full_block(coding::CodedBatch& batch) const {
  // Each worker owns a contiguous range of coded blocks and encodes them
  // start to finish.
  const coding::Params p = params();
  const std::vector<const std::uint8_t*> sources =
      block_pointers(*segment_, p.n);
  pool_->parallel_for_chunks(
      batch.count(), [&batch, &sources, p](std::size_t begin, std::size_t end) {
        const gf256::Ops& ops = gf256::ops();
        for (std::size_t j = begin; j < end; ++j) {
          std::uint8_t* out = batch.payload(j).data();
          std::memset(out, 0, p.k);
          ops.mul_add_regions(out, sources.data(),
                              batch.coefficients(j).data(), p.n, p.k);
        }
      });
}

void CpuEncoder::encode_partitioned(coding::CodedBatch& batch) const {
  // All workers cooperate on one coded block at a time, each covering a
  // contiguous byte range of the payload. Ranges are 64-byte aligned so
  // SIMD region ops stay on full vectors.
  const coding::Params p = params();
  const std::vector<const std::uint8_t*> sources =
      block_pointers(*segment_, p.n);
  const std::size_t workers = std::max<std::size_t>(1, pool_->num_threads());
  const std::size_t slice =
      std::max<std::size_t>(64, (p.k + workers - 1) / workers);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    std::uint8_t* out = batch.payload(j).data();
    const std::uint8_t* coeffs = batch.coefficients(j).data();
    pool_->parallel_for_chunks(
        (p.k + slice - 1) / slice,
        [out, coeffs, &sources, p, slice](std::size_t begin, std::size_t end) {
          const gf256::Ops& ops = gf256::ops();
          std::vector<const std::uint8_t*> shifted(p.n);
          for (std::size_t s = begin; s < end; ++s) {
            const std::size_t offset = s * slice;
            const std::size_t len = std::min(slice, p.k - offset);
            for (std::size_t i = 0; i < p.n; ++i) {
              shifted[i] = sources[i] + offset;
            }
            std::memset(out + offset, 0, len);
            ops.mul_add_regions(out + offset, shifted.data(), coeffs, p.n,
                                len);
          }
        });
  }
}

}  // namespace extnc::cpu
