// Parallel multi-segment CPU decoding (Sec. 5.2).
//
// When coded blocks from S segments are available at once (bulk content
// distribution a la Avalanche, or a VoD peer draining several segments),
// the degree of parallelism grows linearly with S: each worker thread owns
// one whole segment and decodes it serially, with no cross-thread
// synchronization at all. The paper runs S = 8 on the 8-core Mac Pro and
// observes a cache cliff once the aggregate working set outgrows the 24 MB
// of combined L2 — visible on the host too when 8 * n * k exceeds LLC.
#pragma once

#include <cstdint>
#include <vector>

#include "coding/batch.h"
#include "coding/segment.h"
#include "util/thread_pool.h"

namespace extnc::cpu {

class MultiSegmentDecoder {
 public:
  // One independent decode job per segment: n coded blocks (coefficients +
  // payloads, e.g. a CodedBatch of exactly n independent rows).
  MultiSegmentDecoder(coding::Params params, ThreadPool& pool);

  // Decodes every batch (each must hold exactly n independent coded
  // blocks) in parallel, one worker per segment. Aborts if any batch is
  // rank-deficient — callers are expected to have collected independent
  // blocks, as the paper's offline-decoding scenario does.
  std::vector<coding::Segment> decode_all(
      const std::vector<coding::CodedBatch>& segments) const;

 private:
  coding::Params params_;
  ThreadPool* pool_;
};

}  // namespace extnc::cpu
