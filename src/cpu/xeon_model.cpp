#include "cpu/xeon_model.h"

#include <algorithm>

namespace extnc::cpu {

namespace {

constexpr double kMb = 1024.0 * 1024.0;

}  // namespace

double XeonModel::encode_mb_per_s(const coding::Params& p,
                                  EncodePartitioning partitioning) const {
  // Each coded byte costs n source bytes of mul_add work.
  const double full_block =
      encode_row_throughput_mb / static_cast<double>(p.n);
  if (partitioning == EncodePartitioning::kFullBlock) return full_block;
  // The partitioned scheme pays a cooperative dispatch per coded block;
  // amortized over k payload bytes it vanishes for large blocks and
  // dominates for small ones — exactly the Fig. 10 gap.
  const double dk = static_cast<double>(p.k);
  return full_block * dk / (dk + partitioned_overhead_bytes);
}

double XeonModel::encode_table_mb_per_s(const coding::Params& p) const {
  return encode_mb_per_s(p, EncodePartitioning::kFullBlock) *
         table_encode_factor;
}

double XeonModel::decode_single_segment_mb_per_s(
    const coding::Params& p) const {
  const double n = static_cast<double>(p.n);
  const double k = static_cast<double>(p.k);
  // Gauss-Jordan performs ~n^2 cooperative row operations over rows of
  // n + k bytes; every row operation is a synchronized dispatch across the
  // 8 threads.
  const double work_bytes = n * n * (n + k);
  const double compute_s = work_bytes / (decode_row_throughput_mb * kMb);
  const double dispatch_s = n * n * row_dispatch_seconds;
  const double useful_bytes = n * k;
  return useful_bytes / kMb / (compute_s + dispatch_s);
}

double XeonModel::decode_multi_segment_mb_per_s(const coding::Params& p,
                                                std::size_t segments) const {
  const double n = static_cast<double>(p.n);
  const double k = static_cast<double>(p.k);
  const double s = static_cast<double>(segments);
  // One segment per core: serial Gauss-Jordan per thread, no dispatch
  // cost, full per-core throughput.
  const double per_core_mb = decode_per_core_mb;
  // Cache cliff: the aggregate working set is the coded payloads of all
  // in-flight segments (the paper's accounting: "4 MB per segment and
  // 32 MB for the 8 active segments" at n=128, k=32 KB).
  const double working_set = s * n * k;
  double throughput = per_core_mb;
  if (working_set > l2_bytes) {
    throughput /= 1.0 + cache_cliff_alpha * (working_set / l2_bytes - 1.0);
  }
  // All s segments decode concurrently (s <= cores), so the batch takes
  // one per-segment decode time and yields s segments of useful bytes.
  const double work_bytes = n * n * (n + k);
  const double per_segment_s = work_bytes / (throughput * kMb);
  return s * n * k / kMb / per_segment_s;
}

}  // namespace extnc::cpu
