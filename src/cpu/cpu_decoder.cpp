#include "cpu/cpu_decoder.h"

#include <cstring>

#include "gf256/gf.h"
#include "gf256/region.h"
#include "util/assert.h"

namespace extnc::cpu {

CpuDecoder::CpuDecoder(coding::Params params, ThreadPool& pool)
    : params_(params),
      pool_(&pool),
      coeffs_(params.n * params.n),
      payloads_(params.n * params.k),
      present_(params.n, false),
      scratch_coeffs_(params.n),
      scratch_payload_(params.k) {
  params_.validate();
}

CpuDecoder::Result CpuDecoder::add(const coding::CodedBlock& block) {
  EXTNC_CHECK(block.params() == params_);
  return add(block.coefficients(), block.payload());
}

CpuDecoder::Result CpuDecoder::add(std::span<const std::uint8_t> coefficients,
                                   std::span<const std::uint8_t> payload) {
  EXTNC_CHECK(coefficients.size() == params_.n);
  EXTNC_CHECK(payload.size() == params_.k);
  if (is_complete()) return Result::kAlreadyComplete;

  const std::size_t n = params_.n;
  const std::size_t k = params_.k;
  const gf256::Ops& ops = gf256::ops();
  std::uint8_t* sc = scratch_coeffs_.data();
  std::uint8_t* sp = scratch_payload_.data();
  std::memcpy(sc, coefficients.data(), n);
  std::memcpy(sp, payload.data(), k);

  // Coefficient-side forward elimination first (serial, n bytes per op);
  // remember which rows contributed so the payload side can replay them in
  // one parallel sweep without re-deriving factors.
  std::vector<const std::uint8_t*> elim_rows;
  std::vector<std::uint8_t> elim_factors;
  elim_rows.reserve(n);
  elim_factors.reserve(n);
  std::size_t pivot = n;
  for (std::size_t col = 0; col < n; ++col) {
    const std::uint8_t value = sc[col];
    if (value == 0) continue;
    if (present_[col]) {
      elim_rows.push_back(payload_row(col));
      elim_factors.push_back(value);
      ops.mul_add_region(sc, coeff_row(col), value, n);
    } else if (pivot == n) {
      pivot = col;
    }
  }
  if (pivot == n) return Result::kLinearlyDependent;

  const std::uint8_t scale = gf256::inv(sc[pivot]);
  ops.scale_region(sc, scale, n);

  // Payload-side replay: each worker applies every elimination to its own
  // slice with one fused destination-blocked pass (this is where the
  // k-dimension parallelism lives).
  pool_->parallel_for_chunks(
      k, [sp, scale, &elim_rows, &elim_factors](std::size_t begin,
                                                std::size_t end) {
        const gf256::Ops& o = gf256::ops();
        const std::size_t len = end - begin;
        std::vector<const std::uint8_t*> shifted(elim_rows.size());
        for (std::size_t j = 0; j < elim_rows.size(); ++j) {
          shifted[j] = elim_rows[j] + begin;
        }
        o.mul_add_regions(sp + begin, shifted.data(), elim_factors.data(),
                          shifted.size(), len);
        o.scale_region(sp + begin, scale, len);
      });

  // Back-eliminate the new pivot column from stored rows; rows are
  // independent, so parallelize across them.
  std::vector<std::size_t> to_update;
  to_update.reserve(rank_);
  for (std::size_t p = 0; p < n; ++p) {
    if (present_[p] && coeff_row(p)[pivot] != 0) to_update.push_back(p);
  }
  pool_->parallel_for_chunks(
      to_update.size(),
      [this, sc, sp, pivot, &to_update](std::size_t begin, std::size_t end) {
        const gf256::Ops& o = gf256::ops();
        for (std::size_t idx = begin; idx < end; ++idx) {
          const std::size_t p = to_update[idx];
          const std::uint8_t factor = coeff_row(p)[pivot];
          o.mul_add_region(coeff_row(p), sc, factor, params_.n);
          o.mul_add_region(payload_row(p), sp, factor, params_.k);
        }
      });

  std::memcpy(coeff_row(pivot), sc, n);
  std::memcpy(payload_row(pivot), sp, k);
  present_[pivot] = true;
  ++rank_;
  return Result::kAccepted;
}

coding::Segment CpuDecoder::decoded_segment() const {
  EXTNC_CHECK(is_complete());
  coding::Segment segment(params_);
  for (std::size_t i = 0; i < params_.n; ++i) {
    std::memcpy(segment.block(i).data(), payload_row(i), params_.k);
  }
  return segment;
}

}  // namespace extnc::cpu
