// CPU table-based encoder with log-domain preprocessing — the scheme the
// paper ports *back* from GPU to CPU in Sec. 5.1.2 "to be fair to the
// CPU-based scheme", and finds up to 43% slower than the SIMD loop-based
// encoder (table lookups cannot be vectorized on the CPU).
//
// Kept as a first-class implementation because it is the CPU ground truth
// for the GPU table-based kernels: the log-domain transform, the 0xff
// sentinel handling, and the exp-lookup inner loop are the same algorithm
// the GPU runs, minus the memory-hierarchy tricks.
#pragma once

#include "coding/batch.h"
#include "coding/segment.h"
#include "util/aligned_buffer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace extnc::cpu {

class CpuTableEncoder {
 public:
  CpuTableEncoder(const coding::Segment& segment, ThreadPool& pool);

  const coding::Params& params() const { return params_; }

  coding::CodedBatch encode_batch(std::size_t count, Rng& rng) const;
  // Coefficient rows of `batch` must already be filled (natural domain).
  void encode_into(coding::CodedBatch& batch) const;

 private:
  coding::Params params_;
  ThreadPool* pool_;
  // Source blocks pre-transformed to the log domain, done once per segment
  // (step 1 of the Sec. 5.1.1 algorithm).
  AlignedBuffer log_segment_;
};

}  // namespace extnc::cpu
