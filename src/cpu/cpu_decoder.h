// Multi-threaded progressive decoder (the paper's CPU decoding baseline).
//
// Gauss-Jordan progressive decoding is serial across coded blocks — block
// j+1 cannot start before block j is reduced — so the only parallelism is
// *within* each row operation: workers each own a contiguous slice of the
// k-byte payload (coefficient rows, only n bytes, stay on one thread).
// This mirrors the threaded decoder of the authors' prior work [5] whose
// synchronization-per-row structure the paper calls out as the obstacle
// that motivates multi-segment decoding.
#pragma once

#include <cstdint>
#include <vector>

#include "coding/coded_block.h"
#include "coding/segment.h"
#include "util/aligned_buffer.h"
#include "util/thread_pool.h"

namespace extnc::cpu {

class CpuDecoder {
 public:
  enum class Result { kAccepted, kLinearlyDependent, kAlreadyComplete };

  CpuDecoder(coding::Params params, ThreadPool& pool);

  Result add(const coding::CodedBlock& block);
  Result add(std::span<const std::uint8_t> coefficients,
             std::span<const std::uint8_t> payload);

  const coding::Params& params() const { return params_; }
  std::size_t rank() const { return rank_; }
  bool is_complete() const { return rank_ == params_.n; }

  coding::Segment decoded_segment() const;

 private:
  std::uint8_t* coeff_row(std::size_t pivot) {
    return coeffs_.data() + pivot * params_.n;
  }
  std::uint8_t* payload_row(std::size_t pivot) {
    return payloads_.data() + pivot * params_.k;
  }
  const std::uint8_t* payload_row(std::size_t pivot) const {
    return payloads_.data() + pivot * params_.k;
  }

  coding::Params params_;
  ThreadPool* pool_;
  AlignedBuffer coeffs_;
  AlignedBuffer payloads_;
  std::vector<bool> present_;
  AlignedBuffer scratch_coeffs_;
  AlignedBuffer scratch_payload_;
  std::size_t rank_ = 0;
};

}  // namespace extnc::cpu
