// Multi-threaded CPU encoder with the paper's two task-partitioning
// schemes (Sec. 5.3):
//
//  * kPartitionedBlock — the original scheme of the authors' IWQoS'07 /
//    INFOCOM'09 work: all threads cooperate on one coded block at a time,
//    each thread encoding a contiguous byte range of it. Minimizes latency
//    to the *first* coded block (on-demand generation).
//  * kFullBlock — the streaming-server scheme this paper introduces: each
//    thread encodes whole coded blocks independently. Maximizes sustained
//    throughput; the paper shows it wins at small block sizes thanks to
//    long sequential reads that keep the prefetcher busy.
//
// Both schemes compute bit-identical output for identical coefficient
// draws; tests verify this against the single-threaded coding::Encoder.
#pragma once

#include <cstddef>

#include "coding/batch.h"
#include "coding/segment.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace extnc::cpu {

enum class EncodePartitioning {
  kPartitionedBlock,
  kFullBlock,
};

class CpuEncoder {
 public:
  // The pool is borrowed and may be shared with other components; the
  // paper's testbed runs one thread per core (8 on the Mac Pro).
  CpuEncoder(const coding::Segment& segment, ThreadPool& pool,
             EncodePartitioning partitioning = EncodePartitioning::kFullBlock);

  const coding::Params& params() const { return segment_->params(); }
  EncodePartitioning partitioning() const { return partitioning_; }

  // Generate `count` coded blocks with fresh random dense coefficients.
  coding::CodedBatch encode_batch(std::size_t count, Rng& rng) const;

  // Encode into a caller-prepared batch whose coefficient rows are already
  // filled (used by tests and by the hybrid GPU+CPU bench).
  void encode_into(coding::CodedBatch& batch) const;

 private:
  void encode_full_block(coding::CodedBatch& batch) const;
  void encode_partitioned(coding::CodedBatch& batch) const;

  const coding::Segment* segment_;
  ThreadPool* pool_;
  EncodePartitioning partitioning_;
};

}  // namespace extnc::cpu
