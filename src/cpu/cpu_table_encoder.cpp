#include "cpu/cpu_table_encoder.h"

#include <cstring>

#include "gf256/gf.h"
#include "util/assert.h"

namespace extnc::cpu {

CpuTableEncoder::CpuTableEncoder(const coding::Segment& segment,
                                 ThreadPool& pool)
    : params_(segment.params()),
      pool_(&pool),
      log_segment_(params_.segment_bytes()) {
  const gf256::Tables& t = gf256::tables();
  const std::uint8_t* src = segment.data();
  std::uint8_t* dst = log_segment_.data();
  for (std::size_t i = 0; i < log_segment_.size(); ++i) dst[i] = t.log[src[i]];
}

coding::CodedBatch CpuTableEncoder::encode_batch(std::size_t count,
                                                 Rng& rng) const {
  coding::CodedBatch batch(params_, count);
  for (std::size_t j = 0; j < count; ++j) {
    for (auto& c : batch.coefficients(j)) c = rng.next_nonzero_byte();
  }
  encode_into(batch);
  return batch;
}

void CpuTableEncoder::encode_into(coding::CodedBatch& batch) const {
  EXTNC_CHECK(batch.params() == params_);
  const coding::Params p = params_;
  const std::uint8_t* log_blocks = log_segment_.data();
  pool_->parallel_for_chunks(
      batch.count(), [&batch, log_blocks, p](std::size_t begin,
                                             std::size_t end) {
        const gf256::Tables& t = gf256::tables();
        // Step 2: transform this worker's coefficient rows to log domain.
        AlignedBuffer log_coeffs(p.n);
        for (std::size_t j = begin; j < end; ++j) {
          const std::uint8_t* coeffs = batch.coefficients(j).data();
          for (std::size_t i = 0; i < p.n; ++i) {
            log_coeffs[i] = t.log[coeffs[i]];
          }
          // Step 3: exp[log_c + log_b] accumulation (Fig. 5 inner loop).
          std::uint8_t* out = batch.payload(j).data();
          std::memset(out, 0, p.k);
          for (std::size_t i = 0; i < p.n; ++i) {
            const std::uint8_t log_c = log_coeffs[i];
            if (log_c == gf256::kLogZero) continue;
            const std::uint8_t* row = log_blocks + i * p.k;
            for (std::size_t byte = 0; byte < p.k; ++byte) {
              const std::uint8_t log_b = row[byte];
              if (log_b != gf256::kLogZero) {
                out[byte] ^= t.exp[log_c + log_b];
              }
            }
          }
        }
      });
}

}  // namespace extnc::cpu
