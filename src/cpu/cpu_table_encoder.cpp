#include "cpu/cpu_table_encoder.h"

#include <algorithm>
#include <cstring>

#include "gf256/gf.h"
#include "util/assert.h"

namespace extnc::cpu {

CpuTableEncoder::CpuTableEncoder(const coding::Segment& segment,
                                 ThreadPool& pool)
    : params_(segment.params()),
      pool_(&pool),
      log_segment_(params_.segment_bytes()) {
  const gf256::Tables& t = gf256::tables();
  const std::uint8_t* src = segment.data();
  std::uint8_t* dst = log_segment_.data();
  for (std::size_t i = 0; i < log_segment_.size(); ++i) dst[i] = t.log[src[i]];
}

coding::CodedBatch CpuTableEncoder::encode_batch(std::size_t count,
                                                 Rng& rng) const {
  coding::CodedBatch batch(params_, count);
  for (std::size_t j = 0; j < count; ++j) {
    for (auto& c : batch.coefficients(j)) c = rng.next_nonzero_byte();
  }
  encode_into(batch);
  return batch;
}

void CpuTableEncoder::encode_into(coding::CodedBatch& batch) const {
  EXTNC_CHECK(batch.params() == params_);
  const coding::Params p = params_;
  const std::uint8_t* log_blocks = log_segment_.data();
  pool_->parallel_for_chunks(
      batch.count(), [&batch, log_blocks, p](std::size_t begin,
                                             std::size_t end) {
        const gf256::Tables& t = gf256::tables();
        // Step 2: transform this worker's coefficient rows to log domain.
        AlignedBuffer log_coeffs(p.n);
        for (std::size_t j = begin; j < end; ++j) {
          const std::uint8_t* coeffs = batch.coefficients(j).data();
          for (std::size_t i = 0; i < p.n; ++i) {
            log_coeffs[i] = t.log[coeffs[i]];
          }
          // Step 3: exp[log_c + log_b] accumulation (Fig. 5 inner loop),
          // destination-blocked so each payload block stays cache-resident
          // across all n source rows (same structure as the fused
          // mul_add_regions kernels; the log/exp scheme itself is kept as a
          // measured paper baseline).
          constexpr std::size_t kTableBlockBytes = 32 * 1024;
          std::uint8_t* out = batch.payload(j).data();
          std::memset(out, 0, p.k);
          for (std::size_t base = 0; base < p.k; base += kTableBlockBytes) {
            const std::size_t blen = std::min(kTableBlockBytes, p.k - base);
            for (std::size_t i = 0; i < p.n; ++i) {
              const std::uint8_t log_c = log_coeffs[i];
              if (log_c == gf256::kLogZero) continue;
              const std::uint8_t* row = log_blocks + i * p.k + base;
              std::uint8_t* block_out = out + base;
              for (std::size_t byte = 0; byte < blen; ++byte) {
                const std::uint8_t log_b = row[byte];
                if (log_b != gf256::kLogZero) {
                  block_out[byte] ^= t.exp[log_c + log_b];
                }
              }
            }
          }
        }
      });
}

}  // namespace extnc::cpu
