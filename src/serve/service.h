// Fleet coding service: a long-running session-serving loop over the
// discrete-event simulator.
//
// CodingService ties the pieces together: Poisson session arrivals (with
// a scripted offered-load timeline) flow through the bounded
// AdmissionQueue, the DegradationLadder maps queue pressure to a
// ServiceMode at every dispatch, and the FleetScheduler shards each
// admitted session onto a device where its segments are encoded under PR
// 3 supervision. On top of the per-device resilience the service adds the
// fleet-level behaviors:
//
//   deadline-aware dispatch — a session past its deadline is shed at the
//     next dispatch point instead of burning device time;
//   hedged re-dispatch — a dispatch whose modeled service time marks it a
//     straggler (> hedge_factor x nominal) is replicated on the
//     least-loaded other device; the earlier completion wins and the
//     bytes are identical by construction (per-job seeds);
//   epoch-guarded failover — a scripted device kill bumps the device's
//     epoch; in-flight completions from the old incarnation are detected
//     as stale and the segment re-dispatches (same seed, same bytes) on a
//     surviving device;
//   crash recovery — every externally-visible state change is appended to
//     a CRC-framed Journal; a process killed mid-run (scripted `crash@t`)
//     is rebuilt by recover(): terminal sessions keep their states,
//     in-flight sessions re-enter the queue, and the deterministic
//     arrival/jobs seeds make the recovered run's deliveries
//     byte-identical to an uncrashed one's;
//   ramped restore — a healed device re-warms through the FleetScheduler
//     ramp instead of instantly absorbing its full dispatch share;
//   tenant fairness — sessions carry {tenant, priority}; admission is
//     priority-ordered with weighted-fair per-tenant occupancy, and the
//     ladder degrades best-effort traffic before interactive.
//
// Every arrived session ends in exactly one terminal state; the report
// carries the full accounting plus streaming latency histograms split
// into healthy and faulted fleet phases.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/event_sim.h"
#include "serve/admission.h"
#include "serve/degradation.h"
#include "serve/fleet.h"
#include "serve/journal.h"
#include "serve/session.h"
#include "util/histogram.h"

namespace extnc::serve {

// One scripted change of the offered-load multiplier.
struct LoadPhase {
  double at = 0;
  double multiplier = 1.0;
};

// One scripted device kill or restore.
struct FleetEvent {
  double at = 0;
  std::size_t device = 0;
  bool kill = true;
};

// One scripted tenant burst: from `at` on, the named tenant's arrival
// weight is multiplied (its fair ADMISSION share is not — that is the
// point: the burst must not shed other tenants' traffic).
struct TenantBurst {
  double at = 0;
  std::string tenant;
  double multiplier = 1.0;
};

// The scripted scenario a service run plays: device kills/restores, an
// offered-load timeline, service-process crashes/recoveries and tenant
// bursts (the FaultPlan-style grammar for fleets).
struct FleetPlan {
  std::vector<FleetEvent> events;
  std::vector<LoadPhase> load;
  std::vector<double> crashes;   // service process dies at t
  std::vector<double> recovers;  // and is recovered from the journal at t
  std::vector<TenantBurst> bursts;

  bool any() const {
    return !events.empty() || !load.empty() || !crashes.empty() ||
           !recovers.empty() || !bursts.empty();
  }

  // Comma-separated tokens (timestamps must be non-decreasing across the
  // whole spec — a plan is a timeline, not a bag of events):
  //   kill@<t>:<device>          device dies at sim time t
  //   restore@<t>:<device>       device returns at sim time t
  //   load@<t>:<multiplier>      offered-load multiplier becomes m at t
  //   crash@<t>                  the service process dies at t
  //   recover@<t>                ...and is recovered from its journal at t
  //   tenantburst@<t>:<name>:<m> tenant's arrival weight multiplied by m
  // Example: "kill@20:1,load@30:2.0,restore@45:1".
  // Returns nullopt (no partial state) on any malformed token; when
  // `error` is non-null it receives a description of the first problem.
  static std::optional<FleetPlan> parse(std::string_view spec,
                                        std::string* error = nullptr);

  // Semantic validation against a fleet of `devices` devices: rejects
  // out-of-range device ids, duplicate events for the same device and
  // time, kills of dead devices / restores of alive ones, and
  // crash/recover sequences that do not alternate. Returns a description
  // of the first problem, or nullopt when the plan is sound.
  std::optional<std::string> validate(std::size_t devices) const;
};

// One tenant of the service: its share weight (drives BOTH the arrival
// mix and the admission queue's weighted-fair occupancy) and the priority
// class its sessions run at.
struct TenantSpec {
  std::string name = "default";
  double weight = 1.0;
  Priority priority = Priority::kStandard;
};

struct ServiceConfig {
  FleetConfig fleet;  // params, device specs, fault plan, supervisor
  std::size_t segments_per_session = 4;
  // Generation density: full service emits n + blocks_extra coded blocks
  // per segment; thinned service emits n + blocks_extra_thinned.
  std::size_t blocks_extra = 4;
  std::size_t blocks_extra_thinned = 1;

  // Fraction of the fleet's nominal capacity offered as load (before the
  // plan's load multipliers).
  double offered_load = 0.7;
  // Arrival window in sim seconds (service then drains the backlog).
  double duration_s = 30.0;
  // Session deadline = arrival + deadline_factor * nominal session time.
  double deadline_factor = 25.0;
  // Hedge a dispatch whose service time exceeds hedge_factor * nominal
  // segment time.
  double hedge_factor = 4.0;

  AdmissionConfig admission;
  LadderConfig ladder;
  FleetPlan plan;
  // Empty means one "default" tenant at standard priority.
  std::vector<TenantSpec> tenants;

  // Auto-scale the supervisor's time constants to the workload: watchdog
  // budget, initial backoff and breaker cool-down become these multiples
  // of the nominal segment time (a 1-second default watchdog is absurd
  // when a segment takes 200 microseconds). Set false to use
  // fleet.supervisor verbatim.
  bool auto_tune_supervisor = true;
  double watchdog_factor = 20.0;
  double backoff_factor_of_nominal = 1.0;
  double cooldown_factor = 200.0;

  std::uint64_t seed = 1;
  // Decode-verify every served segment against the reference content.
  bool verify_decode = true;
};

// Per-tenant slice of the accounting.
struct TenantReport {
  std::string name;
  std::uint64_t arrivals = 0;
  std::uint64_t completed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
};

struct ServiceReport {
  // Volume.
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  // Terminal states (completed + degraded + shed + failed == arrivals).
  std::uint64_t completed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  // Shed breakdown.
  std::uint64_t shed_rejected = 0;  // admission tail drop / over hard cap
  std::uint64_t shed_evicted = 0;   // oldest-waiter eviction
  std::uint64_t shed_deadline = 0;  // deadline passed before/mid service
  // Fleet-level resilience events.
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t stale_completions = 0;
  std::uint64_t redispatches = 0;
  // Work and verification.
  std::uint64_t segments_served = 0;
  std::uint64_t bitexact_failures = 0;   // must be 0
  std::uint64_t decode_mismatches = 0;   // must be 0
  std::uint64_t rank_short_segments = 0;  // possible under thinned density
  // Degradation.
  std::uint64_t ladder_transitions = 0;
  std::array<std::uint64_t, kServiceModes> mode_dispatches = {};
  std::array<std::uint64_t, kPriorities> dispatches_by_class = {};
  // Crash recovery.
  bool crashed = false;     // this run ended at a scripted crash point
  bool recovered = false;   // this run started from a journal
  std::uint64_t recoveries = 0;  // recover() generations behind this report
  double crash_at_s = 0;
  double recovered_at_s = 0;
  std::size_t journal_records = 0;
  std::size_t journal_dropped_bytes = 0;  // torn tail discarded on recovery
  // Ramped restore: every stage change, in time order.
  std::vector<FleetScheduler::RampEvent> ramp_events;
  std::uint64_t ramp_collapses = 0;
  // Tenants (one entry per configured tenant, config order).
  std::vector<TenantReport> tenants;
  // CRC32C folded over every full-fidelity (kCompleted) session's
  // delivered payload CRCs in (session, segment) order — byte-identical
  // deliveries across a crash/recover boundary fold to the same digest.
  std::uint32_t delivered_digest = 0;
  // Latency (sim seconds). Segment latency = dispatch -> completion;
  // session latency = arrival -> finish (completed/degraded only).
  StreamingHistogram segment_latency_s;
  StreamingHistogram session_latency_s;
  StreamingHistogram segment_latency_healthy_s;
  StreamingHistogram segment_latency_faulted_s;
  // Context.
  double nominal_segment_s = 0;
  double nominal_session_s = 0;
  double offered_rate_hz = 0;
  double sim_end_s = 0;
  std::vector<DeviceHealth> devices;

  std::uint64_t terminal_total() const {
    return completed + degraded + shed + failed;
  }
  // The invariant the overload tests pin: every arrival accounted for in
  // exactly one terminal state. (A crashed partial report is exempt until
  // recovery completes the run.)
  bool accounting_exact() const { return terminal_total() == arrivals; }
};

class CodingService {
 public:
  explicit CodingService(ServiceConfig config,
                         simgpu::Profiler* profiler = nullptr);
  ~CodingService();

  CodingService(const CodingService&) = delete;
  CodingService& operator=(const CodingService&) = delete;

  const ServiceConfig& config() const { return config_; }
  FleetScheduler& fleet() { return *fleet_; }

  // Play the scenario (one call per service object). If the plan crashes
  // the process mid-run, the returned report is PARTIAL (crashed == true,
  // accounting not closed) and journal_bytes() holds everything a
  // recover() needs; otherwise the report is final and exact.
  ServiceReport run();

  // The serialized journal as of now — what a crashed process leaves on
  // disk. Stable across run()/crash; parseable by Journal::parse.
  const std::vector<std::uint8_t>& journal_bytes() const;
  // Fingerprint binding this config to its journals.
  std::uint64_t config_fingerprint() const { return fingerprint_; }

  // Sessions in id order (tests: cross-run delivery comparison).
  const std::vector<Session>& sessions() const { return sessions_; }

  // Rebuild a service from a crashed run's journal. The journal's intact
  // prefix is replayed (torn tail dropped): terminal sessions keep their
  // states, admitted in-flight sessions re-enter the queue in admission
  // order, the degradation ladder resumes at its journaled rung, plan
  // events with at <= the recovery time are applied to the fleet, and the
  // deterministic arrival sequence is fast-forwarded so post-recovery
  // arrivals are the exact ones the lost process would have seen.
  // `recover_at_s` defaults to the last journaled event time. Returns
  // nullptr when the journal is unusable (bad header or a fingerprint
  // from a different config).
  static std::unique_ptr<CodingService> recover(
      ServiceConfig config, std::span<const std::uint8_t> journal,
      std::optional<double> recover_at_s = std::nullopt,
      simgpu::Profiler* profiler = nullptr);

 private:
  void journal_append(const JournalRecord& record);
  void restore_from(const JournalImage& image,
                    std::optional<double> recover_at_s);
  void schedule_plan();
  void on_arrival(std::uint64_t index, double nominal_at);
  void schedule_next_arrival();
  void pump();
  void dispatch_segment(std::uint64_t id);
  void on_segment_done(std::uint64_t id, std::size_t segment,
                       std::size_t device, std::uint64_t epoch,
                       double dispatched_s, std::uint32_t payload_crc,
                       bool degraded_mode, bool rank_short_seg);
  void finish(Session& session, SessionState state,
              ShedReason reason = ShedReason::kNone);
  // finish() at an explicit time — recovery closes torn-tail sessions
  // before the simulator starts, when sim_.now() is not meaningful yet.
  void finish_at(Session& session, SessionState state, ShedReason reason,
                 double at);
  void apply_terminal_counters(const Session& session, SessionState state,
                               ShedReason reason, bool live);
  void finalize_report();
  double load_multiplier_at(double t) const;
  double tenant_weight_at(std::uint16_t tenant, double t) const;
  double arrival_rate_at(double t) const;
  std::uint16_t draw_tenant(std::uint64_t index, double nominal_at) const;
  double unit_draw(std::uint64_t index, std::uint64_t salt) const;
  std::uint64_t job_seed(std::uint64_t session, std::size_t segment) const;
  std::size_t blocks_for(ServiceMode mode) const;
  const TenantSpec& tenant_spec(std::uint16_t tenant) const {
    return tenants_[tenant];
  }

  // A tenant burst with its name resolved to a tenant index.
  struct ResolvedBurst {
    double at = 0;
    std::uint16_t tenant = 0;
    double multiplier = 1.0;
  };

  ServiceConfig config_;
  simgpu::Profiler* profiler_;
  net::EventSim sim_;
  std::unique_ptr<FleetScheduler> fleet_;
  std::vector<TenantSpec> tenants_;  // resolved (non-empty) tenant table
  std::vector<ResolvedBurst> bursts_;
  AdmissionQueue queue_;
  DegradationLadder ladder_;
  std::uint64_t fingerprint_ = 0;
  std::unique_ptr<Journal> journal_;
  std::vector<Session> sessions_;
  std::vector<std::size_t> device_load_;  // sessions assigned per device
  ServiceReport report_;
  double base_rate_hz_ = 0;
  double base_weight_sum_ = 0;
  double hedge_threshold_s_ = 0;
  // Deterministic arrival regeneration: arrivals are indexed draws on a
  // NOMINAL timeline (a pure function of seed and plan), so a recovered
  // process reproduces the exact arrival sequence of the lost one.
  std::uint64_t next_arrival_index_ = 0;
  double next_arrival_nominal_s_ = 0;
  int last_journaled_rung_ = 0;
  double start_time_ = 0;   // 0, or the recovery point
  bool recovered_ = false;
  bool crashed_ = false;
  bool ran_ = false;
};

// Run the scenario end to end, playing every scripted crash/recover pair
// in-process: run() until the crash, recover() from the journal bytes,
// continue — exactly what the process-level `--journal`/`--recover` CLI
// flow does across real processes. The returned report is the final
// generation's (its counters span the whole timeline via the journal);
// ramp events are concatenated across generations.
ServiceReport run_with_recovery(const ServiceConfig& config,
                                simgpu::Profiler* profiler = nullptr);

}  // namespace extnc::serve
