// Fleet coding service: a long-running session-serving loop over the
// discrete-event simulator.
//
// CodingService ties the pieces together: Poisson session arrivals (with
// a scripted offered-load timeline) flow through the bounded
// AdmissionQueue, the DegradationLadder maps queue pressure to a
// ServiceMode at every dispatch, and the FleetScheduler shards each
// admitted session onto a device where its segments are encoded under PR
// 3 supervision. On top of the per-device resilience the service adds the
// fleet-level behaviors:
//
//   deadline-aware dispatch — a session past its deadline is shed at the
//     next dispatch point instead of burning device time;
//   hedged re-dispatch — a dispatch whose modeled service time marks it a
//     straggler (> hedge_factor x nominal) is replicated on the
//     least-loaded other device; the earlier completion wins and the
//     bytes are identical by construction (per-job seeds);
//   epoch-guarded failover — a scripted device kill bumps the device's
//     epoch; in-flight completions from the old incarnation are detected
//     as stale and the segment re-dispatches (same seed, same bytes) on a
//     surviving device.
//
// Every arrived session ends in exactly one terminal state; the report
// carries the full accounting plus streaming latency histograms split
// into healthy and faulted fleet phases.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "net/event_sim.h"
#include "serve/admission.h"
#include "serve/degradation.h"
#include "serve/fleet.h"
#include "serve/session.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace extnc::serve {

// One scripted change of the offered-load multiplier.
struct LoadPhase {
  double at = 0;
  double multiplier = 1.0;
};

// One scripted device kill or restore.
struct FleetEvent {
  double at = 0;
  std::size_t device = 0;
  bool kill = true;
};

// The scripted scenario a service run plays: device kills/restores plus
// an offered-load timeline (the FaultPlan-style grammar for fleets).
struct FleetPlan {
  std::vector<FleetEvent> events;
  std::vector<LoadPhase> load;

  bool any() const { return !events.empty() || !load.empty(); }

  // Comma-separated tokens:
  //   kill@<t>:<device>      device dies at sim time t
  //   restore@<t>:<device>   device returns at sim time t
  //   load@<t>:<multiplier>  offered-load multiplier becomes m at time t
  // Example: "kill@20:1,load@30:2.0,restore@45:1".
  // Returns nullopt (no partial state) on any malformed token.
  static std::optional<FleetPlan> parse(std::string_view spec);
};

struct ServiceConfig {
  FleetConfig fleet;  // params, device specs, fault plan, supervisor
  std::size_t segments_per_session = 4;
  // Generation density: full service emits n + blocks_extra coded blocks
  // per segment; thinned service emits n + blocks_extra_thinned.
  std::size_t blocks_extra = 4;
  std::size_t blocks_extra_thinned = 1;

  // Fraction of the fleet's nominal capacity offered as load (before the
  // plan's load multipliers).
  double offered_load = 0.7;
  // Arrival window in sim seconds (service then drains the backlog).
  double duration_s = 30.0;
  // Session deadline = arrival + deadline_factor * nominal session time.
  double deadline_factor = 25.0;
  // Hedge a dispatch whose service time exceeds hedge_factor * nominal
  // segment time.
  double hedge_factor = 4.0;

  AdmissionConfig admission;
  LadderConfig ladder;
  FleetPlan plan;

  // Auto-scale the supervisor's time constants to the workload: watchdog
  // budget, initial backoff and breaker cool-down become these multiples
  // of the nominal segment time (a 1-second default watchdog is absurd
  // when a segment takes 200 microseconds). Set false to use
  // fleet.supervisor verbatim.
  bool auto_tune_supervisor = true;
  double watchdog_factor = 20.0;
  double backoff_factor_of_nominal = 1.0;
  double cooldown_factor = 200.0;

  std::uint64_t seed = 1;
  // Decode-verify every served segment against the reference content.
  bool verify_decode = true;
};

struct ServiceReport {
  // Volume.
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  // Terminal states (completed + degraded + shed + failed == arrivals).
  std::uint64_t completed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  // Shed breakdown.
  std::uint64_t shed_rejected = 0;  // admission tail drop / over hard cap
  std::uint64_t shed_evicted = 0;   // oldest-waiter eviction
  std::uint64_t shed_deadline = 0;  // deadline passed before/mid service
  // Fleet-level resilience events.
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t stale_completions = 0;
  std::uint64_t redispatches = 0;
  // Work and verification.
  std::uint64_t segments_served = 0;
  std::uint64_t bitexact_failures = 0;   // must be 0
  std::uint64_t decode_mismatches = 0;   // must be 0
  std::uint64_t rank_short_segments = 0;  // possible under thinned density
  // Degradation.
  std::uint64_t ladder_transitions = 0;
  std::array<std::uint64_t, kServiceModes> mode_dispatches = {};
  // Latency (sim seconds). Segment latency = dispatch -> completion;
  // session latency = arrival -> finish (completed/degraded only).
  StreamingHistogram segment_latency_s;
  StreamingHistogram session_latency_s;
  StreamingHistogram segment_latency_healthy_s;
  StreamingHistogram segment_latency_faulted_s;
  // Context.
  double nominal_segment_s = 0;
  double nominal_session_s = 0;
  double offered_rate_hz = 0;
  double sim_end_s = 0;
  std::vector<DeviceHealth> devices;

  std::uint64_t terminal_total() const {
    return completed + degraded + shed + failed;
  }
  // The invariant the overload tests pin: every arrival accounted for in
  // exactly one terminal state.
  bool accounting_exact() const { return terminal_total() == arrivals; }
};

class CodingService {
 public:
  explicit CodingService(ServiceConfig config,
                         simgpu::Profiler* profiler = nullptr);
  ~CodingService();

  CodingService(const CodingService&) = delete;
  CodingService& operator=(const CodingService&) = delete;

  const ServiceConfig& config() const { return config_; }
  FleetScheduler& fleet() { return *fleet_; }

  // Play the whole scenario to completion (one call per service object).
  ServiceReport run();

 private:
  void on_arrival();
  void schedule_next_arrival();
  void pump();
  void dispatch_segment(std::uint64_t id);
  void on_segment_done(std::uint64_t id, std::size_t segment,
                       std::size_t device, std::uint64_t epoch,
                       double dispatched_s);
  void finish(Session& session, SessionState state);
  double load_multiplier() const;
  std::uint64_t job_seed(std::uint64_t session, std::size_t segment) const;
  std::size_t blocks_for(ServiceMode mode) const;

  ServiceConfig config_;
  simgpu::Profiler* profiler_;
  net::EventSim sim_;
  std::unique_ptr<FleetScheduler> fleet_;
  AdmissionQueue queue_;
  DegradationLadder ladder_;
  Rng arrival_rng_;
  std::vector<Session> sessions_;
  std::vector<std::size_t> device_load_;  // sessions assigned per device
  ServiceReport report_;
  double base_rate_hz_ = 0;
  double current_multiplier_ = 1.0;
  double hedge_threshold_s_ = 0;
  bool ran_ = false;
};

}  // namespace extnc::serve
