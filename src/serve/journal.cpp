#include "serve/journal.h"

#include <cstring>

#include "util/assert.h"
#include "util/checksum.h"

namespace extnc::serve {

namespace {

constexpr char kMagic[4] = {'X', 'N', 'C', 'J'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 4;
// Frame overhead around each record payload: type, length, trailer CRC.
constexpr std::size_t kFrameOverhead = 1 + 1 + 4;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t u8() { return data_[pos_++]; }

  std::uint16_t u16() {
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

std::vector<std::uint8_t> encode_payload(const JournalRecord& r) {
  std::vector<std::uint8_t> p;
  switch (r.type) {
    case JournalRecordType::kArrival:
      put_u64(p, r.session);
      put_f64(p, r.at);
      put_f64(p, r.deadline_s);
      put_u32(p, r.segments);
      put_u16(p, r.tenant);
      p.push_back(r.priority);
      break;
    case JournalRecordType::kAdmit:
      put_u64(p, r.session);
      put_f64(p, r.at);
      p.push_back(r.force_degraded ? 1 : 0);
      break;
    case JournalRecordType::kSegmentDone:
      put_u64(p, r.session);
      put_f64(p, r.at);
      put_u32(p, r.segment);
      put_u32(p, r.payload_crc);
      p.push_back(r.degraded ? 1 : 0);
      p.push_back(r.rank_short ? 1 : 0);
      break;
    case JournalRecordType::kRung:
      put_f64(p, r.at);
      p.push_back(r.rung);
      break;
    case JournalRecordType::kTerminal:
      put_u64(p, r.session);
      put_f64(p, r.at);
      p.push_back(r.state);
      p.push_back(r.shed_reason);
      break;
    case JournalRecordType::kRecovered:
      put_f64(p, r.at);
      break;
  }
  return p;
}

// Expected payload length per record type; 0 for unknown types (which a
// parser from the future may see — it must stop, not guess).
std::size_t payload_len_for(std::uint8_t type) {
  switch (static_cast<JournalRecordType>(type)) {
    case JournalRecordType::kArrival:
      return 8 + 8 + 8 + 4 + 2 + 1;
    case JournalRecordType::kAdmit:
      return 8 + 8 + 1;
    case JournalRecordType::kSegmentDone:
      return 8 + 8 + 4 + 4 + 1 + 1;
    case JournalRecordType::kRung:
      return 8 + 1;
    case JournalRecordType::kTerminal:
      return 8 + 8 + 1 + 1;
    case JournalRecordType::kRecovered:
      return 8;
  }
  return 0;
}

std::optional<JournalRecord> decode_payload(std::uint8_t type,
                                            std::span<const std::uint8_t> p) {
  JournalRecord r;
  r.type = static_cast<JournalRecordType>(type);
  Cursor c(p);
  switch (r.type) {
    case JournalRecordType::kArrival:
      r.session = c.u64();
      r.at = c.f64();
      r.deadline_s = c.f64();
      r.segments = c.u32();
      r.tenant = c.u16();
      r.priority = c.u8();
      return r;
    case JournalRecordType::kAdmit:
      r.session = c.u64();
      r.at = c.f64();
      r.force_degraded = c.u8() != 0;
      return r;
    case JournalRecordType::kSegmentDone:
      r.session = c.u64();
      r.at = c.f64();
      r.segment = c.u32();
      r.payload_crc = c.u32();
      r.degraded = c.u8() != 0;
      r.rank_short = c.u8() != 0;
      return r;
    case JournalRecordType::kRung:
      r.at = c.f64();
      r.rung = c.u8();
      return r;
    case JournalRecordType::kTerminal:
      r.session = c.u64();
      r.at = c.f64();
      r.state = c.u8();
      r.shed_reason = c.u8();
      return r;
    case JournalRecordType::kRecovered:
      r.at = c.f64();
      return r;
  }
  return std::nullopt;
}

}  // namespace

Journal::Journal(std::uint64_t fingerprint) : fingerprint_(fingerprint) {
  bytes_.reserve(256);
  bytes_.insert(bytes_.end(), kMagic, kMagic + 4);
  put_u32(bytes_, kVersion);
  put_u64(bytes_, fingerprint_);
  put_u32(bytes_, crc32c({bytes_.data(), bytes_.size()}));
}

void Journal::append(const JournalRecord& record) {
  const std::vector<std::uint8_t> payload = encode_payload(record);
  EXTNC_CHECK(payload.size() ==
              payload_len_for(static_cast<std::uint8_t>(record.type)));
  EXTNC_CHECK(payload.size() <= 0xff);
  const std::size_t frame_start = bytes_.size();
  bytes_.push_back(static_cast<std::uint8_t>(record.type));
  bytes_.push_back(static_cast<std::uint8_t>(payload.size()));
  bytes_.insert(bytes_.end(), payload.begin(), payload.end());
  put_u32(bytes_, crc32c({bytes_.data() + frame_start,
                          bytes_.size() - frame_start}));
  ++records_;
}

std::optional<JournalImage> Journal::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < kHeaderSize) return std::nullopt;
  if (std::memcmp(data.data(), kMagic, 4) != 0) return std::nullopt;
  Cursor header(data.subspan(4));
  if (header.u32() != kVersion) return std::nullopt;
  JournalImage image;
  image.fingerprint = header.u64();
  const std::uint32_t header_crc = header.u32();
  if (crc32c({data.data(), kHeaderSize - 4}) != header_crc) {
    return std::nullopt;
  }

  std::size_t pos = kHeaderSize;
  while (pos < data.size()) {
    const std::size_t remaining = data.size() - pos;
    if (remaining < kFrameOverhead) break;  // torn frame header/trailer
    const std::uint8_t type = data[pos];
    const std::uint8_t len = data[pos + 1];
    if (remaining < kFrameOverhead + len) break;  // truncated payload
    const std::size_t frame = 2 + static_cast<std::size_t>(len);
    Cursor trailer(data.subspan(pos + frame));
    if (crc32c({data.data() + pos, frame}) != trailer.u32()) break;
    // CRC-valid but unparseable (unknown type, wrong length for its
    // type): a format from a different version — stop here rather than
    // replaying records we do not understand.
    if (len != payload_len_for(type)) break;
    const auto record = decode_payload(type, data.subspan(pos + 2, len));
    if (!record) break;
    image.records.push_back(*record);
    pos += frame + 4;
  }
  image.dropped_bytes = data.size() - pos;
  return image;
}

}  // namespace extnc::serve
