// Session model of the fleet coding service.
//
// A session is one client's unit of service: `segments` generations to be
// encoded (and delivered bit-exactly) by whichever device the fleet
// scheduler shards it onto. Every session that arrives ends in EXACTLY one
// terminal state — the accounting invariant the overload tests pin:
//
//   kCompleted — served at full fidelity (GPU or transparent fault
//                fallback; the client cannot tell).
//   kDegraded  — served, but under the degradation ladder: forced to the
//                CPU codec, thinned generation density, or admitted in
//                forced-degraded mode. Output is still verified.
//   kShed      — dropped by admission control (rejected, evicted as the
//                oldest waiter, or past its deadline before service
//                finished).
//   kFailed    — the fleet could not produce the output (no device left).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace extnc::serve {

enum class SessionState {
  kQueued,     // admitted, waiting for a device
  kServing,    // sharded onto a device, segments in flight
  kCompleted,  // terminal
  kDegraded,   // terminal
  kShed,       // terminal
  kFailed,     // terminal
};

const char* session_state_name(SessionState state);

// Why a shed session was shed (terminal-state bookkeeping the journal
// persists so a recovered process reports the same breakdown).
enum class ShedReason : std::uint8_t {
  kNone = 0,      // not shed
  kRejected = 1,  // admission tail drop / over the degrade hard cap
  kEvicted = 2,   // evicted from the queue to make room for an arrival
  kDeadline = 3,  // deadline passed before or during service
};

// Session priority classes, most latency-sensitive first. Priority orders
// the admission queue (interactive waiters dispatch before best-effort)
// and biases the degradation ladder: best-effort traffic degrades a rung
// EARLIER than the ladder's pressure level, interactive a rung later.
enum class Priority : std::uint8_t {
  kInteractive = 0,
  kStandard = 1,
  kBestEffort = 2,
};

inline constexpr int kPriorities = 3;

const char* priority_name(Priority priority);
// "interactive" | "standard" | "besteffort"; nullopt on anything else.
std::optional<Priority> parse_priority(std::string_view name);

inline bool is_terminal(SessionState state) {
  return state == SessionState::kCompleted ||
         state == SessionState::kDegraded || state == SessionState::kShed ||
         state == SessionState::kFailed;
}

// The overload-degradation ladder, mildest first. The service maps queue
// pressure to a level; each level trades fidelity or latency for capacity:
//   kFull    — GPU encode, full generation density, per-segment dispatch.
//   kBatched — batch harder: coarser dispatch under pressure. No modeled
//              latency discount anymore (launches are genuinely fast);
//              the level remains the mildest signal on the ladder.
//   kCpuCodec— route new segments to the CPU codec, keeping the GPU for
//              the backlog (sessions finish slower; counted degraded).
//   kThinned — reduce generation density to the decode minimum (smallest
//              possible work per session; counted degraded).
// Beyond kThinned the admission queue sheds — that step lives in
// admission control, not here.
enum class ServiceMode {
  kFull = 0,
  kBatched = 1,
  kCpuCodec = 2,
  kThinned = 3,
};

inline constexpr int kServiceModes = 4;

const char* service_mode_name(ServiceMode mode);

struct Session {
  std::uint64_t id = 0;
  double arrival_s = 0;
  double deadline_s = 0;  // absolute sim time; past it the session sheds
  double admitted_s = -1;
  double first_dispatch_s = -1;
  double finished_s = -1;

  std::size_t segments = 0;
  std::size_t segments_done = 0;
  std::size_t device = SIZE_MAX;  // shard target while kServing

  // Who this session belongs to (index into ServiceConfig::tenants) and
  // how it ranks against other waiters.
  std::uint16_t tenant = 0;
  Priority priority = Priority::kStandard;

  // CRC32C of each delivered segment payload, in segment order (filled as
  // segments complete; journaled, so a recovered process can prove its
  // deliveries byte-identical to the lost one's).
  std::vector<std::uint32_t> segment_crcs;

  SessionState state = SessionState::kQueued;
  // Admission (degrade policy) forced this session to thinned service.
  bool force_degraded = false;
  // Any segment was served under a degraded ladder mode.
  bool served_degraded = false;
  // Any segment's decode verification fell short of full rank (possible
  // only under thinned density).
  bool rank_short = false;
};

}  // namespace extnc::serve
