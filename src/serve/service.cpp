#include "serve/service.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <utility>

#include "gpu/gpu_model.h"
#include "util/assert.h"
#include "util/metrics_registry.h"

namespace extnc::serve {

namespace {

std::optional<double> parse_number(std::string_view text) {
  double value = 0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

}  // namespace

// --- FleetPlan -------------------------------------------------------------

std::optional<FleetPlan> FleetPlan::parse(std::string_view spec) {
  FleetPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size() && !spec.empty()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string_view token =
        spec.substr(pos, comma == std::string_view::npos ? spec.size() - pos
                                                         : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (token.empty()) return std::nullopt;

    const std::size_t at = token.find('@');
    if (at == std::string_view::npos) return std::nullopt;
    const std::string_view kind = token.substr(0, at);
    const std::string_view rest = token.substr(at + 1);
    const std::size_t colon = rest.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    const auto time = parse_number(rest.substr(0, colon));
    const auto value = parse_number(rest.substr(colon + 1));
    if (!time || !value || *time < 0) return std::nullopt;

    if (kind == "kill" || kind == "restore") {
      if (*value < 0 || *value != std::floor(*value)) return std::nullopt;
      plan.events.push_back(FleetEvent{
          .at = *time,
          .device = static_cast<std::size_t>(*value),
          .kill = kind == "kill"});
    } else if (kind == "load") {
      if (*value <= 0) return std::nullopt;
      plan.load.push_back(LoadPhase{.at = *time, .multiplier = *value});
    } else {
      return std::nullopt;
    }
    if (comma == std::string_view::npos) break;
  }
  auto by_time = [](const auto& a, const auto& b) { return a.at < b.at; };
  std::stable_sort(plan.events.begin(), plan.events.end(), by_time);
  std::stable_sort(plan.load.begin(), plan.load.end(), by_time);
  return plan;
}

// --- CodingService ---------------------------------------------------------

CodingService::CodingService(ServiceConfig config, simgpu::Profiler* profiler)
    : config_(std::move(config)),
      profiler_(profiler),
      queue_(config_.admission),
      ladder_(config_.ladder),
      arrival_rng_(config_.seed ^ 0xa11a5eedULL) {
  EXTNC_CHECK(!config_.fleet.devices.empty());
  EXTNC_CHECK(config_.segments_per_session >= 1);
  EXTNC_CHECK(config_.duration_s > 0);
  EXTNC_CHECK(config_.offered_load > 0);

  // Nominal segment time, computed from the device models BEFORE the
  // fleet exists so the supervisor's time constants can be scaled to the
  // workload they will actually police.
  const std::size_t blocks_full = config_.fleet.params.n + config_.blocks_extra;
  double sum = 0;
  for (const auto& spec : config_.fleet.devices) {
    gpu::EncodeModelOptions options;
    options.include_preprocessing = false;
    const double mb_per_s =
        gpu::model_encode_bandwidth(spec, config_.fleet.scheme,
                                    config_.fleet.params, options)
            .mb_per_s;
    EXTNC_CHECK(mb_per_s > 0);
    sum += static_cast<double>(blocks_full * config_.fleet.params.k) /
               (mb_per_s * 1e6) +
           config_.fleet.dispatch_overhead_s;
  }
  const double nominal_segment =
      sum / static_cast<double>(config_.fleet.devices.size());
  if (config_.auto_tune_supervisor) {
    auto& supervisor = config_.fleet.supervisor;
    supervisor.watchdog_budget_s = config_.watchdog_factor * nominal_segment;
    supervisor.backoff_initial_s =
        config_.backoff_factor_of_nominal * nominal_segment;
    supervisor.breaker_cooldown_s = config_.cooldown_factor * nominal_segment;
  }

  fleet_ = std::make_unique<FleetScheduler>(config_.fleet,
                                            [this] { return sim_.now(); });
  if (profiler_ != nullptr) fleet_->set_trace(profiler_);
  device_load_.assign(fleet_->size(), 0);

  report_.nominal_segment_s = fleet_->nominal_segment_s(blocks_full);
  report_.nominal_session_s =
      report_.nominal_segment_s *
      static_cast<double>(config_.segments_per_session);
  // Offered load 1.0 == the whole fleet encoding full-density sessions
  // back to back with no faults and no queueing.
  base_rate_hz_ = config_.offered_load *
                  static_cast<double>(fleet_->size()) /
                  report_.nominal_session_s;
  report_.offered_rate_hz = base_rate_hz_;
  hedge_threshold_s_ = config_.hedge_factor * report_.nominal_segment_s;
}

CodingService::~CodingService() = default;

ServiceReport CodingService::run() {
  EXTNC_CHECK(!ran_);
  ran_ = true;

  for (const FleetEvent& event : config_.plan.events) {
    EXTNC_CHECK(event.device < fleet_->size());
    sim_.schedule_at(event.at, [this, event] {
      if (event.kill) {
        fleet_->kill(event.device);
        metrics::count("serve.device_kills");
      } else {
        fleet_->restore(event.device);
        metrics::count("serve.device_restores");
        pump();  // the restored device can pull waiting sessions
      }
    });
  }
  for (const LoadPhase& phase : config_.plan.load) {
    if (phase.at <= 0) {
      current_multiplier_ = phase.multiplier;
      continue;
    }
    sim_.schedule_at(phase.at,
                     [this, phase] { current_multiplier_ = phase.multiplier; });
  }

  schedule_next_arrival();
  sim_.run_all();

  // Sessions stranded in the queue (the whole fleet died): the service
  // could not produce their output — failed, not silently lost.
  while (const auto id = queue_.pop()) {
    Session& session = sessions_[*id];
    if (!is_terminal(session.state)) finish(session, SessionState::kFailed);
  }

  report_.sim_end_s = sim_.now();
  report_.ladder_transitions = ladder_.transitions();
  report_.devices = fleet_->fleet_health();
  EXTNC_CHECK(report_.accounting_exact());
  return report_;
}

void CodingService::schedule_next_arrival() {
  if (sim_.now() >= config_.duration_s) return;
  const double rate = base_rate_hz_ * current_multiplier_;
  EXTNC_CHECK(rate > 0);
  // Exponential inter-arrival; the rate is sampled at scheduling time, so
  // a load phase boundary takes effect from the next arrival onwards.
  const double u = arrival_rng_.next_double();
  const double at = sim_.now() + -std::log1p(-u) / rate;
  if (at >= config_.duration_s) return;
  sim_.schedule_at(at, [this] {
    on_arrival();
    schedule_next_arrival();
  });
}

void CodingService::on_arrival() {
  const std::uint64_t id = sessions_.size();
  {
    Session session;
    session.id = id;
    session.arrival_s = sim_.now();
    session.deadline_s =
        session.arrival_s +
        config_.deadline_factor * report_.nominal_session_s;
    session.segments = config_.segments_per_session;
    sessions_.push_back(session);
  }
  ++report_.arrivals;
  metrics::count("serve.arrivals");

  const AdmissionDecision decision = queue_.offer(id);
  metrics::gauge("serve.queue_depth", static_cast<double>(queue_.depth()));
  if (decision.evicted) {
    ++report_.shed_evicted;
    metrics::count("serve.shed_evicted");
    finish(sessions_[*decision.evicted], SessionState::kShed);
  }
  Session& session = sessions_[id];
  if (!decision.admitted) {
    ++report_.shed_rejected;
    metrics::count("serve.shed_rejected");
    finish(session, SessionState::kShed);
    return;
  }
  ++report_.admitted;
  metrics::count("serve.admitted");
  session.admitted_s = sim_.now();
  session.force_degraded = decision.force_degraded;
  pump();
}

void CodingService::pump() {
  for (;;) {
    if (queue_.empty()) return;
    // Least-loaded alive device with no session assigned (sharding: one
    // session per device at a time; re-sharded refugees may stack).
    std::optional<std::size_t> best;
    for (std::size_t d = 0; d < fleet_->size(); ++d) {
      if (!fleet_->alive(d) || device_load_[d] != 0) continue;
      if (!best || fleet_->busy_until(d) < fleet_->busy_until(*best)) best = d;
    }
    if (!best) return;
    const auto id = queue_.pop();
    Session& session = sessions_[*id];
    if (sim_.now() >= session.deadline_s) {
      ++report_.shed_deadline;
      metrics::count("serve.shed_deadline");
      finish(session, SessionState::kShed);
      continue;
    }
    session.state = SessionState::kServing;
    session.device = *best;
    ++device_load_[*best];
    if (session.first_dispatch_s < 0) session.first_dispatch_s = sim_.now();
    dispatch_segment(*id);
  }
}

void CodingService::dispatch_segment(std::uint64_t id) {
  Session& session = sessions_[id];
  const double now = sim_.now();
  if (now >= session.deadline_s) {
    ++report_.shed_deadline;
    metrics::count("serve.shed_deadline");
    finish(session, SessionState::kShed);
    pump();
    return;
  }
  // The session's shard died while another device carried its last
  // segment (hedge win): re-shard before dispatching.
  if (!fleet_->alive(session.device)) {
    const auto next = fleet_->pick_device();
    if (!next) {
      finish(session, SessionState::kFailed);
      pump();
      return;
    }
    --device_load_[session.device];
    ++device_load_[*next];
    session.device = *next;
    ++report_.redispatches;
    metrics::count("serve.redispatches");
  }

  ServiceMode mode = ladder_.update(queue_.pressure());
  if (session.force_degraded) mode = ServiceMode::kThinned;
  ++report_.mode_dispatches[static_cast<std::size_t>(mode)];
  if (mode == ServiceMode::kCpuCodec || mode == ServiceMode::kThinned) {
    session.served_degraded = true;
  }

  const std::size_t blocks = blocks_for(mode);
  const std::uint64_t seed = job_seed(id, session.segments_done);
  const std::size_t device = session.device;

  coding::CodedBatch batch;
  const SegmentResult result = fleet_->encode_segment(
      device, seed, blocks, mode, config_.verify_decode ? &batch : nullptr);
  ++report_.segments_served;
  if (!result.bit_exact) ++report_.bitexact_failures;
  if (config_.verify_decode) {
    switch (fleet_->verify_decode(batch)) {
      case DecodeCheck::kBitExact:
        break;
      case DecodeCheck::kRankShort:
        session.rank_short = true;
        ++report_.rank_short_segments;
        break;
      case DecodeCheck::kMismatch:
        ++report_.decode_mismatches;
        break;
    }
  }

  const double start = std::max(now, fleet_->busy_until(device));
  const double done = start + result.service_s;
  fleet_->set_busy_until(device, done);

  std::size_t winner = device;
  std::uint64_t winner_epoch = fleet_->epoch(device);
  double winner_done = done;
  // Hedged re-dispatch: a straggler (faulted retries, hung attempts, CPU
  // fallback) is replicated on the least-loaded other device. Same seed,
  // same bytes — whichever finishes first delivers.
  if (result.service_s > hedge_threshold_s_ &&
      mode != ServiceMode::kCpuCodec) {
    if (const auto other = fleet_->pick_device(device)) {
      ++report_.hedges;
      metrics::count("serve.hedges");
      const SegmentResult replica =
          fleet_->encode_segment(*other, seed, blocks, mode, nullptr);
      const double replica_start =
          std::max(now, fleet_->busy_until(*other));
      const double replica_done = replica_start + replica.service_s;
      fleet_->set_busy_until(*other, replica_done);
      if (replica_done < winner_done) {
        winner = *other;
        winner_epoch = fleet_->epoch(*other);
        winner_done = replica_done;
        ++report_.hedge_wins;
        metrics::count("serve.hedge_wins");
      }
    }
  }

  const std::size_t segment = session.segments_done;
  sim_.schedule_at(winner_done, [this, id, segment, winner, winner_epoch,
                                 now] {
    on_segment_done(id, segment, winner, winner_epoch, now);
  });
}

void CodingService::on_segment_done(std::uint64_t id, std::size_t segment,
                                    std::size_t device, std::uint64_t epoch,
                                    double dispatched_s) {
  Session& session = sessions_[id];
  if (is_terminal(session.state)) return;
  EXTNC_CHECK(session.segments_done == segment);

  if (fleet_->epoch(device) != epoch || !fleet_->alive(device)) {
    // The incarnation that produced these bytes died before delivering.
    // Deterministic seeds make the re-dispatch byte-identical.
    ++report_.stale_completions;
    metrics::count("serve.stale_completions");
    dispatch_segment(id);  // re-shards off a dead device internally
    return;
  }

  const double latency = sim_.now() - dispatched_s;
  report_.segment_latency_s.observe(latency);
  metrics::observe("serve.segment_latency_s", latency);
  if (fleet_->all_healthy()) {
    report_.segment_latency_healthy_s.observe(latency);
  } else {
    report_.segment_latency_faulted_s.observe(latency);
  }

  ++session.segments_done;
  if (session.segments_done == session.segments) {
    finish(session, session.served_degraded || session.force_degraded
                        ? SessionState::kDegraded
                        : SessionState::kCompleted);
    pump();
  } else {
    dispatch_segment(id);
  }
}

void CodingService::finish(Session& session, SessionState state) {
  EXTNC_CHECK(!is_terminal(session.state));
  EXTNC_CHECK(is_terminal(state));
  if (session.state == SessionState::kServing) {
    EXTNC_CHECK(device_load_[session.device] > 0);
    --device_load_[session.device];
  }
  session.state = state;
  session.finished_s = sim_.now();
  switch (state) {
    case SessionState::kCompleted:
      ++report_.completed;
      metrics::count("serve.completed");
      break;
    case SessionState::kDegraded:
      ++report_.degraded;
      metrics::count("serve.degraded");
      break;
    case SessionState::kShed:
      ++report_.shed;
      metrics::count("serve.shed");
      break;
    case SessionState::kFailed:
      ++report_.failed;
      metrics::count("serve.failed");
      break;
    case SessionState::kQueued:
    case SessionState::kServing:
      EXTNC_CHECK(false);
  }
  if (state == SessionState::kCompleted || state == SessionState::kDegraded) {
    const double latency = session.finished_s - session.arrival_s;
    report_.session_latency_s.observe(latency);
    metrics::observe("serve.session_latency_s", latency);
  }
}

double CodingService::load_multiplier() const { return current_multiplier_; }

std::uint64_t CodingService::job_seed(std::uint64_t session,
                                      std::size_t segment) const {
  // splitmix-style hash: replicas of (session, segment) agree everywhere.
  std::uint64_t x = config_.seed * 0x9e3779b97f4a7c15ULL +
                    session * 0x100000001b3ULL + segment + 1;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 29;
  return x | 1;
}

std::size_t CodingService::blocks_for(ServiceMode mode) const {
  const std::size_t n = config_.fleet.params.n;
  return mode == ServiceMode::kThinned ? n + config_.blocks_extra_thinned
                                       : n + config_.blocks_extra;
}

}  // namespace extnc::serve
