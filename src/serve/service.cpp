#include "serve/service.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstring>
#include <utility>

#include "gpu/gpu_model.h"
#include "util/assert.h"
#include "util/checksum.h"
#include "util/metrics_registry.h"

namespace extnc::serve {

namespace {

// Domain separators for the indexed splitmix draws: the arrival-gap and
// tenant-pick streams must be independent of each other and of job seeds.
constexpr std::uint64_t kArrivalSalt = 0xa11a5eedULL;
constexpr std::uint64_t kTenantSalt = 0x7e4a47a9ULL;

std::optional<double> parse_number(std::string_view text) {
  double value = 0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

void set_error(std::string* error, std::string_view token,
               std::string_view what) {
  if (error == nullptr) return;
  *error = "plan token \"";
  *error += token;
  *error += "\": ";
  *error += what;
}

// Indexed splitmix draw in [0, 1): a pure function of (seed, salt,
// index), so a recovered process regenerates the exact stream the lost
// one was consuming without journaling any RNG state.
double splitmix_unit(std::uint64_t seed, std::uint64_t salt,
                     std::uint64_t index) {
  std::uint64_t x = (seed ^ salt) + (index + 1) * 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

void fold_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void fold_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  fold_u64(out, bits);
}

}  // namespace

// --- FleetPlan -------------------------------------------------------------

std::optional<FleetPlan> FleetPlan::parse(std::string_view spec,
                                          std::string* error) {
  FleetPlan plan;
  double last_time = -1;
  std::size_t pos = 0;
  while (pos <= spec.size() && !spec.empty()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string_view token =
        spec.substr(pos, comma == std::string_view::npos ? spec.size() - pos
                                                         : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (token.empty()) {
      set_error(error, token, "empty token");
      return std::nullopt;
    }

    const std::size_t at = token.find('@');
    if (at == std::string_view::npos) {
      set_error(error, token, "expected <kind>@<time>...");
      return std::nullopt;
    }
    const std::string_view kind = token.substr(0, at);
    const std::string_view rest = token.substr(at + 1);
    const std::size_t colon = rest.find(':');
    const auto time = parse_number(
        colon == std::string_view::npos ? rest : rest.substr(0, colon));
    if (!time || *time < 0) {
      set_error(error, token, "bad timestamp");
      return std::nullopt;
    }
    // A plan is a timeline: tokens must be in time order. Out-of-order
    // specs are almost always a typo'd timestamp — reject them loudly
    // instead of silently reordering the scenario.
    if (*time < last_time) {
      set_error(error, token, "non-monotone timestamp");
      return std::nullopt;
    }
    last_time = *time;

    if (kind == "crash" || kind == "recover") {
      if (colon != std::string_view::npos) {
        set_error(error, token, "takes no value");
        return std::nullopt;
      }
      (kind == "crash" ? plan.crashes : plan.recovers).push_back(*time);
      if (comma == std::string_view::npos) break;
      continue;
    }
    if (colon == std::string_view::npos) {
      set_error(error, token, "expected <kind>@<time>:<value>");
      return std::nullopt;
    }
    const std::string_view value_text = rest.substr(colon + 1);

    if (kind == "kill" || kind == "restore") {
      const auto value = parse_number(value_text);
      if (!value || *value < 0 || *value != std::floor(*value)) {
        set_error(error, token, "bad device id");
        return std::nullopt;
      }
      plan.events.push_back(FleetEvent{
          .at = *time,
          .device = static_cast<std::size_t>(*value),
          .kill = kind == "kill"});
    } else if (kind == "load") {
      const auto value = parse_number(value_text);
      if (!value || *value <= 0) {
        set_error(error, token, "bad load multiplier");
        return std::nullopt;
      }
      plan.load.push_back(LoadPhase{.at = *time, .multiplier = *value});
    } else if (kind == "tenantburst") {
      const std::size_t colon2 = value_text.find(':');
      if (colon2 == std::string_view::npos) {
        set_error(error, token, "expected tenantburst@<t>:<name>:<mult>");
        return std::nullopt;
      }
      const std::string_view name = value_text.substr(0, colon2);
      const auto mult = parse_number(value_text.substr(colon2 + 1));
      if (name.empty() || !mult || *mult <= 0) {
        set_error(error, token, "bad tenant name or multiplier");
        return std::nullopt;
      }
      plan.bursts.push_back(TenantBurst{
          .at = *time, .tenant = std::string(name), .multiplier = *mult});
    } else {
      set_error(error, token, "unknown kind");
      return std::nullopt;
    }
    if (comma == std::string_view::npos) break;
  }
  return plan;
}

std::optional<std::string> FleetPlan::validate(std::size_t devices) const {
  // Device kill/restore sequences: in range, no duplicate (device, time),
  // and alternating per device — a device starts alive, so its first
  // event must be a kill, every kill must hit an alive device and every
  // restore a dead one.
  for (std::size_t d = 0; d < devices; ++d) {
    bool alive = true;
    double last_at = -1;
    for (const FleetEvent& event : events) {
      if (event.device != d) continue;
      if (event.at == last_at) {
        return "duplicate events for device " + std::to_string(d) +
               " at t=" + std::to_string(event.at);
      }
      last_at = event.at;
      if (event.kill && !alive) {
        return "kill of already-dead device " + std::to_string(d) +
               " at t=" + std::to_string(event.at);
      }
      if (!event.kill && alive) {
        return "restore of alive device " + std::to_string(d) +
               " at t=" + std::to_string(event.at);
      }
      alive = !event.kill;
    }
  }
  for (const FleetEvent& event : events) {
    if (event.device >= devices) {
      return "device id " + std::to_string(event.device) +
             " out of range (fleet has " + std::to_string(devices) +
             " devices)";
    }
  }
  // Crash/recover alternation: crash_0 < recover_0 < crash_1 < ... with
  // at most one trailing crash left unrecovered (the process-level flow
  // recovers it from a separate invocation).
  if (recovers.size() > crashes.size()) {
    return "recover without a preceding crash";
  }
  if (crashes.size() > recovers.size() + 1) {
    return "more than one crash without a recover between them";
  }
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    if (i < recovers.size() && recovers[i] <= crashes[i]) {
      return "recover at t=" + std::to_string(recovers[i]) +
             " not after its crash at t=" + std::to_string(crashes[i]);
    }
    if (i > 0 && crashes[i] <= recovers[i - 1]) {
      return "crash at t=" + std::to_string(crashes[i]) +
             " not after the previous recover";
    }
  }
  return std::nullopt;
}

// --- CodingService ---------------------------------------------------------

CodingService::CodingService(ServiceConfig config, simgpu::Profiler* profiler)
    : config_(std::move(config)),
      profiler_(profiler),
      tenants_(config_.tenants.empty() ? std::vector<TenantSpec>{{}}
                                       : config_.tenants),
      queue_([&] {
        AdmissionConfig admission = config_.admission;
        admission.tenant_weights.clear();
        for (const TenantSpec& tenant : tenants_) {
          EXTNC_CHECK(tenant.weight > 0);
          admission.tenant_weights.push_back(tenant.weight);
        }
        return admission;
      }()),
      ladder_(config_.ladder) {
  EXTNC_CHECK(!config_.fleet.devices.empty());
  EXTNC_CHECK(config_.segments_per_session >= 1);
  EXTNC_CHECK(config_.duration_s > 0);
  EXTNC_CHECK(config_.offered_load > 0);
  EXTNC_CHECK(tenants_.size() <= 0xffff);
  {
    const auto plan_error = config_.plan.validate(config_.fleet.devices.size());
    EXTNC_CHECK(!plan_error.has_value());
  }
  // Resolve tenant-burst names against the tenant table.
  for (const TenantBurst& burst : config_.plan.bursts) {
    std::optional<std::uint16_t> index;
    for (std::uint16_t t = 0; t < tenants_.size(); ++t) {
      if (tenants_[t].name == burst.tenant) index = t;
    }
    EXTNC_CHECK(index.has_value());  // CLI validates names with a message
    bursts_.push_back(ResolvedBurst{.at = burst.at,
                                    .tenant = *index,
                                    .multiplier = burst.multiplier});
  }
  for (const TenantSpec& tenant : tenants_) base_weight_sum_ += tenant.weight;

  // Nominal segment time, computed from the device models BEFORE the
  // fleet exists so the supervisor's time constants can be scaled to the
  // workload they will actually police.
  const std::size_t blocks_full = config_.fleet.params.n + config_.blocks_extra;
  double sum = 0;
  for (const auto& spec : config_.fleet.devices) {
    gpu::EncodeModelOptions options;
    options.include_preprocessing = false;
    const double mb_per_s =
        gpu::model_encode_bandwidth(spec, config_.fleet.scheme,
                                    config_.fleet.params, options)
            .mb_per_s;
    EXTNC_CHECK(mb_per_s > 0);
    sum += static_cast<double>(blocks_full * config_.fleet.params.k) /
               (mb_per_s * 1e6) +
           config_.fleet.dispatch_overhead_s;
  }
  const double nominal_segment =
      sum / static_cast<double>(config_.fleet.devices.size());
  if (config_.auto_tune_supervisor) {
    auto& supervisor = config_.fleet.supervisor;
    supervisor.watchdog_budget_s = config_.watchdog_factor * nominal_segment;
    supervisor.backoff_initial_s =
        config_.backoff_factor_of_nominal * nominal_segment;
    supervisor.breaker_cooldown_s = config_.cooldown_factor * nominal_segment;
  }

  fleet_ = std::make_unique<FleetScheduler>(config_.fleet,
                                            [this] { return sim_.now(); });
  if (profiler_ != nullptr) fleet_->set_trace(profiler_);
  device_load_.assign(fleet_->size(), 0);

  report_.nominal_segment_s = fleet_->nominal_segment_s(blocks_full);
  report_.nominal_session_s =
      report_.nominal_segment_s *
      static_cast<double>(config_.segments_per_session);
  // Offered load 1.0 == the whole fleet encoding full-density sessions
  // back to back with no faults and no queueing.
  base_rate_hz_ = config_.offered_load *
                  static_cast<double>(fleet_->size()) /
                  report_.nominal_session_s;
  report_.offered_rate_hz = base_rate_hz_;
  hedge_threshold_s_ = config_.hedge_factor * report_.nominal_segment_s;

  report_.tenants.resize(tenants_.size());
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    report_.tenants[t].name = tenants_[t].name;
  }

  // The fingerprint binds journals to this config: every knob that shapes
  // the deterministic arrival/job streams or the accounting goes in.
  std::vector<std::uint8_t> fp;
  fold_u64(fp, config_.seed);
  fold_u64(fp, config_.fleet.params.n);
  fold_u64(fp, config_.fleet.params.k);
  fold_u64(fp, config_.fleet.devices.size());
  fold_u64(fp, config_.segments_per_session);
  fold_u64(fp, config_.blocks_extra);
  fold_u64(fp, config_.blocks_extra_thinned);
  fold_f64(fp, config_.offered_load);
  fold_f64(fp, config_.duration_s);
  fold_f64(fp, config_.deadline_factor);
  fold_f64(fp, config_.hedge_factor);
  fold_u64(fp, config_.admission.capacity);
  fold_u64(fp, static_cast<std::uint64_t>(config_.admission.policy));
  fold_f64(fp, config_.admission.degrade_headroom);
  fold_u64(fp, tenants_.size());
  for (const TenantSpec& tenant : tenants_) {
    fold_u64(fp, digest64({reinterpret_cast<const std::uint8_t*>(
                               tenant.name.data()),
                           tenant.name.size()}));
    fold_f64(fp, tenant.weight);
    fold_u64(fp, static_cast<std::uint64_t>(tenant.priority));
  }
  for (const FleetEvent& event : config_.plan.events) {
    fold_f64(fp, event.at);
    fold_u64(fp, event.device);
    fold_u64(fp, event.kill ? 1 : 0);
  }
  for (const LoadPhase& phase : config_.plan.load) {
    fold_f64(fp, phase.at);
    fold_f64(fp, phase.multiplier);
  }
  for (const ResolvedBurst& burst : bursts_) {
    fold_f64(fp, burst.at);
    fold_u64(fp, burst.tenant);
    fold_f64(fp, burst.multiplier);
  }
  fingerprint_ = digest64({fp.data(), fp.size()}, 0x4a6e4c0deULL);
  journal_ = std::make_unique<Journal>(fingerprint_);
}

CodingService::~CodingService() = default;

const std::vector<std::uint8_t>& CodingService::journal_bytes() const {
  return journal_->bytes();
}

void CodingService::journal_append(const JournalRecord& record) {
  journal_->append(record);
}

std::unique_ptr<CodingService> CodingService::recover(
    ServiceConfig config, std::span<const std::uint8_t> journal,
    std::optional<double> recover_at_s, simgpu::Profiler* profiler) {
  const auto image = Journal::parse(journal);
  if (!image) return nullptr;  // bad header: not a journal we can trust
  auto service =
      std::make_unique<CodingService>(std::move(config), profiler);
  if (image->fingerprint != service->fingerprint_) return nullptr;
  service->restore_from(*image, recover_at_s);
  return service;
}

void CodingService::restore_from(const JournalImage& image,
                                 std::optional<double> recover_at_s) {
  double last_at = 0;
  std::uint64_t prior_recoveries = 0;
  std::vector<std::uint64_t> admit_order;
  for (const JournalRecord& record : image.records) {
    last_at = std::max(last_at, record.at);
    // Compaction: the surviving records carry over verbatim, so a second
    // crash recovers from one journal, not a chain of fragments.
    journal_->append(record);
    switch (record.type) {
      case JournalRecordType::kArrival: {
        EXTNC_CHECK(record.session == sessions_.size());
        EXTNC_CHECK(record.tenant < tenants_.size());
        Session session;
        session.id = record.session;
        session.arrival_s = record.at;
        session.deadline_s = record.deadline_s;
        session.segments = record.segments;
        session.tenant = record.tenant;
        session.priority = static_cast<Priority>(record.priority);
        sessions_.push_back(std::move(session));
        ++report_.arrivals;
        ++report_.tenants[record.tenant].arrivals;
        break;
      }
      case JournalRecordType::kAdmit: {
        Session& session = sessions_.at(record.session);
        session.admitted_s = record.at;
        session.force_degraded = record.force_degraded;
        ++report_.admitted;
        admit_order.push_back(record.session);
        break;
      }
      case JournalRecordType::kSegmentDone: {
        Session& session = sessions_.at(record.session);
        EXTNC_CHECK(record.segment < session.segments);
        EXTNC_CHECK(session.segments_done == record.segment);
        if (session.segment_crcs.size() < session.segments) {
          session.segment_crcs.resize(session.segments, 0);
        }
        session.segment_crcs[record.segment] = record.payload_crc;
        ++session.segments_done;
        if (record.degraded) session.served_degraded = true;
        if (record.rank_short) {
          session.rank_short = true;
          ++report_.rank_short_segments;
        }
        ++report_.segments_served;
        break;
      }
      case JournalRecordType::kRung:
        EXTNC_CHECK(record.rung < kServiceModes);
        ladder_.restore_level(record.rung);
        last_journaled_rung_ = record.rung;
        break;
      case JournalRecordType::kTerminal: {
        Session& session = sessions_.at(record.session);
        EXTNC_CHECK(!is_terminal(session.state));
        const auto state = static_cast<SessionState>(record.state);
        EXTNC_CHECK(is_terminal(state));
        session.state = state;
        session.finished_s = record.at;
        apply_terminal_counters(
            session, state, static_cast<ShedReason>(record.shed_reason),
            /*live=*/false);
        break;
      }
      case JournalRecordType::kRecovered:
        ++prior_recoveries;
        break;
    }
  }

  const double recover_time =
      std::max(recover_at_s.value_or(last_at), last_at);
  start_time_ = recover_time;
  recovered_ = true;
  report_.recovered = true;
  report_.recovered_at_s = recover_time;
  report_.recoveries = prior_recoveries + 1;
  report_.journal_dropped_bytes += image.dropped_bytes;
  journal_->append(JournalRecord{.type = JournalRecordType::kRecovered,
                                 .at = recover_time});
  metrics::count("serve.recoveries");

  // Admitted, non-terminal sessions re-enter the queue in admission order
  // (bypassing policy: their admission is already on the record). Their
  // partial progress stands — segments_done picks up where it left off,
  // and the deterministic job seeds make the remaining segments
  // byte-identical to what the lost process would have produced.
  for (const std::uint64_t id : admit_order) {
    Session& session = sessions_[id];
    if (is_terminal(session.state)) continue;
    if (session.segments_done >= session.segments) {
      // Every segment was delivered but the terminal record was torn off
      // with the tail: close the session now instead of re-dispatching a
      // phantom segment.
      finish_at(session,
                session.served_degraded || session.force_degraded
                    ? SessionState::kDegraded
                    : SessionState::kCompleted,
                ShedReason::kNone, recover_time);
      continue;
    }
    session.state = SessionState::kQueued;
    session.device = SIZE_MAX;
    queue_.restore(id, session.tenant, session.priority);
  }

  // Arrivals whose admission OUTCOME was lost with the torn tail (a
  // kArrival with neither kAdmit nor kTerminal behind it): re-run the
  // admission decision at the recovery point — the client is still
  // waiting for an answer, and leaving the session kQueued forever would
  // break the exact-accounting contract.
  for (Session& session : sessions_) {
    if (is_terminal(session.state) || session.admitted_s >= 0) continue;
    const AdmissionDecision decision =
        queue_.offer(session.id, session.tenant, session.priority);
    if (decision.evicted) {
      finish_at(sessions_[*decision.evicted], SessionState::kShed,
                ShedReason::kEvicted, recover_time);
    }
    if (!decision.admitted) {
      finish_at(session, SessionState::kShed, ShedReason::kRejected,
                recover_time);
      continue;
    }
    ++report_.admitted;
    session.admitted_s = recover_time;
    session.force_degraded = decision.force_degraded;
    journal_->append(JournalRecord{.type = JournalRecordType::kAdmit,
                                   .at = recover_time,
                                   .session = session.id,
                                   .force_degraded = decision.force_degraded});
  }

  // Replay the fleet timeline up to the recovery point (kills and
  // restores the dead process already acted on). A device that was
  // mid-ramp at the crash restarts its ramp from the bottom — ramp state
  // is deliberately not journaled; re-warming twice is safe, snapping to
  // full share is not.
  for (const FleetEvent& event : config_.plan.events) {
    if (event.at > recover_time) continue;
    if (event.kill) {
      fleet_->kill(event.device);
    } else {
      fleet_->restore(event.device);
    }
  }

  // Fast-forward the nominal arrival timeline past the arrivals already
  // journaled: the next draw the recovered process makes is the exact one
  // the lost process would have made.
  next_arrival_index_ = 0;
  next_arrival_nominal_s_ = 0;
  for (std::uint64_t i = 0; i < report_.arrivals; ++i) {
    const double rate = arrival_rate_at(next_arrival_nominal_s_);
    EXTNC_CHECK(rate > 0);
    const double u = splitmix_unit(config_.seed, kArrivalSalt, i);
    next_arrival_nominal_s_ += -std::log1p(-u) / rate;
    next_arrival_index_ = i + 1;
  }
}

void CodingService::schedule_plan() {
  for (const FleetEvent& event : config_.plan.events) {
    EXTNC_CHECK(event.device < fleet_->size());
    // Events at or before the recovery point were applied by
    // restore_from(); only the future is scheduled.
    if (recovered_ && event.at <= start_time_) continue;
    sim_.schedule_at(std::max(event.at, start_time_), [this, event] {
      if (event.kill) {
        fleet_->kill(event.device);
        metrics::count("serve.device_kills");
      } else {
        fleet_->restore(event.device);
        metrics::count("serve.device_restores");
        pump();  // the restored device can pull waiting sessions
      }
    });
  }
  // The first scripted crash this generation has not lived through yet:
  // every past recovery consumed one crash (the journal's kRecovered
  // markers count them), and later crashes belong to later generations.
  std::uint64_t consumed = report_.recoveries;
  for (const double at : config_.plan.crashes) {
    if (consumed > 0) {
      --consumed;
      continue;
    }
    if (at <= start_time_) continue;
    sim_.schedule_at(at, [this] {
      crashed_ = true;
      metrics::count("serve.crashes");
    });
    break;
  }
}

ServiceReport CodingService::run() {
  EXTNC_CHECK(!ran_);
  ran_ = true;

  schedule_plan();
  if (recovered_) {
    // Restart dispatch for the rebuilt queue at the recovery point.
    sim_.schedule_at(start_time_, [this] { pump(); });
  }
  schedule_next_arrival();
  while (!crashed_ && sim_.step()) {
  }

  if (crashed_) {
    // The scripted crash point: the process is "gone". Everything after
    // this line is what a restarted process can reconstruct from
    // journal_bytes() — the report returned here is partial (accounting
    // deliberately not closed) and only useful for inspection.
    report_.crashed = true;
    report_.crash_at_s = sim_.now();
    finalize_report();
    return report_;
  }

  // Sessions stranded in the queue (the whole fleet died): the service
  // could not produce their output — failed, not silently lost.
  while (const auto id = queue_.pop()) {
    Session& session = sessions_[*id];
    if (!is_terminal(session.state)) finish(session, SessionState::kFailed);
  }

  finalize_report();
  EXTNC_CHECK(report_.accounting_exact());
  return report_;
}

void CodingService::finalize_report() {
  report_.sim_end_s = sim_.now();
  report_.ladder_transitions = ladder_.transitions();
  report_.devices = fleet_->fleet_health();
  report_.ramp_events = fleet_->ramp_events();
  report_.ramp_collapses = fleet_->ramp_collapses();
  report_.journal_records = journal_->records();
  // Delivered-payload digest over full-fidelity completions, in session
  // order: byte-identical deliveries fold to the same value no matter how
  // many crash/recover boundaries the run crossed.
  std::uint32_t state = crc32c_init();
  for (const Session& session : sessions_) {
    if (session.state != SessionState::kCompleted) continue;
    std::uint8_t buffer[8];
    for (int i = 0; i < 8; ++i) {
      buffer[i] = static_cast<std::uint8_t>(session.id >> (8 * i));
    }
    state = crc32c_update(state, buffer);
    for (const std::uint32_t crc : session.segment_crcs) {
      for (int i = 0; i < 4; ++i) {
        buffer[i] = static_cast<std::uint8_t>(crc >> (8 * i));
      }
      state = crc32c_update(state, {buffer, 4});
    }
  }
  report_.delivered_digest = crc32c_final(state);
}

double CodingService::load_multiplier_at(double t) const {
  double multiplier = 1.0;
  for (const LoadPhase& phase : config_.plan.load) {
    if (phase.at <= t) multiplier = phase.multiplier;
  }
  return multiplier;
}

double CodingService::tenant_weight_at(std::uint16_t tenant, double t) const {
  double weight = tenants_[tenant].weight;
  for (const ResolvedBurst& burst : bursts_) {
    if (burst.tenant == tenant && burst.at <= t) weight *= burst.multiplier;
  }
  return weight;
}

double CodingService::arrival_rate_at(double t) const {
  double weight_sum = 0;
  for (std::uint16_t tenant = 0; tenant < tenants_.size(); ++tenant) {
    weight_sum += tenant_weight_at(tenant, t);
  }
  // A tenant burst is EXTRA offered traffic, so it scales the total rate
  // by the inflated weight mass (and skews the mix toward the burster).
  return base_rate_hz_ * load_multiplier_at(t) *
         (weight_sum / base_weight_sum_);
}

double CodingService::unit_draw(std::uint64_t index,
                                std::uint64_t salt) const {
  return splitmix_unit(config_.seed, salt, index);
}

std::uint16_t CodingService::draw_tenant(std::uint64_t index,
                                         double nominal_at) const {
  if (tenants_.size() == 1) return 0;
  double total = 0;
  for (std::uint16_t t = 0; t < tenants_.size(); ++t) {
    total += tenant_weight_at(t, nominal_at);
  }
  const double pick = unit_draw(index, kTenantSalt) * total;
  double accumulated = 0;
  for (std::uint16_t t = 0; t < tenants_.size(); ++t) {
    accumulated += tenant_weight_at(t, nominal_at);
    if (pick < accumulated) return t;
  }
  return static_cast<std::uint16_t>(tenants_.size() - 1);
}

void CodingService::schedule_next_arrival() {
  // Arrivals live on a NOMINAL timeline — each gap is a pure function of
  // (seed, index) and the scripted rate at the previous nominal arrival —
  // so a recovered process regenerates the exact sequence the lost one
  // was producing. Arrivals whose nominal time fell inside the downtime
  // window fire at the recovery point (the clamp below), like clients
  // retrying the moment the service is back.
  const double rate = arrival_rate_at(next_arrival_nominal_s_);
  EXTNC_CHECK(rate > 0);
  const std::uint64_t index = next_arrival_index_;
  const double u = unit_draw(index, kArrivalSalt);
  const double at = next_arrival_nominal_s_ + -std::log1p(-u) / rate;
  if (at >= config_.duration_s) return;
  next_arrival_nominal_s_ = at;
  next_arrival_index_ = index + 1;
  sim_.schedule_at(std::max(at, start_time_), [this, index, at] {
    on_arrival(index, at);
    schedule_next_arrival();
  });
}

void CodingService::on_arrival(std::uint64_t index, double nominal_at) {
  const std::uint64_t id = sessions_.size();
  EXTNC_CHECK(id == index);
  const std::uint16_t tenant = draw_tenant(index, nominal_at);
  const TenantSpec& spec = tenants_[tenant];
  {
    Session session;
    session.id = id;
    session.arrival_s = sim_.now();
    session.deadline_s =
        session.arrival_s +
        config_.deadline_factor * report_.nominal_session_s;
    session.segments = config_.segments_per_session;
    session.tenant = tenant;
    session.priority = spec.priority;
    sessions_.push_back(session);
  }
  Session& session = sessions_[id];
  ++report_.arrivals;
  ++report_.tenants[tenant].arrivals;
  metrics::count("serve.arrivals");
  journal_append(JournalRecord{
      .type = JournalRecordType::kArrival,
      .at = session.arrival_s,
      .session = id,
      .deadline_s = session.deadline_s,
      .segments = static_cast<std::uint32_t>(session.segments),
      .tenant = tenant,
      .priority = static_cast<std::uint8_t>(spec.priority)});

  const AdmissionDecision decision =
      queue_.offer(id, tenant, spec.priority);
  metrics::gauge("serve.queue_depth", static_cast<double>(queue_.depth()));
  if (decision.evicted) {
    finish(sessions_[*decision.evicted], SessionState::kShed,
           ShedReason::kEvicted);
  }
  if (!decision.admitted) {
    finish(session, SessionState::kShed, ShedReason::kRejected);
    return;
  }
  ++report_.admitted;
  metrics::count("serve.admitted");
  session.admitted_s = sim_.now();
  session.force_degraded = decision.force_degraded;
  journal_append(JournalRecord{.type = JournalRecordType::kAdmit,
                               .at = session.admitted_s,
                               .session = id,
                               .force_degraded = decision.force_degraded});
  pump();
}

void CodingService::pump() {
  // Ramping devices that already passed on an offer this pass are skipped
  // (their declined opportunity does not come back until the next pump).
  std::vector<char> declined(fleet_->size(), 0);
  for (;;) {
    if (queue_.empty()) return;
    // Least-loaded alive device with no session assigned (sharding: one
    // session per device at a time; re-sharded refugees may stack).
    std::optional<std::size_t> best;
    for (std::size_t d = 0; d < fleet_->size(); ++d) {
      if (declined[d] != 0 || !fleet_->alive(d) || device_load_[d] != 0) {
        continue;
      }
      if (!best || fleet_->busy_until(d) < fleet_->busy_until(*best)) best = d;
    }
    if (!best) return;
    // Ramped restore: a re-warming device only takes its staged share of
    // dispatch opportunities; when it passes, the next-best device gets
    // the session instead (or it waits — better a short wait than a
    // retry storm into a half-healed device).
    if (!fleet_->ramp_offer(*best)) {
      declined[*best] = 1;
      continue;
    }
    const auto id = queue_.pop();
    Session& session = sessions_[*id];
    if (sim_.now() >= session.deadline_s) {
      finish(session, SessionState::kShed, ShedReason::kDeadline);
      continue;
    }
    session.state = SessionState::kServing;
    session.device = *best;
    ++device_load_[*best];
    if (session.first_dispatch_s < 0) session.first_dispatch_s = sim_.now();
    dispatch_segment(*id);
  }
}

void CodingService::dispatch_segment(std::uint64_t id) {
  Session& session = sessions_[id];
  const double now = sim_.now();
  if (now >= session.deadline_s) {
    finish(session, SessionState::kShed, ShedReason::kDeadline);
    pump();
    return;
  }
  // The session's shard died while another device carried its last
  // segment (hedge win): re-shard before dispatching.
  if (!fleet_->alive(session.device)) {
    const auto next = fleet_->pick_device();
    if (!next) {
      finish(session, SessionState::kFailed);
      pump();
      return;
    }
    --device_load_[session.device];
    ++device_load_[*next];
    session.device = *next;
    ++report_.redispatches;
    metrics::count("serve.redispatches");
  }

  ladder_.update(queue_.pressure());
  const int rung = static_cast<int>(ladder_.mode());
  if (rung != last_journaled_rung_) {
    last_journaled_rung_ = rung;
    journal_append(JournalRecord{.type = JournalRecordType::kRung,
                                 .at = now,
                                 .rung = static_cast<std::uint8_t>(rung)});
  }
  // The rung is entered per priority class: best-effort degrades a rung
  // early, interactive a rung late.
  ServiceMode mode = session.force_degraded
                         ? ServiceMode::kThinned
                         : ladder_.mode_for(session.priority);
  ++report_.mode_dispatches[static_cast<std::size_t>(mode)];
  ++report_.dispatches_by_class[static_cast<std::size_t>(session.priority)];
  const bool degraded_mode =
      mode == ServiceMode::kCpuCodec || mode == ServiceMode::kThinned;
  if (degraded_mode) session.served_degraded = true;

  const std::size_t blocks = blocks_for(mode);
  const std::uint64_t seed = job_seed(id, session.segments_done);
  const std::size_t device = session.device;

  coding::CodedBatch batch;
  const SegmentResult result = fleet_->encode_segment(
      device, seed, blocks, mode, config_.verify_decode ? &batch : nullptr);
  if (!result.bit_exact) ++report_.bitexact_failures;
  bool rank_short_seg = false;
  if (config_.verify_decode) {
    switch (fleet_->verify_decode(batch)) {
      case DecodeCheck::kBitExact:
        break;
      case DecodeCheck::kRankShort:
        session.rank_short = true;
        rank_short_seg = true;
        break;
      case DecodeCheck::kMismatch:
        ++report_.decode_mismatches;
        break;
    }
  }

  const double start = std::max(now, fleet_->busy_until(device));
  const double done = start + result.service_s;
  fleet_->set_busy_until(device, done);

  std::size_t winner = device;
  std::uint64_t winner_epoch = fleet_->epoch(device);
  double winner_done = done;
  // Hedged re-dispatch: a straggler (faulted retries, hung attempts, CPU
  // fallback) is replicated on the least-loaded other device. Same seed,
  // same bytes — whichever finishes first delivers.
  if (result.service_s > hedge_threshold_s_ &&
      mode != ServiceMode::kCpuCodec) {
    if (const auto other = fleet_->pick_device(device)) {
      ++report_.hedges;
      metrics::count("serve.hedges");
      const SegmentResult replica =
          fleet_->encode_segment(*other, seed, blocks, mode, nullptr);
      const double replica_start =
          std::max(now, fleet_->busy_until(*other));
      const double replica_done = replica_start + replica.service_s;
      fleet_->set_busy_until(*other, replica_done);
      if (replica_done < winner_done) {
        winner = *other;
        winner_epoch = fleet_->epoch(*other);
        winner_done = replica_done;
        ++report_.hedge_wins;
        metrics::count("serve.hedge_wins");
      }
    }
  }

  const std::size_t segment = session.segments_done;
  const std::uint32_t payload_crc = result.payload_crc;
  sim_.schedule_at(winner_done, [this, id, segment, winner, winner_epoch,
                                 now, payload_crc, degraded_mode,
                                 rank_short_seg] {
    on_segment_done(id, segment, winner, winner_epoch, now, payload_crc,
                    degraded_mode, rank_short_seg);
  });
}

void CodingService::on_segment_done(std::uint64_t id, std::size_t segment,
                                    std::size_t device, std::uint64_t epoch,
                                    double dispatched_s,
                                    std::uint32_t payload_crc,
                                    bool degraded_mode, bool rank_short_seg) {
  Session& session = sessions_[id];
  if (is_terminal(session.state)) return;
  EXTNC_CHECK(session.segments_done == segment);

  if (fleet_->epoch(device) != epoch || !fleet_->alive(device)) {
    // The incarnation that produced these bytes died before delivering.
    // Deterministic seeds make the re-dispatch byte-identical.
    ++report_.stale_completions;
    metrics::count("serve.stale_completions");
    dispatch_segment(id);  // re-shards off a dead device internally
    return;
  }

  const double latency = sim_.now() - dispatched_s;
  report_.segment_latency_s.observe(latency);
  metrics::observe("serve.segment_latency_s", latency);
  if (fleet_->all_healthy()) {
    report_.segment_latency_healthy_s.observe(latency);
  } else {
    report_.segment_latency_faulted_s.observe(latency);
  }

  if (session.segment_crcs.size() < session.segments) {
    session.segment_crcs.resize(session.segments, 0);
  }
  session.segment_crcs[segment] = payload_crc;
  ++report_.segments_served;
  if (rank_short_seg) ++report_.rank_short_segments;
  journal_append(JournalRecord{
      .type = JournalRecordType::kSegmentDone,
      .at = sim_.now(),
      .session = id,
      .segment = static_cast<std::uint32_t>(segment),
      .payload_crc = payload_crc,
      .degraded = degraded_mode,
      .rank_short = rank_short_seg});

  ++session.segments_done;
  if (session.segments_done == session.segments) {
    finish(session, session.served_degraded || session.force_degraded
                        ? SessionState::kDegraded
                        : SessionState::kCompleted);
    pump();
  } else {
    dispatch_segment(id);
  }
}

void CodingService::apply_terminal_counters(const Session& session,
                                            SessionState state,
                                            ShedReason reason, bool live) {
  TenantReport& tenant = report_.tenants[session.tenant];
  switch (state) {
    case SessionState::kCompleted:
      ++report_.completed;
      ++tenant.completed;
      if (live) metrics::count("serve.completed");
      break;
    case SessionState::kDegraded:
      ++report_.degraded;
      ++tenant.degraded;
      if (live) metrics::count("serve.degraded");
      break;
    case SessionState::kShed:
      ++report_.shed;
      ++tenant.shed;
      if (live) metrics::count("serve.shed");
      switch (reason) {
        case ShedReason::kRejected:
          ++report_.shed_rejected;
          if (live) metrics::count("serve.shed_rejected");
          break;
        case ShedReason::kEvicted:
          ++report_.shed_evicted;
          if (live) metrics::count("serve.shed_evicted");
          break;
        case ShedReason::kDeadline:
          ++report_.shed_deadline;
          if (live) metrics::count("serve.shed_deadline");
          break;
        case ShedReason::kNone:
          break;
      }
      break;
    case SessionState::kFailed:
      ++report_.failed;
      ++tenant.failed;
      if (live) metrics::count("serve.failed");
      break;
    case SessionState::kQueued:
    case SessionState::kServing:
      EXTNC_CHECK(false);
  }
}

void CodingService::finish(Session& session, SessionState state,
                           ShedReason reason) {
  finish_at(session, state, reason, sim_.now());
}

void CodingService::finish_at(Session& session, SessionState state,
                              ShedReason reason, double at) {
  EXTNC_CHECK(!is_terminal(session.state));
  EXTNC_CHECK(is_terminal(state));
  if (session.state == SessionState::kServing) {
    EXTNC_CHECK(device_load_[session.device] > 0);
    --device_load_[session.device];
  }
  session.state = state;
  session.finished_s = at;
  journal_append(JournalRecord{
      .type = JournalRecordType::kTerminal,
      .at = session.finished_s,
      .session = session.id,
      .state = static_cast<std::uint8_t>(state),
      .shed_reason = static_cast<std::uint8_t>(reason)});
  apply_terminal_counters(session, state, reason, /*live=*/true);
  if (state == SessionState::kCompleted || state == SessionState::kDegraded) {
    const double latency = session.finished_s - session.arrival_s;
    report_.session_latency_s.observe(latency);
    metrics::observe("serve.session_latency_s", latency);
  }
}

std::uint64_t CodingService::job_seed(std::uint64_t session,
                                      std::size_t segment) const {
  // splitmix-style hash: replicas of (session, segment) agree everywhere.
  std::uint64_t x = config_.seed * 0x9e3779b97f4a7c15ULL +
                    session * 0x100000001b3ULL + segment + 1;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 29;
  return x | 1;
}

std::size_t CodingService::blocks_for(ServiceMode mode) const {
  const std::size_t n = config_.fleet.params.n;
  return mode == ServiceMode::kThinned ? n + config_.blocks_extra_thinned
                                       : n + config_.blocks_extra;
}

ServiceReport run_with_recovery(const ServiceConfig& config,
                                simgpu::Profiler* profiler) {
  auto service = std::make_unique<CodingService>(config, profiler);
  ServiceReport report = service->run();
  std::vector<FleetScheduler::RampEvent> ramp_events = report.ramp_events;
  std::uint64_t ramp_collapses = report.ramp_collapses;
  std::size_t dropped_bytes = report.journal_dropped_bytes;
  std::size_t next_recover = 0;
  while (report.crashed) {
    // Pair the crash with the next scripted recover at or after it; with
    // none scripted, recover at the last journaled event (immediately).
    std::optional<double> recover_at;
    for (; next_recover < config.plan.recovers.size(); ++next_recover) {
      if (config.plan.recovers[next_recover] >= report.crash_at_s) {
        recover_at = config.plan.recovers[next_recover];
        ++next_recover;
        break;
      }
    }
    // Copy the journal: the "dead" process's memory is gone, only its
    // journal bytes survive — same contract as the on-disk flow.
    const std::vector<std::uint8_t> journal = service->journal_bytes();
    auto next =
        CodingService::recover(config, journal, recover_at, profiler);
    EXTNC_CHECK(next != nullptr);
    service = std::move(next);
    report = service->run();
    ramp_events.insert(ramp_events.end(), report.ramp_events.begin(),
                       report.ramp_events.end());
    ramp_collapses += report.ramp_collapses;
    dropped_bytes += report.journal_dropped_bytes;
  }
  report.ramp_events = std::move(ramp_events);
  report.ramp_collapses = ramp_collapses;
  report.journal_dropped_bytes = dropped_bytes;
  return report;
}

}  // namespace extnc::serve
