// Bounded admission queue with load-shedding policies, priority ordering
// and per-tenant weighted-fair occupancy caps.
//
// The service admits sessions into a single fleet-wide queue; devices pull
// from its head. The queue is the backpressure signal: its fill fraction
// ("pressure") drives the degradation ladder, and when it is full one of
// three policies decides who pays:
//
//   kReject    — the new arrival is turned away (classic tail drop).
//                Protects waiters; freshest work is lost.
//   kShedOldest— the oldest waiter is evicted and the arrival admitted.
//                The head of the queue has waited longest and is most
//                likely to blow its deadline anyway; fresh work has the
//                best chance of finishing in time.
//   kDegrade   — the arrival is admitted in forced-degraded (thinned)
//                mode past capacity, up to a hard cap at
//                degrade_headroom * capacity; beyond the cap it is
//                rejected. Trades fidelity for admission.
//
// Ordering: pop() serves the highest priority class first (interactive
// before standard before best-effort), FIFO within a class — a waiting
// interactive session never queues behind best-effort backlog.
//
// Fairness: each tenant owns a weighted share of the capacity. While the
// queue has room everything is admitted (work-conserving); once it is
// full, an arrival from a tenant still UNDER its share evicts the newest
// lowest-priority waiter of the most-over-share tenant — the burster pays
// for its own burst — while an arrival from a tenant at or over its share
// faces the shed policy against its own waiters only. One tenant's burst
// can therefore never shed another tenant's admitted traffic.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string_view>
#include <vector>

#include "serve/session.h"

namespace extnc::serve {

enum class ShedPolicy { kReject, kShedOldest, kDegrade };

const char* shed_policy_name(ShedPolicy policy);
// "reject" | "oldest" | "degrade"; nullopt on anything else.
std::optional<ShedPolicy> parse_shed_policy(std::string_view name);

struct AdmissionConfig {
  std::size_t capacity = 32;
  ShedPolicy policy = ShedPolicy::kReject;
  // kDegrade only: admissions allowed up to capacity * degrade_headroom.
  double degrade_headroom = 2.0;
  // Per-tenant admission weights (fair shares of capacity). Empty means
  // one tenant owning everything — the pre-tenant single-queue behavior.
  std::vector<double> tenant_weights = {};
};

struct AdmissionDecision {
  bool admitted = false;
  // kDegrade admitted this session past capacity: serve it thinned.
  bool force_degraded = false;
  // A waiting session evicted to make room (shed-oldest within the
  // arriving tenant, or fairness eviction from an over-share tenant).
  std::optional<std::uint64_t> evicted;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionConfig config);

  const AdmissionConfig& config() const { return config_; }

  // Admission decision for one arriving session. Mutates the queue
  // (enqueues the arrival and/or evicts) according to priority, tenant
  // fairness and the shed policy.
  AdmissionDecision offer(std::uint64_t session_id, std::uint16_t tenant,
                          Priority priority);
  // Single-tenant convenience (tenant 0, standard priority).
  AdmissionDecision offer(std::uint64_t session_id) {
    return offer(session_id, 0, Priority::kStandard);
  }

  // Crash recovery: re-enqueue a journaled admitted session, bypassing
  // policy (its admission already happened and is on the record) — depth
  // may legitimately sit past capacity, exactly as it did pre-crash.
  void restore(std::uint64_t session_id, std::uint16_t tenant,
               Priority priority);

  // Next session to serve: highest priority class first, FIFO within.
  std::optional<std::uint64_t> pop();

  // Remove a waiting session wherever it sits (deadline sheds). Returns
  // false if the id is not queued.
  bool remove(std::uint64_t session_id);

  std::size_t depth() const { return depth_; }
  bool empty() const { return depth_ == 0; }

  std::size_t tenant_count() const;
  // Waiters of one tenant currently queued.
  std::size_t tenant_depth(std::uint16_t tenant) const;
  // The tenant's weighted-fair share of capacity (at least 1).
  std::size_t tenant_cap(std::uint16_t tenant) const;

  // Fill fraction of the nominal capacity. Exceeds 1.0 only under the
  // kDegrade policy's headroom band.
  double pressure() const {
    return static_cast<double>(depth_) /
           static_cast<double>(config_.capacity);
  }

  std::size_t hard_cap() const;

 private:
  struct Waiter {
    std::uint64_t id = 0;
    std::uint16_t tenant = 0;
  };

  void push(std::uint64_t id, std::uint16_t tenant, Priority priority);
  void erase(int cls, std::size_t index);
  // The waiter a fairness eviction removes from `tenant`: its newest,
  // lowest-priority one. nullopt if the tenant has no waiters.
  std::optional<std::uint64_t> evict_newest_of(std::uint16_t tenant);
  // The waiter a shed-oldest eviction removes from `tenant`: the oldest
  // in its lowest-priority occupied class.
  std::optional<std::uint64_t> evict_oldest_of(std::uint16_t tenant);
  // Tenant most over its fair share, if any is over.
  std::optional<std::uint16_t> most_over_share() const;

  AdmissionConfig config_;
  double weight_sum_ = 0;
  std::array<std::deque<Waiter>, kPriorities> classes_;
  std::vector<std::size_t> tenant_depth_;
  std::size_t depth_ = 0;
};

}  // namespace extnc::serve
