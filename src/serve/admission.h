// Bounded admission queue with load-shedding policies.
//
// The service admits sessions into a single fleet-wide FIFO; devices pull
// from its head. The queue is the backpressure signal: its fill fraction
// ("pressure") drives the degradation ladder, and when it is full one of
// three policies decides who pays:
//
//   kReject    — the new arrival is turned away (classic tail drop).
//                Protects waiters; freshest work is lost.
//   kShedOldest— the oldest waiter is evicted and the arrival admitted.
//                The head of the queue has waited longest and is most
//                likely to blow its deadline anyway; fresh work has the
//                best chance of finishing in time.
//   kDegrade   — the arrival is admitted in forced-degraded (thinned)
//                mode past capacity, up to a hard cap at
//                degrade_headroom * capacity; beyond the cap it is
//                rejected. Trades fidelity for admission.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string_view>

namespace extnc::serve {

enum class ShedPolicy { kReject, kShedOldest, kDegrade };

const char* shed_policy_name(ShedPolicy policy);
// "reject" | "oldest" | "degrade"; nullopt on anything else.
std::optional<ShedPolicy> parse_shed_policy(std::string_view name);

struct AdmissionConfig {
  std::size_t capacity = 32;
  ShedPolicy policy = ShedPolicy::kReject;
  // kDegrade only: admissions allowed up to capacity * degrade_headroom.
  double degrade_headroom = 2.0;
};

struct AdmissionDecision {
  bool admitted = false;
  // kDegrade admitted this session past capacity: serve it thinned.
  bool force_degraded = false;
  // kShedOldest evicted this waiting session to make room.
  std::optional<std::uint64_t> evicted;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionConfig config);

  const AdmissionConfig& config() const { return config_; }

  // Admission decision for one arriving session. Mutates the queue
  // (enqueues the arrival and/or evicts) according to the policy.
  AdmissionDecision offer(std::uint64_t session_id);

  // Next session to serve (FIFO), if any.
  std::optional<std::uint64_t> pop();

  // Remove a waiting session wherever it sits (deadline sheds). Returns
  // false if the id is not queued.
  bool remove(std::uint64_t session_id);

  std::size_t depth() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

  // Fill fraction of the nominal capacity. Exceeds 1.0 only under the
  // kDegrade policy's headroom band.
  double pressure() const {
    return static_cast<double>(queue_.size()) /
           static_cast<double>(config_.capacity);
  }

  std::size_t hard_cap() const;

 private:
  AdmissionConfig config_;
  std::deque<std::uint64_t> queue_;
};

}  // namespace extnc::serve
