// Overload-degradation ladder with hysteresis.
//
// Maps the admission queue's pressure (fill fraction) to a ServiceMode.
// Rising pressure climbs the ladder one or more rungs immediately (the
// service must react to a spike within the dispatch it sees it); falling
// pressure steps down only after dropping `hysteresis` BELOW the rung's
// entry threshold, so a queue hovering at a boundary does not flap between
// modes on every dispatch.
#pragma once

#include <array>
#include <cstdint>

#include "serve/session.h"

namespace extnc::serve {

struct LadderConfig {
  // Entry thresholds (pressure, i.e. queue depth / capacity) for
  // kBatched, kCpuCodec, kThinned. Must be non-decreasing.
  std::array<double, kServiceModes - 1> enter = {0.5, 0.75, 0.95};
  // Step down a rung only when pressure < enter[rung-1] - hysteresis.
  double hysteresis = 0.15;
  // Per-priority-class rung bias applied on top of the pressure level:
  // interactive traffic degrades one rung LATER than the ladder says,
  // best-effort one rung EARLIER. mode_for() clamps to [kFull, kThinned].
  std::array<int, kPriorities> class_bias = {-1, 0, +1};
};

class DegradationLadder {
 public:
  explicit DegradationLadder(LadderConfig config = {});

  const LadderConfig& config() const { return config_; }

  // Feed the current pressure; returns the (possibly changed) mode.
  ServiceMode update(double pressure);

  ServiceMode mode() const { return static_cast<ServiceMode>(level_); }

  // The mode a session of `priority` is actually served in: the current
  // rung shifted by the class bias (best-effort degrades before
  // interactive), clamped to the ladder.
  ServiceMode mode_for(Priority priority) const;

  // Crash recovery: jump straight to a journaled rung without counting a
  // transition (the transition was counted — and journaled — by the
  // process that made it).
  void restore_level(int level);

  // Mode transitions so far (both directions).
  std::uint64_t transitions() const { return transitions_; }
  // Dispatches spent in each mode (update() calls).
  const std::array<std::uint64_t, kServiceModes>& dwell() const {
    return dwell_;
  }

 private:
  LadderConfig config_;
  int level_ = 0;
  std::uint64_t transitions_ = 0;
  std::array<std::uint64_t, kServiceModes> dwell_ = {};
};

}  // namespace extnc::serve
