// Overload-degradation ladder with hysteresis.
//
// Maps the admission queue's pressure (fill fraction) to a ServiceMode.
// Rising pressure climbs the ladder one or more rungs immediately (the
// service must react to a spike within the dispatch it sees it); falling
// pressure steps down only after dropping `hysteresis` BELOW the rung's
// entry threshold, so a queue hovering at a boundary does not flap between
// modes on every dispatch.
#pragma once

#include <array>
#include <cstdint>

#include "serve/session.h"

namespace extnc::serve {

struct LadderConfig {
  // Entry thresholds (pressure, i.e. queue depth / capacity) for
  // kBatched, kCpuCodec, kThinned. Must be non-decreasing.
  std::array<double, kServiceModes - 1> enter = {0.5, 0.75, 0.95};
  // Step down a rung only when pressure < enter[rung-1] - hysteresis.
  double hysteresis = 0.15;
};

class DegradationLadder {
 public:
  explicit DegradationLadder(LadderConfig config = {});

  const LadderConfig& config() const { return config_; }

  // Feed the current pressure; returns the (possibly changed) mode.
  ServiceMode update(double pressure);

  ServiceMode mode() const { return static_cast<ServiceMode>(level_); }

  // Mode transitions so far (both directions).
  std::uint64_t transitions() const { return transitions_; }
  // Dispatches spent in each mode (update() calls).
  const std::array<std::uint64_t, kServiceModes>& dwell() const {
    return dwell_;
  }

 private:
  LadderConfig config_;
  int level_ = 0;
  std::uint64_t transitions_ = 0;
  std::array<std::uint64_t, kServiceModes> dwell_ = {};
};

}  // namespace extnc::serve
