// Durable session journal: the crash-recovery log of the coding service.
//
// CodingService appends one record per externally-visible state change —
// arrival, admission, per-segment completion (with the payload CRC that
// pins the bit-exact delivery contract across a restart), degradation-rung
// change, terminal state, and recovery marker — so a process killed
// mid-run can be restarted and replay the journal into an equivalent
// in-memory state: every pre-crash terminal session keeps its state, every
// in-flight session is re-enqueued, and deterministic splitmix job seeds
// make the re-dispatched segments byte-identical to the ones the lost
// process would have produced.
//
// Format (all little-endian, same XNCK-style framing as the PR 3 decode
// checkpoint): a fixed header
//
//   "XNCJ" | u32 version | u64 config_fingerprint | u32 crc32c(header)
//
// followed by self-delimiting records
//
//   u8 type | u8 payload_len | payload | u32 crc32c(type|len|payload)
//
// The fingerprint binds a journal to the (config, seed) that wrote it; a
// recovery against a different config is refused instead of replaying
// nonsense. Appends are atomic per record: a torn or truncated tail (the
// crash landed mid-write) fails its CRC or runs out of bytes and is
// DROPPED — parse() reports how many bytes it discarded, and recovery
// treats the journal as ending at the last intact record. A corrupt
// header refuses the whole journal (nullopt).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace extnc::serve {

enum class JournalRecordType : std::uint8_t {
  kArrival = 1,      // session arrived (id, time, deadline, shape, tenant)
  kAdmit = 2,        // admission accepted it (possibly forced-degraded)
  kSegmentDone = 3,  // one segment delivered (payload CRC pins the bytes)
  kRung = 4,         // degradation ladder moved to a new rung
  kTerminal = 5,     // session reached a terminal state
  kRecovered = 6,    // a recovery happened here (chained-crash bookkeeping)
};

// One decoded record. Fields beyond (type, at) are populated per type;
// unused ones stay zero.
struct JournalRecord {
  JournalRecordType type = JournalRecordType::kArrival;
  double at = 0;  // sim time the event happened

  std::uint64_t session = 0;    // arrival/admit/segment/terminal
  double deadline_s = 0;        // arrival
  std::uint32_t segments = 0;   // arrival
  std::uint16_t tenant = 0;     // arrival
  std::uint8_t priority = 0;    // arrival
  bool force_degraded = false;  // admit
  std::uint32_t segment = 0;    // segment-done
  std::uint32_t payload_crc = 0;  // segment-done
  bool degraded = false;          // segment-done (served under a degraded mode)
  bool rank_short = false;        // segment-done
  std::uint8_t rung = 0;          // rung
  std::uint8_t state = 0;         // terminal (SessionState)
  std::uint8_t shed_reason = 0;   // terminal (ShedReason)
};

struct JournalImage {
  std::uint64_t fingerprint = 0;
  std::vector<JournalRecord> records;
  // Bytes of torn/corrupt tail discarded by parse() (0 on a clean close).
  std::size_t dropped_bytes = 0;
};

// Append-only in-memory journal with serialized bytes always available
// (the CLI persists bytes() to disk after every run; a real deployment
// would fsync per append — the format supports it, each record is
// self-contained).
class Journal {
 public:
  explicit Journal(std::uint64_t fingerprint);

  std::uint64_t fingerprint() const { return fingerprint_; }
  std::size_t records() const { return records_; }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  void append(const JournalRecord& record);

  // Decode a journal image. nullopt on a bad header (wrong magic/version
  // or header CRC); a torn tail is NOT an error — intact records are
  // returned and the discarded byte count reported.
  static std::optional<JournalImage> parse(std::span<const std::uint8_t> data);

 private:
  std::uint64_t fingerprint_ = 0;
  std::size_t records_ = 0;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace extnc::serve
