#include "serve/admission.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace extnc::serve {

const char* shed_policy_name(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kReject:
      return "reject";
    case ShedPolicy::kShedOldest:
      return "oldest";
    case ShedPolicy::kDegrade:
      return "degrade";
  }
  return "?";
}

std::optional<ShedPolicy> parse_shed_policy(std::string_view name) {
  if (name == "reject") return ShedPolicy::kReject;
  if (name == "oldest") return ShedPolicy::kShedOldest;
  if (name == "degrade") return ShedPolicy::kDegrade;
  return std::nullopt;
}

AdmissionQueue::AdmissionQueue(AdmissionConfig config) : config_(config) {
  EXTNC_CHECK(config_.capacity >= 1);
  EXTNC_CHECK(config_.degrade_headroom >= 1.0);
}

std::size_t AdmissionQueue::hard_cap() const {
  if (config_.policy != ShedPolicy::kDegrade) return config_.capacity;
  return static_cast<std::size_t>(
      std::ceil(static_cast<double>(config_.capacity) *
                config_.degrade_headroom));
}

AdmissionDecision AdmissionQueue::offer(std::uint64_t session_id) {
  AdmissionDecision decision;
  if (queue_.size() < config_.capacity) {
    queue_.push_back(session_id);
    decision.admitted = true;
    return decision;
  }
  switch (config_.policy) {
    case ShedPolicy::kReject:
      return decision;  // tail drop
    case ShedPolicy::kShedOldest:
      decision.evicted = queue_.front();
      queue_.pop_front();
      queue_.push_back(session_id);
      decision.admitted = true;
      return decision;
    case ShedPolicy::kDegrade:
      if (queue_.size() >= hard_cap()) return decision;
      queue_.push_back(session_id);
      decision.admitted = true;
      decision.force_degraded = true;
      return decision;
  }
  return decision;
}

std::optional<std::uint64_t> AdmissionQueue::pop() {
  if (queue_.empty()) return std::nullopt;
  const std::uint64_t id = queue_.front();
  queue_.pop_front();
  return id;
}

bool AdmissionQueue::remove(std::uint64_t session_id) {
  auto it = std::find(queue_.begin(), queue_.end(), session_id);
  if (it == queue_.end()) return false;
  queue_.erase(it);
  return true;
}

}  // namespace extnc::serve
