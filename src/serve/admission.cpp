#include "serve/admission.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/assert.h"

namespace extnc::serve {

const char* shed_policy_name(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kReject:
      return "reject";
    case ShedPolicy::kShedOldest:
      return "oldest";
    case ShedPolicy::kDegrade:
      return "degrade";
  }
  return "?";
}

std::optional<ShedPolicy> parse_shed_policy(std::string_view name) {
  if (name == "reject") return ShedPolicy::kReject;
  if (name == "oldest") return ShedPolicy::kShedOldest;
  if (name == "degrade") return ShedPolicy::kDegrade;
  return std::nullopt;
}

AdmissionQueue::AdmissionQueue(AdmissionConfig config)
    : config_(std::move(config)) {
  EXTNC_CHECK(config_.capacity >= 1);
  EXTNC_CHECK(config_.degrade_headroom >= 1.0);
  if (config_.tenant_weights.empty()) config_.tenant_weights = {1.0};
  for (const double w : config_.tenant_weights) EXTNC_CHECK(w > 0);
  weight_sum_ = 0;
  for (const double w : config_.tenant_weights) weight_sum_ += w;
  tenant_depth_.assign(config_.tenant_weights.size(), 0);
}

std::size_t AdmissionQueue::tenant_count() const {
  return config_.tenant_weights.size();
}

std::size_t AdmissionQueue::tenant_depth(std::uint16_t tenant) const {
  EXTNC_CHECK(tenant < tenant_depth_.size());
  return tenant_depth_[tenant];
}

std::size_t AdmissionQueue::tenant_cap(std::uint16_t tenant) const {
  EXTNC_CHECK(tenant < config_.tenant_weights.size());
  const double share = static_cast<double>(config_.capacity) *
                       config_.tenant_weights[tenant] / weight_sum_;
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(share)));
}

std::size_t AdmissionQueue::hard_cap() const {
  if (config_.policy != ShedPolicy::kDegrade) return config_.capacity;
  return static_cast<std::size_t>(
      std::ceil(static_cast<double>(config_.capacity) *
                config_.degrade_headroom));
}

void AdmissionQueue::push(std::uint64_t id, std::uint16_t tenant,
                          Priority priority) {
  classes_[static_cast<std::size_t>(priority)].push_back(
      Waiter{.id = id, .tenant = tenant});
  ++tenant_depth_[tenant];
  ++depth_;
}

void AdmissionQueue::erase(int cls, std::size_t index) {
  auto& queue = classes_[static_cast<std::size_t>(cls)];
  --tenant_depth_[queue[index].tenant];
  --depth_;
  queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(index));
}

std::optional<std::uint64_t> AdmissionQueue::evict_newest_of(
    std::uint16_t tenant) {
  // Newest waiter in the tenant's lowest-priority occupied class: the one
  // with the least invested wait and the least claim to stay.
  for (int cls = kPriorities - 1; cls >= 0; --cls) {
    auto& queue = classes_[static_cast<std::size_t>(cls)];
    for (std::size_t i = queue.size(); i-- > 0;) {
      if (queue[i].tenant != tenant) continue;
      const std::uint64_t id = queue[i].id;
      erase(cls, i);
      return id;
    }
  }
  return std::nullopt;
}

std::optional<std::uint64_t> AdmissionQueue::evict_oldest_of(
    std::uint16_t tenant) {
  for (int cls = kPriorities - 1; cls >= 0; --cls) {
    auto& queue = classes_[static_cast<std::size_t>(cls)];
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (queue[i].tenant != tenant) continue;
      const std::uint64_t id = queue[i].id;
      erase(cls, i);
      return id;
    }
  }
  return std::nullopt;
}

std::optional<std::uint16_t> AdmissionQueue::most_over_share() const {
  std::optional<std::uint16_t> worst;
  std::size_t worst_overage = 0;
  for (std::uint16_t t = 0; t < tenant_depth_.size(); ++t) {
    const std::size_t cap = tenant_cap(t);
    if (tenant_depth_[t] <= cap) continue;
    const std::size_t overage = tenant_depth_[t] - cap;
    if (overage > worst_overage) {
      worst = t;
      worst_overage = overage;
    }
  }
  return worst;
}

AdmissionDecision AdmissionQueue::offer(std::uint64_t session_id,
                                        std::uint16_t tenant,
                                        Priority priority) {
  EXTNC_CHECK(tenant < config_.tenant_weights.size());
  AdmissionDecision decision;
  if (depth_ < config_.capacity) {
    // Work-conserving: free room is granted regardless of shares.
    push(session_id, tenant, priority);
    decision.admitted = true;
    return decision;
  }
  // Full. If the arriving tenant is still under its weighted share, the
  // overage belongs to someone else's burst — that burster's newest
  // lowest-priority waiter pays, never a tenant within its share.
  if (tenant_depth_[tenant] < tenant_cap(tenant)) {
    if (const auto burster = most_over_share()) {
      decision.evicted = evict_newest_of(*burster);
      EXTNC_CHECK(decision.evicted.has_value());
      push(session_id, tenant, priority);
      decision.admitted = true;
      return decision;
    }
  }
  // The arriving tenant is at/over its share (or every tenant is exactly
  // at share): the shed policy plays out WITHIN the arriving tenant.
  switch (config_.policy) {
    case ShedPolicy::kReject:
      return decision;  // tail drop
    case ShedPolicy::kShedOldest:
      decision.evicted = evict_oldest_of(tenant);
      if (!decision.evicted) return decision;  // no own waiter to trade
      push(session_id, tenant, priority);
      decision.admitted = true;
      return decision;
    case ShedPolicy::kDegrade: {
      // Headroom is shared out by the same weights as capacity, so one
      // tenant's burst cannot consume the whole degraded band either.
      const auto tenant_headroom = static_cast<std::size_t>(
          std::ceil(static_cast<double>(tenant_cap(tenant)) *
                    config_.degrade_headroom));
      if (depth_ >= hard_cap()) return decision;
      if (tenant_depth_[tenant] >= tenant_headroom) return decision;
      push(session_id, tenant, priority);
      decision.admitted = true;
      decision.force_degraded = true;
      return decision;
    }
  }
  return decision;
}

void AdmissionQueue::restore(std::uint64_t session_id, std::uint16_t tenant,
                             Priority priority) {
  EXTNC_CHECK(tenant < config_.tenant_weights.size());
  push(session_id, tenant, priority);
}

std::optional<std::uint64_t> AdmissionQueue::pop() {
  for (auto& queue : classes_) {
    if (queue.empty()) continue;
    const std::uint64_t id = queue.front().id;
    --tenant_depth_[queue.front().tenant];
    --depth_;
    queue.pop_front();
    return id;
  }
  return std::nullopt;
}

bool AdmissionQueue::remove(std::uint64_t session_id) {
  for (int cls = 0; cls < kPriorities; ++cls) {
    auto& queue = classes_[static_cast<std::size_t>(cls)];
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (queue[i].id != session_id) continue;
      erase(cls, i);
      return true;
    }
  }
  return false;
}

}  // namespace extnc::serve
