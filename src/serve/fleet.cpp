#include "serve/fleet.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "coding/block_decoder.h"
#include "cpu/xeon_model.h"
#include "gpu/gpu_model.h"
#include "util/assert.h"
#include "util/checksum.h"
#include "util/metrics_registry.h"
#include "util/rng.h"

namespace extnc::serve {

struct FleetScheduler::Slot {
  Slot(const simgpu::DeviceSpec& device_spec, simgpu::FaultPlan plan,
       gpu::SupervisorConfig supervisor_config)
      : spec(device_spec),
        injector(std::move(plan)),
        supervisor(std::move(supervisor_config), &injector) {}

  simgpu::DeviceSpec spec;
  simgpu::FaultInjector injector;
  gpu::ResilientLauncher supervisor;
  std::unique_ptr<gpu::ResilientEncoder> encoder;
  double gpu_mb_per_s = 0;
  bool alive = true;
  std::uint64_t epoch = 0;
  double busy_until_s = 0;
  std::uint64_t segments = 0;
  std::uint64_t gpu_segments = 0;
  std::uint64_t cpu_segments = 0;
  // Restore ramp (kRampStages == not ramping, i.e. full share).
  int ramp_stage = kRampStages;
  int ramp_streak = 0;           // consecutive clean GPU segments
  std::uint64_t ramp_offered = 0;  // opportunities seen this ramp
  std::uint64_t ramp_taken = 0;    // opportunities accepted this ramp
};

FleetScheduler::FleetScheduler(FleetConfig config, std::function<double()> clock)
    : config_(std::move(config)),
      clock_(std::move(clock)),
      content_([&] {
        Rng rng(config_.content_seed);
        return coding::Segment::random(config_.params, rng);
      }()),
      reference_(content_),
      pool_(config_.threads) {
  EXTNC_CHECK(!config_.devices.empty());
  EXTNC_CHECK(config_.restore_ramp.advance_after >= 1);
  for (int s = 0; s < kRampStages; ++s) {
    const double share = config_.restore_ramp.shares[s];
    EXTNC_CHECK(share > 0 && share <= 1.0);
    if (s > 0) EXTNC_CHECK(share >= config_.restore_ramp.shares[s - 1]);
  }
  cpu_mb_per_s_ = cpu::XeonModel{}.encode_table_mb_per_s(config_.params);
  EXTNC_CHECK(cpu_mb_per_s_ > 0);
  slots_.reserve(config_.devices.size());
  for (std::size_t i = 0; i < config_.devices.size(); ++i) {
    // Per-device fault stream: same plan shape, decorrelated draws.
    simgpu::FaultPlan plan = config_.faults;
    plan.seed = config_.faults.seed + i * 0x9e3779b9ULL;
    gpu::SupervisorConfig supervisor = config_.supervisor;
    supervisor.metric_prefix += ".dev" + std::to_string(i);
    // The service delivers with a bit-exact contract: spot-checking is not
    // enough, every row of every batch is verified so a corrupting fault
    // always surfaces as a failed attempt (and retries/fallback repair it).
    supervisor.verify_sample = std::numeric_limits<std::size_t>::max();
    slots_.push_back(
        std::make_unique<Slot>(config_.devices[i], std::move(plan),
                               std::move(supervisor)));
    Slot& slot = *slots_.back();
    if (clock_) slot.supervisor.set_clock(clock_);
    // Nominal un-faulted bandwidth of this device for the workload shape —
    // the unit deadlines and hedging thresholds are expressed in.
    gpu::EncodeModelOptions options;
    options.include_preprocessing = false;
    slot.gpu_mb_per_s =
        gpu::model_encode_bandwidth(slot.spec, config_.scheme, config_.params,
                                    options)
            .mb_per_s;
    EXTNC_CHECK(slot.gpu_mb_per_s > 0);
    // The encoder adopts the slot's injector, so its launches share the
    // device's fault plan and modeled clock.
    slot.encoder = std::make_unique<gpu::ResilientEncoder>(
        slot.spec, content_, config_.scheme, pool_, slot.supervisor);
  }
}

FleetScheduler::~FleetScheduler() = default;

SegmentResult FleetScheduler::encode_segment(std::size_t device,
                                             std::uint64_t seed,
                                             std::size_t blocks,
                                             ServiceMode mode,
                                             coding::CodedBatch* out) {
  EXTNC_CHECK(device < slots_.size());
  EXTNC_CHECK(blocks >= 1);
  Slot& slot = *slots_[device];
  EXTNC_CHECK(slot.alive);

  SegmentResult result;
  Rng rng(seed);
  coding::CodedBatch batch(config_.params, blocks);
  // Coefficients are a pure function of the job seed: replicas of this
  // job (hedges, post-kill re-dispatches) draw the same rows anywhere.
  for (std::size_t j = 0; j < blocks; ++j) {
    reference_.draw_coefficients(rng, batch.coefficients(j));
  }

  if (mode == ServiceMode::kCpuCodec) {
    // Ladder-forced CPU codec: bypass the device entirely.
    for (std::size_t j = 0; j < blocks; ++j) {
      reference_.encode_with_coefficients(batch.coefficients(j),
                                          batch.payload(j));
    }
    result.report.path = gpu::ComputePath::kCpuFallback;
    result.report.attempts = 0;
    result.service_s = cpu_segment_s(blocks);
    ++slot.cpu_segments;
  } else {
    const bool breaker_was_open = slot.supervisor.breaker_open();
    slot.encoder->encode_into(batch);
    result.report = slot.encoder->last_report();
    const double attempt_s = gpu_segment_s(device, blocks);
    // Hung attempts are killed at the watchdog budget; clean (successful
    // or promptly-failed) attempts cost a full pass; backoff is charged
    // as reported, in the same modeled seconds.
    double service = result.report.backoff_s;
    service += result.report.watchdog_trips * config_.supervisor.watchdog_budget_s;
    const int clean_attempts =
        result.report.attempts - result.report.watchdog_trips;
    service += std::max(clean_attempts, 0) * attempt_s;
    if (result.report.path == gpu::ComputePath::kGpu) {
      result.gpu_path = true;
      ++slot.gpu_segments;
    } else {
      service += cpu_segment_s(blocks);
      ++slot.cpu_segments;
    }
    result.service_s = service;
    // A successful half-open probe reclosed the breaker inside this
    // dispatch: the device healed itself. Enter the restore ramp exactly
    // as a scripted restore would, instead of snapping to full share.
    if (config_.restore_ramp.enabled && breaker_was_open &&
        !slot.supervisor.breaker_open() && slot.ramp_stage >= kRampStages) {
      begin_ramp(device);
    }
    note_ramp_outcome(device, result.gpu_path);
  }
  ++slot.segments;

  // Full bit-exactness audit against the reference encoder (cheap at
  // service params; the supervisor's own verify only spot-checks), and
  // the delivered-payload CRC the journal persists.
  std::vector<std::uint8_t> scratch(config_.params.k);
  std::uint32_t crc_state = crc32c_init();
  for (std::size_t j = 0; j < blocks; ++j) {
    crc_state = crc32c_update(crc_state, batch.payload(j));
    reference_.encode_with_coefficients(batch.coefficients(j), scratch);
    if (crc32c(scratch) != crc32c(batch.payload(j))) {
      result.bit_exact = false;
      break;
    }
  }
  result.payload_crc = crc32c_final(crc_state);
  if (out != nullptr) *out = std::move(batch);
  return result;
}

DecodeCheck FleetScheduler::verify_decode(
    const coding::CodedBatch& batch) const {
  coding::BlockDecoder decoder(config_.params);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    decoder.add(batch.coefficients(j), batch.payload(j));
    if (decoder.is_ready()) break;
  }
  if (!decoder.is_ready()) return DecodeCheck::kRankShort;
  return decoder.decode() == content_ ? DecodeCheck::kBitExact
                                      : DecodeCheck::kMismatch;
}

void FleetScheduler::kill(std::size_t device) {
  EXTNC_CHECK(device < slots_.size());
  Slot& slot = *slots_[device];
  if (!slot.alive) return;
  slot.alive = false;
  ++slot.epoch;  // in-flight results of the old incarnation are stale
  slot.supervisor.trip_breaker();
  // A mid-ramp death voids the ramp; the next restore starts a fresh one.
  slot.ramp_stage = kRampStages;
  slot.ramp_streak = 0;
}

void FleetScheduler::restore(std::size_t device) {
  EXTNC_CHECK(device < slots_.size());
  Slot& slot = *slots_[device];
  if (slot.alive) return;
  slot.alive = true;
  slot.supervisor.reset_breaker();
  if (config_.restore_ramp.enabled) begin_ramp(device);
}

void FleetScheduler::record_ramp_stage(std::size_t device, int stage) {
  ramp_events_.push_back(RampEvent{
      .at = clock_ ? clock_() : 0.0, .device = device, .stage = stage});
  metrics::gauge("serve.restore.ramp_stage.dev" + std::to_string(device),
                 static_cast<double>(stage));
}

void FleetScheduler::begin_ramp(std::size_t device) {
  EXTNC_CHECK(device < slots_.size());
  if (!config_.restore_ramp.enabled) return;
  Slot& slot = *slots_[device];
  slot.ramp_stage = 0;
  slot.ramp_streak = 0;
  slot.ramp_offered = 0;
  slot.ramp_taken = 0;
  metrics::count("serve.restore.ramps");
  record_ramp_stage(device, 0);
}

bool FleetScheduler::ramp_offer(std::size_t device) {
  EXTNC_CHECK(device < slots_.size());
  Slot& slot = *slots_[device];
  if (slot.ramp_stage >= kRampStages) return true;
  ++slot.ramp_offered;
  // Deterministic thinning: accept iff taking this opportunity keeps the
  // accepted fraction at or below the stage's share.
  const double allowed = config_.restore_ramp.shares[slot.ramp_stage] *
                         static_cast<double>(slot.ramp_offered);
  if (static_cast<double>(slot.ramp_taken) + 1.0 <= allowed + 1e-9) {
    ++slot.ramp_taken;
    return true;
  }
  return false;
}

int FleetScheduler::ramp_stage(std::size_t device) const {
  EXTNC_CHECK(device < slots_.size());
  return slots_[device]->ramp_stage;
}

void FleetScheduler::note_ramp_outcome(std::size_t device, bool clean_gpu) {
  Slot& slot = *slots_[device];
  if (slot.ramp_stage >= kRampStages) return;
  if (clean_gpu) {
    if (++slot.ramp_streak >= config_.restore_ramp.advance_after) {
      slot.ramp_streak = 0;
      ++slot.ramp_stage;
      record_ramp_stage(device, slot.ramp_stage);
    }
    return;
  }
  // The "healed" device fell back to CPU (or lost itself) mid-ramp: it is
  // not healed. Collapse to the bottom stage and re-earn the share.
  ++ramp_collapses_;
  metrics::count("serve.restore.ramp_collapses");
  if (slot.ramp_stage != 0 || slot.ramp_streak != 0) {
    slot.ramp_stage = 0;
    slot.ramp_streak = 0;
    record_ramp_stage(device, 0);
  }
}

bool FleetScheduler::alive(std::size_t device) const {
  EXTNC_CHECK(device < slots_.size());
  return slots_[device]->alive;
}

std::size_t FleetScheduler::alive_count() const {
  std::size_t count = 0;
  for (const auto& slot : slots_) count += slot->alive ? 1 : 0;
  return count;
}

bool FleetScheduler::all_healthy() const {
  for (const auto& slot : slots_) {
    if (!slot->alive || slot->supervisor.breaker_open()) return false;
  }
  return true;
}

std::uint64_t FleetScheduler::epoch(std::size_t device) const {
  EXTNC_CHECK(device < slots_.size());
  return slots_[device]->epoch;
}

std::optional<std::size_t> FleetScheduler::pick_device(
    std::optional<std::size_t> exclude) const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i]->alive) continue;
    if (exclude && *exclude == i) continue;
    if (!best || slots_[i]->busy_until_s < slots_[*best]->busy_until_s) {
      best = i;
    }
  }
  return best;
}

double FleetScheduler::busy_until(std::size_t device) const {
  EXTNC_CHECK(device < slots_.size());
  return slots_[device]->busy_until_s;
}

void FleetScheduler::set_busy_until(std::size_t device, double until_s) {
  EXTNC_CHECK(device < slots_.size());
  slots_[device]->busy_until_s = until_s;
}

DeviceHealth FleetScheduler::health(std::size_t device) const {
  EXTNC_CHECK(device < slots_.size());
  const Slot& slot = *slots_[device];
  DeviceHealth health;
  health.index = device;
  health.alive = slot.alive;
  health.breaker_open = slot.supervisor.breaker_open();
  health.epoch = slot.epoch;
  health.ramp_stage = slot.ramp_stage;
  health.busy_until_s = slot.busy_until_s;
  health.segments = slot.segments;
  health.gpu_segments = slot.gpu_segments;
  health.cpu_segments = slot.cpu_segments;
  health.totals = slot.supervisor.totals();
  health.faults = slot.injector.counters();
  return health;
}

std::vector<DeviceHealth> FleetScheduler::fleet_health() const {
  std::vector<DeviceHealth> all;
  all.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) all.push_back(health(i));
  return all;
}

double FleetScheduler::gpu_segment_s(std::size_t device,
                                     std::size_t blocks) const {
  EXTNC_CHECK(device < slots_.size());
  const double bytes =
      static_cast<double>(blocks) * static_cast<double>(config_.params.k);
  return bytes / (slots_[device]->gpu_mb_per_s * 1e6) +
         config_.dispatch_overhead_s;
}

double FleetScheduler::cpu_segment_s(std::size_t blocks) const {
  const double bytes =
      static_cast<double>(blocks) * static_cast<double>(config_.params.k);
  return bytes / (cpu_mb_per_s_ * 1e6) + config_.dispatch_overhead_s;
}

double FleetScheduler::nominal_segment_s(std::size_t blocks) const {
  double sum = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    sum += gpu_segment_s(i, blocks);
  }
  return sum / static_cast<double>(slots_.size());
}

void FleetScheduler::set_trace(simgpu::Profiler* profiler) {
  for (auto& slot : slots_) {
    slot->supervisor.set_trace(profiler, &slot->spec);
  }
}

gpu::ResilientLauncher& FleetScheduler::supervisor(std::size_t device) {
  EXTNC_CHECK(device < slots_.size());
  return slots_[device]->supervisor;
}

simgpu::FaultInjector& FleetScheduler::injector(std::size_t device) {
  EXTNC_CHECK(device < slots_.size());
  return slots_[device]->injector;
}

}  // namespace extnc::serve
