// Fleet scheduler: N simulated devices serving coded segments.
//
// Each device slot owns the full PR 3 supervision stack — a FaultInjector
// scripted from the fleet's fault plan (per-device seed), a
// ResilientLauncher (watchdog, bounded retry, circuit breaker with
// half-open probing on the service clock, bit-exact CPU fallback), and a
// supervised encoder bound to the fleet's reference content. Sessions are
// SHARDED: a session is pinned to one device and its segments run there
// serially (busy_until models the device queue); the service re-shards
// only when the device dies.
//
// Work is deterministic per (job seed): coefficients are drawn from an Rng
// seeded by the caller, so a hedge replica or a post-kill re-dispatch on a
// DIFFERENT device produces byte-identical output — that is what makes
// hedging and failover safe to deduplicate.
//
// Time is modeled, not measured: encode work executes eagerly (the
// simulator is functional), and the returned service_s charges the
// device's modeled bandwidth for each attempt, the watchdog budget for
// each hang, the supervisor's backoff, and the CPU codec's modeled
// bandwidth (cpu::XeonModel) when the op degraded — so retries and
// fallbacks are visible as latency, exactly like on real hardware.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "coding/batch.h"
#include "coding/encoder.h"
#include "coding/segment.h"
#include "gpu/encode_scheme.h"
#include "gpu/resilient_launcher.h"
#include "serve/session.h"
#include "simgpu/device_spec.h"
#include "simgpu/fault_injector.h"
#include "util/thread_pool.h"

namespace extnc::serve {

// Ramped restore: a healed device (scripted restore, or a breaker reclosed
// by a successful half-open probe) does not snap back to its full dispatch
// share — it re-warms through stages, taking share[stage] of the dispatch
// opportunities it is offered, advancing a stage after `advance_after`
// consecutive verified GPU segments and collapsing back to the first stage
// on any failure (CPU fallback or device loss). The retry-storm guard:
// a device that heals flaky never soaks up the whole queue.
struct RestoreRampConfig {
  bool enabled = true;
  // Dispatch share per stage; the last stage should be 1.0 (full share).
  // After the last stage the ramp completes and stops gating.
  std::array<double, 4> shares = {0.125, 0.25, 0.5, 1.0};
  // Consecutive clean GPU segments to advance one stage.
  int advance_after = 4;
};

inline constexpr int kRampStages = 4;

struct FleetConfig {
  coding::Params params{.n = 16, .k = 256};
  std::vector<simgpu::DeviceSpec> devices;  // one slot per entry
  // Fault plan applied to every device (each with its own injector and a
  // per-device seed, so probabilistic faults differ across the fleet).
  simgpu::FaultPlan faults;
  gpu::SupervisorConfig supervisor;
  gpu::EncodeScheme scheme = gpu::EncodeScheme::kTable5;
  std::size_t threads = 2;
  // Modeled per-dispatch overhead (driver + PCIe round trip). Applied
  // uniformly across service modes: kBatched no longer gets a modeled
  // discount — simulator launches are genuinely fast now, so the ladder
  // level stands on real behavior instead of a fictional multiplier.
  double dispatch_overhead_s = 2e-4;
  std::uint64_t content_seed = 0x5e55e;
  RestoreRampConfig restore_ramp;
};

// What serving one segment cost and produced.
struct SegmentResult {
  gpu::OperationReport report;  // zeroed attempts for the forced-CPU mode
  double service_s = 0;         // modeled seconds of device/codec time
  bool gpu_path = false;
  bool bit_exact = true;  // every payload matched the reference encoder
  // CRC32C over the batch's payloads in block order — a pure function of
  // (job seed, blocks), so replicas and post-crash re-dispatches agree.
  // The journal persists it per delivered segment.
  std::uint32_t payload_crc = 0;
};

enum class DecodeCheck { kBitExact, kRankShort, kMismatch };

struct DeviceHealth {
  std::size_t index = 0;
  bool alive = true;
  bool breaker_open = false;
  std::uint64_t epoch = 0;
  // Restore-ramp stage: kRampStages means not ramping (full share).
  int ramp_stage = kRampStages;
  double busy_until_s = 0;
  std::uint64_t segments = 0;
  std::uint64_t gpu_segments = 0;
  std::uint64_t cpu_segments = 0;  // fallback + forced CPU codec
  gpu::SupervisorTotals totals;
  simgpu::FaultCounters faults;
};

class FleetScheduler {
 public:
  // `clock` is the service's simulated wall clock; it drives the circuit
  // breakers' half-open cool-downs.
  FleetScheduler(FleetConfig config, std::function<double()> clock);
  ~FleetScheduler();

  FleetScheduler(const FleetScheduler&) = delete;
  FleetScheduler& operator=(const FleetScheduler&) = delete;

  const FleetConfig& config() const { return config_; }
  std::size_t size() const { return slots_.size(); }

  // --- dispatch ----------------------------------------------------------
  // Encode `blocks` coded blocks of the reference segment on device
  // `device`, coefficients drawn deterministically from `seed`. The batch
  // (for decode verification / delivery) is written to *out when non-null.
  SegmentResult encode_segment(std::size_t device, std::uint64_t seed,
                               std::size_t blocks, ServiceMode mode,
                               coding::CodedBatch* out = nullptr);

  // Full decode verification of a served batch against the reference
  // content (collect blocks, invert, compare bytes).
  DecodeCheck verify_decode(const coding::CodedBatch& batch) const;

  // --- health ------------------------------------------------------------
  // Scripted device death: trips the breaker, bumps the epoch (results
  // produced by the previous incarnation are stale) and stops dispatch.
  void kill(std::size_t device);
  // Device returns to service (breaker reset, injector restored). Enters
  // the restore ramp when ramping is enabled.
  void restore(std::size_t device);

  // --- ramped restore ----------------------------------------------------
  // One ramp-stage change observed on a device (begin, advance, collapse,
  // completion). `stage == kRampStages` marks ramp completion.
  struct RampEvent {
    double at = 0;
    std::size_t device = 0;
    int stage = 0;
  };

  // Put a device at the bottom of the restore ramp (restore() and a
  // breaker reclosed by a successful half-open probe both call this).
  void begin_ramp(std::size_t device);
  // Ask the ramp whether this device may take one dispatch opportunity.
  // Always true for a device not ramping; a ramping device is granted
  // share[stage] of the opportunities it is offered. Deterministic.
  bool ramp_offer(std::size_t device);
  // Current stage; kRampStages when not ramping (full share).
  int ramp_stage(std::size_t device) const;
  std::uint64_t ramp_collapses() const { return ramp_collapses_; }
  const std::vector<RampEvent>& ramp_events() const { return ramp_events_; }

  bool alive(std::size_t device) const;
  std::size_t alive_count() const;
  // True when every device is alive with a closed breaker (the healthy /
  // faulted phase split in reports).
  bool all_healthy() const;
  std::uint64_t epoch(std::size_t device) const;

  // Least-loaded (earliest busy_until) alive device, optionally excluding
  // one; nullopt when no device qualifies.
  std::optional<std::size_t> pick_device(
      std::optional<std::size_t> exclude = std::nullopt) const;

  double busy_until(std::size_t device) const;
  void set_busy_until(std::size_t device, double until_s);

  DeviceHealth health(std::size_t device) const;
  std::vector<DeviceHealth> fleet_health() const;

  // --- modeled timings ---------------------------------------------------
  // One clean GPU attempt / CPU codec pass for `blocks` coded blocks.
  // Mode-independent: batched dispatch used to carry a modeled overhead
  // discount, but the simulator's fast path made launches genuinely cheap,
  // so every mode is charged the same honest dispatch overhead.
  double gpu_segment_s(std::size_t device, std::size_t blocks) const;
  double cpu_segment_s(std::size_t blocks) const;
  // Clean full-density GPU segment time averaged across the fleet — the
  // service's nominal unit for deadlines, hedging and offered load.
  double nominal_segment_s(std::size_t blocks) const;

  gpu::ResilientLauncher& supervisor(std::size_t device);
  simgpu::FaultInjector& injector(std::size_t device);
  const coding::Segment& content() const { return content_; }

  // Record fault events of every device's supervisor on this profiler
  // (each under its own device spec).
  void set_trace(simgpu::Profiler* profiler);

 private:
  struct Slot;

  void note_ramp_outcome(std::size_t device, bool clean_gpu);
  void record_ramp_stage(std::size_t device, int stage);

  FleetConfig config_;
  std::function<double()> clock_;
  coding::Segment content_;
  coding::Encoder reference_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<RampEvent> ramp_events_;
  std::uint64_t ramp_collapses_ = 0;
  double cpu_mb_per_s_ = 0;
};

}  // namespace extnc::serve
