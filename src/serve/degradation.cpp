#include "serve/degradation.h"

#include <algorithm>

#include "util/assert.h"

namespace extnc::serve {

const char* session_state_name(SessionState state) {
  switch (state) {
    case SessionState::kQueued:
      return "queued";
    case SessionState::kServing:
      return "serving";
    case SessionState::kCompleted:
      return "completed";
    case SessionState::kDegraded:
      return "degraded";
    case SessionState::kShed:
      return "shed";
    case SessionState::kFailed:
      return "failed";
  }
  return "?";
}

const char* priority_name(Priority priority) {
  switch (priority) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kStandard:
      return "standard";
    case Priority::kBestEffort:
      return "besteffort";
  }
  return "?";
}

std::optional<Priority> parse_priority(std::string_view name) {
  if (name == "interactive") return Priority::kInteractive;
  if (name == "standard") return Priority::kStandard;
  if (name == "besteffort") return Priority::kBestEffort;
  return std::nullopt;
}

const char* service_mode_name(ServiceMode mode) {
  switch (mode) {
    case ServiceMode::kFull:
      return "full";
    case ServiceMode::kBatched:
      return "batched";
    case ServiceMode::kCpuCodec:
      return "cpu";
    case ServiceMode::kThinned:
      return "thinned";
  }
  return "?";
}

DegradationLadder::DegradationLadder(LadderConfig config) : config_(config) {
  EXTNC_CHECK(config_.hysteresis >= 0);
  for (std::size_t i = 0; i + 1 < config_.enter.size(); ++i) {
    EXTNC_CHECK(config_.enter[i] <= config_.enter[i + 1]);
  }
}

ServiceMode DegradationLadder::update(double pressure) {
  // Highest rung whose entry threshold the pressure meets.
  int target = 0;
  for (int rung = 1; rung < kServiceModes; ++rung) {
    if (pressure >= config_.enter[rung - 1]) target = rung;
  }
  if (target > level_) {
    level_ = target;  // climb immediately
    ++transitions_;
  } else if (target < level_) {
    // Step down one rung at a time, and only past the hysteresis band of
    // the rung we are leaving.
    if (pressure < config_.enter[level_ - 1] - config_.hysteresis) {
      --level_;
      ++transitions_;
    }
  }
  ++dwell_[static_cast<std::size_t>(level_)];
  return mode();
}

ServiceMode DegradationLadder::mode_for(Priority priority) const {
  const int biased =
      level_ + config_.class_bias[static_cast<std::size_t>(priority)];
  return static_cast<ServiceMode>(
      std::clamp(biased, 0, kServiceModes - 1));
}

void DegradationLadder::restore_level(int level) {
  EXTNC_CHECK(level >= 0 && level < kServiceModes);
  level_ = level;
}

}  // namespace extnc::serve
