#include "coding/encoder.h"

#include <cstring>

#include "gf256/region.h"
#include "util/assert.h"

namespace extnc::coding {

CodedBlock Encoder::encode(Rng& rng) const {
  CodedBlock block(params());
  draw_coefficients(rng, block.coefficients());
  encode_with_coefficients(block.coefficients(), block.payload());
  return block;
}

void Encoder::encode_with_coefficients(
    std::span<const std::uint8_t> coefficients,
    std::span<std::uint8_t> payload) const {
  const Params& p = params();
  EXTNC_CHECK(coefficients.size() == p.n);
  EXTNC_CHECK(payload.size() == p.k);
  std::memset(payload.data(), 0, payload.size());
  const gf256::Ops& ops = gf256::ops();
  for (std::size_t i = 0; i < p.n; ++i) {
    ops.mul_add_region(payload.data(), segment_->block(i).data(),
                       coefficients[i], p.k);
  }
}

void Encoder::draw_coefficients(Rng& rng,
                                std::span<std::uint8_t> coefficients) const {
  EXTNC_CHECK(coefficients.size() == params().n);
  model_.draw(rng, coefficients);
}

}  // namespace extnc::coding
