#include "coding/encoder.h"

#include <cstring>
#include <vector>

#include "gf256/region.h"
#include "util/assert.h"

namespace extnc::coding {

CodedBlock Encoder::encode(Rng& rng) const {
  CodedBlock block(params());
  draw_coefficients(rng, block.coefficients());
  encode_with_coefficients(block.coefficients(), block.payload());
  return block;
}

void Encoder::encode_with_coefficients(
    std::span<const std::uint8_t> coefficients,
    std::span<std::uint8_t> payload) const {
  const Params& p = params();
  EXTNC_CHECK(coefficients.size() == p.n);
  EXTNC_CHECK(payload.size() == p.k);
  std::memset(payload.data(), 0, payload.size());
  // One fused destination-blocked pass over all n sources instead of n
  // separate sweeps of the payload.
  std::vector<const std::uint8_t*> sources(p.n);
  for (std::size_t i = 0; i < p.n; ++i) sources[i] = segment_->block(i).data();
  gf256::ops().mul_add_regions(payload.data(), sources.data(),
                               coefficients.data(), p.n, p.k);
}

void Encoder::draw_coefficients(Rng& rng,
                                std::span<std::uint8_t> coefficients) const {
  EXTNC_CHECK(coefficients.size() == params().n);
  model_.draw(rng, coefficients);
}

}  // namespace extnc::coding
