#include "coding/segment_digest.h"

#include "util/assert.h"
#include "util/checksum.h"

namespace extnc::coding {

namespace {

constexpr std::uint32_t kDigestMagic = 0x44434e58;  // "XNCD"
constexpr std::size_t kDigestHeaderBytes = 16;

// Mix the block index into the digest seed so identical blocks at
// different positions (e.g. zero padding) digest differently — a swap of
// two equal-content blocks is not a corruption, but a swap of digests
// would otherwise mask a real one.
std::uint64_t block_seed(std::size_t index) {
  return 0x584e4344ULL * 0x9e3779b97f4a7c15ULL + index;
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

}  // namespace

SegmentDigest SegmentDigest::compute(const Segment& segment,
                                     std::uint32_t generation) {
  SegmentDigest digest;
  digest.params_ = segment.params();
  digest.generation_ = generation;
  digest.digests_.reserve(digest.params_.n);
  for (std::size_t i = 0; i < digest.params_.n; ++i) {
    digest.digests_.push_back(digest64(segment.block(i), block_seed(i)));
  }
  return digest;
}

std::uint64_t SegmentDigest::block_digest(std::size_t i) const {
  EXTNC_CHECK(i < digests_.size());
  return digests_[i];
}

bool SegmentDigest::matches_block(std::size_t i,
                                  std::span<const std::uint8_t> data) const {
  if (i >= digests_.size() || data.size() != params_.k) return false;
  return digest64(data, block_seed(i)) == digests_[i];
}

bool SegmentDigest::matches(const Segment& segment) const {
  if (!(segment.params() == params_)) return false;
  for (std::size_t i = 0; i < digests_.size(); ++i) {
    if (!matches_block(i, segment.block(i))) return false;
  }
  return true;
}

std::vector<std::uint8_t> SegmentDigest::serialize() const {
  const std::size_t body = kDigestHeaderBytes + 8 * digests_.size();
  std::vector<std::uint8_t> out(body + 4);
  put_u32(out.data(), kDigestMagic);
  put_u32(out.data() + 4, generation_);
  put_u32(out.data() + 8, static_cast<std::uint32_t>(params_.n));
  put_u32(out.data() + 12, static_cast<std::uint32_t>(params_.k));
  for (std::size_t i = 0; i < digests_.size(); ++i) {
    put_u64(out.data() + kDigestHeaderBytes + 8 * i, digests_[i]);
  }
  put_u32(out.data() + body, crc32c(std::span(out).first(body)));
  return out;
}

std::optional<SegmentDigest> SegmentDigest::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < kDigestHeaderBytes) return std::nullopt;
  if (get_u32(data.data()) != kDigestMagic) return std::nullopt;
  const std::uint32_t generation = get_u32(data.data() + 4);
  const std::uint32_t n = get_u32(data.data() + 8);
  const std::uint32_t k = get_u32(data.data() + 12);
  if (n == 0 || k == 0 || n > (1u << 20)) return std::nullopt;
  const std::size_t body = kDigestHeaderBytes + 8 * static_cast<std::size_t>(n);
  if (data.size() != body + 4) return std::nullopt;
  if (crc32c(data.first(body)) != get_u32(data.data() + body)) {
    return std::nullopt;
  }
  SegmentDigest digest;
  digest.params_ = Params{.n = n, .k = k};
  digest.generation_ = generation;
  digest.digests_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    digest.digests_.push_back(get_u64(data.data() + kDigestHeaderBytes + 8 * i));
  }
  return digest;
}

}  // namespace extnc::coding
