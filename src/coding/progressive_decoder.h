// Progressive RLNC decoder using Gauss-Jordan elimination (Sec. 3 of the
// paper).
//
// Incoming coded blocks are reduced into a reduced-row-echelon-form (RREF)
// augmented matrix [C | X] as they arrive. Keeping full RREF (not mere row
// echelon) gives the two properties the paper relies on:
//   * once n pivots exist the coefficient side is the identity and the
//     payload side *is* the decoded data — no back-substitution pass;
//   * a linearly dependent block reduces to an all-zero row and can be
//     discarded immediately, with no separate dependence check.
#pragma once

#include <cstdint>
#include <vector>

#include "coding/coded_block.h"
#include "coding/segment.h"
#include "util/aligned_buffer.h"

namespace extnc::coding {

class ProgressiveDecoder {
 public:
  enum class Result {
    kAccepted,           // rank increased
    kLinearlyDependent,  // reduced to zero; block discarded
    kAlreadyComplete,    // decoder already holds n independent blocks
  };

  explicit ProgressiveDecoder(Params params);

  Result add(const CodedBlock& block);
  // Same, but from raw views (lets backends avoid materializing CodedBlock).
  Result add(std::span<const std::uint8_t> coefficients,
             std::span<const std::uint8_t> payload);

  const Params& params() const { return params_; }
  std::size_t rank() const { return rank_; }
  bool is_complete() const { return rank_ == params_.n; }
  std::size_t blocks_seen() const { return blocks_seen_; }
  std::size_t blocks_discarded() const { return blocks_discarded_; }

  // Decoded source blocks; only valid when is_complete().
  Segment decoded_segment() const;

  // Structural invariant check (tests / debug): the stored rows form an
  // RREF basis — each pivot is 1 and is the only nonzero entry in its
  // column among stored rows, and rows are zero left of their pivot.
  bool check_rref_invariant() const;

 private:
  std::uint8_t* coeff_row(std::size_t pivot);
  const std::uint8_t* coeff_row(std::size_t pivot) const;
  std::uint8_t* payload_row(std::size_t pivot);
  const std::uint8_t* payload_row(std::size_t pivot) const;

  Params params_;
  // Rows are keyed by pivot column: row p (if present_[p]) has its leading
  // 1 in column p.
  AlignedBuffer coeffs_;    // n rows of n bytes
  AlignedBuffer payloads_;  // n rows of k bytes
  std::vector<bool> present_;
  AlignedBuffer scratch_coeffs_;
  AlignedBuffer scratch_payload_;
  // Forward-elimination recording: the coefficient pass is sequential (each
  // elimination feeds the next factor), but stored payload rows never change
  // during it, so the payload side is replayed afterwards as one fused
  // mul_add_regions call over these (row, factor) pairs.
  std::vector<const std::uint8_t*> elim_rows_;
  std::vector<std::uint8_t> elim_factors_;
  std::size_t rank_ = 0;
  std::size_t blocks_seen_ = 0;
  std::size_t blocks_discarded_ = 0;
};

}  // namespace extnc::coding
