// A coded block x_j = sum_i c_ji * b_i together with its coefficient
// vector [c_j1 .. c_jn] (Eq. 1 of the paper). The coefficients travel with
// the payload, exactly as they would in a packet header on the wire.
#pragma once

#include <cstdint>
#include <span>

#include "coding/params.h"
#include "util/aligned_buffer.h"

namespace extnc::coding {

class CodedBlock {
 public:
  CodedBlock() = default;
  explicit CodedBlock(Params params)
      : params_(params), coefficients_(params.n), payload_(params.k) {}

  const Params& params() const { return params_; }

  std::span<std::uint8_t> coefficients() { return coefficients_.span(); }
  std::span<const std::uint8_t> coefficients() const {
    return coefficients_.span();
  }
  std::span<std::uint8_t> payload() { return payload_.span(); }
  std::span<const std::uint8_t> payload() const { return payload_.span(); }

  // Bytes this block occupies on the wire (header + payload).
  std::size_t wire_size() const { return params_.n + params_.k; }

  friend bool operator==(const CodedBlock& a, const CodedBlock& b) {
    return a.params_ == b.params_ && a.coefficients_ == b.coefficients_ &&
           a.payload_ == b.payload_;
  }

 private:
  Params params_;
  AlignedBuffer coefficients_;
  AlignedBuffer payload_;
};

}  // namespace extnc::coding
