// A coded block x_j = sum_i c_ji * b_i together with its coefficient
// vector [c_j1 .. c_jn] (Eq. 1 of the paper). The coefficients travel with
// the payload, exactly as they would in a packet header on the wire.
//
// Two shapes exist: CodedBlock owns aligned storage; CodedBlockView
// borrows spans from externally owned memory (typically a validated wire
// frame still sitting in the receive buffer), so the decode hot path can
// consume a packet without copying it first. A view is only valid while
// the buffer it points into is; decoders that retain blocks past the call
// (e.g. for later verification) must materialize() them.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "coding/params.h"
#include "util/aligned_buffer.h"
#include "util/assert.h"

namespace extnc::coding {

class CodedBlock {
 public:
  CodedBlock() = default;
  explicit CodedBlock(Params params)
      : params_(params), coefficients_(params.n), payload_(params.k) {}

  const Params& params() const { return params_; }

  std::span<std::uint8_t> coefficients() { return coefficients_.span(); }
  std::span<const std::uint8_t> coefficients() const {
    return coefficients_.span();
  }
  std::span<std::uint8_t> payload() { return payload_.span(); }
  std::span<const std::uint8_t> payload() const { return payload_.span(); }

  // Bytes this block occupies on the wire (header + payload).
  std::size_t wire_size() const { return params_.n + params_.k; }

  friend bool operator==(const CodedBlock& a, const CodedBlock& b) {
    return a.params_ == b.params_ && a.coefficients_ == b.coefficients_ &&
           a.payload_ == b.payload_;
  }

 private:
  Params params_;
  AlignedBuffer coefficients_;
  AlignedBuffer payload_;
};

// Borrowed, read-only view of a coded block (see the file comment for the
// lifetime contract). Construction checks that the spans match the declared
// shape — a view is only ever built from already-validated frame bytes, so
// a mismatch is a programming error, not a network one.
class CodedBlockView {
 public:
  CodedBlockView() = default;
  CodedBlockView(Params params, std::span<const std::uint8_t> coefficients,
                 std::span<const std::uint8_t> payload)
      : params_(params), coefficients_(coefficients), payload_(payload) {
    EXTNC_CHECK(coefficients_.size() == params_.n);
    EXTNC_CHECK(payload_.size() == params_.k);
  }
  // A view of an owning block (shape already guaranteed by CodedBlock).
  explicit CodedBlockView(const CodedBlock& block)
      : params_(block.params()),
        coefficients_(block.coefficients()),
        payload_(block.payload()) {}

  const Params& params() const { return params_; }
  std::span<const std::uint8_t> coefficients() const { return coefficients_; }
  std::span<const std::uint8_t> payload() const { return payload_; }

  // Deep copy into owned, aligned storage — the only way to keep the data
  // past the lifetime of the buffer this view borrows from.
  CodedBlock materialize() const {
    CodedBlock block(params_);
    std::memcpy(block.coefficients().data(), coefficients_.data(), params_.n);
    std::memcpy(block.payload().data(), payload_.data(), params_.k);
    return block;
  }

 private:
  Params params_;
  std::span<const std::uint8_t> coefficients_;
  std::span<const std::uint8_t> payload_;
};

}  // namespace extnc::coding
