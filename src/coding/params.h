// Coding configuration: a generation ("segment" in the paper) of n source
// blocks of k bytes each, coded over GF(2^8).
#pragma once

#include <cstddef>

#include "util/assert.h"

namespace extnc::coding {

struct Params {
  std::size_t n = 128;  // blocks per segment (the paper sweeps 128..1024)
  std::size_t k = 4096; // bytes per block (the paper sweeps 128 B..32 KB)

  std::size_t segment_bytes() const { return n * k; }

  void validate() const {
    EXTNC_CHECK(n >= 1);
    EXTNC_CHECK(k >= 1);
  }

  friend bool operator==(const Params&, const Params&) = default;
};

}  // namespace extnc::coding
