// Reference (single-threaded) RLNC encoder.
//
// Produces coded blocks x_j = sum_i c_ji * b_i with coefficients drawn by
// a CoefficientModel (fully dense by default, matching the paper's
// evaluation setup). Multi-threaded and GPU encoders live in src/cpu and
// src/gpu and are validated against this one.
#pragma once

#include <cstdint>
#include <span>

#include "coding/coded_block.h"
#include "coding/coefficients.h"
#include "coding/segment.h"
#include "util/rng.h"

namespace extnc::coding {

class Encoder {
 public:
  // The encoder keeps a reference to the segment; the segment must outlive
  // the encoder (source blocks are large; we never copy them).
  explicit Encoder(const Segment& segment,
                   CoefficientModel model = CoefficientModel::dense())
      : segment_(&segment), model_(model) {}

  const Params& params() const { return segment_->params(); }

  // Draw a fresh random coefficient vector and produce one coded block.
  CodedBlock encode(Rng& rng) const;

  // Encode with caller-provided coefficients (used by the recoder, the
  // tests, and every alternative backend for bit-exact comparison).
  void encode_with_coefficients(std::span<const std::uint8_t> coefficients,
                                std::span<std::uint8_t> payload) const;

  // Fill `coefficients` with a fresh random draw.
  void draw_coefficients(Rng& rng,
                         std::span<std::uint8_t> coefficients) const;

 private:
  const Segment* segment_;
  CoefficientModel model_;
};

}  // namespace extnc::coding
