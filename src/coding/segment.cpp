#include "coding/segment.h"

#include <cstring>

namespace extnc::coding {

Segment::Segment(Params params) : params_(params), data_(params.segment_bytes()) {
  params_.validate();
}

Segment Segment::from_bytes(Params params, std::span<const std::uint8_t> data) {
  Segment segment(params);
  EXTNC_CHECK(data.size() <= params.segment_bytes());
  if (!data.empty()) {
    std::memcpy(segment.data_.data(), data.data(), data.size());
  }
  return segment;
}

Segment Segment::random(Params params, Rng& rng) {
  Segment segment(params);
  for (auto& byte : segment.data_.span()) byte = rng.next_byte();
  return segment;
}

std::span<const std::uint8_t> Segment::block(std::size_t i) const {
  return data_.subspan(i * params_.k, params_.k);
}

std::span<std::uint8_t> Segment::block(std::size_t i) {
  return data_.subspan(i * params_.k, params_.k);
}

bool operator==(const Segment& a, const Segment& b) {
  return a.params_ == b.params_ && a.data_ == b.data_;
}

}  // namespace extnc::coding
