// Coefficient-drawing policies.
//
// The paper evaluates with fully dense matrices (every coefficient
// nonzero) and notes that "the performance will be even higher with
// sparser matrices": a zero coefficient costs nothing in a region
// operation and terminates the loop-based multiply immediately. Sparse
// draws trade a slightly higher linear-dependence probability for that
// speed; the sweet spot is workload-dependent and bench/ablation_density
// measures it.
#pragma once

#include <cstdint>
#include <span>

#include "util/assert.h"
#include "util/rng.h"

namespace extnc::coding {

class CoefficientModel {
 public:
  // Every coefficient uniform over [1, 255] — the paper's setup.
  static CoefficientModel dense() { return CoefficientModel(1.0); }
  // Uniform over all of GF(2^8) (zeros appear with probability 1/256).
  static CoefficientModel uniform() {
    return CoefficientModel(255.0 / 256.0);
  }
  // Each coefficient is nonzero with probability `density`, else zero.
  static CoefficientModel sparse(double density) {
    EXTNC_CHECK(density > 0.0 && density <= 1.0);
    return CoefficientModel(density);
  }

  double density() const { return density_; }

  void draw(Rng& rng, std::span<std::uint8_t> coefficients) const {
    if (density_ == 1.0) {
      for (auto& c : coefficients) c = rng.next_nonzero_byte();
      return;
    }
    for (auto& c : coefficients) {
      c = rng.next_double() < density_ ? rng.next_nonzero_byte() : 0;
    }
  }

 private:
  explicit CoefficientModel(double density) : density_(density) {}
  double density_;
};

}  // namespace extnc::coding
