// Two-stage ("offline") RLNC decoder: collect n linearly independent coded
// blocks, invert the coefficient matrix via Gauss-Jordan on [C | I], then
// recover the sources with one dense multiplication b = C^-1 * x.
//
// This is the exact decoding structure the paper's multi-segment GPU
// scheme uses (Sec. 5.2): stage 1 is small and serial, stage 2 is an
// embarrassingly parallel matrix product. On the CPU it is also the right
// shape for Avalanche-style bulk distribution where blocks are gathered
// first and decoded afterwards.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coding/coded_block.h"
#include "coding/segment.h"
#include "gf256/matrix.h"
#include "util/aligned_buffer.h"

namespace extnc::coding {

class BlockDecoder {
 public:
  explicit BlockDecoder(Params params);

  // Returns true if the block was independent of those already held (and
  // stored), false if it was discarded as dependent. Independence is
  // tracked incrementally on a coefficient-only echelon copy, so dependent
  // blocks cost O(n^2) and never touch the k-byte payloads.
  bool add(const CodedBlock& block);
  bool add(std::span<const std::uint8_t> coefficients,
           std::span<const std::uint8_t> payload);
  // Zero-copy entry point for wire frames (coding/wire.h parse_view); the
  // only copy made is into the stored rows when the block is independent.
  bool add(const CodedBlockView& block) {
    return add(block.coefficients(), block.payload());
  }

  const Params& params() const { return params_; }
  std::size_t rank() const { return rank_; }
  bool is_ready() const { return rank_ == params_.n; }

  // Stage 1 + stage 2; only valid when is_ready().
  Segment decode() const;

  // Exposed for the GPU backend and benches: the collected coefficient
  // matrix (row r = r-th stored block) and payload rows.
  const gf256::Matrix& coefficients() const { return coeffs_; }
  std::span<const std::uint8_t> payloads() const { return payloads_.span(); }

 private:
  Params params_;
  gf256::Matrix coeffs_;        // stored blocks' coefficient rows
  AlignedBuffer payloads_;      // stored blocks' payload rows
  gf256::Matrix echelon_;       // coefficient-only running echelon form
  std::vector<bool> pivot_present_;
  std::size_t rank_ = 0;
};

}  // namespace extnc::coding
