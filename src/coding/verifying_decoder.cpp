#include "coding/verifying_decoder.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace extnc::coding {

VerifyingDecoder::VerifyingDecoder(SegmentDigest manifest)
    : manifest_(std::move(manifest)), decoder_(manifest_.params()) {
  EXTNC_CHECK(manifest_.size() == manifest_.params().n);
}

std::size_t VerifyingDecoder::rank() const {
  return verified_ ? manifest_.params().n : decoder_.rank();
}

const Segment& VerifyingDecoder::decoded_segment() const {
  EXTNC_CHECK(verified_);
  return verified_segment_;
}

VerifyingDecoder::Result VerifyingDecoder::add(const CodedBlock& block) {
  return add(CodedBlockView(block));
}

VerifyingDecoder::Result VerifyingDecoder::add(const CodedBlockView& block) {
  if (verified_) return Result::kAlreadyVerified;
  EXTNC_CHECK(block.params() == manifest_.params());
  ++blocks_seen_;
  retained_.push_back(block.materialize());

  if (dirty_complete_) {
    // The inner decoder is complete but failed verification; every new
    // (presumably clean) block adds the slack group testing needs, so
    // retry isolation with the grown retained set.
    return identify_and_eject();
  }

  switch (decoder_.add(block.coefficients(), block.payload())) {
    case ProgressiveDecoder::Result::kAccepted:
      break;
    case ProgressiveDecoder::Result::kLinearlyDependent:
    case ProgressiveDecoder::Result::kAlreadyComplete:
      // Retained anyway: a block that is dependent w.r.t. a polluted basis
      // may be exactly the clean equation group testing needs later.
      return Result::kLinearlyDependent;
  }
  if (!decoder_.is_complete()) return Result::kAccepted;

  const Segment decoded = decoder_.decoded_segment();
  if (manifest_.matches(decoded)) {
    verified_ = true;
    verified_segment_ = decoded;
    return Result::kVerified;
  }
  ++verification_failures_;
  return identify_and_eject();
}

bool VerifyingDecoder::try_subset(const std::vector<std::size_t>& excluded) {
  ProgressiveDecoder candidate(manifest_.params());
  for (std::size_t i = 0; i < retained_.size(); ++i) {
    if (std::find(excluded.begin(), excluded.end(), i) != excluded.end()) {
      continue;
    }
    candidate.add(retained_[i]);
    if (candidate.is_complete()) break;
  }
  if (!candidate.is_complete()) return false;
  Segment decoded = candidate.decoded_segment();
  if (!manifest_.matches(decoded)) return false;

  // Clean subset found: the excluded blocks are the polluted ones (they
  // were inconsistent with this digest-verified solution).
  // Quarantine in descending index order so erases don't shift.
  std::vector<std::size_t> eject = excluded;
  std::sort(eject.begin(), eject.end(), std::greater<>());
  for (const std::size_t i : eject) {
    quarantined_.push_back(std::move(retained_[i]));
    retained_.erase(retained_.begin() +
                    static_cast<std::ptrdiff_t>(i));
  }
  verified_ = true;
  verified_segment_ = std::move(decoded);
  dirty_complete_ = false;
  return true;
}

VerifyingDecoder::Result VerifyingDecoder::identify_and_eject() {
  const std::size_t m = retained_.size();
  // Single polluted block: leave-one-out, O(m) re-decodes.
  for (std::size_t i = 0; i < m; ++i) {
    if (try_subset({i})) return Result::kPollutionEjected;
  }
  // Two polluted blocks: leave-two-out, O(m^2) re-decodes — bounded so a
  // hostile flood can't turn recovery into quadratic work on a big buffer.
  if (m <= kMaxPairSearchBlocks) {
    for (std::size_t i = 0; i + 1 < m; ++i) {
      for (std::size_t j = i + 1; j < m; ++j) {
        if (try_subset({i, j})) return Result::kPollutionEjected;
      }
    }
  }
  dirty_complete_ = true;
  return Result::kPollutionUnresolved;
}

}  // namespace extnc::coding
