#include "coding/recoder.h"

#include "gf256/region.h"
#include "util/assert.h"

namespace extnc::coding {

Recoder::Recoder(Params params) : params_(params) { params_.validate(); }

void Recoder::add(const CodedBlock& block) {
  EXTNC_CHECK(block.params() == params_);
  blocks_.push_back(block);
}

CodedBlock Recoder::recode(Rng& rng) const {
  EXTNC_CHECK(!blocks_.empty());
  CodedBlock out(params_);
  const gf256::Ops& ops = gf256::ops();
  for (const CodedBlock& block : blocks_) {
    const std::uint8_t weight = rng.next_nonzero_byte();
    ops.mul_add_region(out.coefficients().data(), block.coefficients().data(),
                       weight, params_.n);
    ops.mul_add_region(out.payload().data(), block.payload().data(), weight,
                       params_.k);
  }
  return out;
}

}  // namespace extnc::coding
