#include "coding/recoder.h"

#include <vector>

#include "gf256/region.h"
#include "util/assert.h"

namespace extnc::coding {

Recoder::Recoder(Params params) : params_(params) { params_.validate(); }

void Recoder::add(const CodedBlock& block) {
  EXTNC_CHECK(block.params() == params_);
  blocks_.push_back(block);
}

void Recoder::add(const CodedBlockView& block) {
  EXTNC_CHECK(block.params() == params_);
  blocks_.push_back(block.materialize());
}

CodedBlock Recoder::recode(Rng& rng) const {
  EXTNC_CHECK(!blocks_.empty());
  CodedBlock out(params_);
  const std::size_t count = blocks_.size();
  // Weights are drawn up front in block order (the RNG sequence is part of
  // the observable behaviour), then both the coefficient and payload sides
  // collapse into one fused destination-blocked pass each.
  std::vector<std::uint8_t> weights(count);
  std::vector<const std::uint8_t*> coeff_srcs(count);
  std::vector<const std::uint8_t*> payload_srcs(count);
  for (std::size_t j = 0; j < count; ++j) {
    weights[j] = rng.next_nonzero_byte();
    coeff_srcs[j] = blocks_[j].coefficients().data();
    payload_srcs[j] = blocks_[j].payload().data();
  }
  const gf256::Ops& ops = gf256::ops();
  ops.mul_add_regions(out.coefficients().data(), coeff_srcs.data(),
                      weights.data(), count, params_.n);
  ops.mul_add_regions(out.payload().data(), payload_srcs.data(),
                      weights.data(), count, params_.k);
  return out;
}

}  // namespace extnc::coding
