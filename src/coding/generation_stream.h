// Generation-level framing: coding an arbitrarily long byte stream.
//
// RLNC complexity is quadratic-ish in n, so real systems (the paper's
// streaming servers, Avalanche) never code a whole file as one generation
// — they split it into segments ("generations") and code within each.
// GenerationEncoder owns that split on the sender side; GenerationDecoder
// reassembles on the receiver side, tracking one progressive decoder per
// generation and discarding traffic for finished ones. Packets carry the
// generation id in their wire header (coding/wire.h).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "coding/encoder.h"
#include "coding/progressive_decoder.h"
#include "coding/segment_digest.h"
#include "coding/systematic.h"
#include "coding/wire.h"

namespace extnc::coding {

class GenerationEncoder {
 public:
  // Splits `content` into ceil(size / (n*k)) generations of shape
  // `params`; the last generation is zero-padded (the original length
  // travels out of band — callers typically know it from a manifest).
  // Packets are emitted in the checksummed XNC2 format unless a caller
  // (e.g. a bench counting bytes) opts back down to XNC1.
  GenerationEncoder(Params params, std::span<const std::uint8_t> content,
                    bool systematic = false,
                    WireFormat wire_format = WireFormat::kV2);

  std::size_t generations() const { return segments_.size(); }
  const Params& params() const { return params_; }
  std::size_t content_bytes() const { return content_bytes_; }

  // One coded block of generation g (wire-ready bytes).
  std::vector<std::uint8_t> encode_packet(std::uint32_t generation, Rng& rng);

  // Round-robin across generations (a simple sender schedule).
  std::vector<std::uint8_t> encode_next_packet(Rng& rng);

  // Integrity manifest for generation g (see coding/segment_digest.h) —
  // what a receiver needs to verify its decode of that generation.
  SegmentDigest digest(std::uint32_t generation) const;

 private:
  Params params_;
  std::size_t content_bytes_;
  std::vector<Segment> segments_;
  std::vector<SystematicEncoder> systematic_;
  std::vector<Encoder> coded_;
  bool use_systematic_;
  WireFormat wire_format_;
  std::uint32_t round_robin_ = 0;
};

class GenerationDecoder {
 public:
  GenerationDecoder(Params params, std::size_t generations);

  // Feed one wire packet. Malformed packets, shape mismatches and unknown
  // generation ids are counted and dropped, never fatal.
  enum class Accept {
    kInnovative,
    kDependent,
    kGenerationComplete,  // this packet completed its generation
    kRejected,
  };
  Accept add_packet(std::span<const std::uint8_t> wire_bytes);

  bool is_complete() const { return completed_ == decoders_.size(); }
  std::size_t generations_complete() const { return completed_; }
  std::size_t packets_rejected() const { return rejected_; }
  std::size_t generations() const { return decoders_.size(); }

  // Per-generation progress (rank out of n) — the metadata peers gossip
  // when choosing what to send each other.
  std::size_t generation_rank(std::size_t generation) const;
  bool generation_complete(std::size_t generation) const;

  // Reassembled content (length generations * n * k, including the final
  // generation's padding); only valid when is_complete().
  std::vector<std::uint8_t> reassemble() const;

 private:
  Params params_;
  std::vector<std::unique_ptr<ProgressiveDecoder>> decoders_;
  std::size_t completed_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace extnc::coding
