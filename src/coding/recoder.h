// Recoder: the defining operation of *network* coding. An intermediate
// node holds coded blocks (not sources) and emits fresh random linear
// combinations of them; the combination applies to coefficient vectors and
// payloads alike, so downstream decoders are oblivious to recoding depth.
// Random linear codes permit this "recode without decoding" property that
// the paper contrasts against RS/fountain codes (Sec. 2).
#pragma once

#include <cstdint>
#include <vector>

#include "coding/coded_block.h"
#include "util/rng.h"

namespace extnc::coding {

class Recoder {
 public:
  explicit Recoder(Params params);

  // Buffer a received coded block. Dependent blocks are buffered too (a
  // real relay cannot cheaply know better and they do not hurt: the output
  // span is unchanged).
  void add(const CodedBlock& block);
  // Zero-copy wire entry point (coding/wire.h parse_view): buffering is the
  // one copy made — straight from the frame into owned aligned storage,
  // with no intermediate CodedBlock.
  void add(const CodedBlockView& block);

  std::size_t buffered() const { return blocks_.size(); }
  const Params& params() const { return params_; }

  // Emit a random combination of everything buffered. Requires at least
  // one buffered block.
  CodedBlock recode(Rng& rng) const;

 private:
  Params params_;
  std::vector<CodedBlock> blocks_;
};

}  // namespace extnc::coding
