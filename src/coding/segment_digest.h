// SegmentDigest: the integrity manifest for one generation.
//
// RLNC has no integrity of its own — any coefficient/payload pair is a
// "valid" coded block, so a corrupted block decodes to silently wrong data
// and a recoding relay spreads the damage (the pollution-attack surface).
// The defense is layered: the wire CRC (coding/wire.h, XNC2) stops random
// in-flight corruption at the first honest hop, and this manifest lets the
// *decoder* prove the decoded segment is the one the encoder published,
// catching anything that slips past the wire layer (post-parse memory
// corruption, a buggy or lying relay).
//
// The manifest holds one 64-bit digest per source block, domain-separated
// by block index, published by the encoder out of band or via its own wire
// frame:
//
//   offset   size  field
//   0        4     magic "XNCD"
//   4        4     generation id (little-endian u32)
//   8        4     n  (blocks per segment)
//   12       4     k  (block size, bytes)
//   16       8n    per-block digests (little-endian u64 each)
//   16+8n    4     CRC32C over everything above
//
// Digests are not cryptographic (see DESIGN.md "Threat model & integrity
// boundary"): they detect corruption and confusion, not adversarial
// forgery.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "coding/segment.h"

namespace extnc::coding {

class SegmentDigest {
 public:
  SegmentDigest() = default;

  // Digest every source block of `segment`.
  static SegmentDigest compute(const Segment& segment,
                               std::uint32_t generation = 0);

  const Params& params() const { return params_; }
  std::uint32_t generation() const { return generation_; }
  std::size_t size() const { return digests_.size(); }
  std::uint64_t block_digest(std::size_t i) const;

  // Does source block i have these bytes? (data.size() must be k.)
  bool matches_block(std::size_t i, std::span<const std::uint8_t> data) const;
  // Does every block of `segment` match? (Shape mismatch => false.)
  bool matches(const Segment& segment) const;

  friend bool operator==(const SegmentDigest& a, const SegmentDigest& b) {
    return a.params_ == b.params_ && a.generation_ == b.generation_ &&
           a.digests_ == b.digests_;
  }

  // Wire encoding (format documented above).
  std::vector<std::uint8_t> serialize() const;
  // Rejects truncation, bad magic, bad shape and checksum mismatch by
  // returning nullopt — manifests arrive over the same untrusted channels
  // as packets.
  static std::optional<SegmentDigest> parse(
      std::span<const std::uint8_t> data);

 private:
  Params params_{.n = 0, .k = 0};
  std::uint32_t generation_ = 0;
  std::vector<std::uint64_t> digests_;
};

}  // namespace extnc::coding
