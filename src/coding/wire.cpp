#include "coding/wire.h"

#include <cstring>

#include "util/assert.h"
#include "util/checksum.h"

namespace extnc::coding {

namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

const char* parse_error_name(ParseError error) {
  switch (error) {
    case ParseError::kTooShort: return "too short";
    case ParseError::kBadMagic: return "bad magic";
    case ParseError::kBadShape: return "bad shape";
    case ParseError::kLengthMismatch: return "length mismatch";
    case ParseError::kBadChecksum: return "bad checksum";
  }
  return "?";
}

std::vector<std::uint8_t> serialize(std::uint32_t generation,
                                    const CodedBlock& block,
                                    WireFormat format) {
  std::vector<std::uint8_t> out(wire_size(block.params(), format));
  serialize_into(generation, block, out, format);
  return out;
}

void serialize_into(std::uint32_t generation, const CodedBlock& block,
                    std::span<std::uint8_t> out, WireFormat format) {
  const Params& p = block.params();
  EXTNC_CHECK(out.size() == wire_size(p, format));
  put_u32(out.data(),
          format == WireFormat::kV2 ? kWireMagicV2 : kWireMagic);
  put_u32(out.data() + 4, generation);
  put_u32(out.data() + 8, static_cast<std::uint32_t>(p.n));
  put_u32(out.data() + 12, static_cast<std::uint32_t>(p.k));
  std::memcpy(out.data() + kWireHeaderBytes, block.coefficients().data(), p.n);
  std::memcpy(out.data() + kWireHeaderBytes + p.n, block.payload().data(),
              p.k);
  if (format == WireFormat::kV2) {
    const std::size_t body = kWireHeaderBytes + p.n + p.k;
    put_u32(out.data() + body, crc32c(out.first(body)));
  }
}

ParseResult ParseResult::success(Packet packet) {
  ParseResult result;
  result.packet_ = std::move(packet);
  return result;
}

ParseResult ParseResult::failure(ParseError error) {
  ParseResult result;
  result.error_ = error;
  return result;
}

ParseViewResult ParseViewResult::success(PacketView packet) {
  ParseViewResult result;
  result.packet_ = packet;
  return result;
}

ParseViewResult ParseViewResult::failure(ParseError error) {
  ParseViewResult result;
  result.error_ = error;
  return result;
}

ParseViewResult parse_view(std::span<const std::uint8_t> data,
                           const WireLimits& limits) {
  if (data.size() < kWireHeaderBytes) {
    return ParseViewResult::failure(ParseError::kTooShort);
  }
  const std::uint32_t magic = get_u32(data.data());
  WireFormat format;
  if (magic == kWireMagic) {
    format = WireFormat::kV1;
  } else if (magic == kWireMagicV2) {
    format = WireFormat::kV2;
  } else {
    return ParseViewResult::failure(ParseError::kBadMagic);
  }
  const std::uint32_t generation = get_u32(data.data() + 4);
  const std::uint32_t n = get_u32(data.data() + 8);
  const std::uint32_t k = get_u32(data.data() + 12);
  if (n == 0 || k == 0 || n > limits.max_n || k > limits.max_k) {
    return ParseViewResult::failure(ParseError::kBadShape);
  }
  const Params params{.n = n, .k = k};
  if (data.size() != wire_size(params, format)) {
    return ParseViewResult::failure(ParseError::kLengthMismatch);
  }
  const std::size_t body = kWireHeaderBytes + n + k;
  if (format == WireFormat::kV2 &&
      crc32c(data.first(body)) != get_u32(data.data() + body)) {
    return ParseViewResult::failure(ParseError::kBadChecksum);
  }
  PacketView packet;
  packet.generation = generation;
  packet.format = format;
  packet.block = CodedBlockView(params, data.subspan(kWireHeaderBytes, n),
                                data.subspan(kWireHeaderBytes + n, k));
  return ParseViewResult::success(packet);
}

ParseResult parse(std::span<const std::uint8_t> data,
                  const WireLimits& limits) {
  const ParseViewResult view = parse_view(data, limits);
  if (!view.ok()) return ParseResult::failure(view.error());
  Packet packet;
  packet.generation = view.packet().generation;
  packet.format = view.packet().format;
  packet.block = view.packet().block.materialize();
  return ParseResult::success(std::move(packet));
}

}  // namespace extnc::coding
