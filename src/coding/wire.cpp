#include "coding/wire.h"

#include <cstring>

#include "util/assert.h"

namespace extnc::coding {

namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

const char* parse_error_name(ParseError error) {
  switch (error) {
    case ParseError::kTooShort: return "too short";
    case ParseError::kBadMagic: return "bad magic";
    case ParseError::kBadShape: return "bad shape";
    case ParseError::kLengthMismatch: return "length mismatch";
  }
  return "?";
}

std::vector<std::uint8_t> serialize(std::uint32_t generation,
                                    const CodedBlock& block) {
  std::vector<std::uint8_t> out(wire_size(block.params()));
  serialize_into(generation, block, out);
  return out;
}

void serialize_into(std::uint32_t generation, const CodedBlock& block,
                    std::span<std::uint8_t> out) {
  const Params& p = block.params();
  EXTNC_CHECK(out.size() == wire_size(p));
  put_u32(out.data(), kWireMagic);
  put_u32(out.data() + 4, generation);
  put_u32(out.data() + 8, static_cast<std::uint32_t>(p.n));
  put_u32(out.data() + 12, static_cast<std::uint32_t>(p.k));
  std::memcpy(out.data() + kWireHeaderBytes, block.coefficients().data(), p.n);
  std::memcpy(out.data() + kWireHeaderBytes + p.n, block.payload().data(),
              p.k);
}

ParseResult ParseResult::success(Packet packet) {
  ParseResult result;
  result.packet_ = std::move(packet);
  return result;
}

ParseResult ParseResult::failure(ParseError error) {
  ParseResult result;
  result.error_ = error;
  return result;
}

ParseResult parse(std::span<const std::uint8_t> data,
                  const WireLimits& limits) {
  if (data.size() < kWireHeaderBytes) {
    return ParseResult::failure(ParseError::kTooShort);
  }
  if (get_u32(data.data()) != kWireMagic) {
    return ParseResult::failure(ParseError::kBadMagic);
  }
  const std::uint32_t generation = get_u32(data.data() + 4);
  const std::uint32_t n = get_u32(data.data() + 8);
  const std::uint32_t k = get_u32(data.data() + 12);
  if (n == 0 || k == 0 || n > limits.max_n || k > limits.max_k) {
    return ParseResult::failure(ParseError::kBadShape);
  }
  const Params params{.n = n, .k = k};
  if (data.size() != wire_size(params)) {
    return ParseResult::failure(ParseError::kLengthMismatch);
  }
  Packet packet;
  packet.generation = generation;
  packet.block = CodedBlock(params);
  std::memcpy(packet.block.coefficients().data(),
              data.data() + kWireHeaderBytes, n);
  std::memcpy(packet.block.payload().data(),
              data.data() + kWireHeaderBytes + n, k);
  return ParseResult::success(std::move(packet));
}

}  // namespace extnc::coding
