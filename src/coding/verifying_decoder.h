// VerifyingDecoder: a ProgressiveDecoder that refuses to return garbage.
//
// A plain RLNC decoder "succeeds" on polluted input — any n independent
// blocks decode to *something*. This wrapper retains every received block,
// and when the inner decoder completes it checks the decoded segment
// against the encoder's SegmentDigest manifest. On mismatch it runs a
// leave-one-out / leave-two-out group-testing re-decode over the retained
// blocks to isolate the polluted ones, ejects them into quarantine, and
// goes back to collecting instead of surfacing wrong data.
//
// Identification needs slack: with exactly n retained blocks there is no
// subset to fall back on, so callers should keep feeding redundant blocks
// after the first (failed) completion. Each retained block is either
// consistent with the true segment (clean) or not (polluted); a subset
// decodes to a digest-verified segment iff it has rank n and contains no
// polluted block, which is what the subset search exploits.
//
// Cost: the group-testing pass re-decodes subsets, O(m) decodes for one
// polluted block and O(m^2) for two (m = retained blocks, capped by
// kMaxPairSearchBlocks). That is the *recovery* path — the common path
// (no pollution, or pollution stopped by the wire CRC) adds one digest
// sweep at completion.
#pragma once

#include <cstdint>
#include <vector>

#include "coding/coded_block.h"
#include "coding/progressive_decoder.h"
#include "coding/segment.h"
#include "coding/segment_digest.h"

namespace extnc::coding {

class VerifyingDecoder {
 public:
  enum class Result {
    kAccepted,            // rank increased, not yet complete
    kLinearlyDependent,   // retained for later group testing, rank unchanged
    kVerified,            // decode completed AND matched the manifest
    kAlreadyVerified,     // extra block after successful verification
    kPollutionEjected,    // completion failed the digest check; polluted
                          // block(s) identified, quarantined, and — if the
                          // clean remainder still completes — verified
    kPollutionUnresolved, // completion failed the digest check and the
                          // culprits could not be isolated yet; keep feeding
                          // redundant blocks
  };

  // Pair search is quadratic in retained blocks; above this many retained
  // blocks only single-pollution (leave-one-out) isolation runs.
  static constexpr std::size_t kMaxPairSearchBlocks = 48;

  explicit VerifyingDecoder(SegmentDigest manifest);

  Result add(const CodedBlock& block);
  // Zero-copy entry point for wire frames (coding/wire.h parse_view): the
  // inner decoder reduces the borrowed spans directly; the one copy made is
  // the retention copy group testing requires.
  Result add(const CodedBlockView& block);

  const Params& params() const { return manifest_.params(); }
  const SegmentDigest& manifest() const { return manifest_; }

  std::size_t rank() const;
  bool is_verified() const { return verified_; }
  // Decoded source blocks; only valid when is_verified().
  const Segment& decoded_segment() const;

  std::size_t blocks_seen() const { return blocks_seen_; }
  std::size_t blocks_retained() const { return retained_.size(); }
  std::size_t blocks_quarantined() const { return quarantined_.size(); }
  // Completions that failed the digest check (each triggers group testing).
  std::size_t verification_failures() const { return verification_failures_; }
  const std::vector<CodedBlock>& quarantined() const { return quarantined_; }

 private:
  // Re-decode `retained_` minus the given (sorted) exclusions; on a clean,
  // digest-verified completion commit the result and return true.
  bool try_subset(const std::vector<std::size_t>& excluded);
  Result identify_and_eject();

  SegmentDigest manifest_;
  ProgressiveDecoder decoder_;
  std::vector<CodedBlock> retained_;
  std::vector<CodedBlock> quarantined_;
  Segment verified_segment_;
  bool verified_ = false;
  bool dirty_complete_ = false;  // inner decoder complete but unverified
  std::size_t blocks_seen_ = 0;
  std::size_t verification_failures_ = 0;
};

}  // namespace extnc::coding
