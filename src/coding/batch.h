// Contiguous batch of coded blocks: an m x n coefficient matrix plus an
// m x k payload matrix. High-rate encoders (streaming servers emitting
// hundreds of thousands of blocks per segment, Sec. 5.1.1) produce into a
// batch rather than allocating per-block objects.
#pragma once

#include <cstdint>
#include <span>

#include "coding/coded_block.h"
#include "coding/params.h"
#include "util/aligned_buffer.h"

namespace extnc::coding {

class CodedBatch {
 public:
  CodedBatch() = default;
  CodedBatch(Params params, std::size_t count)
      : params_(params),
        count_(count),
        coefficients_(count * params.n),
        payloads_(count * params.k) {}

  const Params& params() const { return params_; }
  std::size_t count() const { return count_; }

  std::span<std::uint8_t> coefficients(std::size_t j) {
    return coefficients_.subspan(j * params_.n, params_.n);
  }
  std::span<const std::uint8_t> coefficients(std::size_t j) const {
    return coefficients_.subspan(j * params_.n, params_.n);
  }
  std::span<std::uint8_t> payload(std::size_t j) {
    return payloads_.subspan(j * params_.k, params_.k);
  }
  std::span<const std::uint8_t> payload(std::size_t j) const {
    return payloads_.subspan(j * params_.k, params_.k);
  }

  std::uint8_t* coefficients_data() { return coefficients_.data(); }
  const std::uint8_t* coefficients_data() const { return coefficients_.data(); }
  std::uint8_t* payloads_data() { return payloads_.data(); }
  const std::uint8_t* payloads_data() const { return payloads_.data(); }

  CodedBlock block(std::size_t j) const {
    CodedBlock b(params_);
    auto c = coefficients(j);
    auto p = payload(j);
    std::copy(c.begin(), c.end(), b.coefficients().begin());
    std::copy(p.begin(), p.end(), b.payload().begin());
    return b;
  }

  // Total coded bytes produced (the paper's bandwidth numerator counts
  // payload bytes of generated coded blocks).
  std::size_t payload_bytes() const { return count_ * params_.k; }

 private:
  Params params_;
  std::size_t count_ = 0;
  AlignedBuffer coefficients_;
  AlignedBuffer payloads_;
};

}  // namespace extnc::coding
