#include "coding/systematic.h"

#include <algorithm>

namespace extnc::coding {

CodedBlock SystematicEncoder::next(Rng& rng) {
  if (!in_systematic_phase()) return coded_.encode(rng);
  CodedBlock block(params());
  block.coefficients()[next_] = 1;
  const auto source = segment_->block(next_);
  std::copy(source.begin(), source.end(), block.payload().begin());
  ++next_;
  return block;
}

}  // namespace extnc::coding
