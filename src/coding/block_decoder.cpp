#include "coding/block_decoder.h"

#include <cstring>

#include "gf256/gf.h"
#include "gf256/region.h"
#include "util/assert.h"

namespace extnc::coding {

BlockDecoder::BlockDecoder(Params params)
    : params_(params),
      coeffs_(params.n, params.n),
      payloads_(params.n * params.k),
      echelon_(params.n, params.n),
      pivot_present_(params.n, false) {
  params_.validate();
}

bool BlockDecoder::add(const CodedBlock& block) {
  EXTNC_CHECK(block.params() == params_);
  return add(block.coefficients(), block.payload());
}

bool BlockDecoder::add(std::span<const std::uint8_t> coefficients,
                       std::span<const std::uint8_t> payload) {
  EXTNC_CHECK(coefficients.size() == params_.n);
  EXTNC_CHECK(payload.size() == params_.k);
  if (is_ready()) return false;

  const std::size_t n = params_.n;
  const gf256::Ops& ops = gf256::ops();

  // Reduce a copy of the coefficients against the running echelon basis.
  AlignedBuffer reduced(n);
  std::memcpy(reduced.data(), coefficients.data(), n);
  // One increasing-column pass; the pivot is the first nonzero column with
  // no echelon row, but elimination continues past it so the stored row is
  // fully reduced against every existing pivot (see the matching comment
  // in ProgressiveDecoder::add).
  std::size_t pivot = n;
  for (std::size_t col = 0; col < n; ++col) {
    const std::uint8_t value = reduced[col];
    if (value == 0) continue;
    if (pivot_present_[col]) {
      ops.mul_add_region(reduced.data(), echelon_.row(col).data(), value, n);
    } else if (pivot == n) {
      pivot = col;
    }
  }
  if (pivot == n) return false;  // dependent

  const std::uint8_t scale = gf256::inv(reduced[pivot]);
  ops.scale_region(reduced.data(), scale, n);
  std::memcpy(echelon_.row(pivot).data(), reduced.data(), n);
  pivot_present_[pivot] = true;

  // Store the *original* row; inversion happens once at decode time.
  std::memcpy(coeffs_.row(rank_).data(), coefficients.data(), n);
  std::memcpy(payloads_.data() + rank_ * params_.k, payload.data(), params_.k);
  ++rank_;
  return true;
}

Segment BlockDecoder::decode() const {
  EXTNC_CHECK(is_ready());
  const auto inverse = coeffs_.inverted();
  // Stored rows are independent by construction, so inversion succeeds.
  EXTNC_CHECK(inverse.has_value());
  Segment segment(params_);
  inverse->multiply_rows(payloads_.data(), params_.k, segment.data());
  return segment;
}

}  // namespace extnc::coding
