#include "coding/generation_stream.h"

#include <cstring>

#include "util/assert.h"

namespace extnc::coding {

GenerationEncoder::GenerationEncoder(Params params,
                                     std::span<const std::uint8_t> content,
                                     bool systematic, WireFormat wire_format)
    : params_(params),
      content_bytes_(content.size()),
      use_systematic_(systematic),
      wire_format_(wire_format) {
  params_.validate();
  const std::size_t per_generation = params_.segment_bytes();
  const std::size_t count =
      content.empty() ? 1 : (content.size() + per_generation - 1) / per_generation;
  segments_.reserve(count);
  for (std::size_t g = 0; g < count; ++g) {
    const std::size_t offset = g * per_generation;
    const std::size_t len =
        std::min(per_generation, content.size() - std::min(content.size(), offset));
    segments_.push_back(
        Segment::from_bytes(params_, content.subspan(offset, len)));
  }
  // Encoders hold pointers into segments_; construct only after the vector
  // is final.
  systematic_.reserve(count);
  coded_.reserve(count);
  for (const Segment& segment : segments_) {
    systematic_.emplace_back(segment);
    coded_.emplace_back(segment);
  }
}

std::vector<std::uint8_t> GenerationEncoder::encode_packet(
    std::uint32_t generation, Rng& rng) {
  EXTNC_CHECK(generation < segments_.size());
  const CodedBlock block = use_systematic_
                               ? systematic_[generation].next(rng)
                               : coded_[generation].encode(rng);
  return serialize(generation, block, wire_format_);
}

SegmentDigest GenerationEncoder::digest(std::uint32_t generation) const {
  EXTNC_CHECK(generation < segments_.size());
  return SegmentDigest::compute(segments_[generation], generation);
}

std::vector<std::uint8_t> GenerationEncoder::encode_next_packet(Rng& rng) {
  const auto generation = round_robin_;
  round_robin_ = (round_robin_ + 1) % static_cast<std::uint32_t>(generations());
  return encode_packet(generation, rng);
}

GenerationDecoder::GenerationDecoder(Params params, std::size_t generations)
    : params_(params) {
  params_.validate();
  EXTNC_CHECK(generations >= 1);
  decoders_.reserve(generations);
  for (std::size_t g = 0; g < generations; ++g) {
    decoders_.push_back(std::make_unique<ProgressiveDecoder>(params_));
  }
}

GenerationDecoder::Accept GenerationDecoder::add_packet(
    std::span<const std::uint8_t> wire_bytes) {
  // Zero-copy hot path: the decoder reduces the coefficient and payload
  // regions straight out of the validated frame; nothing is copied unless
  // the block lands in the RREF basis (which ProgressiveDecoder stores by
  // value either way).
  const ParseViewResult result = parse_view(wire_bytes);
  if (!result.ok()) {
    ++rejected_;
    return Accept::kRejected;
  }
  const PacketView& packet = result.packet();
  if (packet.generation >= decoders_.size() ||
      !(packet.block.params() == params_)) {
    ++rejected_;
    return Accept::kRejected;
  }
  ProgressiveDecoder& decoder = *decoders_[packet.generation];
  const auto outcome =
      decoder.add(packet.block.coefficients(), packet.block.payload());
  switch (outcome) {
    case ProgressiveDecoder::Result::kAccepted:
      if (decoder.is_complete()) {
        ++completed_;
        return Accept::kGenerationComplete;
      }
      return Accept::kInnovative;
    case ProgressiveDecoder::Result::kLinearlyDependent:
    case ProgressiveDecoder::Result::kAlreadyComplete:
      return Accept::kDependent;
  }
  return Accept::kRejected;
}

std::size_t GenerationDecoder::generation_rank(std::size_t generation) const {
  EXTNC_CHECK(generation < decoders_.size());
  return decoders_[generation]->rank();
}

bool GenerationDecoder::generation_complete(std::size_t generation) const {
  EXTNC_CHECK(generation < decoders_.size());
  return decoders_[generation]->is_complete();
}

std::vector<std::uint8_t> GenerationDecoder::reassemble() const {
  EXTNC_CHECK(is_complete());
  std::vector<std::uint8_t> out;
  out.reserve(decoders_.size() * params_.segment_bytes());
  for (const auto& decoder : decoders_) {
    const Segment segment = decoder->decoded_segment();
    out.insert(out.end(), segment.bytes().begin(), segment.bytes().end());
  }
  return out;
}

}  // namespace extnc::coding
