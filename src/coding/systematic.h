// Systematic RLNC encoder: the first n emissions are the source blocks
// themselves (unit coefficient vectors), after which it falls back to
// random coding.
//
// On a loss-free path a receiver then decodes with zero GF work (every
// arrival is already reduced), and under loss only the missing fraction
// needs real elimination — a standard practical refinement of the
// random-code the paper accelerates. The progressive decoder handles the
// mixture transparently.
#pragma once

#include <cstddef>

#include "coding/encoder.h"

namespace extnc::coding {

class SystematicEncoder {
 public:
  explicit SystematicEncoder(const Segment& segment,
                             CoefficientModel model = CoefficientModel::dense())
      : segment_(&segment), coded_(segment, model) {}

  const Params& params() const { return segment_->params(); }

  // True while the next emission is an uncoded pass-through block.
  bool in_systematic_phase() const { return next_ < params().n; }

  CodedBlock next(Rng& rng);

  // Restart the systematic pass (e.g. for a new receiver cohort).
  void reset() { next_ = 0; }

 private:
  const Segment* segment_;
  Encoder coded_;
  std::size_t next_ = 0;
};

}  // namespace extnc::coding
