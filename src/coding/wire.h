// Wire format for coded blocks.
//
// A coded block travels as a self-describing packet so that receivers can
// route it to the right generation decoder and validate its shape before
// touching the payload. Two versions exist on the wire:
//
//   v1 ("XNC1") — the legacy frame, no integrity protection:
//     offset  size  field
//     0       4     magic "XNC1"
//     4       4     generation id (little-endian u32)
//     8       4     n  (blocks per segment)
//     12      4     k  (block size, bytes)
//     16      n     coefficient vector
//     16+n    k     coded payload
//
//   v2 ("XNC2") — same layout plus a CRC32C trailer over everything that
//   precedes it (header + coefficients + payload):
//     16+n+k  4     CRC32C (little-endian u32)
//
// Serializers emit v2 by default (WireFormat::kV2); v1 remains available
// for benches that want the 4 bytes back and for compatibility with
// already-serialized containers. parse() accepts both, verifying the
// trailer on v2 packets and reporting ParseError::kBadChecksum on
// mismatch.
//
// Fixed little-endian encoding. Parsing never trusts the input: every
// field is validated against caller-provided limits and truncated or
// oversized buffers are rejected (no EXTNC_CHECK on network input —
// malformed packets return errors, they must not abort a server).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "coding/coded_block.h"

namespace extnc::coding {

inline constexpr std::uint32_t kWireMagic = 0x31434e58;    // "XNC1"
inline constexpr std::uint32_t kWireMagicV2 = 0x32434e58;  // "XNC2"
inline constexpr std::size_t kWireHeaderBytes = 16;
inline constexpr std::size_t kWireChecksumBytes = 4;

enum class WireFormat : std::uint8_t {
  kV1,  // legacy, no checksum
  kV2,  // CRC32C trailer
};

struct WireLimits {
  std::size_t max_n = 4096;
  std::size_t max_k = 1 << 20;
};

struct Packet {
  std::uint32_t generation = 0;
  WireFormat format = WireFormat::kV2;  // format the packet arrived in
  CodedBlock block;
};

// Zero-copy parse result: the block borrows the coefficient and payload
// regions of the validated frame instead of copying them out. Valid only
// while the buffer passed to parse_view() is; callers that keep the block
// past that (retention, reordering queues) must block.materialize().
struct PacketView {
  std::uint32_t generation = 0;
  WireFormat format = WireFormat::kV2;  // format the packet arrived in
  CodedBlockView block;
};

// Serialized size of a block for the given parameters and format.
constexpr std::size_t wire_size(const Params& params,
                                WireFormat format = WireFormat::kV2) {
  return kWireHeaderBytes + params.n + params.k +
         (format == WireFormat::kV2 ? kWireChecksumBytes : 0);
}

// Serialize into a fresh buffer.
std::vector<std::uint8_t> serialize(std::uint32_t generation,
                                    const CodedBlock& block,
                                    WireFormat format = WireFormat::kV2);

// Serialize into a caller buffer of exactly wire_size(block.params(),
// format); aborts on wrong buffer size (a programming error, not a network
// one).
void serialize_into(std::uint32_t generation, const CodedBlock& block,
                    std::span<std::uint8_t> out,
                    WireFormat format = WireFormat::kV2);

enum class ParseError {
  kTooShort,
  kBadMagic,
  kBadShape,       // n or k of zero or above limits
  kLengthMismatch, // buffer length != expected for the declared shape
  kBadChecksum,    // v2 CRC32C trailer does not match the content
};

// Every enumerator, for exhaustiveness tests (keep in sync with ParseError).
inline constexpr ParseError kAllParseErrors[] = {
    ParseError::kTooShort,        ParseError::kBadMagic,
    ParseError::kBadShape,        ParseError::kLengthMismatch,
    ParseError::kBadChecksum,
};

const char* parse_error_name(ParseError error);

// Parse one packet. Returns the packet or the reason it was rejected.
// (std::variant-free result type: check error() first.)
class ParseResult {
 public:
  static ParseResult success(Packet packet);
  static ParseResult failure(ParseError error);

  bool ok() const { return !error_.has_value(); }
  ParseError error() const { return *error_; }
  const Packet& packet() const { return packet_; }
  Packet take_packet() { return std::move(packet_); }

 private:
  ParseResult() = default;
  Packet packet_;
  std::optional<ParseError> error_;
};

ParseResult parse(std::span<const std::uint8_t> data,
                  const WireLimits& limits = {});

// Zero-copy counterpart of ParseResult (same check-error()-first shape).
class ParseViewResult {
 public:
  static ParseViewResult success(PacketView packet);
  static ParseViewResult failure(ParseError error);

  bool ok() const { return !error_.has_value(); }
  ParseError error() const { return *error_; }
  const PacketView& packet() const { return packet_; }

 private:
  ParseViewResult() = default;
  PacketView packet_;
  std::optional<ParseError> error_;
};

// Validate a frame (magic, shape, limits, length, v2 CRC) and return a
// borrowed view into it. This is the decode hot path: the payload is read
// straight out of the receive buffer by the codec, and is only copied if
// the consumer retains it. parse() is this plus an unconditional
// materialize().
ParseViewResult parse_view(std::span<const std::uint8_t> data,
                           const WireLimits& limits = {});

}  // namespace extnc::coding
