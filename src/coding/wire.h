// Wire format for coded blocks.
//
// A coded block travels as a self-describing packet so that receivers can
// route it to the right generation decoder and validate its shape before
// touching the payload:
//
//   offset  size  field
//   0       4     magic "XNC1"
//   4       4     generation id (little-endian u32)
//   8       4     n  (blocks per segment)
//   12      4     k  (block size, bytes)
//   16      n     coefficient vector
//   16+n    k     coded payload
//
// Fixed little-endian encoding; total size 16 + n + k. Parsing never
// trusts the input: every field is validated against caller-provided
// limits and truncated/oversized buffers are rejected (no EXTNC_CHECK on
// network input — malformed packets return errors, they must not abort a
// server).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "coding/coded_block.h"

namespace extnc::coding {

inline constexpr std::uint32_t kWireMagic = 0x31434e58;  // "XNC1"
inline constexpr std::size_t kWireHeaderBytes = 16;

struct WireLimits {
  std::size_t max_n = 4096;
  std::size_t max_k = 1 << 20;
};

struct Packet {
  std::uint32_t generation = 0;
  CodedBlock block;
};

// Serialized size of a block for the given parameters.
constexpr std::size_t wire_size(const Params& params) {
  return kWireHeaderBytes + params.n + params.k;
}

// Serialize into a fresh buffer.
std::vector<std::uint8_t> serialize(std::uint32_t generation,
                                    const CodedBlock& block);

// Serialize into a caller buffer of exactly wire_size(block.params());
// aborts on wrong buffer size (a programming error, not a network one).
void serialize_into(std::uint32_t generation, const CodedBlock& block,
                    std::span<std::uint8_t> out);

enum class ParseError {
  kTooShort,
  kBadMagic,
  kBadShape,      // n or k of zero or above limits
  kLengthMismatch // buffer length != 16 + n + k
};

const char* parse_error_name(ParseError error);

// Parse one packet. Returns the packet or the reason it was rejected.
// (std::variant-free result type: check error() first.)
class ParseResult {
 public:
  static ParseResult success(Packet packet);
  static ParseResult failure(ParseError error);

  bool ok() const { return !error_.has_value(); }
  ParseError error() const { return *error_; }
  const Packet& packet() const { return packet_; }
  Packet take_packet() { return std::move(packet_); }

 private:
  ParseResult() = default;
  Packet packet_;
  std::optional<ParseError> error_;
};

ParseResult parse(std::span<const std::uint8_t> data,
                  const WireLimits& limits = {});

}  // namespace extnc::coding
