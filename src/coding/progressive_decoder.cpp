#include "coding/progressive_decoder.h"

#include <cstring>

#include "gf256/gf.h"
#include "gf256/region.h"
#include "util/assert.h"

namespace extnc::coding {

ProgressiveDecoder::ProgressiveDecoder(Params params)
    : params_(params),
      coeffs_(params.n * params.n),
      payloads_(params.n * params.k),
      present_(params.n, false),
      scratch_coeffs_(params.n),
      scratch_payload_(params.k) {
  params_.validate();
  elim_rows_.reserve(params_.n);
  elim_factors_.reserve(params_.n);
}

std::uint8_t* ProgressiveDecoder::coeff_row(std::size_t pivot) {
  return coeffs_.data() + pivot * params_.n;
}
const std::uint8_t* ProgressiveDecoder::coeff_row(std::size_t pivot) const {
  return coeffs_.data() + pivot * params_.n;
}
std::uint8_t* ProgressiveDecoder::payload_row(std::size_t pivot) {
  return payloads_.data() + pivot * params_.k;
}
const std::uint8_t* ProgressiveDecoder::payload_row(std::size_t pivot) const {
  return payloads_.data() + pivot * params_.k;
}

ProgressiveDecoder::Result ProgressiveDecoder::add(const CodedBlock& block) {
  EXTNC_CHECK(block.params() == params_);
  return add(block.coefficients(), block.payload());
}

ProgressiveDecoder::Result ProgressiveDecoder::add(
    std::span<const std::uint8_t> coefficients,
    std::span<const std::uint8_t> payload) {
  EXTNC_CHECK(coefficients.size() == params_.n);
  EXTNC_CHECK(payload.size() == params_.k);
  ++blocks_seen_;
  if (is_complete()) {
    ++blocks_discarded_;
    return Result::kAlreadyComplete;
  }

  const gf256::Ops& ops = gf256::ops();
  const std::size_t n = params_.n;
  const std::size_t k = params_.k;
  std::uint8_t* sc = scratch_coeffs_.data();
  std::uint8_t* sp = scratch_payload_.data();
  std::memcpy(sc, coefficients.data(), n);

  // Forward elimination against every stored pivot row. Because stored
  // rows are in full RREF (zero left of their pivot), one left-to-right
  // pass suffices: eliminating column c never reintroduces a value at a
  // column < c. The pivot is the first nonzero column with no stored row,
  // but elimination must continue past it — later *present* columns may
  // still be nonzero, and leaving them would break the RREF invariant
  // whenever pivots arrive out of order.
  //
  // Only the coefficient side runs inline (each elimination determines the
  // next factor). The payload side is recorded and replayed below as one
  // fused pass — stored payload rows are untouched during forward
  // elimination, so the result is bit-identical, and a linearly dependent
  // block never pays for payload work at all.
  elim_rows_.clear();
  elim_factors_.clear();
  std::size_t pivot = n;
  for (std::size_t col = 0; col < n; ++col) {
    const std::uint8_t value = sc[col];
    if (value == 0) continue;
    if (present_[col]) {
      ops.mul_add_region(sc, coeff_row(col), value, n);
      EXTNC_DASSERT(sc[col] == 0);
      elim_rows_.push_back(payload_row(col));
      elim_factors_.push_back(value);
    } else if (pivot == n) {
      pivot = col;
    }
  }
  if (pivot == n) {
    // Reduced to all zeros: linearly dependent (Gauss-Jordan detects this
    // for free, as the paper notes).
    ++blocks_discarded_;
    return Result::kLinearlyDependent;
  }

  std::memcpy(sp, payload.data(), k);
  ops.mul_add_regions(sp, elim_rows_.data(), elim_factors_.data(),
                      elim_rows_.size(), k);

  // Normalize the pivot to 1.
  const std::uint8_t scale = gf256::inv(sc[pivot]);
  ops.scale_region(sc, scale, n);
  ops.scale_region(sp, scale, k);

  // Back-eliminate the new pivot column from every stored row to keep RREF.
  for (std::size_t p = 0; p < n; ++p) {
    if (!present_[p]) continue;
    const std::uint8_t factor = coeff_row(p)[pivot];
    if (factor == 0) continue;
    ops.mul_add_region(coeff_row(p), sc, factor, n);
    ops.mul_add_region(payload_row(p), sp, factor, k);
  }

  std::memcpy(coeff_row(pivot), sc, n);
  std::memcpy(payload_row(pivot), sp, k);
  present_[pivot] = true;
  ++rank_;
  return Result::kAccepted;
}

Segment ProgressiveDecoder::decoded_segment() const {
  EXTNC_CHECK(is_complete());
  Segment segment(params_);
  for (std::size_t i = 0; i < params_.n; ++i) {
    std::memcpy(segment.block(i).data(), payload_row(i), params_.k);
  }
  return segment;
}

bool ProgressiveDecoder::check_rref_invariant() const {
  const std::size_t n = params_.n;
  std::size_t present_count = 0;
  for (std::size_t p = 0; p < n; ++p) {
    if (!present_[p]) continue;
    ++present_count;
    const std::uint8_t* row = coeff_row(p);
    // Zero left of the pivot, 1 at the pivot.
    for (std::size_t c = 0; c < p; ++c) {
      if (row[c] != 0) return false;
    }
    if (row[p] != 1) return false;
    // The pivot column is zero in every other stored row.
    for (std::size_t q = 0; q < n; ++q) {
      if (q == p || !present_[q]) continue;
      if (coeff_row(q)[p] != 0) return false;
    }
  }
  return present_count == rank_;
}

}  // namespace extnc::coding
