// A segment: n source blocks of k bytes, stored contiguously (block i at
// offset i*k). This matches the paper's media-segment model (e.g. a 512 KB
// video segment split into 128 blocks of 4 KB).
#pragma once

#include <cstdint>
#include <span>

#include "coding/params.h"
#include "util/aligned_buffer.h"
#include "util/rng.h"

namespace extnc::coding {

class Segment {
 public:
  Segment() = default;
  explicit Segment(Params params);

  // Builds a segment from raw content. Content shorter than n*k is
  // zero-padded; longer content is rejected.
  static Segment from_bytes(Params params, std::span<const std::uint8_t> data);

  // Random content; the standard test/bench workload.
  static Segment random(Params params, Rng& rng);

  const Params& params() const { return params_; }

  std::span<const std::uint8_t> block(std::size_t i) const;
  std::span<std::uint8_t> block(std::size_t i);

  std::span<const std::uint8_t> bytes() const { return data_.span(); }
  std::span<std::uint8_t> bytes() { return data_.span(); }
  const std::uint8_t* data() const { return data_.data(); }
  std::uint8_t* data() { return data_.data(); }

  friend bool operator==(const Segment& a, const Segment& b);

 private:
  Params params_;
  AlignedBuffer data_;
};

}  // namespace extnc::coding
