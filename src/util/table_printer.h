// Console table formatting for the benchmark harness.
//
// Every bench prints the same rows/series the paper's figure shows; this
// helper keeps the output aligned and can also emit CSV for plotting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace extnc {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Formats a double with the given precision; "-" for NaN.
  static std::string num(double value, int precision = 1);

  void print(std::FILE* out = stdout) const;
  void print_csv(std::FILE* out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace extnc
