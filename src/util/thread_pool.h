// Fixed-size thread pool with a parallel_for helper.
//
// The CPU coding backend follows the paper's two partitioning schemes
// (per-block partitioned work and full-block-per-thread work); both reduce
// to "run N independent tasks and wait", which is exactly what this pool
// provides.
//
// Exceptions: a task that throws no longer escapes its worker thread (an
// escaped exception would std::terminate the process). run_batch rethrows
// the first exception its own tasks raised, after every task of the batch
// has finished; submit-path exceptions are held and rethrown by the next
// wait_idle() (one waiter receives it — with concurrent waiters, the first
// to wake). parallel_for and parallel_for_chunks wait via wait_idle, so
// their callers see their tasks' exceptions the same way.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace extnc {

class ThreadPool {
 public:
  // num_threads == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  // Enqueue one task. Pair with wait_idle() to join a batch. If the task
  // throws, the exception is captured and rethrown by a later wait_idle().
  void submit(std::function<void()> task);

  // Block until every submitted task has finished, then rethrow the first
  // exception any of them raised (if one did).
  void wait_idle();

  // Run fn(i) for i in [0, count) across the pool and wait for exactly
  // these tasks. Unlike parallel_for (which joins via the pool-wide
  // wait_idle), completion is tracked by a per-call latch, so concurrent
  // callers from different threads do not wait on each other's work.
  // The remaining tasks of the batch run to completion even after one
  // throws; the first exception is rethrown to this caller afterwards
  // (never leaked to other callers' waits).
  // fn must not submit nested run_batch work from inside a task (the
  // caller's wait would then depend on queue slots the wait itself holds).
  void run_batch(std::size_t count, const std::function<void(std::size_t)>& fn);

  // Run fn(i) for i in [0, count) across the pool and wait. fn is invoked
  // concurrently; it must handle its own data partitioning.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  // Split [0, count) into one contiguous chunk per worker and run
  // fn(begin, end) per chunk. Lower dispatch overhead than parallel_for for
  // fine-grained loops.
  void parallel_for_chunks(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  // First exception thrown by a submit-path task since the last
  // wait_idle(); guarded by mutex_.
  std::exception_ptr pending_error_;
};

}  // namespace extnc
