#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace extnc {

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  double sq = 0;
  for (double v : samples) sq += (v - s.mean) * (v - s.mean);
  s.stddev = s.count > 1 ? std::sqrt(sq / static_cast<double>(s.count - 1)) : 0;
  const std::size_t mid = s.count / 2;
  s.median = (s.count % 2 == 1)
                 ? samples[mid]
                 : 0.5 * (samples[mid - 1] + samples[mid]);
  return s;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  p = std::clamp(p, 0.0, 1.0);
  const double idx = p * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples[lo] * (1 - frac) + samples[hi] * frac;
}

}  // namespace extnc
