#include "util/checksum.h"

#include <array>

namespace extnc {

namespace {

// Reflected-polynomial table, generated at static-init time (256 entries,
// 1 KB — cheaper than shipping the literal table and impossible to typo).
struct Crc32cTable {
  std::array<std::uint32_t, 256> entry;

  Crc32cTable() {
    constexpr std::uint32_t kPolyReflected = 0x82f63b78u;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPolyReflected : 0);
      }
      entry[i] = crc;
    }
  }
};

const Crc32cTable& table() {
  static const Crc32cTable t;
  return t;
}

}  // namespace

std::uint32_t crc32c_update(std::uint32_t state,
                            std::span<const std::uint8_t> data) {
  const auto& t = table();
  for (const std::uint8_t byte : data) {
    state = (state >> 8) ^ t.entry[(state ^ byte) & 0xff];
  }
  return state;
}

std::uint32_t crc32c(std::span<const std::uint8_t> data) {
  return crc32c_final(crc32c_update(crc32c_init(), data));
}

std::uint64_t digest64(std::span<const std::uint8_t> data,
                       std::uint64_t seed) {
  // FNV-1a 64 over the bytes, then a SplitMix64 finalizer to spread the
  // low-entropy FNV state across all output bits.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (const std::uint8_t byte : data) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace extnc
