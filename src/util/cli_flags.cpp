#include "util/cli_flags.h"

#include <cstdlib>
#include <cstring>

#include "util/assert.h"

namespace extnc {

namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

std::optional<CliFlags> CliFlags::parse(int argc, char** argv, int first,
                                        const std::vector<CliFlag>& known,
                                        std::string* error) {
  CliFlags flags;
  for (int i = first; i < argc; ++i) {
    const CliFlag* spec = nullptr;
    for (const CliFlag& candidate : known) {
      if (std::strcmp(argv[i], candidate.name) == 0) {
        spec = &candidate;
        break;
      }
    }
    if (spec == nullptr) {
      set_error(error, std::string("unknown flag '") + argv[i] + "'");
      return std::nullopt;
    }
    if (flags.values_.count(spec->name) != 0) {
      set_error(error, std::string("flag '") + spec->name + "' repeated");
      return std::nullopt;
    }
    Value value;
    value.kind = spec->kind;
    if (spec->kind != CliFlag::Kind::kBool) {
      if (i + 1 >= argc) {
        set_error(error,
                  std::string("flag '") + spec->name + "' needs a value");
        return std::nullopt;
      }
      const char* raw = argv[++i];
      switch (spec->kind) {
        case CliFlag::Kind::kText:
          value.text = raw;
          break;
        case CliFlag::Kind::kNumber: {
          char* end = nullptr;
          value.number = std::strtod(raw, &end);
          if (end == raw || *end != '\0') {
            set_error(error, std::string("flag '") + spec->name +
                                 "' expects a number, got '" + raw + "'");
            return std::nullopt;
          }
          break;
        }
        case CliFlag::Kind::kSize: {
          char* end = nullptr;
          const unsigned long long parsed = std::strtoull(raw, &end, 10);
          if (end == raw || *end != '\0' || parsed == 0 || raw[0] == '-') {
            set_error(error, std::string("flag '") + spec->name +
                                 "' expects a positive integer, got '" + raw +
                                 "'");
            return std::nullopt;
          }
          value.size = static_cast<std::size_t>(parsed);
          break;
        }
        case CliFlag::Kind::kBool:
          break;  // unreachable
      }
    }
    flags.values_.emplace(spec->name, std::move(value));
  }
  return flags;
}

bool CliFlags::has(const char* name) const {
  return values_.count(name) != 0;
}

std::string CliFlags::text(const char* name, std::string fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  EXTNC_CHECK(it->second.kind == CliFlag::Kind::kText);
  return it->second.text;
}

double CliFlags::number(const char* name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  EXTNC_CHECK(it->second.kind == CliFlag::Kind::kNumber);
  return it->second.number;
}

std::size_t CliFlags::size(const char* name, std::size_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  EXTNC_CHECK(it->second.kind == CliFlag::Kind::kSize);
  return it->second.size;
}

}  // namespace extnc
