#include "util/aligned_buffer.h"

#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "util/assert.h"

namespace extnc {

namespace {

std::size_t round_up(std::size_t size, std::size_t alignment) {
  return (size + alignment - 1) / alignment * alignment;
}

}  // namespace

AlignedBuffer::AlignedBuffer(std::size_t size) : size_(size) {
  if (size_ == 0) return;
  data_ = static_cast<std::uint8_t*>(
      std::aligned_alloc(kAlignment, round_up(size_, kAlignment)));
  if (data_ == nullptr) throw std::bad_alloc{};
  std::memset(data_, 0, size_);
}

AlignedBuffer::AlignedBuffer(const AlignedBuffer& other)
    : AlignedBuffer(other.size_) {
  if (size_ != 0) std::memcpy(data_, other.data_, size_);
}

AlignedBuffer& AlignedBuffer::operator=(const AlignedBuffer& other) {
  if (this == &other) return *this;
  AlignedBuffer copy(other);
  *this = std::move(copy);
  return *this;
}

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this == &other) return *this;
  std::free(data_);
  data_ = std::exchange(other.data_, nullptr);
  size_ = std::exchange(other.size_, 0);
  return *this;
}

AlignedBuffer::~AlignedBuffer() { std::free(data_); }

std::span<std::uint8_t> AlignedBuffer::subspan(std::size_t offset,
                                               std::size_t count) {
  EXTNC_CHECK(offset + count <= size_);
  return {data_ + offset, count};
}

std::span<const std::uint8_t> AlignedBuffer::subspan(std::size_t offset,
                                                     std::size_t count) const {
  EXTNC_CHECK(offset + count <= size_);
  return {data_ + offset, count};
}

void AlignedBuffer::fill(std::uint8_t value) {
  if (size_ != 0) std::memset(data_, value, size_);
}

bool operator==(const AlignedBuffer& a, const AlignedBuffer& b) {
  if (a.size_ != b.size_) return false;
  if (a.size_ == 0) return true;
  return std::memcmp(a.data_, b.data_, a.size_) == 0;
}

}  // namespace extnc
