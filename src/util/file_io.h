// Whole-file read/write helpers for the CLI tools and examples.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace extnc {

// Reads an entire file; nullopt on any I/O error.
std::optional<std::vector<std::uint8_t>> read_file(const std::string& path);

// Writes (truncating); false on any I/O error.
bool write_file(const std::string& path, std::span<const std::uint8_t> data);

}  // namespace extnc
