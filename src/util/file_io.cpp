#include "util/file_io.h"

#include <cstdio>

namespace extnc {

std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::vector<std::uint8_t> data;
  std::uint8_t buffer[64 * 1024];
  std::size_t bytes_read;
  while ((bytes_read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    data.insert(data.end(), buffer, buffer + bytes_read);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return std::nullopt;
  return data;
}

bool write_file(const std::string& path, std::span<const std::uint8_t> data) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const std::size_t written =
      data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), file);
  const bool ok = written == data.size() && std::fclose(file) == 0;
  if (!ok && written != data.size()) std::fclose(file);
  return ok;
}

}  // namespace extnc
