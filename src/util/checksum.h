// Integrity primitives for the wire layer.
//
// crc32c: the Castagnoli CRC (polynomial 0x1EDC6F41, reflected 0x82F63B78),
// the same checksum iSCSI/ext4 use — strong burst-error detection in 4
// bytes, and hardware-accelerated everywhere should a backend ever want to
// swap this table-driven version out. Used as the XNC2 packet trailer.
//
// digest64: a 64-bit content digest (FNV-1a with a SplitMix64 finalizer)
// for per-source-block manifests. Detects random corruption with 2^-64
// collision odds; it is NOT cryptographic — an adversary who can choose
// bytes can forge it (see "Threat model & integrity boundary" in DESIGN.md).
#pragma once

#include <cstdint>
#include <span>

namespace extnc {

// One-shot CRC32C of `data`.
std::uint32_t crc32c(std::span<const std::uint8_t> data);

// Incremental form: feed `crc32c_update` successive chunks starting from
// crc32c_init(), then finish. crc32c(x) == crc32c_final(crc32c_update(
// crc32c_init(), x)).
inline constexpr std::uint32_t crc32c_init() { return 0xffffffffu; }
std::uint32_t crc32c_update(std::uint32_t state,
                            std::span<const std::uint8_t> data);
inline constexpr std::uint32_t crc32c_final(std::uint32_t state) {
  return state ^ 0xffffffffu;
}

// 64-bit content digest. Seed lets callers domain-separate (e.g. mix in a
// block index so identical blocks at different positions digest apart).
std::uint64_t digest64(std::span<const std::uint8_t> data,
                       std::uint64_t seed = 0);

}  // namespace extnc
