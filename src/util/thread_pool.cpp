#include "util/thread_pool.h"

#include <algorithm>

#include "util/assert.h"

namespace extnc {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  EXTNC_CHECK(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    EXTNC_CHECK(!stopping_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::run_batch(std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  struct Latch {
    std::mutex m;
    std::condition_variable done;
    std::size_t remaining;
  };
  Latch latch{.remaining = count};
  for (std::size_t i = 0; i < count; ++i) {
    submit([&fn, &latch, i] {
      fn(i);
      std::lock_guard lock(latch.m);
      if (--latch.remaining == 0) latch.done.notify_one();
    });
  }
  std::unique_lock lock(latch.m);
  latch.done.wait(lock, [&latch] { return latch.remaining == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::parallel_for_chunks(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t workers = std::min(count, num_threads());
  const std::size_t chunk = (count + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    if (begin >= end) break;
    submit([&fn, begin, end] { fn(begin, end); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace extnc
