#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace extnc {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  EXTNC_CHECK(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    EXTNC_CHECK(!stopping_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(pending_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::run_batch(std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  struct Latch {
    std::mutex m;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;  // first exception of this batch
  };
  Latch latch{.remaining = count};
  for (std::size_t i = 0; i < count; ++i) {
    // The try/catch lives inside the submitted closure, so a batch task's
    // exception is owned by this batch's latch — never by the pool-wide
    // pending_error_ another caller's wait_idle would pick up.
    submit([&fn, &latch, i] {
      std::exception_ptr error;
      try {
        fn(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard lock(latch.m);
      if (error && !latch.error) latch.error = std::move(error);
      if (--latch.remaining == 0) latch.done.notify_one();
    });
  }
  std::unique_lock lock(latch.m);
  latch.done.wait(lock, [&latch] { return latch.remaining == 0; });
  if (latch.error) std::rethrow_exception(latch.error);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::parallel_for_chunks(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t workers = std::min(count, num_threads());
  const std::size_t chunk = (count + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    if (begin >= end) break;
    submit([&fn, begin, end] { fn(begin, end); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !pending_error_) pending_error_ = std::move(error);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace extnc
