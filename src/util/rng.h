// Deterministic, seedable PRNGs used throughout the library.
//
// Coding correctness tests need reproducible coefficient streams, and the
// network simulator needs independent per-node streams, so we use
// SplitMix64 for seeding and xoshiro256** for bulk generation rather than
// std::mt19937 (whose state is large and whose seeding is easy to get
// wrong).
#pragma once

#include <cstdint>

namespace extnc {

// SplitMix64: tiny generator, mainly used to expand a single seed into the
// larger xoshiro state. Passes BigCrush when used directly.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast, high-quality 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint8_t next_byte() { return static_cast<std::uint8_t>(next()); }

  // Nonzero byte in [1, 255]; used for guaranteed-invertible diagonals.
  std::uint8_t next_nonzero_byte() {
    return static_cast<std::uint8_t>(1 + next() % 255);
  }

  // Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Derive an independent stream (e.g. one per worker thread or node).
  Rng fork() { return Rng(next()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace extnc
