#include "util/table_printer.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace extnc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  EXTNC_CHECK(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  EXTNC_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double value, int precision) {
  if (std::isnan(value)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TablePrinter::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "" : "  ",
                   static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  std::size_t total = headers_.size() - 1;
  for (std::size_t w : widths) total += w + 1;
  for (std::size_t i = 0; i < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::print_csv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(out, "%s%s", c == 0 ? "" : ",", cells[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace extnc
