#include "util/metrics_registry.h"

#include <algorithm>
#include <functional>

namespace extnc::metrics {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Shard& Registry::shard_for(std::string_view name) {
  return shards_[std::hash<std::string_view>{}(name) % kShards];
}

const Registry::Shard& Registry::shard_for(std::string_view name) const {
  return shards_[std::hash<std::string_view>{}(name) % kShards];
}

void Registry::add(std::string_view name, double delta) {
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.values.find(name);
  if (it == shard.values.end()) {
    shard.values.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Registry::set(std::string_view name, double value) {
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.values.find(name);
  if (it == shard.values.end()) {
    shard.values.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void Registry::observe(std::string_view name, double sample) {
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.histograms.find(name);
  if (it == shard.histograms.end()) {
    it = shard.histograms.emplace(std::string(name), StreamingHistogram{})
             .first;
  }
  it->second.observe(sample);
}

double Registry::value(std::string_view name) const {
  const Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.values.find(name);
  return it == shard.values.end() ? 0.0 : it->second;
}

StreamingHistogram Registry::histogram(std::string_view name) const {
  const Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.histograms.find(name);
  return it == shard.histograms.end() ? StreamingHistogram{} : it->second;
}

std::vector<std::pair<std::string, StreamingHistogram>> Registry::histograms()
    const {
  std::vector<std::pair<std::string, StreamingHistogram>> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.insert(out.end(), shard.histograms.begin(), shard.histograms.end());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<std::pair<std::string, double>> Registry::snapshot() const {
  std::vector<std::pair<std::string, double>> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.insert(out.end(), shard.values.begin(), shard.values.end());
  }
  // Shards partition by hash; restore the global name order the callers
  // (trace metadata, report printers) rely on.
  std::sort(out.begin(), out.end());
  return out;
}

void Registry::reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.values.clear();
    shard.histograms.clear();
  }
}

}  // namespace extnc::metrics
