#include "util/metrics_registry.h"

namespace extnc::metrics {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(std::string_view name, double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = values_.find(name);
  if (it == values_.end()) {
    values_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Registry::set(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = values_.find(name);
  if (it == values_.end()) {
    values_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

double Registry::value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

std::vector<std::pair<std::string, double>> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {values_.begin(), values_.end()};
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  values_.clear();
}

}  // namespace extnc::metrics
