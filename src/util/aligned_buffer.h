// 64-byte-aligned owning byte buffer.
//
// Every data plane in the library (source blocks, coded blocks, coefficient
// matrices) lives in one of these so that SIMD region operations can assume
// alignment and so buffers can be handed to any backend without copying.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace extnc {

class AlignedBuffer {
 public:
  static constexpr std::size_t kAlignment = 64;

  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t size);
  AlignedBuffer(const AlignedBuffer& other);
  AlignedBuffer& operator=(const AlignedBuffer& other);
  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  ~AlignedBuffer();

  std::uint8_t* data() { return data_; }
  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::uint8_t& operator[](std::size_t i) { return data_[i]; }
  std::uint8_t operator[](std::size_t i) const { return data_[i]; }

  std::span<std::uint8_t> span() { return {data_, size_}; }
  std::span<const std::uint8_t> span() const { return {data_, size_}; }
  std::span<std::uint8_t> subspan(std::size_t offset, std::size_t count);
  std::span<const std::uint8_t> subspan(std::size_t offset,
                                        std::size_t count) const;

  void fill(std::uint8_t value);

  friend bool operator==(const AlignedBuffer& a, const AlignedBuffer& b);

 private:
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace extnc
