// Lightweight always-on invariant checks.
//
// EXTNC_CHECK is evaluated in every build type: coding bugs (a wrong pivot,
// an out-of-range coefficient index) silently corrupt decoded data, so the
// cost of a predictable branch is worth it even in release benches.
// EXTNC_DASSERT compiles out in NDEBUG builds and is used inside the
// tightest GF loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace extnc {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "EXTNC_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace extnc

#define EXTNC_CHECK(expr)                               \
  do {                                                  \
    if (!(expr)) {                                      \
      ::extnc::check_failed(#expr, __FILE__, __LINE__); \
    }                                                   \
  } while (0)

#ifdef NDEBUG
#define EXTNC_DASSERT(expr) ((void)0)
#else
#define EXTNC_DASSERT(expr) EXTNC_CHECK(expr)
#endif
