#include "util/histogram.h"

#include <algorithm>
#include <cmath>

namespace extnc {

std::size_t StreamingHistogram::bucket_index(double value) {
  if (!(value > kMinValue)) return 0;  // NaN, negatives, zero, tiny
  // Bucket b (b >= 1) covers (kMinValue * 2^((b-1)/octave),
  //                           kMinValue * 2^(b/octave)].
  const double octaves = std::log2(value / kMinValue);
  const double index = std::ceil(octaves * kBucketsPerOctave);
  if (index >= static_cast<double>(kBuckets)) return kBuckets - 1;
  return static_cast<std::size_t>(index);
}

double StreamingHistogram::bucket_floor(std::size_t index) {
  if (index == 0) return 0.0;
  return kMinValue *
         std::exp2(static_cast<double>(index - 1) / kBucketsPerOctave);
}

void StreamingHistogram::observe(double value) {
  ++buckets_[bucket_index(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void StreamingHistogram::merge(const StreamingHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double StreamingHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the answering sample, 1-based: q=0 -> first, q=1 -> last.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  std::size_t bucket = kBuckets - 1;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      bucket = i;
      break;
    }
  }
  double answer;
  if (bucket == 0) {
    answer = kMinValue;  // sub-resolution bucket; clamp below does the rest
  } else {
    const double lo = bucket_floor(bucket);
    const double hi = bucket_floor(bucket + 1);
    answer = std::sqrt(lo * hi);  // geometric midpoint: bounded rel. error
  }
  return std::clamp(answer, min_, max_);
}

}  // namespace extnc
