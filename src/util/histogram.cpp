#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace extnc {

StreamingHistogram::StreamingHistogram(std::size_t buckets_per_octave,
                                       double min_value)
    : buckets_per_octave_(buckets_per_octave), min_value_(min_value) {
  EXTNC_CHECK(buckets_per_octave_ >= 1);
  EXTNC_CHECK(min_value_ > 0);
}

std::size_t StreamingHistogram::index_of(double value) const {
  if (!(value > min_value_)) return 0;  // NaN, negatives, zero, tiny
  // Bucket b (b >= 1) covers (min_value * 2^((b-1)/octave),
  //                           min_value * 2^(b/octave)].
  const double octaves = std::log2(value / min_value_);
  const double index =
      std::ceil(octaves * static_cast<double>(buckets_per_octave_));
  if (index >= static_cast<double>(kBuckets)) return kBuckets - 1;
  return static_cast<std::size_t>(index);
}

double StreamingHistogram::floor_of(std::size_t index) const {
  if (index == 0) return 0.0;
  return min_value_ * std::exp2(static_cast<double>(index - 1) /
                                static_cast<double>(buckets_per_octave_));
}

std::size_t StreamingHistogram::bucket_index(double value) {
  return StreamingHistogram{}.index_of(value);
}

double StreamingHistogram::bucket_floor(std::size_t index) {
  return StreamingHistogram{}.floor_of(index);
}

void StreamingHistogram::observe(double value) {
  ++buckets_[index_of(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void StreamingHistogram::merge(const StreamingHistogram& other) {
  // Bucket-wise addition is only meaningful when both sides file samples
  // into the same boundaries; merging across layouts would silently
  // misreport every quantile, so it is a hard error.
  EXTNC_CHECK(buckets_per_octave_ == other.buckets_per_octave_);
  EXTNC_CHECK(min_value_ == other.min_value_);
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double StreamingHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the answering sample, 1-based: q=0 -> first, q=1 -> last.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  std::size_t bucket = kBuckets - 1;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      bucket = i;
      break;
    }
  }
  double answer;
  if (bucket == 0) {
    answer = min_value_;  // sub-resolution bucket; clamp below does the rest
  } else {
    const double lo = floor_of(bucket);
    const double hi = floor_of(bucket + 1);
    answer = std::sqrt(lo * hi);  // geometric midpoint: bounded rel. error
  }
  return std::clamp(answer, min_, max_);
}

}  // namespace extnc
