// Wall-clock timing helpers for benches.
#pragma once

#include <chrono>

namespace extnc {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Bytes/seconds -> MB/s using the paper's convention (1 MB = 2^20 bytes).
inline double mb_per_second(double bytes, double seconds) {
  if (seconds <= 0) return 0;
  return bytes / (1024.0 * 1024.0) / seconds;
}

}  // namespace extnc
