// Process-wide counter/gauge/histogram registry.
//
// A lightweight, thread-safe map from dotted metric names to doubles, fed
// by whatever subsystem has something to report (the event simulator, the
// fault-injecting channel, the swarm drivers, the fleet scheduler) and
// drained by the observability exporters: extnc_prof embeds a snapshot in
// its trace metadata, and tools can print it for a quick "what did this
// run actually do" check. Counters are monotonically accumulated with
// add(); gauges are last-write-wins via set(); distributions (latency
// samples) stream into named StreamingHistograms via observe(), so
// services never buffer raw sample vectors just to report p99. Names use
// "layer.component.metric" dotting, e.g. "net.channel.corrupted".
//
// The registry is deliberately global (like the underlying process): tests
// that assert on it should reset() first and not run such assertions
// concurrently.
//
// Thread safety: all operations are safe to call concurrently. The name
// space is sharded by hash so hot counters fed from many threads at once
// (every simgpu launch records its engine; every injected fault is
// counted) do not serialize on one lock. snapshot() locks shard by shard:
// it is consistent per entry, not a global atomic cut — fine for the
// observability exporters it feeds.
#pragma once

#include <array>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.h"

namespace extnc::metrics {

class Registry {
 public:
  static Registry& instance();

  void add(std::string_view name, double delta = 1.0);
  void set(std::string_view name, double value);
  // Record one sample into the named streaming histogram (created on
  // first observe). Histograms live in a separate namespace from
  // counters/gauges; the same name can hold both.
  void observe(std::string_view name, double sample);

  // Current value; 0 for a name never touched.
  double value(std::string_view name) const;
  // Copy of the named histogram; an empty histogram for a name never
  // observed.
  StreamingHistogram histogram(std::string_view name) const;

  // All metrics in name order (counters and gauges interleaved).
  std::vector<std::pair<std::string, double>> snapshot() const;
  // All histograms in name order.
  std::vector<std::pair<std::string, StreamingHistogram>> histograms() const;

  void reset();

 private:
  Registry() = default;

  static constexpr std::size_t kShards = 8;
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, double, std::less<>> values;
    std::map<std::string, StreamingHistogram, std::less<>> histograms;
  };
  Shard& shard_for(std::string_view name);
  const Shard& shard_for(std::string_view name) const;

  std::array<Shard, kShards> shards_;
};

// Convenience free functions for call sites.
inline void count(std::string_view name, double delta = 1.0) {
  Registry::instance().add(name, delta);
}
inline void gauge(std::string_view name, double value) {
  Registry::instance().set(name, value);
}
inline void observe(std::string_view name, double sample) {
  Registry::instance().observe(name, sample);
}

}  // namespace extnc::metrics
