// Streaming histogram: fixed log-bucketed latency/size distribution.
//
// Services that report tail latency (the fleet scheduler records one
// sample per served segment) cannot afford to buffer raw sample vectors
// through util/stats.h — a million-session run would hold a million
// doubles just to answer "what was p99". This type is the streaming
// alternative: O(1) observe into a fixed array of log-spaced buckets,
// O(buckets) quantile extraction, and exact count/sum/min/max on the
// side. Two histograms with the same (built-in) geometry merge by adding
// bucket counts, so per-phase or per-shard histograms can be combined
// into fleet-wide ones.
//
// Geometry: bucket boundaries grow by 2^(1/kBucketsPerOctave) starting
// at kMinValue, i.e. kBucketsPerOctave buckets per doubling. A quantile
// is answered with the geometric midpoint of its bucket, clamped to the
// exact observed [min, max], so the relative error is at most
// 2^(1/(2*kBucketsPerOctave)) - 1 (~4.4% at 8 buckets/octave) — plenty
// for p50/p90/p99 reporting. Values below kMinValue (including zero and
// negatives) land in bucket 0; values beyond the top boundary land in
// the last bucket; both stay exact in min/max.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>

namespace extnc {

class StreamingHistogram {
 public:
  // Default geometry: 8 buckets per doubling, spanning kMinValue *
  // 2^(kBuckets/8) ≈ 19 decades above kMinValue — seconds from
  // nanoseconds to decades, or byte counts from 1 to ~5e17, without
  // configuration.
  static constexpr std::size_t kBucketsPerOctave = 8;
  static constexpr std::size_t kBuckets = 512;
  static constexpr double kMinValue = 1e-9;

  StreamingHistogram() = default;
  // Custom geometry: trade span for resolution (more buckets per octave
  // = tighter quantiles over fewer decades). Histograms only merge with
  // an IDENTICAL geometry — bucket-wise addition across different
  // layouts silently misfiles every sample, so merge() CHECK-fails on a
  // mismatch instead.
  StreamingHistogram(std::size_t buckets_per_octave, double min_value);

  std::size_t buckets_per_octave() const { return buckets_per_octave_; }
  double min_value() const { return min_value_; }

  void observe(double value);
  // Add `other`'s samples to this histogram. Aborts (EXTNC_CHECK) when
  // the two geometries differ — counts from one layout mean nothing in
  // the other's buckets.
  void merge(const StreamingHistogram& other);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  // q in [0, 1]; 0 on an empty histogram. Answers with the geometric
  // midpoint of the bucket holding the ceil(q * count)-th sample,
  // clamped to the observed [min, max].
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }

  // Like quantile(), but nullopt on an empty histogram: "no samples" and
  // "all samples were ~0s" are different facts, and reporters that print
  // the raw 0.0 make a healthy run look like one with a zero-latency tail.
  // Reporters should omit (or print null for) an empty quantile.
  std::optional<double> quantile_if_any(double q) const {
    if (count_ == 0) return std::nullopt;
    return quantile(q);
  }

  // Exposed for tests (bucket accounting, merge equivalence). The static
  // forms answer for the DEFAULT geometry.
  std::uint64_t bucket_count(std::size_t index) const {
    return buckets_[index];
  }
  static std::size_t bucket_index(double value);
  // Lower bound of bucket `index` (min_value * 2^(index-1)/octave; bucket
  // 0 reaches down to zero).
  static double bucket_floor(std::size_t index);

 private:
  std::size_t index_of(double value) const;
  double floor_of(std::size_t index) const;

  std::size_t buckets_per_octave_ = kBucketsPerOctave;
  double min_value_ = kMinValue;
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace extnc
