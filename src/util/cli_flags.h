// Strict command-line flag parsing shared by the tools and benches.
//
// Every CLI in the repo follows the same failure policy: an unknown flag,
// a missing value or a malformed number exits non-zero with a message
// instead of being silently ignored or defaulted. Before this helper each
// tool re-implemented that scan (extnc_sim's Args, extnc_prof's
// size_flag, bench_common's check_flags); CliFlags is the one shared
// implementation. Kinds are validated at parse time — "--n banana" is
// rejected up front, so the typed accessors below are infallible.
//
//   const auto flags = CliFlags::parse(argc, argv, 1,
//       {{"--device", CliFlag::Kind::kText},
//        {"--blocks", CliFlag::Kind::kSize},
//        {"--loss", CliFlag::Kind::kNumber},
//        {"--csv", CliFlag::Kind::kBool}}, &error);
//   if (!flags) { ...print error, exit 2... }
//   const std::size_t blocks = flags->size("--blocks", 64);
#pragma once

#include <cstddef>
#include <initializer_list>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace extnc {

struct CliFlag {
  enum class Kind {
    kBool,    // presence only, consumes no value
    kText,    // any value
    kNumber,  // double (strtod, whole value must parse)
    kSize,    // positive integer
  };
  const char* name;
  Kind kind;
};

class CliFlags {
 public:
  // Parse argv[first, argc) against `known`. Returns nullopt and sets
  // *error (if non-null) on an unknown flag, a flag missing its value, a
  // malformed number, or a repeated flag.
  static std::optional<CliFlags> parse(int argc, char** argv, int first,
                                       const std::vector<CliFlag>& known,
                                       std::string* error);
  static std::optional<CliFlags> parse(int argc, char** argv, int first,
                                       std::initializer_list<CliFlag> known,
                                       std::string* error) {
    return parse(argc, argv, first, std::vector<CliFlag>(known), error);
  }

  // True when the flag appeared (any kind).
  bool has(const char* name) const;
  // Typed values with fallbacks for absent flags. Precondition: the flag
  // was declared with the matching kind in parse() (checked).
  std::string text(const char* name, std::string fallback = "") const;
  double number(const char* name, double fallback) const;
  std::size_t size(const char* name, std::size_t fallback) const;

 private:
  struct Value {
    CliFlag::Kind kind;
    std::string text;      // kText
    double number = 0;     // kNumber
    std::size_t size = 0;  // kSize
  };
  std::map<std::string, Value> values_;
};

}  // namespace extnc
