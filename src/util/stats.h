// Small descriptive-statistics helpers for benches and the network
// simulator (mean/stddev/min/max/percentiles over samples).
#pragma once

#include <cstddef>
#include <vector>

namespace extnc {

struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  double median = 0;
};

// Computes a five-number-ish summary. Empty input yields a zero Summary.
Summary summarize(std::vector<double> samples);

// p in [0, 1]; linear interpolation between order statistics.
double percentile(std::vector<double> samples, double p);

}  // namespace extnc
