// Minimal RLNC codec over GF(2^16): enough to measure the field-size
// trade-off against the GF(2^8) pipeline (dependence probability vs
// table-pressure throughput), not a parallel implementation.
//
// Payloads are arrays of 16-bit symbols; a block of k bytes holds k/2
// symbols (k must be even). Coefficient vectors are n 16-bit symbols.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace extnc::gf65536 {

struct Params16 {
  std::size_t n = 16;       // blocks per generation
  std::size_t symbols = 32; // 16-bit symbols per block (2 bytes each)
};

class Encoder16 {
 public:
  // sources: n rows of `symbols` u16 each, row-major, copied in.
  Encoder16(Params16 params, std::vector<std::uint16_t> sources);

  static Encoder16 random(Params16 params, Rng& rng);

  const Params16& params() const { return params_; }
  const std::vector<std::uint16_t>& sources() const { return sources_; }

  // One coded block: coefficients (n symbols) + payload (symbols).
  void encode(Rng& rng, std::vector<std::uint16_t>& coefficients,
              std::vector<std::uint16_t>& payload) const;

 private:
  Params16 params_;
  std::vector<std::uint16_t> sources_;
};

class Decoder16 {
 public:
  explicit Decoder16(Params16 params);

  enum class Result { kAccepted, kLinearlyDependent, kAlreadyComplete };
  Result add(const std::vector<std::uint16_t>& coefficients,
             const std::vector<std::uint16_t>& payload);

  bool is_complete() const { return rank_ == params_.n; }
  std::size_t rank() const { return rank_; }
  // Row-major n x symbols; valid when complete.
  const std::vector<std::uint16_t>& decoded() const;

 private:
  Params16 params_;
  std::vector<std::uint16_t> coeffs_;    // n x n, keyed by pivot
  std::vector<std::uint16_t> payloads_;  // n x symbols
  std::vector<bool> present_;
  std::size_t rank_ = 0;
};

}  // namespace extnc::gf65536
