#include "gf65536/gf16.h"

#include <cstring>
#include <memory>

#include "util/assert.h"

namespace extnc::gf65536 {

namespace {

std::unique_ptr<Tables> build_tables() {
  auto t = std::make_unique<Tables>();
  std::uint16_t value = 1;
  for (std::uint32_t i = 0; i < 65535; ++i) {
    t->exp[i] = value;
    t->log[value] = i;
    value = mul_loop(value, kGenerator);
  }
  EXTNC_CHECK(value == 1);  // the generator must have order 2^16 - 1
  for (std::uint32_t i = 65535; i < 131072; ++i) {
    t->exp[i] = t->exp[i - 65535];
  }
  t->log[0] = 0;  // never read; kept deterministic
  return t;
}

}  // namespace

const Tables& tables() {
  static const std::unique_ptr<Tables> t = build_tables();
  return *t;
}

std::uint16_t inv(std::uint16_t x) {
  if (x == 0) return 0;
  const Tables& t = tables();
  return t.exp[65535 - t.log[x]];
}

void mul_add_region(std::uint16_t* dst, const std::uint16_t* src,
                    std::uint16_t c, std::size_t symbols) {
  if (c == 0) return;
  const Tables& t = tables();
  const std::uint32_t log_c = t.log[c];
  for (std::size_t i = 0; i < symbols; ++i) {
    const std::uint16_t s = src[i];
    if (s != 0) dst[i] ^= t.exp[log_c + t.log[s]];
  }
}

void scale_region(std::uint16_t* dst, std::uint16_t c, std::size_t symbols) {
  if (c == 0) {
    std::memset(dst, 0, symbols * 2);
    return;
  }
  if (c == 1) return;
  const Tables& t = tables();
  const std::uint32_t log_c = t.log[c];
  for (std::size_t i = 0; i < symbols; ++i) {
    const std::uint16_t s = dst[i];
    if (s != 0) dst[i] = t.exp[log_c + t.log[s]];
  }
}

}  // namespace extnc::gf65536
