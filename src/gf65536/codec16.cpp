#include "gf65536/codec16.h"

#include <cstring>

#include "gf65536/gf16.h"
#include "util/assert.h"

namespace extnc::gf65536 {

Encoder16::Encoder16(Params16 params, std::vector<std::uint16_t> sources)
    : params_(params), sources_(std::move(sources)) {
  EXTNC_CHECK(params_.n >= 1 && params_.symbols >= 1);
  EXTNC_CHECK(sources_.size() == params_.n * params_.symbols);
}

Encoder16 Encoder16::random(Params16 params, Rng& rng) {
  std::vector<std::uint16_t> sources(params.n * params.symbols);
  for (auto& s : sources) s = static_cast<std::uint16_t>(rng.next());
  return Encoder16(params, std::move(sources));
}

void Encoder16::encode(Rng& rng, std::vector<std::uint16_t>& coefficients,
                       std::vector<std::uint16_t>& payload) const {
  coefficients.assign(params_.n, 0);
  payload.assign(params_.symbols, 0);
  for (auto& c : coefficients) {
    // Dense draw over GF(2^16) \ {0}.
    c = static_cast<std::uint16_t>(1 + rng.next_below(65535));
  }
  for (std::size_t i = 0; i < params_.n; ++i) {
    mul_add_region(payload.data(), sources_.data() + i * params_.symbols,
                   coefficients[i], params_.symbols);
  }
}

Decoder16::Decoder16(Params16 params)
    : params_(params),
      coeffs_(params.n * params.n, 0),
      payloads_(params.n * params.symbols, 0),
      present_(params.n, false) {}

Decoder16::Result Decoder16::add(
    const std::vector<std::uint16_t>& coefficients,
    const std::vector<std::uint16_t>& payload) {
  EXTNC_CHECK(coefficients.size() == params_.n);
  EXTNC_CHECK(payload.size() == params_.symbols);
  if (is_complete()) return Result::kAlreadyComplete;

  std::vector<std::uint16_t> sc(coefficients);
  std::vector<std::uint16_t> sp(payload);
  const std::size_t n = params_.n;

  std::size_t pivot = n;
  for (std::size_t col = 0; col < n; ++col) {
    const std::uint16_t value = sc[col];
    if (value == 0) continue;
    if (present_[col]) {
      mul_add_region(sc.data(), coeffs_.data() + col * n, value, n);
      mul_add_region(sp.data(), payloads_.data() + col * params_.symbols,
                     value, params_.symbols);
    } else if (pivot == n) {
      pivot = col;
    }
  }
  if (pivot == n) return Result::kLinearlyDependent;

  const std::uint16_t scale = inv(sc[pivot]);
  scale_region(sc.data(), scale, n);
  scale_region(sp.data(), scale, params_.symbols);

  for (std::size_t p = 0; p < n; ++p) {
    if (!present_[p]) continue;
    const std::uint16_t factor = coeffs_[p * n + pivot];
    if (factor == 0) continue;
    mul_add_region(coeffs_.data() + p * n, sc.data(), factor, n);
    mul_add_region(payloads_.data() + p * params_.symbols, sp.data(), factor,
                   params_.symbols);
  }
  std::memcpy(coeffs_.data() + pivot * n, sc.data(), n * 2);
  std::memcpy(payloads_.data() + pivot * params_.symbols, sp.data(),
              params_.symbols * 2);
  present_[pivot] = true;
  ++rank_;
  return Result::kAccepted;
}

const std::vector<std::uint16_t>& Decoder16::decoded() const {
  EXTNC_CHECK(is_complete());
  return payloads_;
}

}  // namespace extnc::gf65536
