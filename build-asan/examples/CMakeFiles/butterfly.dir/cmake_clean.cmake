file(REMOVE_RECURSE
  "CMakeFiles/butterfly.dir/butterfly.cpp.o"
  "CMakeFiles/butterfly.dir/butterfly.cpp.o.d"
  "butterfly"
  "butterfly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/butterfly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
