# Empty dependencies file for butterfly.
# This may be replaced when dependencies are built.
