# Empty dependencies file for p2p_swarm.
# This may be replaced when dependencies are built.
