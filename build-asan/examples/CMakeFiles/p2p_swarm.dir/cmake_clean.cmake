file(REMOVE_RECURSE
  "CMakeFiles/p2p_swarm.dir/p2p_swarm.cpp.o"
  "CMakeFiles/p2p_swarm.dir/p2p_swarm.cpp.o.d"
  "p2p_swarm"
  "p2p_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
