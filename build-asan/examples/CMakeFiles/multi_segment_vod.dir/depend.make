# Empty dependencies file for multi_segment_vod.
# This may be replaced when dependencies are built.
