file(REMOVE_RECURSE
  "CMakeFiles/multi_segment_vod.dir/multi_segment_vod.cpp.o"
  "CMakeFiles/multi_segment_vod.dir/multi_segment_vod.cpp.o.d"
  "multi_segment_vod"
  "multi_segment_vod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_segment_vod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
