# Empty dependencies file for relay_chain.
# This may be replaced when dependencies are built.
