file(REMOVE_RECURSE
  "CMakeFiles/relay_chain.dir/relay_chain.cpp.o"
  "CMakeFiles/relay_chain.dir/relay_chain.cpp.o.d"
  "relay_chain"
  "relay_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relay_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
