
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simgpu/executor_edge_test.cpp" "tests/CMakeFiles/simgpu_test.dir/simgpu/executor_edge_test.cpp.o" "gcc" "tests/CMakeFiles/simgpu_test.dir/simgpu/executor_edge_test.cpp.o.d"
  "/root/repo/tests/simgpu/executor_test.cpp" "tests/CMakeFiles/simgpu_test.dir/simgpu/executor_test.cpp.o" "gcc" "tests/CMakeFiles/simgpu_test.dir/simgpu/executor_test.cpp.o.d"
  "/root/repo/tests/simgpu/occupancy_test.cpp" "tests/CMakeFiles/simgpu_test.dir/simgpu/occupancy_test.cpp.o" "gcc" "tests/CMakeFiles/simgpu_test.dir/simgpu/occupancy_test.cpp.o.d"
  "/root/repo/tests/simgpu/timing_test.cpp" "tests/CMakeFiles/simgpu_test.dir/simgpu/timing_test.cpp.o" "gcc" "tests/CMakeFiles/simgpu_test.dir/simgpu/timing_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/extnc_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/gf256/CMakeFiles/extnc_gf256.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/simgpu/CMakeFiles/extnc_simgpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
