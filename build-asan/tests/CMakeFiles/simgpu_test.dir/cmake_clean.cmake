file(REMOVE_RECURSE
  "CMakeFiles/simgpu_test.dir/simgpu/executor_edge_test.cpp.o"
  "CMakeFiles/simgpu_test.dir/simgpu/executor_edge_test.cpp.o.d"
  "CMakeFiles/simgpu_test.dir/simgpu/executor_test.cpp.o"
  "CMakeFiles/simgpu_test.dir/simgpu/executor_test.cpp.o.d"
  "CMakeFiles/simgpu_test.dir/simgpu/occupancy_test.cpp.o"
  "CMakeFiles/simgpu_test.dir/simgpu/occupancy_test.cpp.o.d"
  "CMakeFiles/simgpu_test.dir/simgpu/timing_test.cpp.o"
  "CMakeFiles/simgpu_test.dir/simgpu/timing_test.cpp.o.d"
  "simgpu_test"
  "simgpu_test.pdb"
  "simgpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simgpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
