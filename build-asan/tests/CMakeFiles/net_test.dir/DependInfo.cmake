
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/butterfly_test.cpp" "tests/CMakeFiles/net_test.dir/net/butterfly_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/butterfly_test.cpp.o.d"
  "/root/repo/tests/net/event_sim_test.cpp" "tests/CMakeFiles/net_test.dir/net/event_sim_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/event_sim_test.cpp.o.d"
  "/root/repo/tests/net/faulty_channel_test.cpp" "tests/CMakeFiles/net_test.dir/net/faulty_channel_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/faulty_channel_test.cpp.o.d"
  "/root/repo/tests/net/file_transfer_test.cpp" "tests/CMakeFiles/net_test.dir/net/file_transfer_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/file_transfer_test.cpp.o.d"
  "/root/repo/tests/net/line_network_test.cpp" "tests/CMakeFiles/net_test.dir/net/line_network_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/line_network_test.cpp.o.d"
  "/root/repo/tests/net/live_stream_test.cpp" "tests/CMakeFiles/net_test.dir/net/live_stream_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/live_stream_test.cpp.o.d"
  "/root/repo/tests/net/multigen_swarm_test.cpp" "tests/CMakeFiles/net_test.dir/net/multigen_swarm_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/multigen_swarm_test.cpp.o.d"
  "/root/repo/tests/net/streaming_test.cpp" "tests/CMakeFiles/net_test.dir/net/streaming_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/streaming_test.cpp.o.d"
  "/root/repo/tests/net/swarm_test.cpp" "tests/CMakeFiles/net_test.dir/net/swarm_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/swarm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/extnc_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/gf256/CMakeFiles/extnc_gf256.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/net/CMakeFiles/extnc_net.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/coding/CMakeFiles/extnc_coding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
