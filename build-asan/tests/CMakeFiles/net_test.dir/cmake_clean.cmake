file(REMOVE_RECURSE
  "CMakeFiles/net_test.dir/net/butterfly_test.cpp.o"
  "CMakeFiles/net_test.dir/net/butterfly_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net/event_sim_test.cpp.o"
  "CMakeFiles/net_test.dir/net/event_sim_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net/faulty_channel_test.cpp.o"
  "CMakeFiles/net_test.dir/net/faulty_channel_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net/file_transfer_test.cpp.o"
  "CMakeFiles/net_test.dir/net/file_transfer_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net/line_network_test.cpp.o"
  "CMakeFiles/net_test.dir/net/line_network_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net/live_stream_test.cpp.o"
  "CMakeFiles/net_test.dir/net/live_stream_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net/multigen_swarm_test.cpp.o"
  "CMakeFiles/net_test.dir/net/multigen_swarm_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net/streaming_test.cpp.o"
  "CMakeFiles/net_test.dir/net/streaming_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net/swarm_test.cpp.o"
  "CMakeFiles/net_test.dir/net/swarm_test.cpp.o.d"
  "net_test"
  "net_test.pdb"
  "net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
