
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/coding/batch_test.cpp" "tests/CMakeFiles/coding_test.dir/coding/batch_test.cpp.o" "gcc" "tests/CMakeFiles/coding_test.dir/coding/batch_test.cpp.o.d"
  "/root/repo/tests/coding/block_decoder_test.cpp" "tests/CMakeFiles/coding_test.dir/coding/block_decoder_test.cpp.o" "gcc" "tests/CMakeFiles/coding_test.dir/coding/block_decoder_test.cpp.o.d"
  "/root/repo/tests/coding/encoder_test.cpp" "tests/CMakeFiles/coding_test.dir/coding/encoder_test.cpp.o" "gcc" "tests/CMakeFiles/coding_test.dir/coding/encoder_test.cpp.o.d"
  "/root/repo/tests/coding/generation_stream_test.cpp" "tests/CMakeFiles/coding_test.dir/coding/generation_stream_test.cpp.o" "gcc" "tests/CMakeFiles/coding_test.dir/coding/generation_stream_test.cpp.o.d"
  "/root/repo/tests/coding/progressive_decoder_test.cpp" "tests/CMakeFiles/coding_test.dir/coding/progressive_decoder_test.cpp.o" "gcc" "tests/CMakeFiles/coding_test.dir/coding/progressive_decoder_test.cpp.o.d"
  "/root/repo/tests/coding/recoder_test.cpp" "tests/CMakeFiles/coding_test.dir/coding/recoder_test.cpp.o" "gcc" "tests/CMakeFiles/coding_test.dir/coding/recoder_test.cpp.o.d"
  "/root/repo/tests/coding/segment_digest_test.cpp" "tests/CMakeFiles/coding_test.dir/coding/segment_digest_test.cpp.o" "gcc" "tests/CMakeFiles/coding_test.dir/coding/segment_digest_test.cpp.o.d"
  "/root/repo/tests/coding/segment_test.cpp" "tests/CMakeFiles/coding_test.dir/coding/segment_test.cpp.o" "gcc" "tests/CMakeFiles/coding_test.dir/coding/segment_test.cpp.o.d"
  "/root/repo/tests/coding/systematic_test.cpp" "tests/CMakeFiles/coding_test.dir/coding/systematic_test.cpp.o" "gcc" "tests/CMakeFiles/coding_test.dir/coding/systematic_test.cpp.o.d"
  "/root/repo/tests/coding/verifying_decoder_test.cpp" "tests/CMakeFiles/coding_test.dir/coding/verifying_decoder_test.cpp.o" "gcc" "tests/CMakeFiles/coding_test.dir/coding/verifying_decoder_test.cpp.o.d"
  "/root/repo/tests/coding/wire_test.cpp" "tests/CMakeFiles/coding_test.dir/coding/wire_test.cpp.o" "gcc" "tests/CMakeFiles/coding_test.dir/coding/wire_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/extnc_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/gf256/CMakeFiles/extnc_gf256.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/coding/CMakeFiles/extnc_coding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
