file(REMOVE_RECURSE
  "CMakeFiles/coding_test.dir/coding/batch_test.cpp.o"
  "CMakeFiles/coding_test.dir/coding/batch_test.cpp.o.d"
  "CMakeFiles/coding_test.dir/coding/block_decoder_test.cpp.o"
  "CMakeFiles/coding_test.dir/coding/block_decoder_test.cpp.o.d"
  "CMakeFiles/coding_test.dir/coding/encoder_test.cpp.o"
  "CMakeFiles/coding_test.dir/coding/encoder_test.cpp.o.d"
  "CMakeFiles/coding_test.dir/coding/generation_stream_test.cpp.o"
  "CMakeFiles/coding_test.dir/coding/generation_stream_test.cpp.o.d"
  "CMakeFiles/coding_test.dir/coding/progressive_decoder_test.cpp.o"
  "CMakeFiles/coding_test.dir/coding/progressive_decoder_test.cpp.o.d"
  "CMakeFiles/coding_test.dir/coding/recoder_test.cpp.o"
  "CMakeFiles/coding_test.dir/coding/recoder_test.cpp.o.d"
  "CMakeFiles/coding_test.dir/coding/segment_digest_test.cpp.o"
  "CMakeFiles/coding_test.dir/coding/segment_digest_test.cpp.o.d"
  "CMakeFiles/coding_test.dir/coding/segment_test.cpp.o"
  "CMakeFiles/coding_test.dir/coding/segment_test.cpp.o.d"
  "CMakeFiles/coding_test.dir/coding/systematic_test.cpp.o"
  "CMakeFiles/coding_test.dir/coding/systematic_test.cpp.o.d"
  "CMakeFiles/coding_test.dir/coding/verifying_decoder_test.cpp.o"
  "CMakeFiles/coding_test.dir/coding/verifying_decoder_test.cpp.o.d"
  "CMakeFiles/coding_test.dir/coding/wire_test.cpp.o"
  "CMakeFiles/coding_test.dir/coding/wire_test.cpp.o.d"
  "coding_test"
  "coding_test.pdb"
  "coding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
