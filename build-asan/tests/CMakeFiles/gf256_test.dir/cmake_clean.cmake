file(REMOVE_RECURSE
  "CMakeFiles/gf256_test.dir/gf256/gf_test.cpp.o"
  "CMakeFiles/gf256_test.dir/gf256/gf_test.cpp.o.d"
  "CMakeFiles/gf256_test.dir/gf256/matrix_test.cpp.o"
  "CMakeFiles/gf256_test.dir/gf256/matrix_test.cpp.o.d"
  "CMakeFiles/gf256_test.dir/gf256/region_test.cpp.o"
  "CMakeFiles/gf256_test.dir/gf256/region_test.cpp.o.d"
  "CMakeFiles/gf256_test.dir/gf256/swar_test.cpp.o"
  "CMakeFiles/gf256_test.dir/gf256/swar_test.cpp.o.d"
  "gf256_test"
  "gf256_test.pdb"
  "gf256_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf256_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
