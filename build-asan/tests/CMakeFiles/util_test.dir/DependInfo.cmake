
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/aligned_buffer_test.cpp" "tests/CMakeFiles/util_test.dir/util/aligned_buffer_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/aligned_buffer_test.cpp.o.d"
  "/root/repo/tests/util/file_io_test.cpp" "tests/CMakeFiles/util_test.dir/util/file_io_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/file_io_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/util_test.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/util_test.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_printer_test.cpp" "tests/CMakeFiles/util_test.dir/util/table_printer_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/table_printer_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/util_test.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/extnc_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/gf256/CMakeFiles/extnc_gf256.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
