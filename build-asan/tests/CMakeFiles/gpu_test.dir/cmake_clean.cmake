file(REMOVE_RECURSE
  "CMakeFiles/gpu_test.dir/gpu/gpu_decoder_test.cpp.o"
  "CMakeFiles/gpu_test.dir/gpu/gpu_decoder_test.cpp.o.d"
  "CMakeFiles/gpu_test.dir/gpu/gpu_encoder_test.cpp.o"
  "CMakeFiles/gpu_test.dir/gpu/gpu_encoder_test.cpp.o.d"
  "CMakeFiles/gpu_test.dir/gpu/gpu_model_test.cpp.o"
  "CMakeFiles/gpu_test.dir/gpu/gpu_model_test.cpp.o.d"
  "CMakeFiles/gpu_test.dir/gpu/gpu_multiseg_decoder_test.cpp.o"
  "CMakeFiles/gpu_test.dir/gpu/gpu_multiseg_decoder_test.cpp.o.d"
  "CMakeFiles/gpu_test.dir/gpu/gpu_recoder_test.cpp.o"
  "CMakeFiles/gpu_test.dir/gpu/gpu_recoder_test.cpp.o.d"
  "CMakeFiles/gpu_test.dir/gpu/hybrid_encoder_test.cpp.o"
  "CMakeFiles/gpu_test.dir/gpu/hybrid_encoder_test.cpp.o.d"
  "gpu_test"
  "gpu_test.pdb"
  "gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
