file(REMOVE_RECURSE
  "CMakeFiles/codes_test.dir/codes/lt_code_test.cpp.o"
  "CMakeFiles/codes_test.dir/codes/lt_code_test.cpp.o.d"
  "CMakeFiles/codes_test.dir/codes/reed_solomon_test.cpp.o"
  "CMakeFiles/codes_test.dir/codes/reed_solomon_test.cpp.o.d"
  "codes_test"
  "codes_test.pdb"
  "codes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
