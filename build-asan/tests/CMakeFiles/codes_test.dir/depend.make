# Empty dependencies file for codes_test.
# This may be replaced when dependencies are built.
