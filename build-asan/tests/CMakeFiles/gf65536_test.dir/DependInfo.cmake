
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gf65536/codec16_test.cpp" "tests/CMakeFiles/gf65536_test.dir/gf65536/codec16_test.cpp.o" "gcc" "tests/CMakeFiles/gf65536_test.dir/gf65536/codec16_test.cpp.o.d"
  "/root/repo/tests/gf65536/gf16_test.cpp" "tests/CMakeFiles/gf65536_test.dir/gf65536/gf16_test.cpp.o" "gcc" "tests/CMakeFiles/gf65536_test.dir/gf65536/gf16_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/extnc_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/gf256/CMakeFiles/extnc_gf256.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/gf65536/CMakeFiles/extnc_gf65536.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/coding/CMakeFiles/extnc_coding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
