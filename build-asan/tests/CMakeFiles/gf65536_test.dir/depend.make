# Empty dependencies file for gf65536_test.
# This may be replaced when dependencies are built.
