file(REMOVE_RECURSE
  "CMakeFiles/gf65536_test.dir/gf65536/codec16_test.cpp.o"
  "CMakeFiles/gf65536_test.dir/gf65536/codec16_test.cpp.o.d"
  "CMakeFiles/gf65536_test.dir/gf65536/gf16_test.cpp.o"
  "CMakeFiles/gf65536_test.dir/gf65536/gf16_test.cpp.o.d"
  "gf65536_test"
  "gf65536_test.pdb"
  "gf65536_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf65536_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
