
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cpu/cpu_decoder_test.cpp" "tests/CMakeFiles/cpu_test.dir/cpu/cpu_decoder_test.cpp.o" "gcc" "tests/CMakeFiles/cpu_test.dir/cpu/cpu_decoder_test.cpp.o.d"
  "/root/repo/tests/cpu/cpu_encoder_test.cpp" "tests/CMakeFiles/cpu_test.dir/cpu/cpu_encoder_test.cpp.o" "gcc" "tests/CMakeFiles/cpu_test.dir/cpu/cpu_encoder_test.cpp.o.d"
  "/root/repo/tests/cpu/cpu_table_encoder_test.cpp" "tests/CMakeFiles/cpu_test.dir/cpu/cpu_table_encoder_test.cpp.o" "gcc" "tests/CMakeFiles/cpu_test.dir/cpu/cpu_table_encoder_test.cpp.o.d"
  "/root/repo/tests/cpu/multi_segment_decoder_test.cpp" "tests/CMakeFiles/cpu_test.dir/cpu/multi_segment_decoder_test.cpp.o" "gcc" "tests/CMakeFiles/cpu_test.dir/cpu/multi_segment_decoder_test.cpp.o.d"
  "/root/repo/tests/cpu/xeon_model_test.cpp" "tests/CMakeFiles/cpu_test.dir/cpu/xeon_model_test.cpp.o" "gcc" "tests/CMakeFiles/cpu_test.dir/cpu/xeon_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/extnc_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/gf256/CMakeFiles/extnc_gf256.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cpu/CMakeFiles/extnc_cpu.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/coding/CMakeFiles/extnc_coding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
