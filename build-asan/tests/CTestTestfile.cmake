# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/util_test[1]_include.cmake")
include("/root/repo/build-asan/tests/coding_test[1]_include.cmake")
include("/root/repo/build-asan/tests/cpu_test[1]_include.cmake")
include("/root/repo/build-asan/tests/simgpu_test[1]_include.cmake")
include("/root/repo/build-asan/tests/gpu_test[1]_include.cmake")
include("/root/repo/build-asan/tests/gf65536_test[1]_include.cmake")
include("/root/repo/build-asan/tests/codes_test[1]_include.cmake")
include("/root/repo/build-asan/tests/net_test[1]_include.cmake")
include("/root/repo/build-asan/tests/gf256_test[1]_include.cmake")
include("/root/repo/build-asan/tests/integration_test[1]_include.cmake")
