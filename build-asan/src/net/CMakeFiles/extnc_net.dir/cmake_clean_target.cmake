file(REMOVE_RECURSE
  "libextnc_net.a"
)
