file(REMOVE_RECURSE
  "CMakeFiles/extnc_net.dir/butterfly.cpp.o"
  "CMakeFiles/extnc_net.dir/butterfly.cpp.o.d"
  "CMakeFiles/extnc_net.dir/event_sim.cpp.o"
  "CMakeFiles/extnc_net.dir/event_sim.cpp.o.d"
  "CMakeFiles/extnc_net.dir/faulty_channel.cpp.o"
  "CMakeFiles/extnc_net.dir/faulty_channel.cpp.o.d"
  "CMakeFiles/extnc_net.dir/file_transfer.cpp.o"
  "CMakeFiles/extnc_net.dir/file_transfer.cpp.o.d"
  "CMakeFiles/extnc_net.dir/line_network.cpp.o"
  "CMakeFiles/extnc_net.dir/line_network.cpp.o.d"
  "CMakeFiles/extnc_net.dir/live_stream.cpp.o"
  "CMakeFiles/extnc_net.dir/live_stream.cpp.o.d"
  "CMakeFiles/extnc_net.dir/multigen_swarm.cpp.o"
  "CMakeFiles/extnc_net.dir/multigen_swarm.cpp.o.d"
  "CMakeFiles/extnc_net.dir/streaming.cpp.o"
  "CMakeFiles/extnc_net.dir/streaming.cpp.o.d"
  "CMakeFiles/extnc_net.dir/swarm.cpp.o"
  "CMakeFiles/extnc_net.dir/swarm.cpp.o.d"
  "libextnc_net.a"
  "libextnc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extnc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
