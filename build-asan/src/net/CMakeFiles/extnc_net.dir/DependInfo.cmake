
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/butterfly.cpp" "src/net/CMakeFiles/extnc_net.dir/butterfly.cpp.o" "gcc" "src/net/CMakeFiles/extnc_net.dir/butterfly.cpp.o.d"
  "/root/repo/src/net/event_sim.cpp" "src/net/CMakeFiles/extnc_net.dir/event_sim.cpp.o" "gcc" "src/net/CMakeFiles/extnc_net.dir/event_sim.cpp.o.d"
  "/root/repo/src/net/faulty_channel.cpp" "src/net/CMakeFiles/extnc_net.dir/faulty_channel.cpp.o" "gcc" "src/net/CMakeFiles/extnc_net.dir/faulty_channel.cpp.o.d"
  "/root/repo/src/net/file_transfer.cpp" "src/net/CMakeFiles/extnc_net.dir/file_transfer.cpp.o" "gcc" "src/net/CMakeFiles/extnc_net.dir/file_transfer.cpp.o.d"
  "/root/repo/src/net/line_network.cpp" "src/net/CMakeFiles/extnc_net.dir/line_network.cpp.o" "gcc" "src/net/CMakeFiles/extnc_net.dir/line_network.cpp.o.d"
  "/root/repo/src/net/live_stream.cpp" "src/net/CMakeFiles/extnc_net.dir/live_stream.cpp.o" "gcc" "src/net/CMakeFiles/extnc_net.dir/live_stream.cpp.o.d"
  "/root/repo/src/net/multigen_swarm.cpp" "src/net/CMakeFiles/extnc_net.dir/multigen_swarm.cpp.o" "gcc" "src/net/CMakeFiles/extnc_net.dir/multigen_swarm.cpp.o.d"
  "/root/repo/src/net/streaming.cpp" "src/net/CMakeFiles/extnc_net.dir/streaming.cpp.o" "gcc" "src/net/CMakeFiles/extnc_net.dir/streaming.cpp.o.d"
  "/root/repo/src/net/swarm.cpp" "src/net/CMakeFiles/extnc_net.dir/swarm.cpp.o" "gcc" "src/net/CMakeFiles/extnc_net.dir/swarm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/coding/CMakeFiles/extnc_coding.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/extnc_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/gf256/CMakeFiles/extnc_gf256.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
