# Empty dependencies file for extnc_net.
# This may be replaced when dependencies are built.
