file(REMOVE_RECURSE
  "libextnc_gf256.a"
)
