file(REMOVE_RECURSE
  "CMakeFiles/extnc_gf256.dir/matrix.cpp.o"
  "CMakeFiles/extnc_gf256.dir/matrix.cpp.o.d"
  "CMakeFiles/extnc_gf256.dir/region.cpp.o"
  "CMakeFiles/extnc_gf256.dir/region.cpp.o.d"
  "CMakeFiles/extnc_gf256.dir/region_simd.cpp.o"
  "CMakeFiles/extnc_gf256.dir/region_simd.cpp.o.d"
  "CMakeFiles/extnc_gf256.dir/tables.cpp.o"
  "CMakeFiles/extnc_gf256.dir/tables.cpp.o.d"
  "libextnc_gf256.a"
  "libextnc_gf256.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extnc_gf256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
