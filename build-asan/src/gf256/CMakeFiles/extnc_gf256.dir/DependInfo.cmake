
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gf256/matrix.cpp" "src/gf256/CMakeFiles/extnc_gf256.dir/matrix.cpp.o" "gcc" "src/gf256/CMakeFiles/extnc_gf256.dir/matrix.cpp.o.d"
  "/root/repo/src/gf256/region.cpp" "src/gf256/CMakeFiles/extnc_gf256.dir/region.cpp.o" "gcc" "src/gf256/CMakeFiles/extnc_gf256.dir/region.cpp.o.d"
  "/root/repo/src/gf256/region_simd.cpp" "src/gf256/CMakeFiles/extnc_gf256.dir/region_simd.cpp.o" "gcc" "src/gf256/CMakeFiles/extnc_gf256.dir/region_simd.cpp.o.d"
  "/root/repo/src/gf256/tables.cpp" "src/gf256/CMakeFiles/extnc_gf256.dir/tables.cpp.o" "gcc" "src/gf256/CMakeFiles/extnc_gf256.dir/tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/extnc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
